#include "md/builder.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace keybin2::md {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}

Vec3 place_atom(const Vec3& a, const Vec3& b, const Vec3& c, double length,
                double angle_deg, double torsion_deg) {
  // NeRF: express D in the local frame of (a, b, c), then map to world.
  const double angle = angle_deg * kDegToRad;
  const double torsion = torsion_deg * kDegToRad;

  // Local displacement from c with the bond along -x of the frame; the sign
  // of the z term fixes the handedness so the achieved dihedral equals the
  // requested one under dihedral_deg's convention.
  const Vec3 d_local{
      -length * std::cos(angle),
      length * std::sin(angle) * std::cos(torsion),
      -length * std::sin(angle) * std::sin(torsion),
  };

  // Frame: x along bc, z along bc x ab plane normal, y completing it.
  Vec3 bc = c - b;
  const double bc_len = norm(bc);
  KB2_CHECK_MSG(bc_len > 0.0, "degenerate frame: b == c");
  bc = bc * (1.0 / bc_len);
  const Vec3 ab = b - a;
  Vec3 n = cross(ab, bc);
  const double n_len = norm(n);
  KB2_CHECK_MSG(n_len > 0.0, "degenerate frame: collinear a, b, c");
  n = n * (1.0 / n_len);
  const Vec3 m = cross(n, bc);

  return Vec3{
      c.x - (bc.x * d_local.x + m.x * d_local.y + n.x * d_local.z) * -1.0,
      c.y - (bc.y * d_local.x + m.y * d_local.y + n.y * d_local.z) * -1.0,
      c.z - (bc.z * d_local.x + m.z * d_local.y + n.z * d_local.z) * -1.0,
  };
}

std::vector<BackboneResidue> build_backbone(std::span<const double> phi,
                                            std::span<const double> psi,
                                            std::span<const double> omega,
                                            const BackboneGeometry& geom) {
  const std::size_t n_res = phi.size();
  KB2_CHECK_MSG(n_res >= 1, "need at least one residue");
  KB2_CHECK_MSG(psi.size() == n_res && omega.size() == n_res,
                "phi/psi/omega must have equal length");

  std::vector<BackboneResidue> chain(n_res);

  // Seed the first residue in a canonical pose.
  chain[0].n = Vec3{0.0, 0.0, 0.0};
  chain[0].ca = Vec3{geom.n_ca, 0.0, 0.0};
  const double theta = geom.angle_n_ca_c * kDegToRad;
  chain[0].c = Vec3{geom.n_ca - geom.ca_c * std::cos(theta),
                    geom.ca_c * std::sin(theta), 0.0};

  for (std::size_t r = 1; r < n_res; ++r) {
    const auto& prev = chain[r - 1];
    // N(r):  torsion psi(r-1) about CA(r-1)-C(r-1).
    chain[r].n = place_atom(prev.n, prev.ca, prev.c, geom.c_n,
                            geom.angle_ca_c_n, psi[r - 1]);
    // CA(r): torsion omega(r-1) about C(r-1)-N(r).
    chain[r].ca = place_atom(prev.ca, prev.c, chain[r].n, geom.n_ca,
                             geom.angle_c_n_ca, omega[r - 1]);
    // C(r):  torsion phi(r) about N(r)-CA(r).
    chain[r].c = place_atom(prev.c, chain[r].n, chain[r].ca, geom.ca_c,
                            geom.angle_n_ca_c, phi[r]);
  }
  return chain;
}

std::vector<BackboneResidue> build_backbone(const Trajectory& traj,
                                            std::size_t frame,
                                            const BackboneGeometry& geom) {
  const std::size_t n_res = traj.residues();
  std::vector<double> phi(n_res), psi(n_res), omega(n_res);
  for (std::size_t r = 0; r < n_res; ++r) {
    phi[r] = traj.phi(frame, r);
    psi[r] = traj.psi(frame, r);
    omega[r] = traj.omega(frame, r);
  }
  return build_backbone(phi, psi, omega, geom);
}

RecoveredTorsions recover_torsions(std::span<const BackboneResidue> chain) {
  const std::size_t n = chain.size();
  RecoveredTorsions out;
  out.phi.assign(n, 0.0);
  out.psi.assign(n, 180.0);
  out.omega.assign(n, 180.0);
  for (std::size_t r = 0; r < n; ++r) {
    if (r > 0) {
      out.phi[r] = dihedral_deg(chain[r - 1].c, chain[r].n, chain[r].ca,
                                chain[r].c);
    }
    if (r + 1 < n) {
      out.psi[r] = dihedral_deg(chain[r].n, chain[r].ca, chain[r].c,
                                chain[r + 1].n);
      out.omega[r] = dihedral_deg(chain[r].ca, chain[r].c, chain[r + 1].n,
                                  chain[r + 1].ca);
    }
  }
  return out;
}

}  // namespace keybin2::md
