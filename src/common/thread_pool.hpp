// Rank-local worker pool for data-parallel kernels.
//
// The paper offloads key assignment and histogram construction to a GPU; here
// the same per-point / per-dimension decomposition runs on a thread pool
// (CP.4: think in tasks; CP.24: the pool joins in its destructor).
//
// parallel_for runs on a no-allocation fork-join path: the caller publishes
// one borrowed job descriptor, workers (and the caller itself) claim chunk
// indices from an atomic cursor, and completion is a single counter — no
// per-chunk std::function allocations, no task queue churn. Grain-size
// control caps how finely a range is split so small-n stages stop paying
// dispatch overhead for chunks not worth a wake-up.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace keybin2 {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  /// Tag selecting a zero-worker pool: every parallel_for runs inline on the
  /// calling thread. The only pool that may exist in a freshly forked child
  /// of a multi-threaded process, where starting threads is not an option.
  struct Inline {};
  explicit ThreadPool(Inline) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(begin, end) over [0, n) split into contiguous chunks (at most one
  /// per worker) and wait for completion. Exceptions from tasks are rethrown
  /// on the calling thread (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for(n, /*grain=*/1, fn);
  }

  /// Grained variant: no chunk is smaller than `grain` items (except the
  /// whole range), so a range of n items forks at most
  /// min(workers, ceil(n / grain)) chunks. Ranges that fit in one grain run
  /// inline with zero synchronization. A nested call (from inside a worker,
  /// or while another fork-join is in flight) also runs inline, serially —
  /// the pool is a flat fork-join, not a scheduler.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// One fork-join job: chunk geometry plus claim/completion cursors. The
  /// callable is borrowed from the caller's frame, which outlives the job.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::size_t base = 0;   // chunk c covers base items (+1 for c < extra)
    std::size_t extra = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::exception_ptr first_error;
    std::mutex err_mu;
  };

  void worker_loop();
  /// Claim and run chunks of `job` until the cursor is exhausted.
  static void drain(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all chunks done
  Job* job_ = nullptr;               // guarded by mu_
  std::uint64_t job_generation_ = 0; // guarded by mu_
  bool stop_ = false;
};

/// Process-wide pool shared by kernels that do not need a private pool.
ThreadPool& global_pool();

/// Install a zero-worker inline pool as the global pool. Must be called in a
/// child process immediately after fork(): the parent's worker threads do not
/// exist in the child, so any previously created pool is unusable there (and
/// under TSan, starting replacement threads after a multi-threaded fork
/// aborts). The old pool object is deliberately leaked — its threads are not
/// ours to join from the child.
void reset_global_pool_after_fork();

}  // namespace keybin2
