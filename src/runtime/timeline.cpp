#include "runtime/timeline.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "comm/communicator.hpp"
#include "common/serialize.hpp"
#include "runtime/json.hpp"

namespace keybin2::runtime {

namespace {

double to_us(std::int64_t ns, std::int64_t epoch_ns) {
  return static_cast<double>(ns - epoch_ns) / 1000.0;
}

// Every event of rank r lives in its own process lane (pid = r); the tid
// carries the rank's incarnation, so after a respawn the replacement's
// activity gets its own track ("rank 3 (inc 1)") under the same process.
void event_header(JsonWriter& w, const char* ph, int rank, int incarnation,
                  double ts_us) {
  w.begin_object();
  w.key("ph").value(ph);
  w.key("pid").value(rank);
  w.key("tid").value(incarnation);
  w.key("ts").value(ts_us);
}

void metadata_event(JsonWriter& w, int rank, int incarnation, const char* what,
                    const std::string& label) {
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(rank);
  w.key("tid").value(incarnation);
  w.key("name").value(what);
  w.key("args").begin_object();
  w.key("name").value(label);
  w.end_object();
  w.end_object();
}

std::string track_label(int rank, int incarnation) {
  std::string label = "rank " + std::to_string(rank);
  if (incarnation > 0) {
    label += " (inc " + std::to_string(incarnation) + ")";
  }
  return label;
}

}  // namespace

void Timeline::serialize(ByteWriter& w) const {
  w.write<std::int32_t>(rank_);
  w.write<std::int32_t>(incarnation_);
  w.write<std::int64_t>(epoch_ns_);
  w.write<std::uint64_t>(spans_.size());
  for (const auto& s : spans_) {
    w.write_string(s.name);
    w.write<std::int64_t>(s.start_ns);
    w.write<std::int64_t>(s.end_ns);
  }
  w.write<std::uint64_t>(flows_.size());
  for (const auto& f : flows_) {
    w.write<std::uint64_t>(f.id);
    w.write<std::int64_t>(f.t_ns);
    w.write<std::uint8_t>(f.start ? 1 : 0);
    w.write<std::int32_t>(f.peer);
    w.write<std::int32_t>(f.tag);
    w.write<std::uint64_t>(f.bytes);
    w.write<std::int64_t>(f.wait_ns);
  }
  w.write<std::uint64_t>(waits_.size());
  for (const auto& b : waits_) {
    w.write_string(b.kind);
    w.write<std::int64_t>(b.t_ns);
    w.write<std::int64_t>(b.wait_ns);
  }
  w.write<std::uint64_t>(instants_.size());
  for (const auto& i : instants_) {
    w.write_string(i.name);
    w.write<std::int64_t>(i.t_ns);
  }
  w.write<std::uint64_t>(counters_.size());
  for (const auto& c : counters_) {
    w.write_string(c.name);
    w.write<std::int64_t>(c.t_ns);
    w.write<double>(c.value);
  }
}

Timeline Timeline::deserialize(ByteReader& r) {
  Timeline tl(r.read<std::int32_t>());
  tl.set_incarnation(r.read<std::int32_t>());
  tl.set_epoch_ns(r.read<std::int64_t>());
  const auto n_spans = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_spans; ++i) {
    auto name = r.read_string();
    const auto start_ns = r.read<std::int64_t>();
    tl.add_span(std::move(name), start_ns, r.read<std::int64_t>());
  }
  const auto n_flows = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_flows; ++i) {
    Flow f;
    f.id = r.read<std::uint64_t>();
    f.t_ns = r.read<std::int64_t>();
    f.start = r.read<std::uint8_t>() != 0;
    f.peer = r.read<std::int32_t>();
    f.tag = r.read<std::int32_t>();
    f.bytes = r.read<std::uint64_t>();
    f.wait_ns = r.read<std::int64_t>();
    tl.add_flow(f.id, f.t_ns, f.start, f.peer, f.tag, f.bytes, f.wait_ns);
  }
  const auto n_waits = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_waits; ++i) {
    auto kind = r.read_string();
    const auto t_ns = r.read<std::int64_t>();
    tl.add_wait(std::move(kind), t_ns, r.read<std::int64_t>());
  }
  const auto n_instants = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_instants; ++i) {
    auto name = r.read_string();
    tl.add_instant(std::move(name), r.read<std::int64_t>());
  }
  const auto n_counters = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    auto name = r.read_string();
    const auto t_ns = r.read<std::int64_t>();
    tl.add_counter(std::move(name), t_ns, r.read<double>());
  }
  return tl;
}

std::string chrome_trace_json(std::span<const Timeline> ranks) {
  // Shift all timestamps so the earliest captured event is t=0.
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  for (const auto& tl : ranks) {
    // A stamped capture epoch anchors its lane even when the first event
    // lands later; unstamped (legacy) lanes fall back to their events.
    if (tl.epoch_ns() > 0) epoch = std::min(epoch, tl.epoch_ns());
    for (const auto& s : tl.spans()) epoch = std::min(epoch, s.start_ns);
    for (const auto& f : tl.flows()) epoch = std::min(epoch, f.t_ns);
    for (const auto& wt : tl.waits()) {
      epoch = std::min(epoch, wt.t_ns - wt.wait_ns);
    }
    for (const auto& i : tl.instants()) epoch = std::min(epoch, i.t_ns);
    for (const auto& c : tl.counters()) epoch = std::min(epoch, c.t_ns);
  }
  if (epoch == std::numeric_limits<std::int64_t>::max()) epoch = 0;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  for (const auto& tl : ranks) {
    // Name both the process and thread lanes, even when the rank captured
    // nothing, so a 4-rank trace always shows 4 stably-labelled timelines.
    const auto label = track_label(tl.rank(), tl.incarnation());
    metadata_event(w, tl.rank(), tl.incarnation(), "process_name",
                   "keybin2 rank " + std::to_string(tl.rank()));
    metadata_event(w, tl.rank(), tl.incarnation(), "thread_name", label);
  }

  // Pair flow ends by id; an arrow is only drawn when both ends exist (a
  // message sent before capture started, or still in flight at capture end,
  // has no pair and is dropped).
  std::map<std::uint64_t, std::pair<const Timeline::Flow*, int>> sends;
  std::map<std::uint64_t, std::pair<const Timeline::Flow*, int>> recvs;
  std::map<int, int> incarnation_of;  // rank -> incarnation of its timeline
  for (const auto& tl : ranks) {
    incarnation_of[tl.rank()] = tl.incarnation();
    for (const auto& f : tl.flows()) {
      (f.start ? sends : recvs)[f.id] = {&f, tl.rank()};
    }
  }

  for (const auto& tl : ranks) {
    const int inc = tl.incarnation();
    // Events stamped before this incarnation's own capture epoch are
    // pre-respawn residue (deserialized from a predecessor's blob or left
    // in a reused buffer) — drop them rather than draw a misleading lane.
    const std::int64_t own = tl.epoch_ns();
    for (const auto& s : tl.spans()) {
      if (own > 0 && s.start_ns < own) continue;
      event_header(w, "X", tl.rank(), inc, to_us(s.start_ns, epoch));
      w.key("dur").value(to_us(s.end_ns, s.start_ns));
      w.key("name").value(s.name);
      w.key("cat").value("scope");
      w.end_object();
    }
    for (const auto& wt : tl.waits()) {
      if (own > 0 && wt.t_ns - wt.wait_ns < own) continue;
      event_header(w, "X", tl.rank(), inc, to_us(wt.t_ns - wt.wait_ns, epoch));
      w.key("dur").value(to_us(wt.wait_ns, 0));
      w.key("name").value("wait:" + wt.kind);
      w.key("cat").value("wait");
      w.end_object();
    }
    for (const auto& i : tl.instants()) {
      if (own > 0 && i.t_ns < own) continue;
      event_header(w, "i", tl.rank(), inc, to_us(i.t_ns, epoch));
      w.key("name").value(i.name);
      w.key("s").value("t");  // thread-scoped instant
      w.end_object();
    }
    for (const auto& c : tl.counters()) {
      if (own > 0 && c.t_ns < own) continue;
      event_header(w, "C", tl.rank(), inc, to_us(c.t_ns, epoch));
      w.key("name").value(c.name);
      w.key("args").begin_object();
      w.key("value").value(c.value);
      w.end_object();
      w.end_object();
    }
  }

  for (const auto& [id, send] : sends) {
    const auto recv_it = recvs.find(id);
    if (recv_it == recvs.end()) continue;
    const auto& [sf, send_rank] = send;
    const auto& [rf, recv_rank] = recv_it->second;
    const std::string name = "msg:" + comm::tag_name(sf->tag);

    event_header(w, "s", send_rank, incarnation_of[send_rank],
                 to_us(sf->t_ns, epoch));
    w.key("id").value(std::uint64_t(id));
    w.key("name").value(name);
    w.key("cat").value("flow");
    w.key("args").begin_object();
    w.key("bytes").value(std::uint64_t(sf->bytes));
    w.key("dest").value(sf->peer);
    w.end_object();
    w.end_object();

    event_header(w, "f", recv_rank, incarnation_of[recv_rank],
                 to_us(rf->t_ns, epoch));
    w.key("id").value(std::uint64_t(id));
    w.key("name").value(name);
    w.key("cat").value("flow");
    w.key("bp").value("e");  // bind to the enclosing slice
    w.key("args").begin_object();
    w.key("wait_us").value(to_us(rf->wait_ns, 0));
    w.key("src").value(rf->peer);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

}  // namespace keybin2::runtime
