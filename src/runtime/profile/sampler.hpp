// The sampling half of the continuous profiler (DESIGN.md §8).
//
// A Sampler periodically snapshots one rank's StageCursor into its
// SampleTable (and DensitySeries). Two engines, selected by backend:
//
//   * kSignal — timer-driven SIGPROF (setitimer ITIMER_PROF) in the rank's
//     own process. The handler reads the cursor with the seqlock protocol
//     and drops the sample on a torn read: the interrupted writer cannot
//     make progress until the handler returns, so retrying would deadlock.
//     ITIMER_PROF counts CPU time, which is exactly what a profiler wants —
//     a rank parked in a futex accrues no samples. One signal sampler per
//     process (one rank per process under ProcComm); a second concurrent
//     start falls back to the hub thread.
//   * kThread — a process-wide hub thread sampling every registered rank's
//     cursor on a wall-clock tick. This is the ThreadComm engine, where all
//     ranks share one process and per-rank signals don't exist.
//
// kAuto picks kSignal when the communicator is process-isolated, kThread
// otherwise. start()/stop() are idempotent; stop() must be called on the
// rank thread before the cursor/table are destroyed.
#pragma once

#include <cstdint>

#include "runtime/profile/stage_cursor.hpp"

namespace keybin2::runtime::profile {

enum class SamplerMode { kAuto, kThread, kSignal };

class Sampler {
 public:
  Sampler(StageCursor* cursor, SampleTable* table, DensitySeries* density)
      : cursor_(cursor), table_(table), density_(density) {}
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Begin sampling every `interval_us` microseconds. `process_isolated`
  /// steers kAuto (true -> SIGPROF, false -> hub thread). Returns the mode
  /// actually started.
  SamplerMode start(SamplerMode mode, std::int64_t interval_us,
                    bool process_isolated);
  void stop();

  bool running() const { return running_; }

 private:
  friend class SamplerHub;

  /// One sampling tick (hub thread): read the cursor, account the sample.
  void sample_once(std::int64_t t_ns);

  StageCursor* cursor_;
  SampleTable* table_;
  DensitySeries* density_;
  bool running_ = false;
  SamplerMode active_ = SamplerMode::kAuto;
};

}  // namespace keybin2::runtime::profile
