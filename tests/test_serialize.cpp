#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"

namespace keybin2 {
namespace {

TEST(Serialize, PodRoundtrip) {
  ByteWriter w;
  w.write<std::int32_t>(-7);
  w.write<double>(3.25);
  w.write<std::uint64_t>(1ULL << 60);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint64_t>(), 1ULL << 60);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, VectorRoundtrip) {
  ByteWriter w;
  w.write_vec(std::vector<double>{1.0, 2.0, 3.0});
  w.write_vec(std::vector<std::uint32_t>{});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vec<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.read_vec<std::uint32_t>().empty());
}

TEST(Serialize, SpanRoundtrip) {
  const double values[] = {9.0, 8.0};
  ByteWriter w;
  w.write_span(std::span<const double>(values));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vec<double>(), (std::vector<double>{9.0, 8.0}));
}

TEST(Serialize, MutableSpanOverload) {
  std::vector<double> values{1.5, 2.5};
  ByteWriter w;
  w.write_span(std::span<double>(values));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vec<double>(), values);
}

TEST(Serialize, StringRoundtrip) {
  ByteWriter w;
  w.write_string("hello keybin");
  w.write_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello keybin");
  EXPECT_EQ(r.read_string(), "");
}

TEST(Serialize, MixedSequenceRoundtrip) {
  ByteWriter w;
  w.write<int>(1);
  w.write_string("x");
  w.write_vec(std::vector<int>{2, 3});
  w.write<double>(4.5);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<int>(), 1);
  EXPECT_EQ(r.read_string(), "x");
  EXPECT_EQ(r.read_vec<int>(), (std::vector<int>{2, 3}));
  EXPECT_EQ(r.read<double>(), 4.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, UnderflowThrows) {
  ByteWriter w;
  w.write<std::int16_t>(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read<std::int64_t>(), Error);
}

TEST(Serialize, VectorUnderflowThrows) {
  ByteWriter w;
  w.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_vec<double>(), Error);
}

TEST(Serialize, RemainingTracksPosition) {
  ByteWriter w;
  w.write<std::uint32_t>(5);
  w.write<std::uint32_t>(6);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Serialize, TakeMovesBuffer) {
  ByteWriter w;
  w.write<int>(9);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), sizeof(int));
  EXPECT_TRUE(w.bytes().empty());
}

}  // namespace
}  // namespace keybin2
