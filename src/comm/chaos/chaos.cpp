#include "comm/chaos/chaos.hpp"

#include <cstdlib>
#include <sstream>

#include "comm/recovery.hpp"

namespace keybin2::comm::chaos {

namespace {

/// Stateful splitmix64 draw sequence over the schedule seed.
struct Draws {
  std::uint64_t state;
  std::uint64_t next() { return state = detail::mix64(state + 1); }
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }
  bool chance(std::uint64_t one_in) { return next() % one_in == 0; }
};

}  // namespace

fault::FaultSchedule ChaosSchedule::fault_for(int rank,
                                              int incarnation) const {
  fault::FaultSchedule s;
  s.seed = detail::mix64(seed ^ (static_cast<std::uint64_t>(rank) << 8) ^
                         static_cast<std::uint64_t>(incarnation));
  if (rank == victim) {
    if (incarnation == 0) {
      s.kill_at_op = kill_at_op;
      s.hard_kill = true;
    } else if (incarnation == 1 && kill_respawn) {
      s.kill_at_op = respawn_kill_at_op;
      s.hard_kill = true;
    }
    // Incarnation 2+ runs clean: the ladder either succeeded by now or the
    // budget ran out and the group shrank without this slot.
  }
  if (rank == delay_rank) {
    s.delay_prob = delay_prob;
    s.delay_ms = delay_ms;
  }
  return s;
}

std::string ChaosSchedule::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (victim >= 0 && kill_at_op > 0) {
    os << " kill r" << victim << "@op" << kill_at_op;
    if (kill_respawn) os << " +respawn@op" << respawn_kill_at_op;
  } else {
    os << " no-kill";
  }
  if (delay_rank >= 0) {
    os << " delay r" << delay_rank << " p=" << delay_prob << " " << delay_ms
       << "ms";
  }
  if (corrupt_checkpoint >= 0) os << " ckpt-corrupt#" << corrupt_checkpoint;
  return os.str();
}

ChaosSchedule make_chaos_schedule(std::uint64_t seed, int n_ranks) {
  ChaosSchedule s;
  s.seed = seed;
  Draws d{detail::mix64(seed)};
  if (!d.chance(4)) {  // 3/4 of seeds kill a rank
    s.victim = static_cast<int>(d.next() % static_cast<std::uint64_t>(
                                               n_ranks > 0 ? n_ranks : 1));
    // Early enough to land mid-protocol on small fits, late enough that the
    // group has real state to recover.
    s.kill_at_op = d.next_in(4, 48);
    if (d.chance(4)) {  // 1/4 of kills also take out the replacement
      s.kill_respawn = true;
      s.respawn_kill_at_op = d.next_in(4, 48);
    }
  }
  if (d.chance(2)) {  // half the seeds delay somebody's sends
    s.delay_rank = static_cast<int>(
        d.next() % static_cast<std::uint64_t>(n_ranks > 0 ? n_ranks : 1));
    s.delay_prob = 0.05 + 0.01 * static_cast<double>(d.next() % 20);
    s.delay_ms = 1.0 + static_cast<double>(d.next() % 4);
  }
  if (d.chance(3)) {  // a third of the seeds damage the checkpoint file
    s.corrupt_checkpoint = static_cast<int>(d.next() % 5);
  }
  return s;
}

std::uint64_t chaos_seed_from_env(std::uint64_t fallback) {
  if (const char* v = std::getenv("KB2_CHAOS_SEED")) {
    return std::strtoull(v, nullptr, 10);
  }
  return fallback;
}

}  // namespace keybin2::comm::chaos
