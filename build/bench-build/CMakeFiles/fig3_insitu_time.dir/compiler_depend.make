# Empty compiler generated dependencies file for fig3_insitu_time.
# This may be replaced when dependencies are built.
