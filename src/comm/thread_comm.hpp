// ThreadComm: an in-process group of ranks backed by threads.
//
// A Hub owns one mailbox per rank; a mailbox is a FIFO of messages keyed by
// (source, tag). send() enqueues into the destination's mailbox; recv()
// blocks on the destination's condition variable until a matching message is
// available. The barrier is a classic generation-counting central barrier.
//
// This gives the distributed KeyBin2 driver a faithful stand-in for MPI on a
// single node: real concurrency, real serialization, rank-private memory by
// convention (each rank only touches its own data slices).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <string>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/communicator.hpp"

namespace keybin2::comm {

class ThreadCommHub;

/// A rank's endpoint inside a ThreadCommHub. Create via ThreadCommHub::comm().
class ThreadComm final : public Communicator {
 public:
  int rank() const override { return rank_; }
  int size() const override;
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override;
  TrafficStats stats() const override;

 private:
  friend class ThreadCommHub;
  ThreadComm(ThreadCommHub* hub, int rank) : hub_(hub), rank_(rank) {}

  ThreadCommHub* hub_;
  int rank_;
};

class ThreadCommHub {
 public:
  explicit ThreadCommHub(int size);

  int size() const { return static_cast<int>(mailboxes_.size()); }

  /// The communicator endpoint for `rank`. The hub must outlive it.
  ThreadComm comm(int rank);

  TrafficStats stats(int rank) const;

  /// Mark the group failed (e.g. a rank threw): every blocked or future
  /// recv()/barrier() throws instead of waiting on a dead rank — the
  /// moral equivalent of MPI_Abort, so one rank's failure can never
  /// deadlock the others.
  void poison(const std::string& reason);

 private:
  friend class ThreadComm;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues;
  };

  void push(int src, int dest, int tag, std::span<const std::byte> data);
  std::vector<std::byte> pop(int self, int src, int tag);
  void barrier_wait();
  void check_poisoned() const;

  std::atomic<bool> poisoned_{false};
  std::string poison_reason_;
  mutable std::mutex poison_mu_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<TrafficStats> traffic_;
  mutable std::mutex traffic_mu_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace keybin2::comm
