// Shared filesystem helpers for tests.
//
// Several suites stage inputs and outputs under /tmp. ctest runs each
// discovered test as its own process, possibly in parallel, so every path
// must be unique per process — otherwise one test's teardown deletes a file
// another test is still reading. These helpers centralize that convention
// (previously copy-pasted into every fixture) and add RAII cleanup, so a
// failing assertion can no longer leak temp files past the test.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

namespace keybin2::testutil {

/// A /tmp path unique to this process: "/tmp/<stem>_<pid><suffix>".
inline std::string temp_path(const std::string& stem,
                             const std::string& suffix) {
  return "/tmp/" + stem + "_" + std::to_string(::getpid()) + suffix;
}

/// Owns a set of temp paths and deletes them on destruction (whether or not
/// anything was ever written there). Typical use: a fixture member whose
/// make() replaces both SetUp path assembly and TearDown removal.
class TempPaths {
 public:
  TempPaths() = default;
  ~TempPaths() {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  TempPaths(const TempPaths&) = delete;
  TempPaths& operator=(const TempPaths&) = delete;

  /// Build a unique-per-process path and register it for cleanup.
  std::string make(const std::string& stem, const std::string& suffix) {
    paths_.push_back(temp_path(stem, suffix));
    return paths_.back();
  }

 private:
  std::vector<std::string> paths_;
};

}  // namespace keybin2::testutil
