#include "md/trajectory.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "md/geometry.hpp"

namespace keybin2::md {

Matrix featurize_secondary_structure(const Trajectory& traj) {
  Matrix out(traj.frames(), traj.residues());
  for (std::size_t f = 0; f < traj.frames(); ++f) {
    auto row = out.row(f);
    for (std::size_t r = 0; r < traj.residues(); ++r) {
      row[r] = static_cast<double>(static_cast<int>(traj.structure(f, r)));
    }
  }
  return out;
}

std::vector<double> featurize_frame(const Trajectory& traj,
                                    std::size_t frame) {
  std::vector<double> out(traj.residues());
  for (std::size_t r = 0; r < traj.residues(); ++r) {
    out[r] = static_cast<double>(static_cast<int>(traj.structure(frame, r)));
  }
  return out;
}

namespace {

double rmsd_between(std::span<const double> a, std::span<const double> b) {
  KB2_CHECK_MSG(a.size() == b.size(), "torsion vectors differ in length");
  // Only phi and psi enter the deviation (omega is essentially binary and
  // would swamp the metric); layout is [phi, psi, omega] per residue.
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < a.size(); i += 3) {
    const double dphi = angular_distance_deg(a[i], b[i]);
    const double dpsi = angular_distance_deg(a[i + 1], b[i + 1]);
    sum += dphi * dphi + dpsi * dpsi;
    n += 2;
  }
  return n > 0 ? std::sqrt(sum / static_cast<double>(n)) : 0.0;
}

}  // namespace

double frame_rmsd(const Trajectory& traj, std::size_t a, std::size_t b) {
  return rmsd_between(traj.torsions(a), traj.torsions(b));
}

double frame_rmsd(const Trajectory& traj, std::size_t frame,
                  std::span<const double> torsions) {
  return rmsd_between(traj.torsions(frame), torsions);
}

std::vector<double> mean_conformation(const Trajectory& traj) {
  const std::size_t cols = traj.residues() * 3;
  std::vector<double> sin_sum(cols, 0.0), cos_sum(cols, 0.0);
  for (std::size_t f = 0; f < traj.frames(); ++f) {
    auto row = traj.torsions(f);
    for (std::size_t c = 0; c < cols; ++c) {
      const double rad = row[c] * std::numbers::pi / 180.0;
      sin_sum[c] += std::sin(rad);
      cos_sum[c] += std::cos(rad);
    }
  }
  std::vector<double> mean(cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    mean[c] = std::atan2(sin_sum[c], cos_sum[c]) * 180.0 / std::numbers::pi;
  }
  return mean;
}

}  // namespace keybin2::md
