#include "core/keybin2.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "comm/recovery.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/fused.hpp"
#include "core/pipeline.hpp"
#include "core/projection.hpp"

namespace keybin2::core {

namespace {

/// The best candidate observed so far (root rank only).
struct BestCandidate {
  double score = -1.0;
  int trial = -1;
  std::vector<int> depths;  // one per kept dimension
  Matrix projection;        // empty for identity
  std::vector<int> kept_dims;
  std::vector<Range> ranges;
  std::vector<DimensionPartition> partitions;
  std::vector<Cell> cells;
};

FitResult fit_once(runtime::Context& ctx, const Matrix& local_points,
                   const Params& params) {
  KB2_CHECK_MSG(params.min_depth >= 1 && params.min_depth <= params.max_depth,
                "invalid depth range [" << params.min_depth << ", "
                                        << params.max_depth << "]");
  KB2_CHECK_MSG(params.bootstrap_trials >= 1, "need at least one trial");

  auto fit_scope = ctx.tracer().scope(stage::kFit);
  auto& comm = ctx.comm();
  const auto n_dims = static_cast<std::uint64_t>(local_points.cols());
  // All ranks must agree on the dimensionality (empty shards report the max).
  const auto global_dims = comm.allreduce(n_dims, comm::ReduceOp::kMax);
  KB2_CHECK_MSG(local_points.rows() == 0 || n_dims == global_dims,
                "rank " << comm.rank() << " has " << n_dims
                        << " dims, group agreed on " << global_dims);
  KB2_CHECK_MSG(global_dims >= 1, "dataset has no dimensions");

  const double total_points = comm.allreduce(
      static_cast<double>(local_points.rows()), comm::ReduceOp::kSum);
  KB2_CHECK_MSG(total_points > 0.0, "dataset has no points");

  const bool is_root = ctx.is_root();
  const int n_rp =
      params.use_projection
          ? (params.n_rp > 0 ? params.n_rp : choose_n_rp(global_dims))
          : static_cast<int>(global_dims);
  const int trials = params.use_projection ? params.bootstrap_trials : 1;

  // Trial seeds are derived deterministically from params.seed, so every
  // rank builds the identical projection matrix without communication.
  Rng seed_stream(params.seed);
  std::vector<std::uint64_t> trial_seeds;
  trial_seeds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) trial_seeds.push_back(seed_stream.fork_seed());

  // The trials' projection matrices are independent (each seeded by its own
  // fork), so generate them in parallel up front; the per-trial loop then
  // only pays the matmul. Empty matrices select the identity passthrough.
  std::vector<Matrix> projections(static_cast<std::size_t>(trials));
  if (params.use_projection) {
    global_pool().parallel_for(
        static_cast<std::size_t>(trials), [&](std::size_t b, std::size_t e) {
          for (std::size_t t = b; t < e; ++t) {
            projections[t] =
                make_projection_matrix(global_dims, n_rp, trial_seeds[t]);
          }
        });
  }

  BestCandidate best;
  std::vector<TrialDiagnostics> diagnostics;
  // Merged-histogram density carried across trials for the kAuto comm mode:
  // trial 0 merges exactly, later trials may switch to the coreset plane
  // once the previous merge re-densified. All ranks derive it from the
  // identical merged vector, so the protocol choice never diverges.
  std::uint64_t merged_nnz = 0;
  // Cross-trial scratch for the fused data plane (projected matrix, key
  // table, envelopes, count shards): allocated by the first trial, reused
  // verbatim by the rest.
  FusedWorkspace ws;

  for (int t = 0; t < trials; ++t) {
    auto trial_scope =
        ctx.tracer().scope(stage::trial(t));
    auto& trial_projection = projections[static_cast<std::size_t>(t)];

    // Stages 1-2b produce the same artifacts on either path (identical
    // trace scopes, bit-identical keys/histograms — tests/test_fused.cpp):
    // the fused plane runs two traversals (project+envelope, key+bin), the
    // staged reference runs the four classic ones.
    std::vector<Range> ranges;
    std::vector<stats::HierarchicalHistogram> hists;
    const KeyTable* keys = nullptr;
    ProjectedTrial staged;  // keeps the staged path's keys alive
    BinnedTrial staged_binned;
    if (params.use_fused_kernels) {
      // (1) Project into a lower space, folding the range envelope into the
      // same traversal.
      const Matrix* projected;
      {
        auto scope = ctx.tracer().scope(stage::kProject);
        projected = &fused_project_envelope(local_points, trial_projection,
                                            static_cast<std::size_t>(n_rp), ws);
      }
      // (2a) Agree on per-dimension key ranges [r_min, r_max].
      ranges = stage_agree_ranges(ctx, ws.env_lo, ws.env_hi);
      // (2b) Assign keys and build all local histograms in one pass.
      {
        auto scope = ctx.tracer().scope(stage::kBin);
        hists = fused_key_bin(*projected, ranges, params.max_depth, ws);
        ctx.metrics().add("points_binned", projected->rows());
      }
      keys = &ws.keys;
    } else {
      // (1) Project into a lower space.
      staged = stage_project(ctx, local_points, trial_projection);
      // (2a) Agree on per-dimension key ranges [r_min, r_max].
      ranges = stage_agree_ranges(ctx, staged.projected,
                                  static_cast<std::size_t>(n_rp));
      // (2b) Assign keys; build local histograms.
      staged_binned =
          stage_bin(ctx, staged.projected, ranges, params.max_depth);
      hists = std::move(staged_binned.hists);
      keys = &staged_binned.keys;
    }

    // (3) Communicate binning histograms. Batch-fit counts are integral
    // (weight-1.0 binning), so the merge may take the bandwidth-optimal
    // adaptive path without perturbing a single bit; the comm-mode dispatch
    // may further swap in the capped coreset plane (DESIGN.md §9).
    stage_merge_histograms(ctx, hists, params, /*integral_counts=*/true,
                           &merged_nnz);

    // KS-based dimension collapsing.
    const auto kept_dims = collapse_dimensions(ctx, hists, params);
    // Every dimension collapsed: this projection sees no multimodal
    // structure anywhere, i.e. a single cluster. Register a score-0
    // single-cluster candidate (adopted only if no trial ever finds
    // structure) and skip the depth sweep.
    if (kept_dims.empty()) {
      if (is_root) {
        diagnostics.push_back(TrialDiagnostics{t, 0, 0, 1, 0.0});
        if (best.trial < 0) {
          best.score = 0.0;
          best.trial = t;
          best.projection = trial_projection;
          best.ranges = ranges;
        }
      }
      continue;
    }

    // (4) + (6) Partition and rate with the histogram-space CH index; the
    // root tracks the best model. Classic mode sweeps one global depth over
    // [min_depth, max_depth]; the per-dimension extension lets every kept
    // dimension pick its own depth first, then evaluates that single
    // combined candidate.
    for (const auto& depths : depth_candidates(hists, kept_dims, params)) {
      auto candidate = stage_partition(ctx, hists, kept_dims, depths, params);
      auto assessed = stage_assess(ctx, *keys, kept_dims, candidate, params);

      if (assessed.scored) {
        diagnostics.push_back(TrialDiagnostics{
            t, *std::max_element(candidate.depths.begin(),
                                 candidate.depths.end()),
            static_cast<int>(kept_dims.size()),
            static_cast<int>(assessed.cells.size()), assessed.score});
        // The initial sentinel score is -1, so the first candidate is always
        // adopted even when it scores 0 (a genuine one-cluster dataset).
        if (assessed.score > best.score) {
          best.score = assessed.score;
          best.trial = t;
          best.depths = candidate.depths;
          best.projection = trial_projection;
          best.kept_dims = kept_dims;
          best.ranges = ranges;
          best.partitions = std::move(candidate.partitions);
          best.cells = std::move(assessed.cells);
        }
      }
    }
  }

  // Root finalizes the model and broadcasts it; everyone labels locally (5).
  std::optional<Model> root_model;
  if (is_root) {
    // The all-collapsed fallback has no kept dims, hence no depths.
    if (best.depths.size() != best.kept_dims.size()) {
      best.depths.assign(best.kept_dims.size(), params.min_depth);
    }
    root_model.emplace(global_dims, std::move(best.projection),
                       std::move(best.depths), std::move(best.kept_dims),
                       std::move(best.ranges), std::move(best.partitions),
                       std::move(best.cells), best.score, total_points,
                       params.min_cluster_fraction);
  }

  FitResult result;
  result.model = stage_share_model(
      ctx, std::move(root_model),
      [&](ByteWriter& writer) {
        writer.write<std::uint64_t>(diagnostics.size());
        for (const auto& d : diagnostics) writer.write(d);
      },
      [&](ByteReader& reader) {
        const auto n_diag = reader.read<std::uint64_t>();
        result.trials.resize(n_diag);
        for (auto& d : result.trials) d = reader.read<TrialDiagnostics>();
      });
  {
    auto label_scope = ctx.tracer().scope(stage::kLabel);
    result.labels = result.model.predict(local_points);
  }
  return result;
}

}  // namespace

FitResult fit(runtime::Context& ctx, const Matrix& local_points,
              const Params& params) {
  if (params.comm_timeout_seconds > 0.0) {
    ctx.comm().set_timeout(params.comm_timeout_seconds);
  }

  // Recovery loop: a recoverable transport failure (timeout, corrupt frame,
  // dead rank) restarts the WHOLE fit rather than one stage — ranks detect a
  // failure at different points of the protocol, so per-stage retry would
  // desynchronize them, while agree_survivors() (inside
  // shrink_to_survivors) is a rendezvous of all live ranks and the restarted
  // protocol begins from an agreed clean slate. The stages are pure in their
  // inputs, so rerunning them is safe; with ranks lost the retry runs over
  // the shrunken survivor group (the merged histograms of the survivors
  // remain a valid subsample — see DESIGN.md §4b).
  int attempt = 0;
  bool recover = false;
  for (;;) {
    try {
      if (recover) {
        recover = false;
        // Deterministic backoff before re-entering the protocol: ranks that
        // detected the failure at different points pause comparably (same
        // policy, same attempt, rank-salted jitter), so nobody hammers the
        // rendezvous while stragglers are still unwinding.
        const double pause_ms = comm::backoff_ms(
            params.recovery, attempt - 1,
            static_cast<std::uint64_t>(ctx.comm().rank()));
        if (pause_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              pause_ms));
        }
        ctx.shrink_to_survivors();
        if (ctx.is_root()) ctx.tracer().counter("fit_retries", 1.0);
      }
      return fit_once(ctx, local_points, params);
    } catch (const comm::FitAbortedError&) {
      throw;  // already the terminal rung; never re-wrapped or retried
    } catch (const comm::CommError& e) {
      if (attempt >= params.max_shrink_retries) {
        ctx.log().error("fit_abandoned",
                        {{"kind", comm::error_kind(e)},
                         {"attempts", std::to_string(attempt)}});
        throw comm::FitAbortedError(
            std::string("fit aborted after ") + std::to_string(attempt) +
                " retries; last failure [" + comm::error_kind(e) +
                "]: " + e.what(),
            attempt, comm::error_kind(e));
      }
      ++attempt;
      recover = true;
      ctx.metrics().add("fit_retries");
      ctx.log().warn("fit_retry", {{"kind", comm::error_kind(e)},
                                   {"attempt", std::to_string(attempt)},
                                   {"what", e.what()}});
    }
  }
}

FitResult fit(comm::Communicator& comm, const Matrix& local_points,
              const Params& params) {
  runtime::Context ctx(comm, params.seed);
  return fit(ctx, local_points, params);
}

FitResult fit(const Matrix& points, const Params& params) {
  runtime::Context ctx(params.seed);
  return fit(ctx, points, params);
}

}  // namespace keybin2::core
