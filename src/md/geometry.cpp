#include "md/geometry.hpp"

#include <numbers>

namespace keybin2::md {

double dihedral_deg(const Vec3& p1, const Vec3& p2, const Vec3& p3,
                    const Vec3& p4) {
  const Vec3 b1 = p2 - p1;
  const Vec3 b2 = p3 - p2;
  const Vec3 b3 = p4 - p3;
  const Vec3 n1 = cross(b1, b2);
  const Vec3 n2 = cross(b2, b3);
  const Vec3 m = cross(n1, b2 * (1.0 / norm(b2)));
  const double x = dot(n1, n2);
  const double y = dot(m, n2);
  return std::atan2(y, x) * 180.0 / std::numbers::pi;
}

double wrap_deg(double angle) {
  while (angle > 180.0) angle -= 360.0;
  while (angle <= -180.0) angle += 360.0;
  return angle;
}

double angular_distance_deg(double a, double b) {
  const double d = std::fabs(wrap_deg(a - b));
  return d > 180.0 ? 360.0 - d : d;
}

}  // namespace keybin2::md
