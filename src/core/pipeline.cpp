#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/assess.hpp"
#include "core/projection.hpp"
#include "stats/ks_test.hpp"

namespace keybin2::core {

namespace {

/// 1-D histogram-space CH of a single dimension's partition (its primaries
/// act as the cells) — the per-dimension depth-selection criterion.
double single_dimension_score(const stats::Histogram& level,
                              const DimensionPartition& partition) {
  std::vector<Cell> cells;
  for (std::size_t p = 0; p < partition.primary_count(); ++p) {
    const auto [begin, end] = partition.range_of(p);
    double mass = 0.0;
    for (std::size_t b = begin; b < end; ++b) mass += level.count(b);
    if (mass > 0.0) {
      cells.push_back(Cell{{static_cast<std::uint32_t>(p)}, mass, -1});
    }
  }
  return histogram_calinski_harabasz({level}, {partition}, cells);
}

}  // namespace

ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             std::size_t input_dims, int n_rp,
                             bool use_projection, std::uint64_t trial_seed) {
  return stage_project(ctx, local_points,
                       use_projection
                           ? make_projection_matrix(input_dims, n_rp,
                                                    trial_seed)
                           : Matrix());
}

ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             Matrix projection) {
  auto scope = ctx.tracer().scope(stage::kProject);
  ProjectedTrial out;
  if (projection.empty()) {
    out.projected = local_points;
  } else {
    out.projected = project(local_points, projection);
    out.projection = std::move(projection);
  }
  return out;
}

std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      const Matrix& projected,
                                      std::size_t dims) {
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    auto row = projected.row(i);
    for (std::size_t j = 0; j < dims; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  return stage_agree_ranges(ctx, lo, hi);
}

std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      std::span<const double> local_lo,
                                      std::span<const double> local_hi) {
  KB2_CHECK_MSG(local_lo.size() == local_hi.size(),
                "agree_ranges envelope length mismatch: "
                    << local_lo.size() << " vs " << local_hi.size());
  auto scope = ctx.tracer().scope(stage::kAgreeRanges);
  const auto lo = ctx.comm().allreduce(local_lo, comm::ReduceOp::kMin);
  const auto hi = ctx.comm().allreduce(local_hi, comm::ReduceOp::kMax);
  std::vector<Range> ranges(lo.size());
  for (std::size_t j = 0; j < lo.size(); ++j) {
    if (!std::isfinite(lo[j]) || !std::isfinite(hi[j])) {
      // No rank observed any value in this dimension (every shard empty):
      // the +inf/-inf sentinels survived the allreduce. Clamp to a valid
      // degenerate range so keys and histograms stay well-defined.
      ranges[j] = Range{0.0, 1.0};
    } else {
      ranges[j] = Range{lo[j], hi[j] > lo[j] ? hi[j] : lo[j] + 1.0};
    }
  }
  return ranges;
}

BinnedTrial stage_bin(runtime::Context& ctx, const Matrix& projected,
                      const std::vector<Range>& ranges, int max_depth) {
  auto scope = ctx.tracer().scope(stage::kBin);
  BinnedTrial out;
  out.keys = compute_keys(projected, ranges, max_depth);
  out.hists = build_histograms(out.keys, ranges);
  ctx.metrics().add("points_binned", projected.rows());
  return out;
}

void stage_merge_histograms(runtime::Context& ctx,
                            std::vector<stats::HierarchicalHistogram>& hists,
                            Topology topology, bool integral_counts) {
  auto scope = ctx.tracer().scope(stage::kMergeHistograms);
  // The only point-derived data that ever crosses ranks,
  // O(dims * 2^max_depth) doubles — through the tree allreduce (adaptive:
  // recursive halving with sparse segments once integral counts make
  // reordering exact and the payload is worth it) or around a ring (§3
  // step 3).
  const auto before = ctx.comm().stats();
  comm::ReduceProfile profile;
  std::vector<double> merged;
  if (topology == Topology::kRing) {
    merged = ctx.comm().ring_allreduce(flatten_counts(hists));
  } else if (integral_counts) {
    merged = ctx.comm().allreduce(flatten_counts(hists), comm::ReduceOp::kSum,
                                  comm::AllreduceAlgo::kAuto, &profile);
  } else {
    merged = ctx.comm().allreduce(flatten_counts(hists), comm::ReduceOp::kSum);
  }
  unflatten_counts(merged, hists);
  const auto delta = ctx.comm().stats() - before;
  ctx.metrics().add("reduce_bytes", delta.bytes_sent);
  if (topology != Topology::kRing) {
    ctx.metrics().add(profile.algo == comm::AllreduceAlgo::kRecursiveHalving
                          ? "reduce_algo_rh"
                          : "reduce_algo_tree");
    if (profile.sparse_blocks > 0) {
      ctx.metrics().add("sparse_hits", profile.sparse_blocks);
    }
  }
  ctx.metrics().add("histogram_merges");
}

std::vector<int> collapse_dimensions(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const Params& params) {
  auto scope = ctx.tracer().scope(stage::kCollapse);
  // KS-based dimension collapsing on a mid-level histogram (64 bins).
  const int collapse_depth = std::min(params.max_depth, 6);
  std::vector<int> kept_dims;
  for (std::size_t j = 0; j < hists.size(); ++j) {
    const auto level = hists[j].level(collapse_depth);
    const double ks =
        stats::ks_statistic_gaussian(level.counts(), level.lo(), level.hi());
    if (ks >= params.collapse_threshold) {
      kept_dims.push_back(static_cast<int>(j));
    }
  }
  return kept_dims;
}

std::vector<std::vector<int>> depth_candidates(
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, const Params& params) {
  std::vector<std::vector<int>> candidates;
  if (params.per_dimension_depth) {
    std::vector<int> chosen;
    chosen.reserve(kept_dims.size());
    for (int j : kept_dims) {
      int best_depth = params.min_depth;
      double best_dim_score = -1.0;
      for (int depth = params.min_depth; depth <= params.max_depth; ++depth) {
        const auto level = hists[static_cast<std::size_t>(j)].level(depth);
        const auto part = partition(level.counts(), params);
        const double s = single_dimension_score(level, part);
        if (s > best_dim_score) {
          best_dim_score = s;
          best_depth = depth;
        }
      }
      chosen.push_back(best_depth);
    }
    candidates.push_back(std::move(chosen));
  } else {
    for (int depth = params.min_depth; depth <= params.max_depth; ++depth) {
      candidates.emplace_back(kept_dims.size(), depth);
    }
  }
  return candidates;
}

PartitionedCandidate stage_partition(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, std::vector<int> depths,
    const Params& params) {
  KB2_CHECK_MSG(depths.size() == kept_dims.size(),
                "stage_partition: " << depths.size() << " depths for "
                                    << kept_dims.size() << " kept dims");
  auto scope = ctx.tracer().scope(stage::kPartition);
  PartitionedCandidate out;
  out.depths = std::move(depths);
  out.dim_hists.reserve(kept_dims.size());
  out.partitions.reserve(kept_dims.size());
  for (std::size_t k = 0; k < kept_dims.size(); ++k) {
    const auto j = static_cast<std::size_t>(kept_dims[k]);
    auto level = hists[j].level(out.depths[k]);
    out.partitions.push_back(partition(level.counts(), params));
    out.dim_hists.push_back(std::move(level));
  }
  return out;
}

AssessedCandidate stage_assess(runtime::Context& ctx, const KeyTable& keys,
                               const std::vector<int>& kept_dims,
                               const PartitionedCandidate& candidate,
                               double weight_per_point) {
  auto scope = ctx.tracer().scope(stage::kAssess);
  // Occupied cells: local count, merged at the root.
  const auto local_cells = count_cells(keys, kept_dims, candidate.partitions,
                                       candidate.depths, weight_per_point);
  ctx.metrics().add("cells_assessed", local_cells.size());
  auto gathered = ctx.comm().gather(serialize_cells(local_cells), /*root=*/0);

  AssessedCandidate out;
  if (ctx.is_root()) {
    CellMap global_cells;
    for (const auto& blob : gathered) merge_cells(global_cells, blob);
    out.cells = to_cell_vector(global_cells);
    out.score = histogram_calinski_harabasz(candidate.dim_hists,
                                            candidate.partitions, out.cells);
    out.scored = true;
  }
  return out;
}

Model stage_share_model(runtime::Context& ctx, std::optional<Model> root_model,
                        const std::function<void(ByteWriter&)>& write_extra,
                        const std::function<void(ByteReader&)>& read_extra) {
  KB2_CHECK_MSG(root_model.has_value() == ctx.is_root(),
                "stage_share_model: exactly the root supplies the model");
  auto scope = ctx.tracer().scope(stage::kShareModel);
  ByteWriter writer;
  if (root_model.has_value()) {
    root_model->serialize(writer);
    if (write_extra) write_extra(writer);
  }
  auto bytes = writer.take();
  ctx.comm().broadcast(bytes, /*root=*/0);
  ByteReader reader(bytes);
  Model model = Model::deserialize(reader);
  if (read_extra) read_extra(reader);
  return model;
}

}  // namespace keybin2::core
