// Cluster-shape comparison (paper §2's qualitative claims).
//
// "K-means performs well in finding sphere-shape clusters but has a tendency
// to mislabel some points on the corners of box-shape clusters... In
// contrast, KeyBin2 determines automatically the number of clusters, is able
// to deal well with convex clusters, and can handle points in box corners."
// Density methods in turn own non-convex shapes. This bench scores KeyBin2,
// kmeans++ (given k), and DBSCAN (given good eps) on spheres, unequal
// adjacent boxes (the corner trap), rings, and moons.
#include <cstdio>

#include "baselines/dbscan.hpp"
#include "baselines/kmeans.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/shapes.hpp"

namespace {

using namespace keybin2;

/// Two adjacent axis-aligned boxes of very different widths: the wide box's
/// near corners are closer to the narrow box's centroid than to their own —
/// the k-means corner trap. A density valley still separates them.
data::Dataset corner_trap(std::size_t n_per_box, std::uint64_t seed) {
  Rng rng(seed);
  data::Dataset d;
  d.points = Matrix(2 * n_per_box, 2);
  d.labels.resize(2 * n_per_box);
  for (std::size_t i = 0; i < 2 * n_per_box; ++i) {
    const bool wide = i < n_per_box;
    auto row = d.points.row(i);
    if (wide) {
      row[0] = rng.uniform(-8.0, 0.0);  // centroid x = -4
      row[1] = rng.uniform(0.0, 8.0);
    } else {
      row[0] = rng.uniform(1.0, 3.0);   // centroid x = 2
      row[1] = rng.uniform(0.0, 8.0);
    }
    d.labels[i] = wide ? 0 : 1;
  }
  return d;
}

void score_all(const char* name, const data::Dataset& d, std::size_t true_k,
               double eps, const bench::Options& opt) {
  bench::Series kb, km, db;
  for (int run = 0; run < opt.runs; ++run) {
    const std::uint64_t seed = opt.seed + 100 * run;
    {
      core::Params params;
      params.seed = seed;
      params.bootstrap_trials = 10;
      const auto result = core::fit(d.points, params);
      kb.add(bench::score_labels(result.labels, d.labels).f1);
    }
    {
      baselines::KMeansParams params;
      params.k = true_k;
      params.seed = seed;
      params.n_init = 10;
      const auto result = baselines::kmeans(d.points, params);
      km.add(bench::score_labels(result.labels, d.labels).f1);
    }
    {
      const auto result =
          baselines::dbscan(d.points, {.eps = eps, .min_points = 5});
      db.add(bench::score_labels(result.labels, d.labels).f1);
    }
  }
  std::printf("%-22s %18s %18s %18s\n", name, kb.str().c_str(),
              km.str().c_str(), db.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  std::printf("Cluster-shape comparison (F1; k / eps GIVEN to the "
              "baselines, KeyBin2 non-parametric):\n\n");
  std::printf("%-22s %18s %18s %18s\n", "shape", "KeyBin2", "kmeans++",
              "DBSCAN");

  {
    // Three well-separated isotropic Gaussians on a triangle (the random
    // lattice-corner generator can collide centres in 2-D).
    data::GaussianMixtureSpec spec;
    spec.components.push_back({{0.0, 0.0}, {1.5, 1.5}, 1.0});
    spec.components.push_back({{20.0, 0.0}, {1.5, 1.5}, 1.0});
    spec.components.push_back({{10.0, 17.0}, {1.5, 1.5}, 1.0});
    score_all("spheres (3)", data::sample(spec, 3000, opt.seed + 1), 3, 1.8,
              opt);
  }
  score_all("box corner trap (2)", corner_trap(2000, opt.seed + 2), 2, 0.8,
            opt);
  score_all("rings (2)", data::rings(2, 1200, 6.0, 0.12, opt.seed + 3), 2,
            0.9, opt);
  score_all("moons (2)", data::moons(1200, 0.05, opt.seed + 4), 2, 0.22, opt);

  std::printf(
      "\nExpected shape (paper §2): kmeans wins spheres, stumbles on box\n"
      "corners; KeyBin2 handles boxes; density methods own rings/moons\n"
      "(KeyBin2's axis/projection binning, like k-means, is not designed\n"
      "for non-convex shapes — the paper claims convex robustness only).\n");
  bench::Reporter::global().write(opt);
  return 0;
}
