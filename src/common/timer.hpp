// Wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace keybin2 {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch. The single
/// time source shared by the Tracer, the timeline capture, and the event log
/// so their timestamps are mutually comparable within a process: all rank
/// threads of a ThreadComm group read the same steady_clock.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace keybin2
