#include "stats/calinski.hpp"

#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace keybin2::stats {

double calinski_harabasz(const Matrix& points, std::span<const int> labels) {
  KB2_CHECK_MSG(points.rows() == labels.size(),
                "points/labels mismatch: " << points.rows() << " vs "
                                           << labels.size());
  const std::size_t dims = points.cols();

  std::unordered_map<int, std::pair<std::vector<double>, std::size_t>> sums;
  std::vector<double> global(dims, 0.0);
  std::size_t n = 0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    if (labels[i] < 0) continue;  // noise
    auto& [sum, count] = sums[labels[i]];
    if (sum.empty()) sum.assign(dims, 0.0);
    auto row = points.row(i);
    for (std::size_t j = 0; j < dims; ++j) {
      sum[j] += row[j];
      global[j] += row[j];
    }
    ++count;
    ++n;
  }
  const std::size_t k = sums.size();
  if (k < 2 || n <= k) return 0.0;
  for (auto& g : global) g /= static_cast<double>(n);

  // Between-cluster dispersion.
  double b = 0.0;
  std::unordered_map<int, std::vector<double>> centroids;
  for (auto& [label, entry] : sums) {
    auto& [sum, count] = entry;
    std::vector<double> c(dims);
    for (std::size_t j = 0; j < dims; ++j)
      c[j] = sum[j] / static_cast<double>(count);
    for (std::size_t j = 0; j < dims; ++j) {
      const double d = c[j] - global[j];
      b += static_cast<double>(count) * d * d;
    }
    centroids[label] = std::move(c);
  }

  // Within-cluster dispersion.
  double w = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    if (labels[i] < 0) continue;
    const auto& c = centroids[labels[i]];
    auto row = points.row(i);
    for (std::size_t j = 0; j < dims; ++j) {
      const double d = row[j] - c[j];
      w += d * d;
    }
  }
  if (w == 0.0) return 0.0;
  return (b / static_cast<double>(k - 1)) / (w / static_cast<double>(n - k));
}

}  // namespace keybin2::stats
