file(REMOVE_RECURSE
  "CMakeFiles/test_keybin2.dir/test_keybin2.cpp.o"
  "CMakeFiles/test_keybin2.dir/test_keybin2.cpp.o.d"
  "test_keybin2"
  "test_keybin2.pdb"
  "test_keybin2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keybin2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
