// Per-dimension binning histograms from keys (paper §3, steps 2-3).
//
// Bins update their density as points are seen; the resulting per-dimension
// hierarchical histograms are the ONLY state that ever leaves a rank — they
// are orders of magnitude smaller than the data and cannot reconstruct it.
#pragma once

#include <vector>

#include "core/keys.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

/// Build one HierarchicalHistogram per dimension from a key table. Dimension
/// j's histogram spans ranges[j] with depth keys.d_max(); counting is done
/// at the deepest level straight from the keys (no re-binning error).
std::vector<stats::HierarchicalHistogram> build_histograms(
    const KeyTable& keys, const std::vector<Range>& ranges);

/// Flatten per-dimension deepest-level counts into one vector (for a single
/// allreduce) and restore them. Layout: dim-major.
std::vector<double> flatten_counts(
    const std::vector<stats::HierarchicalHistogram>& hists);
void unflatten_counts(std::span<const double> flat,
                      std::vector<stats::HierarchicalHistogram>& hists);

}  // namespace keybin2::core
