#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {
namespace {

/// Binned samples from a mixture of Gaussians over [0, 1].
std::vector<double> binned_mixture(const std::vector<double>& centers,
                                   double sigma, std::size_t bins,
                                   std::uint64_t seed, int n_per = 4000) {
  stats::Histogram h(0.0, 1.0, bins);
  Rng rng(seed);
  for (double c : centers) {
    for (int i = 0; i < n_per; ++i) h.add(rng.normal(c, sigma));
  }
  return {h.counts().begin(), h.counts().end()};
}

TEST(DiscreteOpt, UnimodalHasNoCuts) {
  const auto counts = binned_mixture({0.5}, 0.08, 64, 1);
  const auto p = partition_discrete_opt(counts, 0.05);
  EXPECT_TRUE(p.cuts.empty());
  EXPECT_EQ(p.primary_count(), 1u);
}

TEST(DiscreteOpt, BimodalCutsNearValley) {
  const auto counts = binned_mixture({0.25, 0.75}, 0.06, 64, 2);
  const auto p = partition_discrete_opt(counts, 0.05);
  ASSERT_EQ(p.cuts.size(), 1u);
  // The valley between modes at bins ~16 and ~48 is near bin 32.
  EXPECT_GT(p.cuts[0], 22u);
  EXPECT_LT(p.cuts[0], 42u);
}

TEST(DiscreteOpt, TrimodalGetsTwoCuts) {
  const auto counts = binned_mixture({0.15, 0.5, 0.85}, 0.05, 64, 3);
  const auto p = partition_discrete_opt(counts, 0.05);
  EXPECT_EQ(p.cuts.size(), 2u);
  EXPECT_EQ(p.primary_count(), 3u);
}

TEST(DiscreteOpt, NoiseBumpsAreSmoothedAway) {
  auto counts = binned_mixture({0.3, 0.7}, 0.07, 64, 4);
  // Inject small per-bin noise that a raw-minimum scan would trip on.
  Rng rng(5);
  for (auto& c : counts) c += rng.uniform(0.0, 0.02 * 4000);
  const auto p = partition_discrete_opt(counts, 0.05);
  EXPECT_EQ(p.cuts.size(), 1u);
}

TEST(DiscreteOpt, EmptyAndTinyInputs) {
  EXPECT_EQ(partition_discrete_opt({}, 0.05).primary_count(), 1u);
  std::vector<double> two{1.0, 2.0};
  EXPECT_EQ(partition_discrete_opt(two, 0.05).primary_count(), 1u);
  std::vector<double> zeros(32, 0.0);
  EXPECT_TRUE(partition_discrete_opt(zeros, 0.05).cuts.empty());
}

TEST(DiscreteOpt, TraceExposesOptimizationInternals) {
  const auto counts = binned_mixture({0.25, 0.75}, 0.06, 64, 6);
  PartitionTrace trace;
  partition_discrete_opt(counts, 0.05, &trace);
  EXPECT_EQ(trace.smoothed.size(), 64u);
  EXPECT_EQ(trace.slope.size(), 64u);
  EXPECT_EQ(trace.curvature.size(), 63u);
  EXPECT_EQ(trace.modes.size(), 2u);
  EXPECT_FALSE(trace.inflections.empty());
}

TEST(DiscreteOpt, ProminenceThresholdControlsSensitivity) {
  // A small shoulder next to a big mode: high prominence ignores it.
  const auto base = binned_mixture({0.4}, 0.06, 64, 7, 8000);
  auto counts = base;
  {
    Rng rng(8);
    stats::Histogram shoulder(0.0, 1.0, 64);
    for (int i = 0; i < 600; ++i) shoulder.add(rng.normal(0.75, 0.04));
    for (std::size_t b = 0; b < 64; ++b) counts[b] += shoulder.count(b);
  }
  const auto sensitive = partition_discrete_opt(counts, 0.01);
  const auto strict = partition_discrete_opt(counts, 0.5);
  EXPECT_GE(sensitive.cuts.size(), strict.cuts.size());
  EXPECT_TRUE(strict.cuts.empty());
}

TEST(V1Threshold, DenseRunsBecomePrimaries) {
  //                       run A            gap     run B
  std::vector<double> counts{9, 8, 9, 0.1, 0.1, 0.1, 7, 8, 9};
  const auto p = partition_v1_threshold(counts, 0.05);
  ASSERT_EQ(p.cuts.size(), 1u);
  // Cut at the midpoint of the sparse gap.
  EXPECT_EQ(p.cuts[0], 5u);
}

TEST(V1Threshold, SingleRunHasNoCuts) {
  std::vector<double> counts{1, 5, 9, 5, 1};
  EXPECT_TRUE(partition_v1_threshold(counts, 0.05).cuts.empty());
}

TEST(V1Threshold, ThresholdControlsRunDetection) {
  // Two modes connected by a saddle at 40% of the peak: a 50% threshold
  // splits them, a 30% threshold sees one run.
  std::vector<double> counts{10, 9, 4, 9, 10};
  EXPECT_EQ(partition_v1_threshold(counts, 0.5).cuts.size(), 1u);
  EXPECT_TRUE(partition_v1_threshold(counts, 0.3).cuts.empty());
}

TEST(V1Threshold, EmptyInput) {
  EXPECT_TRUE(partition_v1_threshold({}, 0.1).cuts.empty());
}

TEST(Dispatch, ParamsSelectPartitioner) {
  const auto counts = binned_mixture({0.25, 0.75}, 0.06, 64, 9);
  Params discrete;
  Params v1;
  v1.use_discrete_opt = false;
  v1.v1_density_threshold = 0.05;
  const auto a = partition(counts, discrete);
  const auto b = partition(counts, v1);
  EXPECT_EQ(a.primary_count(), 2u);
  EXPECT_EQ(b.primary_count(), 2u);
}

TEST(DimensionPartition, PrimaryOfAndRangeOfAgree) {
  DimensionPartition p;
  p.bins = 16;
  p.cuts = {4, 9};
  EXPECT_EQ(p.primary_count(), 3u);
  EXPECT_EQ(p.primary_of(0), 0u);
  EXPECT_EQ(p.primary_of(3), 0u);
  EXPECT_EQ(p.primary_of(4), 1u);
  EXPECT_EQ(p.primary_of(8), 1u);
  EXPECT_EQ(p.primary_of(9), 2u);
  EXPECT_EQ(p.primary_of(15), 2u);

  EXPECT_EQ(p.range_of(0), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(p.range_of(1), (std::pair<std::size_t, std::size_t>{4, 9}));
  EXPECT_EQ(p.range_of(2), (std::pair<std::size_t, std::size_t>{9, 16}));

  // Every bin's primary contains it.
  for (std::size_t b = 0; b < p.bins; ++b) {
    const auto [begin, end] = p.range_of(p.primary_of(b));
    EXPECT_GE(b, begin);
    EXPECT_LT(b, end);
  }
}

TEST(DimensionPartition, BoundsAreValidated) {
  DimensionPartition p;
  p.bins = 8;
  p.cuts = {3};
  EXPECT_THROW(p.primary_of(8), Error);
  EXPECT_THROW(p.range_of(2), Error);
}

}  // namespace
}  // namespace keybin2::core
