#include "runtime/profile/sampler.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <csignal>
#include <sys/time.h>
#endif

#include "common/timer.hpp"

namespace keybin2::runtime::profile {

std::string collapse_stack(std::string_view folded_path) {
  std::string out(folded_path);
  for (char& c : out) {
    if (c == '/') c = ';';
  }
  return out;
}

namespace {

/// Account one cursor snapshot into the sampler's table. Signal-safe: the
/// buffer lives on the caller's stack, record() never allocates. An empty
/// cursor (between top-level scopes) is a real observation — it lands
/// under "(unscoped)" so totals still reconcile.
void account(StageCursor* cursor, SampleTable* table, DensitySeries* density,
             std::int64_t t_ns) {
  char buf[StageCursor::kMaxPath];
  std::uint32_t len = 0;
  if (!cursor->snapshot(buf, &len)) {
    table->drop();
  } else if (len == 0) {
    static constexpr char kUnscoped[] = "(unscoped)";
    table->record(kUnscoped, sizeof(kUnscoped) - 1);
  } else {
    table->record(buf, len);
  }
  if (density != nullptr) density->record(t_ns);
}

}  // namespace

// ---------------------------------------------------------------------------
// Hub thread engine (ThreadComm): one process-wide thread walks every
// registered sampler at its interval. Namespace-scope (not anonymous) so the
// Sampler's friend declaration reaches it.

class SamplerHub {
 public:
  static SamplerHub& instance() {
    static SamplerHub hub;
    return hub;
  }

  void add(Sampler* s, std::int64_t interval_us) {
    std::unique_lock<std::mutex> lock(mu_);
    entries_.push_back(Entry{s, interval_us * 1000, now_ns()});
    if (!thread_.joinable()) {
      stop_ = false;
      thread_ = std::thread([this] { run(); });
    }
    cv_.notify_all();
  }

  void remove(Sampler* s) {
    std::thread reap;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::erase_if(entries_, [s](const Entry& e) { return e.sampler == s; });
      if (entries_.empty() && thread_.joinable()) {
        stop_ = true;
        cv_.notify_all();
        reap = std::move(thread_);
      }
    }
    // Join outside the lock; the hub thread takes mu_ on its way out.
    if (reap.joinable()) reap.join();
  }

 private:
  struct Entry {
    Sampler* sampler;
    std::int64_t interval_ns;
    std::int64_t next_due_ns;
  };

  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      const std::int64_t now = now_ns();
      std::int64_t next = now + 10'000'000;  // idle tick cap: 10 ms
      for (Entry& e : entries_) {
        if (now >= e.next_due_ns) {
          e.sampler->sample_once(now);
          e.next_due_ns = now + e.interval_ns;
        }
        if (e.next_due_ns < next) next = e.next_due_ns;
      }
      cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::thread thread_;
  bool stop_ = false;
};

namespace {

// ---------------------------------------------------------------------------
// SIGPROF engine (ProcComm): the kernel's profiling timer interrupts the
// rank on its own CPU time; the handler walks no locks and allocates
// nothing. One per process.

#if defined(__unix__)

struct SignalTarget {
  StageCursor* cursor;
  SampleTable* table;
  DensitySeries* density;
};

std::atomic<SignalTarget*> g_signal_target{nullptr};
struct sigaction g_prev_action;  // restored at stop()

void on_sigprof(int) {
  const int saved_errno = errno;
  SignalTarget* t = g_signal_target.load(std::memory_order_acquire);
  if (t != nullptr) account(t->cursor, t->table, t->density, now_ns());
  errno = saved_errno;
}

#endif  // __unix__

}  // namespace

SamplerMode Sampler::start(SamplerMode mode, std::int64_t interval_us,
                           bool process_isolated) {
  if (running_) return active_;
  if (mode == SamplerMode::kAuto) {
    mode = process_isolated ? SamplerMode::kSignal : SamplerMode::kThread;
  }

#if defined(__unix__)
  if (mode == SamplerMode::kSignal) {
    // Claim the per-process signal slot; a second signal sampler in the
    // same process (not a configuration ProcComm produces, but tests can)
    // degrades to the hub thread instead of fighting over the handler.
    auto* target = new SignalTarget{cursor_, table_, density_};
    SignalTarget* expected = nullptr;
    if (g_signal_target.compare_exchange_strong(expected, target,
                                                std::memory_order_acq_rel)) {
      struct sigaction sa = {};
      sa.sa_handler = on_sigprof;
      sa.sa_flags = SA_RESTART;
      sigemptyset(&sa.sa_mask);
      itimerval timer = {};
      timer.it_interval.tv_sec = interval_us / 1'000'000;
      timer.it_interval.tv_usec = interval_us % 1'000'000;
      timer.it_value = timer.it_interval;
      if (sigaction(SIGPROF, &sa, &g_prev_action) == 0 &&
          setitimer(ITIMER_PROF, &timer, nullptr) == 0) {
        running_ = true;
        active_ = SamplerMode::kSignal;
        return active_;
      }
      // Timer refused (unusual rlimit/seccomp): release the slot and fall
      // through to the hub thread.
      sigaction(SIGPROF, &g_prev_action, nullptr);
      g_signal_target.store(nullptr, std::memory_order_release);
    }
    delete target;
    mode = SamplerMode::kThread;
  }
#else
  mode = SamplerMode::kThread;
#endif

  SamplerHub::instance().add(this, interval_us);
  running_ = true;
  active_ = SamplerMode::kThread;
  return active_;
}

void Sampler::stop() {
  if (!running_) return;
#if defined(__unix__)
  if (active_ == SamplerMode::kSignal) {
    itimerval off = {};
    setitimer(ITIMER_PROF, &off, nullptr);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    SignalTarget* t = g_signal_target.exchange(nullptr,
                                               std::memory_order_acq_rel);
    // A tick already in flight re-checks the global before touching the
    // target; after the exchange nobody dereferences it.
    delete t;
    running_ = false;
    return;
  }
#endif
  SamplerHub::instance().remove(this);
  running_ = false;
}

void Sampler::sample_once(std::int64_t t_ns) {
  // Hub-thread path: the writer is another live thread, so one immediate
  // retry on a torn read is cheap and usually wins; after that, drop.
  char buf[StageCursor::kMaxPath];
  std::uint32_t len = 0;
  if (cursor_->snapshot(buf, &len) || cursor_->snapshot(buf, &len)) {
    if (len == 0) {
      static constexpr char kUnscoped[] = "(unscoped)";
      table_->record(kUnscoped, sizeof(kUnscoped) - 1);
    } else {
      table_->record(buf, len);
    }
    if (density_ != nullptr) density_->record(t_ns);
    return;
  }
  table_->drop();
  if (density_ != nullptr) density_->record(t_ns);
}

}  // namespace keybin2::runtime::profile
