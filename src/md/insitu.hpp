// In-situ trajectory analysis pipeline (paper §5).
//
// InSituAnalyzer couples a running simulation with KeyBin2: frames arrive
// one at a time, are featurized into per-residue secondary structures, and
// feed the streaming engine. The model refits every `refit_interval` frames
// ("histograms are communicated periodically"), and each frame is labelled
// with the model current at its arrival — so the analysis runs alongside the
// simulation rather than after it. fingerprint() returns the per-frame
// cluster sequence used in Figure 4.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "core/streaming.hpp"
#include "md/trajectory.hpp"
#include "runtime/context.hpp"

namespace keybin2::md {

class InSituAnalyzer {
 public:
  /// `residues` fixes the stream schema; `refit_interval` is how often the
  /// model is rebuilt from the accumulated histograms.
  InSituAnalyzer(std::size_t residues, core::Params params = {},
                 std::size_t refit_interval = 500);

  /// Like above, but refits run through `ctx` — periodic refits merge across
  /// the context's communicator ranks and are traced under its tracer
  /// ("refit/..." scopes). The context must outlive the analyzer.
  InSituAnalyzer(runtime::Context& ctx, std::size_t residues,
                 core::Params params = {}, std::size_t refit_interval = 500);

  /// Ingest the next simulation frame; returns the cluster label under the
  /// model in effect when the frame arrived (-1 before the first refit).
  int push_frame(const Trajectory& traj, std::size_t frame);

  /// Ingest a pre-featurized frame (per-residue structure classes).
  int push_features(std::span<const double> features);

  std::size_t frames_seen() const { return fingerprint_.size(); }

  /// Per-frame labels as assigned on arrival (the in-situ fingerprint).
  const std::vector<int>& fingerprint() const { return fingerprint_; }

  /// Relabel every frame seen so far with the CURRENT model — the offline
  /// consolidation pass the paper runs once a trajectory completes.
  std::vector<int> relabel_all();

  /// Force a refit now (e.g. at end of trajectory).
  void refit();

  const core::StreamingKeyBin2& engine() const { return engine_; }

 private:
  core::StreamingKeyBin2 engine_;
  runtime::Context* ctx_ = nullptr;  // borrowed; nullptr => serial refits
  std::size_t refit_interval_;
  std::size_t since_refit_ = 0;
  Matrix history_;  // featurized frames, for relabel_all()
  std::vector<int> fingerprint_;
};

}  // namespace keybin2::md
