file(REMOVE_RECURSE
  "CMakeFiles/test_ramachandran.dir/test_ramachandran.cpp.o"
  "CMakeFiles/test_ramachandran.dir/test_ramachandran.cpp.o.d"
  "test_ramachandran"
  "test_ramachandran.pdb"
  "test_ramachandran[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramachandran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
