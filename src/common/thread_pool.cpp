#include "common/thread_pool.hpp"

#include <algorithm>

namespace keybin2 {

namespace {

/// Set while a thread is executing inside a pool job, so nested
/// parallel_for calls degrade to inline execution instead of deadlocking on
/// the single active-job slot.
thread_local bool inside_pool_job = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Job& job) {
  inside_pool_job = true;
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) break;
    const std::size_t begin =
        c * job.base + std::min(c, job.extra);
    const std::size_t end = begin + job.base + (c < job.extra ? 1 : 0);
    try {
      (*job.fn)(begin, end);
    } catch (...) {
      std::lock_guard lk(job.err_mu);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    job.done_chunks.fetch_add(1, std::memory_order_release);
  }
  inside_pool_job = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (stop_) return;
      job = job_;
      seen_generation = job_generation_;
    }
    drain(*job);
    // The caller owns job completion (it counts done_chunks); workers just
    // go back to sleep until the next generation.
    {
      std::lock_guard lk(mu_);
      if (job_ == job && job->done_chunks.load(std::memory_order_acquire) ==
                             job->chunks) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // At most one chunk per worker (never more chunks than grains fit in n).
  const std::size_t by_grain = (n + grain - 1) / grain;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min({n, workers_.size(), by_grain}));
  if (chunks <= 1 || inside_pool_job) {
    fn(0, n);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunks = chunks;
  job.base = n / chunks;
  job.extra = n % chunks;

  {
    std::lock_guard lk(mu_);
    if (job_ != nullptr) {
      // Another thread's fork-join is in flight (ranks sharing the global
      // pool): run inline rather than queueing behind it.
      fn(0, n);
      return;
    }
    job_ = &job;
    ++job_generation_;
  }
  cv_.notify_all();

  // The caller helps: claim chunks alongside the workers, then wait for the
  // stragglers.
  drain(job);
  {
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.done_chunks.load(std::memory_order_acquire) == job.chunks;
    });
    job_ = nullptr;
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

namespace {

// The global pool lives behind an atomic pointer (not a function-local
// static) so a forked child can swap in a fork-safe replacement without
// touching the parent's pool, whose worker threads do not exist in the child.
std::atomic<ThreadPool*> g_pool{nullptr};
std::mutex g_pool_mu;

}  // namespace

ThreadPool& global_pool() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard lk(g_pool_mu);
  p = g_pool.load(std::memory_order_relaxed);
  if (p == nullptr) {
    p = new ThreadPool();
    g_pool.store(p, std::memory_order_release);
  }
  return *p;
}

void reset_global_pool_after_fork() {
  // Runs in a single-threaded child: a plain store suffices, and it must not
  // take g_pool_mu (the fork may have captured it locked by another thread).
  // Later global_pool() calls see the non-null pointer and never lock.
  g_pool.store(new ThreadPool(ThreadPool::Inline{}), std::memory_order_release);
}

}  // namespace keybin2
