#include "stats/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::stats {
namespace {

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2, {2.0, 1.0, 1.0, 2.0});
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  // Eigenvector of 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 1)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::fabs(eig.vectors(1, 1)), std::sqrt(0.5), 1e-9);
}

TEST(Jacobi, ReconstructsTheMatrix) {
  Rng rng(1);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  }
  const auto eig = jacobi_eigen(a);
  // A == V diag(L) V^T.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-9) << i << "," << j;
    }
  }
}

TEST(Jacobi, VectorsAreOrthonormal) {
  Rng rng(2);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) {
      a(i, j) = rng.uniform(-2.0, 2.0);
    }
  }
  const auto eig = jacobi_eigen(a);
  for (std::size_t x = 0; x < 4; ++x) {
    for (std::size_t y = 0; y < 4; ++y) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 4; ++i) {
        dot += eig.vectors(i, x) * eig.vectors(i, y);
      }
      EXPECT_NEAR(dot, x == y ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Jacobi, EigenvalueEquationHolds) {
  Rng rng(3);
  Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) a(i, j) = rng.normal();
  }
  const auto eig = jacobi_eigen(a);
  // Symmetrize a copy to evaluate A v = lambda v.
  Matrix s = a;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) s(j, i) = s(i, j);
  }
  for (std::size_t k = 0; k < 5; ++k) {
    for (std::size_t i = 0; i < 5; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < 5; ++j) av += s(i, j) * eig.vectors(j, k);
      EXPECT_NEAR(av, eig.values[k] * eig.vectors(i, k), 1e-9);
    }
  }
}

TEST(Jacobi, TraceAndValuesAgree) {
  Rng rng(4);
  Matrix a(7, 7);
  double trace = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = i; j < 7; ++j) a(i, j) = rng.normal();
    trace += a(i, i);
  }
  const auto eig = jacobi_eigen(a);
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(Jacobi, RejectsNonSquare) {
  EXPECT_THROW(jacobi_eigen(Matrix(2, 3)), Error);
}

TEST(Jacobi, OneByOne) {
  Matrix a(1, 1, {5.0});
  const auto eig = jacobi_eigen(a);
  EXPECT_DOUBLE_EQ(eig.values[0], 5.0);
  EXPECT_DOUBLE_EQ(eig.vectors(0, 0), 1.0);
}

}  // namespace
}  // namespace keybin2::stats
