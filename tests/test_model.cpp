#include "core/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/projection.hpp"

namespace keybin2::core {
namespace {

/// A hand-built 1-D model over [0, 1]: depth 3 (8 bins), cut at bin 4,
/// two cells.
Model tiny_model(double cell0_density = 100.0, double cell1_density = 50.0,
                 double min_fraction = 0.0) {
  DimensionPartition p;
  p.bins = 8;
  p.cuts = {4};
  std::vector<Cell> cells{Cell{{0}, cell0_density, -1},
                          Cell{{1}, cell1_density, -1}};
  return Model(/*input_dims=*/1, /*projection=*/Matrix(), /*depth=*/3,
               /*kept_dims=*/{0}, /*ranges=*/{Range{0.0, 1.0}},
               /*partitions=*/{p}, std::move(cells), /*score=*/5.0,
               /*total_points=*/cell0_density + cell1_density, min_fraction);
}

TEST(Model, PredictMapsValueThroughPartition) {
  const auto m = tiny_model();
  EXPECT_EQ(m.n_clusters(), 2);
  const double left[] = {0.1};
  const double right[] = {0.9};
  // Densest cell (cell 0, the left half) gets label 0.
  EXPECT_EQ(m.predict(left), 0);
  EXPECT_EQ(m.predict(right), 1);
}

TEST(Model, LabelsAreDensityOrdered) {
  // Flip densities: now the right cell is densest and gets label 0.
  const auto m = tiny_model(50.0, 100.0);
  const double left[] = {0.1};
  const double right[] = {0.9};
  EXPECT_EQ(m.predict(left), 1);
  EXPECT_EQ(m.predict(right), 0);
}

TEST(Model, TinyCellsAreAbsorbed) {
  // Cell 1 holds 1% of the mass; with min_cluster_fraction 5% it is absorbed
  // into cell 0.
  const auto m = tiny_model(990.0, 10.0, 0.05);
  EXPECT_EQ(m.n_clusters(), 1);
  const double right[] = {0.9};
  EXPECT_EQ(m.predict(right), 0);
}

TEST(Model, BatchPredictMatchesScalar) {
  const auto m = tiny_model();
  Matrix points(10, 1);
  for (std::size_t i = 0; i < 10; ++i) points(i, 0) = i / 10.0;
  const auto labels = m.predict(points);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(labels[i], m.predict(points.row(i)));
  }
}

TEST(Model, PredictValidatesDimensionality) {
  const auto m = tiny_model();
  const double wrong[] = {0.1, 0.2};
  EXPECT_THROW(m.predict(wrong), Error);
}

TEST(Model, EmptyKeptDimsIsSingleCluster) {
  Model m(3, Matrix(), 3, {}, {}, {}, {}, 0.0, 10.0, 0.0);
  EXPECT_EQ(m.n_clusters(), 1);
  const double x[] = {1.0, 2.0, 3.0};
  EXPECT_EQ(m.predict(x), 0);
}

TEST(Model, UnseenCellSnapsToNearestOccupied) {
  // Two kept dims, cells only at (0,0) and (3,3): a point in cell (0,1)
  // must land in (0,0)'s cluster, one in (3,2) in (3,3)'s.
  DimensionPartition p;
  p.bins = 8;
  p.cuts = {2, 4, 6};  // 4 primaries per dim
  std::vector<Cell> cells{Cell{{0, 0}, 10.0, -1}, Cell{{3, 3}, 5.0, -1}};
  Model m(2, Matrix(), 3, {0, 1}, {Range{0, 1}, Range{0, 1}},
          {p, p}, std::move(cells), 1.0, 15.0, 0.0);
  const double near_origin[] = {0.05, 0.4};   // primaries (0, 1)
  const double near_corner[] = {0.95, 0.6};   // primaries (3, 2)
  EXPECT_EQ(m.predict(near_origin), 0);
  EXPECT_EQ(m.predict(near_corner), 1);
}

TEST(Model, ProjectionIsAppliedBeforeKeying) {
  // Projection matrix [[2],[0]] doubles x and ignores y: a model over the
  // projected dim [0, 2] cut at 1 separates x < 0.5 from x > 0.5.
  Matrix proj(2, 1, {2.0, 0.0});
  DimensionPartition p;
  p.bins = 8;
  p.cuts = {4};
  std::vector<Cell> cells{Cell{{0}, 10.0, -1}, Cell{{1}, 10.0, -1}};
  Model m(2, std::move(proj), 3, {0}, {Range{0.0, 2.0}}, {p},
          std::move(cells), 1.0, 20.0, 0.0);
  const double low[] = {0.2, 99.0};  // y is ignored by the projection
  const double high[] = {0.8, -99.0};
  EXPECT_NE(m.predict(low), m.predict(high));
}

TEST(Model, SerializationRoundtrip) {
  const auto m = tiny_model(100.0, 50.0, 0.0);
  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  const auto back = Model::deserialize(r);

  EXPECT_EQ(back.input_dims(), m.input_dims());
  EXPECT_EQ(back.depth(), m.depth());
  EXPECT_EQ(back.kept_dims(), m.kept_dims());
  EXPECT_EQ(back.n_clusters(), m.n_clusters());
  EXPECT_DOUBLE_EQ(back.score(), m.score());
  ASSERT_EQ(back.cells().size(), m.cells().size());
  for (std::size_t i = 0; i < m.cells().size(); ++i) {
    EXPECT_EQ(back.cells()[i].coord, m.cells()[i].coord);
    EXPECT_EQ(back.cells()[i].label, m.cells()[i].label);
    EXPECT_DOUBLE_EQ(back.cells()[i].density, m.cells()[i].density);
  }
  // Behavioural equality.
  for (double x : {0.05, 0.3, 0.55, 0.95}) {
    const double point[] = {x};
    EXPECT_EQ(back.predict(point), m.predict(point));
  }
}

TEST(Model, SerializationRoundtripWithProjection) {
  const auto proj = make_projection_matrix(6, 3, 11);
  DimensionPartition p;
  p.bins = 16;
  p.cuts = {8};
  std::vector<Cell> cells{Cell{{0}, 3.0, -1}, Cell{{1}, 2.0, -1}};
  Model m(6, proj, 4, {1}, {Range{-1, 1}, Range{-2, 2}, Range{0, 1}}, {p},
          std::move(cells), 2.5, 5.0, 0.0);
  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  const auto back = Model::deserialize(r);
  EXPECT_TRUE(back.projection() == m.projection());
  EXPECT_EQ(back.ranges().size(), 3u);
  EXPECT_DOUBLE_EQ(back.ranges()[1].hi, 2.0);
}

TEST(Model, DeterministicLabelTieBreak) {
  // Equal densities: lexicographically smaller coordinate gets label 0.
  DimensionPartition p;
  p.bins = 8;
  p.cuts = {4};
  std::vector<Cell> cells{Cell{{1}, 10.0, -1}, Cell{{0}, 10.0, -1}};
  Model m(1, Matrix(), 3, {0}, {Range{0, 1}}, {p}, std::move(cells), 0.0,
          20.0, 0.0);
  const double left[] = {0.1};
  EXPECT_EQ(m.predict(left), 0);
}

TEST(Model, CellArityIsValidated) {
  DimensionPartition p;
  p.bins = 8;
  std::vector<Cell> bad{Cell{{0, 1}, 1.0, -1}};  // 2 coords for 1 kept dim
  EXPECT_THROW(Model(1, Matrix(), 3, {0}, {Range{0, 1}}, {p}, std::move(bad),
                     0.0, 1.0, 0.0),
               Error);
}

}  // namespace
}  // namespace keybin2::core
