file(REMOVE_RECURSE
  "CMakeFiles/test_md_geometry.dir/test_md_geometry.cpp.o"
  "CMakeFiles/test_md_geometry.dir/test_md_geometry.cpp.o.d"
  "test_md_geometry"
  "test_md_geometry.pdb"
  "test_md_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
