#include "core/keys.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::core {
namespace {

TEST(KeyOf, PartitionsRangeEvenly) {
  const Range r{0.0, 8.0};
  EXPECT_EQ(key_of(0.5, r, 3), 0u);
  EXPECT_EQ(key_of(1.5, r, 3), 1u);
  EXPECT_EQ(key_of(7.5, r, 3), 7u);
}

TEST(KeyOf, ClampsOutOfRange) {
  const Range r{0.0, 1.0};
  EXPECT_EQ(key_of(-5.0, r, 4), 0u);
  EXPECT_EQ(key_of(5.0, r, 4), 15u);
  EXPECT_EQ(key_of(1.0, r, 4), 15u);
  EXPECT_EQ(key_of(0.0, r, 4), 0u);
}

TEST(KeyOf, DepthValidation) {
  const Range r{0.0, 1.0};
  EXPECT_THROW(key_of(0.5, r, 0), Error);
  EXPECT_THROW(key_of(0.5, r, 25), Error);
  EXPECT_THROW(key_of(0.5, Range{1.0, 1.0}, 3), Error);
}

TEST(KeyOf, MonotoneInValue) {
  // The hierarchical key respects ordering: x <= y implies key(x) <= key(y).
  const Range r{-3.0, 7.0};
  Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const double x = rng.uniform(-4.0, 8.0);
    const double y = rng.uniform(-4.0, 8.0);
    const auto kx = key_of(std::min(x, y), r, 7);
    const auto ky = key_of(std::max(x, y), r, 7);
    EXPECT_LE(kx, ky);
  }
}

TEST(KeyAtDepth, PrefixProperty) {
  // The key at depth d is the length-d prefix of the binary path: coarsening
  // is a right shift, and a parent bin contains its children.
  const Range r{0.0, 1.0};
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.uniform();
    const auto deep = key_of(x, r, 8);
    for (int d = 1; d <= 8; ++d) {
      EXPECT_EQ(key_at_depth(deep, 8, d), key_of(x, r, d));
    }
  }
}

TEST(KeyTable, StoresPerPointPerDim) {
  KeyTable t(3, 2, 5);
  EXPECT_EQ(t.points(), 3u);
  EXPECT_EQ(t.dims(), 2u);
  t.at(2, 1) = 17;
  EXPECT_EQ(t.at(2, 1), 17u);
  EXPECT_EQ(t.at_depth(2, 1, 4), 8u);  // 17 >> 1
}

TEST(ComputeKeys, MatchesScalarKeyOf) {
  Rng rng(7);
  Matrix points(50, 3);
  for (auto& v : points.flat()) v = rng.uniform(-10.0, 10.0);
  const std::vector<Range> ranges{{-10.0, 10.0}, {-10.0, 10.0}, {-10.0, 10.0}};
  const auto table = compute_keys(points, ranges, 6);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(table.at(i, j), key_of(points(i, j), ranges[j], 6));
    }
  }
}

TEST(ComputeKeys, ValidatesRangeCount) {
  Matrix points(2, 3);
  EXPECT_THROW(compute_keys(points, {{0.0, 1.0}}, 4), Error);
}

TEST(ComputeKeys, IndependentPerDimensionRanges) {
  Matrix points(1, 2, {5.0, 50.0});
  const std::vector<Range> ranges{{0.0, 10.0}, {0.0, 100.0}};
  const auto table = compute_keys(points, ranges, 1);
  EXPECT_EQ(table.at(0, 0), 1u);  // 5 in upper half of [0,10)
  EXPECT_EQ(table.at(0, 1), 1u);  // 50 in upper half of [0,100)
}

TEST(FormatKey, ConcatenatesPerDimensionBins) {
  // The paper's example: bins "35", "64", "06" concatenate to one key.
  KeyTable t(1, 3, 7);
  t.at(0, 0) = 35;
  t.at(0, 1) = 64;
  t.at(0, 2) = 6;
  EXPECT_EQ(format_key(t, 0, 7), "35.64.6");
  EXPECT_EQ(format_key(t, 0, 6), "17.32.3");  // one level coarser
}

TEST(KeyTable, EmptyTable) {
  KeyTable t;
  EXPECT_EQ(t.points(), 0u);
  EXPECT_EQ(t.dims(), 0u);
}

}  // namespace
}  // namespace keybin2::core
