#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::stats {
namespace {

TEST(LogChoose, KnownValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(log_choose(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(Hypergeometric, PmfSumsToOne) {
  const std::uint64_t total = 30, marked = 12, draws = 7;
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= draws; ++k) {
    sum += hypergeometric_pmf(total, marked, draws, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Hypergeometric, MeanMatchesFormulaAndPmf) {
  const std::uint64_t total = 40, marked = 10, draws = 8;
  EXPECT_DOUBLE_EQ(hypergeometric_mean(total, marked, draws), 2.0);
  double mean = 0.0;
  for (std::uint64_t k = 0; k <= draws; ++k) {
    mean += static_cast<double>(k) *
            hypergeometric_pmf(total, marked, draws, k);
  }
  EXPECT_NEAR(mean, 2.0, 1e-9);
}

TEST(Hypergeometric, ImpossibleOutcomesAreZero) {
  EXPECT_EQ(hypergeometric_pmf(10, 3, 5, 4), 0.0);   // k > marked
  EXPECT_EQ(hypergeometric_pmf(10, 8, 5, 1), 0.0);   // too few unmarked
  EXPECT_EQ(hypergeometric_pmf(10, 3, 2, 3), 0.0);   // k > draws
}

TEST(Hypergeometric, InvalidParametersThrow) {
  EXPECT_THROW(hypergeometric_pmf(10, 11, 5, 2), Error);
  EXPECT_THROW(hypergeometric_pmf(10, 5, 11, 2), Error);
  EXPECT_THROW(hypergeometric_mean(0, 0, 0), Error);
}

TEST(Hypergeometric, PaperEquationOneInterpretation) {
  // §3.1: with R informative of N dims and N_rp draws, E[informative picks]
  // = N_rp * R / N >= 1 requires N_rp >= N / R.
  const double e = hypergeometric_mean(1280, 128, 11);  // N_rp = 1.5 ln 1280
  EXPECT_GT(e, 1.0);
}

TEST(PercentileBin, MedianOfSymmetricMass) {
  std::vector<double> counts{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(percentile_bin(counts, 50.0), 1u);
  EXPECT_EQ(percentile_bin(counts, 100.0), 3u);
  EXPECT_EQ(percentile_bin(counts, 1.0), 0u);
}

TEST(PercentileBin, SkewedMass) {
  std::vector<double> counts{0.0, 0.0, 10.0, 0.0};
  EXPECT_EQ(percentile_bin(counts, 50.0), 2u);
  EXPECT_EQ(percentile_bin(counts, 99.0), 2u);
}

TEST(PercentileBin, EmptyOrZeroReturnsZero) {
  EXPECT_EQ(percentile_bin({}, 50.0), 0u);
  std::vector<double> zeros(4, 0.0);
  EXPECT_EQ(percentile_bin(zeros, 50.0), 0u);
}

TEST(PercentileBin, OutOfRangePercentileThrows) {
  std::vector<double> counts{1.0};
  EXPECT_THROW(percentile_bin(counts, -1.0), Error);
  EXPECT_THROW(percentile_bin(counts, 101.0), Error);
}

TEST(OnlineMoments, MatchesDirectComputation) {
  Rng rng(9);
  OnlineMoments om;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    om.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_EQ(om.count(), 1000u);
  EXPECT_NEAR(om.mean(), mean, 1e-9);
  EXPECT_NEAR(om.variance(), var, 1e-9);
  EXPECT_NEAR(om.stddev(), std::sqrt(var), 1e-9);
}

TEST(OnlineMoments, TracksMinMax) {
  OnlineMoments om;
  om.add(5.0);
  om.add(-2.0);
  om.add(3.0);
  EXPECT_DOUBLE_EQ(om.min(), -2.0);
  EXPECT_DOUBLE_EQ(om.max(), 5.0);
}

TEST(OnlineMoments, EmptyIsZero) {
  OnlineMoments om;
  EXPECT_EQ(om.count(), 0u);
  EXPECT_EQ(om.variance(), 0.0);
}

}  // namespace
}  // namespace keybin2::stats
