// Kolmogorov–Smirnov statistics on histogram space (paper §3.1).
//
// After histograms are collected, "statistically anomalous dimensions are
// identified with the Kolmogorov–Smirnov test and collapsed": a projected
// dimension whose density is indistinguishable from a structureless
// (uniform) profile carries no clustering signal and is dropped before
// partitioning. The tests below operate on binned counts, never raw points.
#pragma once

#include <cstddef>
#include <span>

namespace keybin2::stats {

/// One-sample KS statistic of a binned empirical distribution against the
/// uniform distribution over the same range: sup |ECDF - uniform CDF|
/// evaluated at bin edges. Returns 0 for an empty histogram.
double ks_statistic_uniform(std::span<const double> counts);

/// Two-sample KS statistic between two binned distributions with the same
/// binning: sup |ECDF_a - ECDF_b| at bin edges.
double ks_statistic(std::span<const double> a, std::span<const double> b);

/// One-sample KS statistic of a binned distribution against the Gaussian
/// fitted to its own binned mean/stddev (moment matching on bin centres over
/// [lo, hi]). A unimodal, structureless dimension scores near 0; multimodal
/// structure scores high. This is the collapsing criterion: dimensions that
/// look like one Gaussian carry no clustering signal. Degenerate histograms
/// (zero variance or zero mass) return 0 so they collapse too.
double ks_statistic_gaussian(std::span<const double> counts, double lo,
                             double hi);

/// Asymptotic Kolmogorov p-value Q_KS(lambda) for statistic d with effective
/// sample size n (for one sample) — the classical series
/// 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2), lambda = d*(sqrt(n)+0.12+
/// 0.11/sqrt(n)). Clamped to [0, 1].
double ks_pvalue(double d, double n);

}  // namespace keybin2::stats
