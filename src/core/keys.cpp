#include "core/keys.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace keybin2::core {

std::uint32_t key_of(double x, const Range& range, int d_max) {
  KB2_CHECK_MSG(d_max >= 1 && d_max <= 24, "d_max " << d_max
                                                    << " out of [1, 24]");
  KB2_CHECK_MSG(range.hi > range.lo, "empty key range");
  const auto bins = std::uint32_t{1} << static_cast<unsigned>(d_max);
  if (x <= range.lo) return 0;
  if (x >= range.hi) return bins - 1;
  const double t = (x - range.lo) / (range.hi - range.lo);
  const auto b = static_cast<std::uint32_t>(t * static_cast<double>(bins));
  return std::min(b, bins - 1);
}

KeyTable compute_keys(const Matrix& points, const std::vector<Range>& ranges,
                      int d_max) {
  KB2_CHECK_MSG(ranges.size() == points.cols(),
                "ranges size " << ranges.size() << " != dims "
                               << points.cols());
  KeyTable table(points.rows(), points.cols(), d_max);
  global_pool().parallel_for(
      points.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto row = points.row(i);
          for (std::size_t j = 0; j < row.size(); ++j) {
            table.at(i, j) = key_of(row[j], ranges[j], d_max);
          }
        }
      });
  return table;
}

std::string format_key(const KeyTable& keys, std::size_t point, int depth) {
  // Called from per-point trace loops: one preallocated string, to_chars per
  // component, no stream machinery.
  std::string out;
  out.reserve(keys.dims() * 11);
  char buf[10];  // uint32 max is 10 digits
  for (std::size_t j = 0; j < keys.dims(); ++j) {
    if (j) out.push_back('.');
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), keys.at_depth(point, j, depth));
    out.append(buf, res.ptr);
  }
  return out;
}

}  // namespace keybin2::core
