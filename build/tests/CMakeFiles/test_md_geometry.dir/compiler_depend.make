# Empty compiler generated dependencies file for test_md_geometry.
# This may be replaced when dependencies are built.
