#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/projection.hpp"

namespace keybin2::core {

StreamingKeyBin2::StreamingKeyBin2(std::size_t input_dims, Params params,
                                   std::size_t reservoir_capacity)
    : input_dims_(input_dims),
      params_(params),
      n_rp_(params.use_projection
                ? (params.n_rp > 0 ? params.n_rp : choose_n_rp(input_dims))
                : static_cast<int>(input_dims)),
      reservoir_capacity_(reservoir_capacity),
      reservoir_(0, input_dims),
      reservoir_rng_(params.seed ^ 0x5eedbeefULL) {
  KB2_CHECK_MSG(input_dims >= 1, "stream schema needs >= 1 dimension");
  KB2_CHECK_MSG(reservoir_capacity >= 16,
                "reservoir capacity " << reservoir_capacity << " too small");
  const int trials = params_.use_projection ? params_.bootstrap_trials : 1;
  Rng seed_stream(params_.seed);
  trials_.resize(static_cast<std::size_t>(trials));
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      trial.projection =
          make_projection_matrix(input_dims, n_rp_, seed_stream.fork_seed());
    }
    trial.anchored.assign(static_cast<std::size_t>(n_rp_), false);
    trial.hists.resize(static_cast<std::size_t>(n_rp_));
    trial.seen_lo.assign(static_cast<std::size_t>(n_rp_),
                         std::numeric_limits<double>::infinity());
    trial.seen_hi.assign(static_cast<std::size_t>(n_rp_),
                         -std::numeric_limits<double>::infinity());
  }
  scratch_.resize(static_cast<std::size_t>(n_rp_));
}

void StreamingKeyBin2::ingest(TrialState& trial,
                              std::span<const double> projected) {
  for (std::size_t j = 0; j < projected.size(); ++j) {
    const double v = projected[j];
    trial.seen_lo[j] = std::min(trial.seen_lo[j], v);
    trial.seen_hi[j] = std::max(trial.seen_hi[j], v);
    if (!trial.anchored[j]) {
      // Anchor the key range on the first observed value; the unit-width
      // start range doubles as needed afterwards.
      const double base = std::floor(v);
      trial.hists[j] = stats::HierarchicalHistogram(base, base + 1.0,
                                                    params_.max_depth);
      trial.anchored[j] = true;
    }
    auto& h = trial.hists[j];
    // Grow the range geometrically until the value fits (amortized O(1)).
    while (v >= h.hi()) h.expand_right();
    while (v < h.lo()) h.expand_left();
    h.add(v);
  }
}

void StreamingKeyBin2::push(std::span<const double> point) {
  KB2_CHECK_MSG(point.size() == input_dims_,
                "point has " << point.size() << " dims, stream expects "
                             << input_dims_);
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      project_point(point, trial.projection, scratch_);
      ingest(trial, scratch_);
    } else {
      ingest(trial, point);
    }
  }

  // Reservoir sampling (algorithm R) over the raw points.
  if (reservoir_.rows() < reservoir_capacity_) {
    reservoir_.append_row(point);
  } else {
    const auto slot = reservoir_rng_.uniform_int(points_seen_ + 1);
    if (slot < reservoir_capacity_) {
      auto row = reservoir_.row(static_cast<std::size_t>(slot));
      std::copy(point.begin(), point.end(), row.begin());
    }
  }
  ++points_seen_;
}

void StreamingKeyBin2::push_batch(const Matrix& batch) {
  for (std::size_t i = 0; i < batch.rows(); ++i) push(batch.row(i));
}

const Model& StreamingKeyBin2::refit(runtime::Context& ctx) {
  auto refit_scope = ctx.tracer().scope("refit");
  const bool is_root = ctx.is_root();
  const double total_points = ctx.comm().allreduce(
      static_cast<double>(points_seen_), comm::ReduceOp::kSum);
  KB2_CHECK_MSG(total_points > 0.0, "refit before any point was pushed");
  const double local_weight =
      reservoir_.rows() > 0
          ? static_cast<double>(points_seen_) /
                static_cast<double>(reservoir_.rows())
          : 0.0;

  struct Best {
    double score = -1.0;
    std::vector<int> depths;  // one per kept dimension
    Matrix projection;
    std::vector<int> kept_dims;
    std::vector<Range> ranges;
    std::vector<DimensionPartition> partitions;
    std::vector<Cell> cells;
  } best;

  const auto dims = static_cast<std::size_t>(n_rp_);
  for (std::size_t t = 0; t < trials_.size(); ++t) {
    auto& trial = trials_[t];
    auto trial_scope = ctx.tracer().scope("trial" + std::to_string(t));

    // (2a) Reconcile per-dimension ranges across ranks onto the tight global
    // envelope of observed values (same stage as batch fit, fed from the
    // incrementally tracked extremes instead of a point rescan).
    const auto ranges = stage_agree_ranges(ctx, trial.seen_lo, trial.seen_hi);

    // Ranks that saw different data anchored and expanded their doubling
    // histograms differently, so each rebins onto the common geometry
    // (placement error bounded by one source-bin width).
    std::vector<stats::HierarchicalHistogram> merged;
    merged.reserve(dims);
    {
      auto rebin_scope = ctx.tracer().scope("rebin");
      for (std::size_t j = 0; j < dims; ++j) {
        if (trial.anchored[j]) {
          if (trial.hists[j].lo() != ranges[j].lo ||
              trial.hists[j].hi() != ranges[j].hi) {
            trial.hists[j] = stats::rebin_hierarchy(trial.hists[j],
                                                    ranges[j].lo,
                                                    ranges[j].hi);
          }
        } else {
          trial.hists[j] = stats::HierarchicalHistogram(ranges[j].lo,
                                                        ranges[j].hi,
                                                        params_.max_depth);
          trial.anchored[j] = true;
        }
        merged.push_back(trial.hists[j]);
      }
    }

    // (3) Merge histograms across ranks.
    stage_merge_histograms(ctx, merged, params_.topology);

    // KS collapsing, as in batch fit.
    const auto kept_dims = collapse_dimensions(ctx, merged, params_);
    // No structure under this projection: single-cluster fallback candidate.
    if (kept_dims.empty()) {
      if (is_root && best.score < 0.0) {
        best.score = 0.0;
        best.projection = trial.projection;
        best.ranges = ranges;
      }
      continue;
    }

    // Reservoir keys under this trial's projection and the merged ranges.
    KeyTable keys;
    {
      auto keys_scope = ctx.tracer().scope("reservoir_keys");
      Matrix projected_reservoir =
          params_.use_projection ? project(reservoir_, trial.projection)
                                 : reservoir_;
      keys = compute_keys(projected_reservoir, ranges, params_.max_depth);
    }

    // (4) + (6) Partition every depth candidate and rate it; the root
    // tracks the best model, with reservoir counts scaled to stream mass.
    for (const auto& depths : depth_candidates(merged, kept_dims, params_)) {
      auto candidate =
          stage_partition(ctx, merged, kept_dims, depths, params_);
      auto assessed =
          stage_assess(ctx, keys, kept_dims, candidate, local_weight);
      if (assessed.scored && assessed.score > best.score) {
        best.score = assessed.score;
        best.depths = candidate.depths;
        best.projection = trial.projection;
        best.kept_dims = kept_dims;
        best.ranges = ranges;
        best.partitions = std::move(candidate.partitions);
        best.cells = std::move(assessed.cells);
      }
    }
  }

  std::optional<Model> root_model;
  if (is_root) {
    // The all-collapsed fallback has no kept dims, hence no depths.
    if (best.depths.size() != best.kept_dims.size()) {
      best.depths.assign(best.kept_dims.size(), params_.min_depth);
    }
    root_model.emplace(input_dims_, std::move(best.projection),
                       std::move(best.depths), std::move(best.kept_dims),
                       std::move(best.ranges), std::move(best.partitions),
                       std::move(best.cells), best.score, total_points,
                       params_.min_cluster_fraction);
  }
  model_ = stage_share_model(ctx, std::move(root_model));
  return *model_;
}

const Model& StreamingKeyBin2::refit(comm::Communicator& comm) {
  runtime::Context ctx(comm, params_.seed);
  return refit(ctx);
}

const Model& StreamingKeyBin2::refit() {
  comm::SelfComm self;
  runtime::Context ctx(self, params_.seed);
  return refit(ctx);
}

const Model& StreamingKeyBin2::model() const {
  KB2_CHECK_MSG(model_.has_value(), "no model yet: call refit() first");
  return *model_;
}

int StreamingKeyBin2::label(std::span<const double> point) const {
  return model().predict(point);
}

}  // namespace keybin2::core
