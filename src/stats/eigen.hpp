// Symmetric eigendecomposition (cyclic Jacobi).
//
// Needed by the Kabsch/Horn superposition in md/kabsch.cpp (largest
// eigenvector of a 4x4 quaternion matrix); exposed generally because it is
// independently useful and independently testable.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace keybin2::stats {

struct EigenDecomposition {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column j is the eigenvector of values[j]
};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// Throws if `a` is not square; symmetry is assumed (the strictly lower
/// triangle is ignored). Converges quadratically; `max_sweeps` bounds work.
EigenDecomposition jacobi_eigen(const Matrix& a, int max_sweeps = 64);

}  // namespace keybin2::stats
