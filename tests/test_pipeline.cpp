// The staged pipeline: every stage exercised under SelfComm and under the
// thread-backed communicator (2 and 4 ranks), plus fixed-seed equivalence
// checks pinning the refactored drivers to the pre-refactor results.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "comm/launch.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "core/streaming.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace keybin2::core {
namespace {

// Order-insensitive-free fingerprint of a label vector (FNV-1a over the
// little-endian bytes): lets equivalence tests pin exact clusterings without
// embedding thousands of labels.
std::vector<double> counts_of(const stats::HierarchicalHistogram& h) {
  const auto span = h.deepest_counts();
  return {span.begin(), span.end()};
}

std::uint64_t label_hash(const std::vector<int>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int x : labels) {
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<std::uint64_t>((x >> (8 * b)) & 0xff);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

Matrix test_points(std::size_t rows, std::size_t dims, std::uint64_t seed) {
  const auto spec = data::make_paper_mixture(dims, 3, seed);
  return data::sample(spec, rows, seed + 1).points;
}

TEST(StageProject, IdentityWhenProjectionDisabled) {
  runtime::Context ctx(1);
  const auto points = test_points(50, 6, 11);
  const auto trial = stage_project(ctx, points, 6, 6,
                                   /*use_projection=*/false, /*seed=*/1);
  EXPECT_EQ(trial.projection.rows(), 0u);
  EXPECT_EQ(trial.projected.rows(), 50u);
  EXPECT_EQ(trial.projected.cols(), 6u);
  EXPECT_EQ(trial.projected.row(0)[0], points.row(0)[0]);
}

TEST(StageProject, SameSeedSameMatrixAcrossRanks) {
  // Empty shards still build the group-agreed projection: the matrix depends
  // only on (input_dims, n_rp, seed), never on local data.
  std::vector<double> first_cell(4, 0.0);
  comm::run_ranks(4, [&](comm::Communicator& c) {
    runtime::Context ctx(c, 1);
    const Matrix local(c.rank() == 0 ? 20u : 0u, 10u);
    const auto trial = stage_project(ctx, local, 10, 4,
                                     /*use_projection=*/true, /*seed=*/99);
    ASSERT_EQ(trial.projection.rows(), 10u);
    first_cell[static_cast<std::size_t>(c.rank())] = trial.projection.row(0)[0];
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(first_cell[0], first_cell[r]);
}

TEST(StageAgreeRanges, GlobalEnvelopeAcrossRanks) {
  for (int ranks : {2, 4}) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 1);
      // Rank r contributes the single value r in dim 0, -r in dim 1.
      Matrix local(1, 2);
      local.row(0)[0] = static_cast<double>(c.rank());
      local.row(0)[1] = -static_cast<double>(c.rank());
      const auto ranges = stage_agree_ranges(ctx, local, 2);
      ASSERT_EQ(ranges.size(), 2u);
      EXPECT_EQ(ranges[0].lo, 0.0);
      EXPECT_EQ(ranges[0].hi, static_cast<double>(ranks - 1));
      EXPECT_EQ(ranges[1].lo, -static_cast<double>(ranks - 1));
      EXPECT_EQ(ranges[1].hi, 0.0);
    });
  }
}

TEST(StageAgreeRanges, DegenerateDimensionWidensToUnit) {
  runtime::Context ctx(1);
  Matrix points(3, 1);
  for (std::size_t i = 0; i < 3; ++i) points.row(i)[0] = 5.0;
  const auto ranges = stage_agree_ranges(ctx, points, 1);
  EXPECT_EQ(ranges[0].lo, 5.0);
  EXPECT_EQ(ranges[0].hi, 6.0);
}

TEST(StageAgreeRanges, AllEmptyShardsClampToValidRange) {
  // Regression: when no rank observed a dimension, the +-inf sentinels used
  // to survive the allreduce and poison downstream binning. The stage now
  // clamps such dimensions to a valid degenerate range.
  for (int ranks : {1, 2, 4}) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 1);
      const Matrix empty(0, 3);
      const auto ranges = stage_agree_ranges(ctx, empty, 3);
      ASSERT_EQ(ranges.size(), 3u);
      for (const auto& r : ranges) {
        EXPECT_TRUE(std::isfinite(r.lo));
        EXPECT_TRUE(std::isfinite(r.hi));
        EXPECT_LT(r.lo, r.hi);
      }
    });
  }
}

TEST(StageAgreeRanges, MixedEmptyAndObservedDimensions) {
  runtime::Context ctx(1);
  const std::vector<double> lo{2.0, std::numeric_limits<double>::infinity()};
  const std::vector<double> hi{4.0, -std::numeric_limits<double>::infinity()};
  const auto ranges = stage_agree_ranges(ctx, lo, hi);
  EXPECT_EQ(ranges[0].lo, 2.0);
  EXPECT_EQ(ranges[0].hi, 4.0);
  EXPECT_EQ(ranges[1].lo, 0.0);
  EXPECT_EQ(ranges[1].hi, 1.0);
}

TEST(StageMergeHistograms, DistributedEqualsSerialConcatenation) {
  const auto points = test_points(400, 3, 21);
  // Serial reference: bin the full dataset on one rank.
  runtime::Context serial(1);
  const auto ranges = stage_agree_ranges(serial, points, 3);
  auto reference = stage_bin(serial, points, ranges, /*max_depth=*/8);

  for (int ranks : {2, 4}) {
    data::Dataset d;
    d.points = points;
    const auto shards = data::shard(d, ranks);
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 1);
      const auto& local = shards[static_cast<std::size_t>(c.rank())].points;
      const auto local_ranges = stage_agree_ranges(ctx, local, 3);
      for (std::size_t j = 0; j < 3; ++j) {
        ASSERT_EQ(local_ranges[j].lo, ranges[j].lo);
        ASSERT_EQ(local_ranges[j].hi, ranges[j].hi);
      }
      auto binned = stage_bin(ctx, local, local_ranges, 8);
      stage_merge_histograms(ctx, binned.hists, Topology::kTree);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(counts_of(binned.hists[j]), counts_of(reference.hists[j]))
            << "dim " << j << " with " << ranks << " ranks";
      }
    });
  }
}

TEST(StageMergeHistograms, RingMatchesTree) {
  const auto points = test_points(300, 2, 31);
  data::Dataset d;
  d.points = points;
  const auto shards = data::shard(d, 4);
  std::vector<std::vector<double>> tree_counts(4), ring_counts(4);
  comm::run_ranks(4, [&](comm::Communicator& c) {
    runtime::Context ctx(c, 1);
    const auto& local = shards[static_cast<std::size_t>(c.rank())].points;
    const auto ranges = stage_agree_ranges(ctx, local, 2);
    auto a = stage_bin(ctx, local, ranges, 7);
    auto b = a;
    stage_merge_histograms(ctx, a.hists, Topology::kTree);
    stage_merge_histograms(ctx, b.hists, Topology::kRing);
    tree_counts[static_cast<std::size_t>(c.rank())] = counts_of(a.hists[0]);
    ring_counts[static_cast<std::size_t>(c.rank())] = counts_of(b.hists[0]);
  });
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(tree_counts[static_cast<std::size_t>(r)].size(), 128u);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_NEAR(tree_counts[static_cast<std::size_t>(r)][i],
                  ring_counts[static_cast<std::size_t>(r)][i], 1e-9);
    }
  }
}

TEST(StagePartitionAssess, DistributedScoreEqualsSerial) {
  const auto points = test_points(500, 2, 41);
  Params params;
  params.max_depth = 8;

  // Serial reference score through the same stages.
  double serial_score = 0.0;
  std::size_t serial_cells = 0;
  {
    runtime::Context ctx(1);
    const auto ranges = stage_agree_ranges(ctx, points, 2);
    auto binned = stage_bin(ctx, points, ranges, params.max_depth);
    stage_merge_histograms(ctx, binned.hists, params.topology);
    const auto kept = collapse_dimensions(ctx, binned.hists, params);
    ASSERT_FALSE(kept.empty());
    auto candidate = stage_partition(ctx, binned.hists, kept,
                                     std::vector<int>(kept.size(), 6), params);
    const auto assessed = stage_assess(ctx, binned.keys, kept, candidate);
    ASSERT_TRUE(assessed.scored);
    serial_score = assessed.score;
    serial_cells = assessed.cells.size();
  }

  for (int ranks : {2, 4}) {
    data::Dataset d;
    d.points = points;
    const auto shards = data::shard(d, ranks);
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 1);
      const auto& local = shards[static_cast<std::size_t>(c.rank())].points;
      const auto ranges = stage_agree_ranges(ctx, local, 2);
      auto binned = stage_bin(ctx, local, ranges, params.max_depth);
      stage_merge_histograms(ctx, binned.hists, params.topology);
      const auto kept = collapse_dimensions(ctx, binned.hists, params);
      auto candidate = stage_partition(
          ctx, binned.hists, kept, std::vector<int>(kept.size(), 6), params);
      const auto assessed = stage_assess(ctx, binned.keys, kept, candidate);
      EXPECT_EQ(assessed.scored, c.rank() == 0);
      if (c.rank() == 0) {
        EXPECT_NEAR(assessed.score, serial_score, 1e-9 * serial_score);
        EXPECT_EQ(assessed.cells.size(), serial_cells);
      }
    });
  }
}

TEST(StagePartition, RejectsMismatchedDepths) {
  runtime::Context ctx(1);
  const auto points = test_points(100, 2, 51);
  const auto ranges = stage_agree_ranges(ctx, points, 2);
  auto binned = stage_bin(ctx, points, ranges, 6);
  EXPECT_THROW(
      stage_partition(ctx, binned.hists, {0, 1}, {4}, Params{}),
      Error);
}

TEST(StageShareModel, RootModelReachesEveryRank) {
  const auto points = test_points(200, 2, 61);
  for (int ranks : {2, 4}) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 1);
      std::optional<Model> root_model;
      if (ctx.is_root()) {
        Params params;
        root_model = fit(points, params).model;
      }
      const double expected_score =
          root_model ? root_model->score() : 0.0;
      Model shared = stage_share_model(ctx, std::move(root_model));
      if (ctx.is_root()) {
        EXPECT_DOUBLE_EQ(shared.score(), expected_score);
      }
      // Every rank agrees on the broadcast model.
      const auto scores =
          ctx.comm().allreduce(std::vector<double>{shared.score()},
                               comm::ReduceOp::kMax);
      EXPECT_DOUBLE_EQ(scores[0], shared.score());
    });
  }
}

TEST(StageShareModel, RootWithoutModelThrows) {
  runtime::Context ctx(1);
  EXPECT_THROW(stage_share_model(ctx, std::nullopt), Error);
}

// ---- Fixed-seed equivalence: the refactored drivers must reproduce the
// pre-refactor (seed) results bit-for-bit. The constants below were captured
// from the monolithic fit()/refit() implementations on identical inputs.

TEST(Equivalence, BatchFitDefaultParams) {
  const auto spec = data::make_paper_mixture(20, 4, 101);
  const auto d = data::sample(spec, 3000, 102);
  const auto result = fit(d.points);
  EXPECT_EQ(label_hash(result.labels), 11583523914625840657ULL);
  EXPECT_DOUBLE_EQ(result.model.score(), 2031.6122973436436);
  EXPECT_EQ(result.n_clusters(), 7);
  EXPECT_EQ(result.trials.size(), 40u);
  EXPECT_EQ(result.model.depths(), (std::vector<int>{7, 7, 7, 7}));
  EXPECT_EQ(result.model.kept_dims(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(result.model.cells().size(), 8u);
}

TEST(Equivalence, BatchFitPerDimensionDepth) {
  const auto spec = data::make_paper_mixture(20, 4, 101);
  const auto d = data::sample(spec, 3000, 102);
  Params params;
  params.per_dimension_depth = true;
  params.seed = 7;
  const auto result = fit(d.points, params);
  EXPECT_EQ(label_hash(result.labels), 14427973546440280959ULL);
  EXPECT_DOUBLE_EQ(result.model.score(), 1600.5352440460433);
  EXPECT_EQ(result.n_clusters(), 11);
}

TEST(Equivalence, StreamingRefit) {
  const auto spec = data::make_paper_mixture(12, 3, 201);
  const auto d = data::sample(spec, 2500, 202);
  StreamingKeyBin2 engine(12);
  engine.push_batch(d.points);
  engine.refit();
  const auto labels = engine.model().predict(d.points);
  EXPECT_EQ(label_hash(labels), 14068627742687595267ULL);
  EXPECT_DOUBLE_EQ(engine.model().score(), 4552.549041405231);
  EXPECT_EQ(engine.model().n_clusters(), 3);
}

TEST(Equivalence, ContextFitMatchesConvenienceOverloads) {
  const auto spec = data::make_paper_mixture(10, 3, 301);
  const auto d = data::sample(spec, 1500, 302);
  Params params;
  const auto via_serial = fit(d.points, params);
  runtime::Context ctx(params.seed);
  const auto via_ctx = fit(ctx, d.points, params);
  EXPECT_EQ(via_serial.labels, via_ctx.labels);
  EXPECT_DOUBLE_EQ(via_serial.model.score(), via_ctx.model.score());
}

TEST(Equivalence, DistributedFitMatchesSerial) {
  const auto spec = data::make_paper_mixture(16, 3, 401);
  const auto d = data::sample(spec, 2000, 402);
  const auto serial = fit(d.points);
  for (int ranks : {2, 4}) {
    const auto shards = data::shard(d, ranks);
    std::vector<int> combined(d.size());
    const auto ranges = data::partition_rows(d.size(), ranks);
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, 42);
      const auto r = static_cast<std::size_t>(c.rank());
      const auto result = fit(ctx, shards[r].points, Params{});
      std::copy(result.labels.begin(), result.labels.end(),
                combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
      if (ctx.is_root()) {
        EXPECT_DOUBLE_EQ(result.model.score(), serial.model.score());
      }
    });
    EXPECT_EQ(combined, serial.labels) << ranks << " ranks";
  }
}

TEST(Trace, FitScopesFollowNamingConvention) {
  const auto spec = data::make_paper_mixture(8, 2, 501);
  const auto d = data::sample(spec, 600, 502);
  runtime::Context ctx(42);
  Params params;
  params.bootstrap_trials = 2;
  (void)fit(ctx, d.points, params);
  const auto& entries = ctx.tracer().entries();
  EXPECT_EQ(entries.count("fit"), 1u);
  EXPECT_EQ(entries.count("fit/label"), 1u);
  EXPECT_EQ(entries.count("fit/share_model"), 1u);
  EXPECT_EQ(entries.count("fit/trial0/project"), 1u);
  EXPECT_EQ(entries.count("fit/trial0/agree_ranges"), 1u);
  EXPECT_EQ(entries.count("fit/trial0/bin"), 1u);
  EXPECT_EQ(entries.count("fit/trial0/merge_histograms"), 1u);
  EXPECT_EQ(entries.count("fit/trial1/project"), 1u);
}

TEST(Trace, ScopedTrafficSumMatchesCommunicatorTotals) {
  const auto spec = data::make_paper_mixture(8, 2, 601);
  const auto d = data::sample(spec, 800, 602);
  const auto shards = data::shard(d, 4);
  comm::run_ranks(4, [&](comm::Communicator& c) {
    runtime::Context ctx(c, 42);
    (void)fit(ctx, shards[static_cast<std::size_t>(c.rank())].points,
              Params{});
    const auto traced = ctx.tracer().total_traffic();
    const auto stats = c.stats();
    EXPECT_EQ(traced.messages_sent, stats.messages_sent);
    EXPECT_EQ(traced.bytes_sent, stats.bytes_sent);
    EXPECT_EQ(traced.messages_received, stats.messages_received);
    EXPECT_EQ(traced.bytes_received, stats.bytes_received);
  });
}

}  // namespace
}  // namespace keybin2::core
