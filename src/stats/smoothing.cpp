#include "stats/smoothing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace keybin2::stats {

std::vector<double> moving_average(std::span<const double> y, std::size_t w) {
  const std::size_t n = y.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  // Prefix sums make each window O(1).
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + y[i];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= w ? i - w : 0;
    const std::size_t hi = std::min(n - 1, i + w);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::size_t smoothing_window(std::size_t bins) {
  const auto w = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(bins))));
  return std::max<std::size_t>(1, w);
}

std::vector<double> local_linear_slope(std::span<const double> y,
                                       std::size_t w) {
  const std::size_t n = y.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= w ? i - w : 0;
    const std::size_t hi = std::min(n == 0 ? 0 : n - 1, i + w);
    // Least-squares slope over (x, y) pairs with x = index.
    const double m = static_cast<double>(hi - lo + 1);
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) {
      const double x = static_cast<double>(j);
      sx += x;
      sy += y[j];
      sxx += x * x;
      sxy += x * y[j];
    }
    const double denom = m * sxx - sx * sx;
    out[i] = denom != 0.0 ? (m * sxy - sx * sy) / denom : 0.0;
  }
  return out;
}

std::vector<double> first_difference(std::span<const double> y) {
  std::vector<double> out;
  if (y.size() < 2) return out;
  out.reserve(y.size() - 1);
  for (std::size_t i = 0; i + 1 < y.size(); ++i) out.push_back(y[i + 1] - y[i]);
  return out;
}

std::vector<std::size_t> sign_changes(std::span<const double> d2) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i + 1 < d2.size(); ++i) {
    if ((d2[i] > 0.0 && d2[i + 1] < 0.0) || (d2[i] < 0.0 && d2[i + 1] > 0.0)) {
      out.push_back(i);
    }
  }
  return out;
}

namespace {

/// Plateau-aware local extrema, INCLUDING boundary extrema: a histogram
/// cluster hugging the range edge is a legitimate mode, so an edge plateau
/// that dominates inward counts. A constant series has no extrema. Plateaus
/// report their midpoint.
std::vector<std::size_t> plateau_extrema(std::span<const double> y,
                                         bool maxima) {
  std::vector<std::size_t> out;
  const std::size_t n = y.size();
  if (n < 2) return out;
  auto better = [&](double a, double b) { return maxima ? a > b : a < b; };
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;  // walk the plateau [i, j]
    while (j + 1 < n && y[j + 1] == y[i]) ++j;
    const bool left_ok = i == 0 || better(y[i], y[i - 1]);
    const bool right_ok = j == n - 1 || better(y[i], y[j + 1]);
    const bool whole_series = i == 0 && j == n - 1;
    if (left_ok && right_ok && !whole_series) out.push_back((i + j) / 2);
    i = j + 1;
  }
  return out;
}

/// Prominence of a peak (maxima==true) or depth of a valley (maxima==false):
/// walk each direction until a more extreme value appears; the reference
/// level on that side is the least favourable value crossed. Prominence is
/// the smaller one-sided contrast; a side with no elements (boundary
/// extremum) does not constrain it.
double extremum_prominence(std::span<const double> y, std::size_t idx,
                           bool maxima) {
  const double v = y[idx];
  auto side = [&](int dir) {
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(idx) + dir;
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(y.size())) {
      return std::numeric_limits<double>::infinity();
    }
    double worst = v;
    while (i >= 0 && i < static_cast<std::ptrdiff_t>(y.size())) {
      const double u = y[static_cast<std::size_t>(i)];
      if (maxima ? u > v : u < v) break;  // found a higher peak / lower valley
      worst = maxima ? std::min(worst, u) : std::max(worst, u);
      i += dir;
    }
    return maxima ? v - worst : worst - v;
  };
  return std::min(side(-1), side(+1));
}

std::vector<std::size_t> prominent_extrema(std::span<const double> y,
                                           double min_prominence,
                                           bool maxima) {
  std::vector<std::size_t> out;
  for (std::size_t idx : plateau_extrema(y, maxima)) {
    if (extremum_prominence(y, idx, maxima) >= min_prominence) {
      out.push_back(idx);
    }
  }
  return out;
}

}  // namespace

std::vector<std::size_t> prominent_minima(std::span<const double> y,
                                          double min_prominence) {
  return prominent_extrema(y, min_prominence, /*maxima=*/false);
}

std::vector<std::size_t> prominent_maxima(std::span<const double> y,
                                          double min_prominence) {
  return prominent_extrema(y, min_prominence, /*maxima=*/true);
}

}  // namespace keybin2::stats
