#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::stats {
namespace {

TEST(Histogram, BinOfInteriorValues) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_of(0.5), 0u);
  EXPECT_EQ(h.bin_of(5.5), 5u);
  EXPECT_EQ(h.bin_of(9.99), 9u);
}

TEST(Histogram, BinOfClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_of(-100.0), 0u);
  EXPECT_EQ(h.bin_of(100.0), 9u);
  EXPECT_EQ(h.bin_of(10.0), 9u);  // right edge goes to last bin
  EXPECT_EQ(h.bin_of(0.0), 0u);
}

TEST(Histogram, BinBoundariesAreHalfOpen) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_EQ(h.bin_of(1.0), 1u);
  EXPECT_EQ(h.bin_of(0.999999), 0u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, AddAccumulatesWeights) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.2, 2.5);
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.count(0), 3.5);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.5);
}

TEST(Histogram, BinCenterAndLeft) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_left(2), 4.0);
  EXPECT_DOUBLE_EQ(h.width(), 2.0);
}

TEST(Histogram, MergeRequiresSameGeometry) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4), c(0.0, 2.0, 4);
  a.add(0.1);
  b.add(0.1);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_THROW(a.merge(c), Error);
}

TEST(Histogram, NormalizedSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1, 3.0);
  h.add(0.9, 1.0);
  auto n = h.normalized();
  double sum = 0.0;
  for (double v : n) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(n[0], 0.75);
}

TEST(Histogram, NormalizedEmptyStaysZero) {
  Histogram h(0.0, 1.0, 4);
  auto n = h.normalized();
  for (double v : n) EXPECT_EQ(v, 0.0);
}

TEST(Histogram, SetCountsValidatesSize) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.set_counts({1.0, 2.0}), Error);
  h.set_counts({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
}

// ---- HierarchicalHistogram ----

TEST(Hierarchy, BinsAtDepth) {
  EXPECT_EQ(HierarchicalHistogram::bins_at(1), 2u);
  EXPECT_EQ(HierarchicalHistogram::bins_at(6), 64u);
}

TEST(Hierarchy, LevelsAreConsistentByConstruction) {
  HierarchicalHistogram h(0.0, 1.0, 6);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  for (int d = 1; d <= 6; ++d) {
    EXPECT_DOUBLE_EQ(h.level(d).total(), 1000.0) << "depth " << d;
  }
  // Parent count equals the sum of its two children.
  const auto l3 = h.level(3);
  const auto l4 = h.level(4);
  for (std::size_t b = 0; b < l3.bins(); ++b) {
    EXPECT_DOUBLE_EQ(l3.count(b), l4.count(2 * b) + l4.count(2 * b + 1));
  }
}

TEST(Hierarchy, BinOfMatchesLevelHistogram) {
  HierarchicalHistogram h(-5.0, 5.0, 5);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    for (int d = 1; d <= 5; ++d) {
      EXPECT_EQ(h.bin_of(x, d), h.level(d).bin_of(x));
    }
  }
}

TEST(Hierarchy, InvalidDepthThrows) {
  HierarchicalHistogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.level(0), Error);
  EXPECT_THROW(h.level(5), Error);
  EXPECT_THROW(h.bin_of(0.5, 0), Error);
  EXPECT_THROW(HierarchicalHistogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(HierarchicalHistogram(0.0, 1.0, 30), Error);
}

TEST(Hierarchy, MergeAddsCounts) {
  HierarchicalHistogram a(0.0, 1.0, 3), b(0.0, 1.0, 3);
  a.add(0.1);
  b.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
  EXPECT_THROW(a.merge(HierarchicalHistogram(0.0, 2.0, 3)), Error);
}

TEST(Hierarchy, ExpandRightDoublesRangePreservingMass) {
  HierarchicalHistogram h(0.0, 1.0, 4);
  for (int i = 0; i < 64; ++i) h.add(i / 64.0);
  const double before = h.total();
  h.expand_right();
  EXPECT_DOUBLE_EQ(h.lo(), 0.0);
  EXPECT_DOUBLE_EQ(h.hi(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), before);
  // All original mass sits in the lower half.
  const auto l1 = h.level(1);
  EXPECT_DOUBLE_EQ(l1.count(0), before);
  EXPECT_DOUBLE_EQ(l1.count(1), 0.0);
}

TEST(Hierarchy, ExpandLeftDoublesRangePreservingMass) {
  HierarchicalHistogram h(0.0, 1.0, 4);
  for (int i = 0; i < 64; ++i) h.add(i / 64.0);
  const double before = h.total();
  h.expand_left();
  EXPECT_DOUBLE_EQ(h.lo(), -1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), before);
  const auto l1 = h.level(1);
  EXPECT_DOUBLE_EQ(l1.count(0), 0.0);
  EXPECT_DOUBLE_EQ(l1.count(1), before);
}

TEST(Hierarchy, ExpandKeepsValuesInCorrectBins) {
  HierarchicalHistogram h(0.0, 1.0, 6);
  h.add(0.25);
  h.expand_right();  // range now [0, 2)
  h.add(1.5);
  // 0.25 is in the first quarter, 1.5 in the fourth quarter at depth 2.
  const auto l2 = h.level(2);
  EXPECT_DOUBLE_EQ(l2.count(0), 1.0);
  EXPECT_DOUBLE_EQ(l2.count(3), 1.0);
}

// ---- Rebinning ----

TEST(Rebin, IdentityGeometryPreservesCounts) {
  Histogram src(0.0, 1.0, 8);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) src.add(rng.uniform());
  const auto out = rebin_proportional(src, 0.0, 1.0, 8);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_NEAR(out.count(b), src.count(b), 1e-9);
  }
}

TEST(Rebin, ConservesMassAcrossArbitraryGeometry) {
  Histogram src(0.0, 1.0, 16);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) src.add(rng.uniform(), rng.uniform(0.5, 2.0));
  for (const auto& [lo, hi, bins] :
       {std::tuple{-1.0, 2.0, 16ul}, std::tuple{0.0, 3.0, 8ul},
        std::tuple{-0.5, 1.5, 64ul}}) {
    const auto out = rebin_proportional(src, lo, hi, bins);
    EXPECT_NEAR(out.total(), src.total(), 1e-9);
  }
}

TEST(Rebin, MassOutsideTargetClampsToEdges) {
  Histogram src(0.0, 10.0, 10);
  src.add(0.5, 4.0);   // far left
  src.add(9.5, 6.0);   // far right
  const auto out = rebin_proportional(src, 4.0, 6.0, 4);
  EXPECT_NEAR(out.count(0), 4.0, 1e-9);
  EXPECT_NEAR(out.count(3), 6.0, 1e-9);
}

TEST(Rebin, AlignedCoarseningIsExact) {
  Histogram src(0.0, 1.0, 8);
  for (std::size_t b = 0; b < 8; ++b) src.add_to_bin(b, static_cast<double>(b));
  const auto out = rebin_proportional(src, 0.0, 1.0, 4);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(out.count(b), src.count(2 * b) + src.count(2 * b + 1), 1e-9);
  }
}

TEST(Rebin, HierarchyRebinConservesMassAndGeometry) {
  HierarchicalHistogram src(0.0, 1.0, 5);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) src.add(rng.uniform());
  const auto out = rebin_hierarchy(src, -1.0, 3.0);
  EXPECT_DOUBLE_EQ(out.lo(), -1.0);
  EXPECT_DOUBLE_EQ(out.hi(), 3.0);
  EXPECT_EQ(out.max_depth(), 5);
  EXPECT_NEAR(out.total(), src.total(), 1e-9);
}

}  // namespace
}  // namespace keybin2::stats
