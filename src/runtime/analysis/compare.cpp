#include "runtime/analysis/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "runtime/json.hpp"

namespace keybin2::runtime {

namespace {

// How a metric is judged.
enum class Rule {
  kTimeLower,   // walls: bigger is worse, noise-calibrated tolerance
  kTimeHigher,  // speedups: smaller is worse, noise-calibrated tolerance
  kBytesLower,  // deterministic counters: growth beyond bytes_tol is worse
  kImbalance,   // load-balance factor: growth beyond (1+imbalance_tol)x
  kInfo,        // recorded but never gated (accuracy scores etc.)
};

struct MetricValue {
  double mean = 0.0;
  double stddev = 0.0;
  bool present = false;
};

MetricValue read_series(const JsonValue* v) {
  MetricValue m;
  if (v == nullptr || !v->is_object()) return m;
  const auto* mean = v->find("mean");
  if (mean == nullptr || !mean->is_number()) return m;
  m.mean = mean->number();
  m.stddev = JsonValue::number_or(v->find("stddev"), 0.0);
  m.present = true;
  return m;
}

MetricValue read_number(const JsonValue* v) {
  MetricValue m;
  if (v == nullptr || !v->is_number()) return m;
  m.mean = v->number();
  m.present = true;
  return m;
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

/// Classify a series by name. "reduce_bytes_savings" is a higher-better
/// deterministic ratio; treat it as informational (its byte inputs are
/// gated directly, gating the derived ratio would double-count).
Rule classify(std::string_view key) {
  if (contains(key, "savings")) return Rule::kInfo;
  if (contains(key, "bytes")) return Rule::kBytesLower;
  if (contains(key, "speedup")) return Rule::kTimeHigher;
  if (contains(key, "seconds") || contains(key, "time") ||
      contains(key, "_ns") || contains(key, "_s")) {
    return Rule::kTimeLower;
  }
  return Rule::kInfo;
}

class Comparer {
 public:
  Comparer(const CompareOptions& opts, CompareResult* out)
      : opts_(opts), out_(out) {}

  void error(std::string msg) { out_->errors.push_back(std::move(msg)); }

  void warn(std::string msg) { out_->warnings.push_back(std::move(msg)); }

  void metric(const std::string& name, Rule rule, MetricValue base,
              MetricValue cur) {
    if (!base.present) return;  // baseline never tracked it: nothing to hold
    if (!cur.present) {
      error("metric '" + name + "' present in baseline but missing now");
      return;
    }
    CompareFinding f;
    f.metric = name;
    f.baseline = base.mean;
    f.current = cur.mean;

    switch (rule) {
      case Rule::kTimeLower:
        f.current *= opts_.scale_time;
        f.tolerance = time_tolerance(base);
        f.gated = true;
        f.regressed = f.current > base.mean * (1.0 + f.tolerance) &&
                      f.current - base.mean > kAbsSlackSeconds(name);
        break;
      case Rule::kTimeHigher:
        f.current /= opts_.scale_time;
        f.tolerance = time_tolerance(base);
        f.gated = true;
        f.regressed = f.current < base.mean * (1.0 - f.tolerance /
                                                          (1.0 + f.tolerance));
        break;
      case Rule::kBytesLower:
        f.tolerance = opts_.bytes_tol;
        f.gated = true;
        f.regressed = f.current > base.mean * (1.0 + f.tolerance);
        break;
      case Rule::kImbalance:
        f.tolerance = opts_.imbalance_tol;
        f.gated = true;
        // Imbalance floors at 1.0; require both relative growth and a
        // non-trivial absolute factor so 1.01 -> 1.2 jitter never trips.
        f.regressed = f.current > base.mean * (1.0 + f.tolerance) &&
                      f.current > 2.0;
        break;
      case Rule::kInfo:
        break;
    }
    f.ratio = base.mean != 0.0 ? f.current / base.mean : 0.0;
    out_->findings.push_back(std::move(f));
  }

 private:
  /// Quiet series get the floor; noisy ones k-sigma; nobody escapes 0.9.
  double time_tolerance(const MetricValue& base) const {
    const double cv =
        base.mean > 0.0 ? base.stddev / base.mean : 0.0;
    return std::min(0.9, std::max(opts_.time_tol, opts_.noise_k * cv));
  }

  /// Sub-millisecond walls on a shared box are pure jitter; require an
  /// absolute budget on top of the relative band for *_s series only
  /// (nanosecond-named series come from the analysis side, already large).
  static double kAbsSlackSeconds(const std::string& name) {
    return contains(name, "_ns") ? 0.0 : 1e-4;
  }

  const CompareOptions& opts_;
  CompareResult* out_;
};

void compare_options_block(const JsonValue& base, const JsonValue& cur,
                           Comparer& c) {
  static constexpr const char* kKeys[] = {"points_per_rank", "ranks", "runs",
                                          "seed"};
  for (const char* key : kKeys) {
    const double b = JsonValue::number_or(base.find("options", key), -1.0);
    const double v = JsonValue::number_or(cur.find("options", key), -1.0);
    if (b != v) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "option mismatch: %s baseline=%g current=%g", key, b, v);
      c.error(buf);
    }
  }
}

/// Provenance drift is advisory only: reports produced by a different
/// commit, compiler, or flag set are still comparable numbers, but the
/// reader should know the code under test changed. Old baselines predate
/// the provenance block entirely, so the check only fires when both
/// documents carry one.
void compare_provenance(const JsonValue& base, const JsonValue& cur,
                        Comparer& c) {
  const auto* bp = base.find("provenance");
  const auto* cp = cur.find("provenance");
  if (bp == nullptr || !bp->is_object() || cp == nullptr ||
      !cp->is_object()) {
    return;
  }
  static constexpr const char* kKeys[] = {"git_sha", "compiler", "flags"};
  for (const char* key : kKeys) {
    const auto* bv = bp->find(key);
    const auto* cv = cp->find(key);
    const std::string bs =
        bv != nullptr && bv->is_string() ? bv->string() : "?";
    const std::string cs =
        cv != nullptr && cv->is_string() ? cv->string() : "?";
    if (bs != cs) {
      c.warn("provenance mismatch: " + std::string(key) + " baseline='" +
             bs + "' current='" + cs + "'");
    }
  }
}

void compare_bench(const JsonValue& base, const JsonValue& cur,
                   const CompareOptions& opts, Comparer& c) {
  compare_options_block(base, cur, c);
  compare_provenance(base, cur, c);

  // Named scalar series.
  const auto* bs = base.find("series");
  const auto* cs = cur.find("series");
  if (bs != nullptr && bs->is_object()) {
    for (const auto& [key, v] : bs->members()) {
      c.metric("series/" + key, classify(key), read_series(&v),
               read_series(cs != nullptr ? cs->find(key) : nullptr));
    }
  }

  // Row timings, matched by (section, method).
  auto row_key = [](const JsonValue& row) {
    const auto* section = row.find("section");
    const auto* method = row.find("method");
    std::string key = "rows/";
    if (section != nullptr && section->is_string()) {
      key += section->string() + "/";
    }
    if (method != nullptr && method->is_string()) key += method->string();
    return key;
  };
  const auto* brows = base.find("rows");
  const auto* crows = cur.find("rows");
  if (brows != nullptr && brows->is_array()) {
    for (const auto& brow : brows->array()) {
      const JsonValue* match = nullptr;
      if (crows != nullptr && crows->is_array()) {
        for (const auto& crow : crows->array()) {
          if (row_key(crow) == row_key(brow)) {
            match = &crow;
            break;
          }
        }
      }
      c.metric(row_key(brow) + "/time_s", Rule::kTimeLower,
               read_series(brow.find("time_s")),
               read_series(match != nullptr ? match->find("time_s")
                                            : nullptr));
    }
  }

  // Capture stage walls: per-stage imbalance + deterministic bytes.
  const auto* bcaps = base.find("captures");
  const auto* ccaps = cur.find("captures");
  if (bcaps == nullptr || !bcaps->is_array()) return;
  for (const auto& bcap : bcaps->array()) {
    const auto* label = bcap.find("label");
    if (label == nullptr || !label->is_string()) continue;
    const JsonValue* ccap = nullptr;
    if (ccaps != nullptr && ccaps->is_array()) {
      for (const auto& cand : ccaps->array()) {
        const auto* cl = cand.find("label");
        if (cl != nullptr && cl->is_string() &&
            cl->string() == label->string()) {
          ccap = &cand;
          break;
        }
      }
    }
    const auto* bstages = bcap.find("trace", "stages");
    if (bstages == nullptr || !bstages->is_array()) continue;
    for (const auto& bstage : bstages->array()) {
      const auto* path = bstage.find("path");
      if (path == nullptr || !path->is_string()) continue;
      const JsonValue* cstage = nullptr;
      const auto* cstages =
          ccap != nullptr ? ccap->find("trace", "stages") : nullptr;
      if (cstages != nullptr && cstages->is_array()) {
        for (const auto& cand : cstages->array()) {
          const auto* cp = cand.find("path");
          if (cp != nullptr && cp->is_string() &&
              cp->string() == path->string()) {
            cstage = &cand;
            break;
          }
        }
      }
      const std::string prefix =
          "captures/" + label->string() + "/" + path->string();

      MetricValue bbytes = read_number(bstage.find("bytes_sent"));
      MetricValue cbytes = read_number(
          cstage != nullptr ? cstage->find("bytes_sent") : nullptr);
      c.metric(prefix + "/bytes_sent", Rule::kBytesLower, bbytes, cbytes);

      const double bmean = JsonValue::number_or(bstage.find("mean_s"), 0.0);
      if (bmean < opts.min_stage_seconds) continue;  // too small to judge
      auto imbalance = [](const JsonValue* stage) {
        MetricValue m;
        if (stage == nullptr) return m;
        const double mean = JsonValue::number_or(stage->find("mean_s"), 0.0);
        const double max = JsonValue::number_or(stage->find("max_s"), 0.0);
        if (mean <= 0.0) return m;
        m.mean = max / mean;
        m.present = true;
        return m;
      };
      c.metric(prefix + "/imbalance", Rule::kImbalance, imbalance(&bstage),
               imbalance(cstage));
    }
  }
}

void compare_analysis(const JsonValue& base, const JsonValue& cur,
                      const CompareOptions& opts, Comparer& c) {
  static constexpr const char* kPathKeys[] = {"total_ns", "compute_ns",
                                              "comm_ns", "wait_ns"};
  c.metric("wall_ns", Rule::kTimeLower, read_number(base.find("wall_ns")),
           read_number(cur.find("wall_ns")));
  for (const char* key : kPathKeys) {
    c.metric(std::string("critical_path/") + key, Rule::kTimeLower,
             read_number(base.find("critical_path", key)),
             read_number(cur.find("critical_path", key)));
  }

  const auto* bstages = base.find("stages");
  const auto* cstages = cur.find("stages");
  if (bstages == nullptr || !bstages->is_array()) return;
  for (const auto& bstage : bstages->array()) {
    const auto* name = bstage.find("stage");
    if (name == nullptr || !name->is_string()) continue;
    if (JsonValue::number_or(bstage.find("mean_ns"), 0.0) <
        opts.min_stage_seconds * 1e9) {
      continue;
    }
    const JsonValue* match = nullptr;
    if (cstages != nullptr && cstages->is_array()) {
      for (const auto& cand : cstages->array()) {
        const auto* cn = cand.find("stage");
        if (cn != nullptr && cn->is_string() &&
            cn->string() == name->string()) {
          match = &cand;
          break;
        }
      }
    }
    c.metric("stages/" + name->string() + "/imbalance", Rule::kImbalance,
             read_number(bstage.find("imbalance")),
             read_number(match != nullptr ? match->find("imbalance")
                                          : nullptr));
  }
}

}  // namespace

CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& opts) {
  CompareResult result;
  Comparer c(opts, &result);
  const bool base_bench = baseline.find("bench") != nullptr;
  const bool cur_bench = current.find("bench") != nullptr;
  const bool base_analysis = baseline.find("critical_path") != nullptr;
  const bool cur_analysis = current.find("critical_path") != nullptr;

  if (base_bench && cur_bench) {
    compare_bench(baseline, current, opts, c);
  } else if (base_analysis && cur_analysis) {
    compare_analysis(baseline, current, opts, c);
  } else {
    c.error("documents are not two bench reports or two analysis reports");
  }
  return result;
}

std::string CompareResult::format() const {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-52s %12s %12s %7s %7s  %s\n", "metric",
                "baseline", "current", "ratio", "tol", "verdict");
  out += line;
  for (const auto& f : findings) {
    const char* verdict =
        !f.gated ? "info" : (f.regressed ? "REGRESSED" : "ok");
    std::snprintf(line, sizeof(line), "%-52s %12.6g %12.6g %7.3f %7.3f  %s\n",
                  f.metric.c_str(), f.baseline, f.current, f.ratio,
                  f.tolerance, verdict);
    out += line;
  }
  for (const auto& w : warnings) {
    out += "warning: ";
    out += w;
    out += '\n';
  }
  for (const auto& e : errors) {
    out += "error: ";
    out += e;
    out += '\n';
  }
  std::snprintf(line, sizeof(line),
                "perf gate: %s (%d regression(s), %zu error(s), %zu metrics)\n",
                ok() ? "PASS" : "FAIL", regressions(), errors.size(),
                findings.size());
  out += line;
  return out;
}

}  // namespace keybin2::runtime
