// Distributed, privacy-preserving clustering across data sites (paper §1).
//
// Each simulated site owns a private shard of the data; KeyBin2 clusters the
// union WITHOUT any site ever shipping raw points — only per-dimension
// binning histograms and the final model cross site boundaries. The example
// verifies that the distributed result is bit-identical to a centralized
// run and reports how many bytes actually moved.
//
//   ./examples/distributed_sites [sites] [points-per-site] [dims]
#include <cstdio>
#include <cstdlib>

#include "comm/launch.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;

  const int sites = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t per_site =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;
  const std::size_t dims = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;

  std::printf("%d sites, %zu points each, %zu dimensions.\n", sites, per_site,
              dims);
  const auto spec = data::make_paper_mixture(dims, 4, 7);
  const auto d = data::sample(spec, per_site * static_cast<std::size_t>(sites),
                              11);
  const auto shards = data::shard(d, sites);

  // Distributed run: each "site" is a rank holding only its own shard.
  std::vector<int> combined(d.size());
  int clusters = 0;
  const auto traffic = comm::run_ranks(sites, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = core::fit(c, shards[r].points);
    const auto ranges = data::partition_rows(d.size(), sites);
    std::copy(result.labels.begin(), result.labels.end(),
              combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
    if (c.rank() == 0) clusters = result.n_clusters();
  });

  // Centralized reference on the pooled data.
  const auto reference = core::fit(d.points);

  const auto scores = stats::pairwise_scores(combined, d.labels);
  std::printf("\nDistributed KeyBin2: %d clusters, F1 = %.3f vs ground "
              "truth\n",
              clusters, scores.f1);
  std::printf("Identical to the centralized run: %s\n",
              combined == reference.labels ? "yes (bit-for-bit)" : "NO");

  const double raw_bytes = static_cast<double>(d.size()) *
                           static_cast<double>(dims) * sizeof(double);
  std::printf("\nCommunication: %llu messages, %.1f KiB total\n",
              static_cast<unsigned long long>(traffic.messages_sent),
              static_cast<double>(traffic.bytes_sent) / 1024.0);
  std::printf("Centralizing the raw data would have moved %.1f MiB "
              "(%.0fx more).\n",
              raw_bytes / (1024.0 * 1024.0),
              raw_bytes / static_cast<double>(traffic.bytes_sent));
  return 0;
}
