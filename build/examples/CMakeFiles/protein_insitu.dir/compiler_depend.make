# Empty compiler generated dependencies file for protein_insitu.
# This may be replaced when dependencies are built.
