// First-class fault injection for the comm layer.
//
// FaultyComm decorates any Communicator endpoint and perturbs its traffic
// according to a seeded FaultSchedule: messages can be dropped, delayed,
// truncated, length-corrupted, or zero-filled, and the whole rank can be
// killed at a chosen operation count (the moral equivalent of a node dying
// mid-collective). Every decision is drawn from a deterministic per-endpoint
// RNG, so a failing schedule is exactly reproducible from its seed.
//
// Tests wrap individual ranks:
//
//   run_ranks(4, [&](Communicator& inner) {
//     fault::FaultSchedule s;
//     s.kill_at_op = inner.rank() == 2 ? 40 : 0;
//     fault::FaultyComm c(inner, s);
//     core::fit(c, shard, params);   // rank 2 dies at its 40th comm op
//   });
//
// Detection story: truncation and corrupt lengths trip ByteReader's bounds
// checks; zero-fill and bit-flips that keep every length plausible trip the
// CRC32 frame checksum (CorruptFrameError); drops surface as TimeoutError
// once a deadline is set; kills surface on peers as RankFailedError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::comm::fault {

/// Thrown on the faulty rank itself when its kill step is reached.
/// Deliberately NOT a CommError: the killed rank must not catch-and-recover
/// itself — the error propagates, the rank dies, and its *peers* recover.
class KilledError final : public Error {
 public:
  using Error::Error;
};

/// What to inject, with what probability. Probabilities are per-message and
/// independent; at most one mutation applies per message (checked in the
/// order drop, delay, truncate, corrupt-length, zero-fill).
struct FaultSchedule {
  std::uint64_t seed = 1;

  double drop_prob = 0.0;            // message silently vanishes
  double delay_prob = 0.0;           // message held for delay_ms first
  double truncate_prob = 0.0;        // message loses its tail
  double corrupt_length_prob = 0.0;  // a plausible-looking length goes huge
  double zero_fill_prob = 0.0;       // payload bytes flattened to zero

  double delay_ms = 1.0;

  /// Kill the rank when its (send+recv+barrier+agree) operation count
  /// reaches this value; 0 = never. Once reached, every subsequent
  /// operation also throws — a dead rank stays dead.
  std::uint64_t kill_at_op = 0;

  /// Escalate kill_at_op from a thrown KilledError to a real SIGKILL of the
  /// calling process — the honest form of "a node died", with no stack
  /// unwinding, no destructors, no chance to flush. Only honored when the
  /// inner transport reports process_isolated() (ProcComm); under a threaded
  /// backend a real SIGKILL would take down every rank plus the test runner,
  /// so it falls back to the thrown form.
  bool hard_kill = false;

  /// When true, mutations recompute a valid CRC32 frame header over the
  /// corrupted payload, so the damage penetrates the transport checksum and
  /// must be caught by the serialize layer's own bounds checks. Default
  /// false: the frame check catches it first.
  bool fix_crc = false;
};

/// Decorator injecting the schedule's faults into an inner endpoint.
/// Mutations apply on the send side (the wire eats the sender's bytes);
/// kills trigger on any operation.
class FaultyComm final : public Communicator {
 public:
  FaultyComm(Communicator& inner, FaultSchedule schedule);

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override;
  TrafficStats stats() const override { return inner_->stats(); }

  void set_timeout(double seconds) override;
  void set_probe(CommProbe* probe) override {
    Communicator::set_probe(probe);
    // The inner transport records deliveries, so dropped messages are never
    // observed (matching TrafficStats, which also only counts real pushes).
    inner_->set_probe(probe);
  }
  void set_flight_hook(FlightHook* hook) override {
    // Kept locally too: a simulated kill fires before the inner op runs, so
    // the kill site must record the interrupted op's begin itself — the
    // thread-backend equivalent of SIGKILL evidence.
    Communicator::set_flight_hook(hook);
    inner_->set_flight_hook(hook);
  }
  std::vector<int> failed_ranks() const override {
    return inner_->failed_ranks();
  }
  std::vector<int> agree_survivors() override;
  bool process_isolated() const override {
    return inner_->process_isolated();
  }
  int incarnation() const override { return inner_->incarnation(); }
  std::uint64_t respawns_total() const override {
    return inner_->respawns_total();
  }
  std::uint64_t regrow_epochs() const override {
    return inner_->regrow_epochs();
  }

  /// Operations performed so far (send/recv/barrier/agree).
  std::uint64_t ops() const { return ops_; }

 private:
  /// Counts the op and, if the kill step is reached, records the interrupted
  /// op's flight-hook begin (the in-flight evidence a real SIGKILL would
  /// leave) before killing the rank.
  void count_op_and_maybe_kill(FlightHook::Op op, int peer, int tag,
                               std::size_t bytes);

  Communicator* inner_;
  FaultSchedule schedule_;
  Rng rng_;
  std::uint64_t ops_ = 0;
};

}  // namespace keybin2::comm::fault
