#include "baselines/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/parallel_kmeans.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "stats/metrics.hpp"

namespace keybin2::baselines {
namespace {

TEST(KMeansPP, ProducesKDistinctCenters) {
  const auto spec = data::make_paper_mixture(5, 4, 1);
  const auto d = data::sample(spec, 1000, 2);
  const auto centers = kmeanspp_init(d.points, 4, 3);
  EXPECT_EQ(centers.rows(), 4u);
  std::set<std::vector<double>> unique;
  for (std::size_t c = 0; c < 4; ++c) {
    unique.insert({centers.row(c).begin(), centers.row(c).end()});
  }
  EXPECT_EQ(unique.size(), 4u);
}

TEST(KMeansPP, InvalidKThrows) {
  Matrix points(5, 2);
  EXPECT_THROW(kmeanspp_init(points, 0, 1), Error);
  EXPECT_THROW(kmeanspp_init(points, 6, 1), Error);
}

TEST(KMeans, RecoversSeparatedMixtureGivenK) {
  const auto spec = data::make_paper_mixture(10, 4, 5);
  const auto d = data::sample(spec, 4000, 6);
  KMeansParams params;
  params.k = 4;
  params.seed = 7;
  params.n_init = 5;  // single inits can land in a split/merge local optimum
  const auto result = kmeans(d.points, params);
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.f1, 0.95);
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, ExactlyKLabels) {
  const auto spec = data::make_paper_mixture(6, 3, 9);
  const auto d = data::sample(spec, 900, 10);
  KMeansParams params;
  params.k = 3;
  const auto result = kmeans(d.points, params);
  EXPECT_EQ(stats::distinct_labels(result.labels), 3u);
}

TEST(KMeans, RestartsImproveOrMatchInertia) {
  const auto spec = data::make_paper_mixture(8, 5, 11);
  const auto d = data::sample(spec, 2000, 12);
  KMeansParams one;
  one.k = 5;
  one.n_init = 1;
  KMeansParams ten = one;
  ten.n_init = 10;
  EXPECT_LE(kmeans(d.points, ten).inertia, kmeans(d.points, one).inertia);
}

TEST(KMeans, MoreClustersLowerInertia) {
  const auto spec = data::make_paper_mixture(6, 4, 13);
  const auto d = data::sample(spec, 1500, 14);
  KMeansParams k2, k8;
  k2.k = 2;
  k8.k = 8;
  EXPECT_GT(kmeans(d.points, k2).inertia, kmeans(d.points, k8).inertia);
}

TEST(Lloyd, IterationCountIsBounded) {
  const auto spec = data::make_paper_mixture(4, 2, 15);
  const auto d = data::sample(spec, 500, 16);
  auto centers = kmeanspp_init(d.points, 2, 17);
  const auto result = lloyd(d.points, std::move(centers), 3, 0.0);
  EXPECT_LE(result.iterations, 3);
}

TEST(Lloyd, EmptyClusterKeepsItsCenter) {
  // Two coincident centres: one will starve but must not produce NaNs.
  Matrix points(4, 1, {0.0, 0.1, 10.0, 10.1});
  Matrix centers(3, 1, {0.0, 0.0, 10.0});
  const auto result = lloyd(points, std::move(centers), 10, 1e-9);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(std::isnan(result.centers(c, 0)));
  }
  EXPECT_GE(result.inertia, 0.0);
}

TEST(KMeans, DeterministicInSeed) {
  const auto spec = data::make_paper_mixture(5, 3, 19);
  const auto d = data::sample(spec, 600, 20);
  KMeansParams params;
  params.k = 3;
  params.seed = 99;
  const auto a = kmeans(d.points, params);
  const auto b = kmeans(d.points, params);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

// ---- Distributed k-means ----

class ParallelKMeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelKMeansSweep, MatchesQualityOfSerialRun) {
  const int ranks = GetParam();
  const auto spec = data::make_paper_mixture(12, 4, 21);
  const auto d = data::sample(spec, 3200, 22);
  const auto shards = data::shard(d, ranks);

  KMeansParams params;
  params.k = 4;
  params.seed = 23;
  params.n_init = 3;  // restarts guard against a deterministic bad init
  params.seeding = Seeding::kSampledKMeansPP;

  std::vector<int> combined(d.size());
  std::vector<double> inertia(static_cast<std::size_t>(ranks));
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = parallel_kmeans(c, shards[r].points, params);
    const auto ranges = data::partition_rows(d.size(), ranks);
    std::copy(result.labels.begin(), result.labels.end(),
              combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
    inertia[r] = result.inertia;
  });

  // All ranks agree on the global inertia.
  for (int r = 1; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(inertia[static_cast<std::size_t>(r)], inertia[0]);
  }
  const auto scores = stats::pairwise_scores(combined, d.labels);
  EXPECT_GT(scores.f1, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelKMeansSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelKMeans, SingleRankMatchesSerialExactly) {
  const auto spec = data::make_paper_mixture(8, 3, 25);
  const auto d = data::sample(spec, 1000, 26);
  KMeansParams params;
  params.k = 3;
  params.seed = 27;
  params.seeding = Seeding::kSampledKMeansPP;

  const auto serial = kmeans(d.points, params);
  std::vector<int> parallel_labels;
  double parallel_inertia = 0.0;
  comm::run_ranks(1, [&](comm::Communicator& c) {
    const auto result = parallel_kmeans(c, d.points, params);
    parallel_labels = result.labels;
    parallel_inertia = result.inertia;
  });
  // The partitions must match exactly (labels may be permuted: the serial
  // driver derives its restart seed differently).
  EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(parallel_labels, serial.labels),
                   1.0);
  EXPECT_NEAR(parallel_inertia, serial.inertia, 1e-6 * serial.inertia);
}

TEST(ParallelKMeans, FirstKSeedingDegradesInHighDimension) {
  // Liao's first-k seeding (the paper's comparator) is the mechanism behind
  // Table 1/2's parallel-kmeans accuracy collapse: in high dimension the
  // clusters are far apart and Lloyd cannot move a centre across the gap,
  // while k-means++ sampling spreads the initial centres.
  const auto spec = data::make_paper_mixture(640, 4, 31);
  const auto d = data::sample(spec, 2000, 32);

  KMeansParams first_k;
  first_k.k = 4;
  first_k.seed = 33;
  first_k.seeding = Seeding::kFirstKPoints;
  KMeansParams sampled = first_k;
  sampled.seeding = Seeding::kSampledKMeansPP;
  sampled.n_init = 3;

  double f1_first = 0.0, f1_sampled = 0.0;
  comm::run_ranks(1, [&](comm::Communicator& c) {
    const auto a = parallel_kmeans(c, d.points, first_k);
    f1_first = stats::pairwise_scores(a.labels, d.labels).f1;
  });
  comm::run_ranks(1, [&](comm::Communicator& c) {
    const auto b = parallel_kmeans(c, d.points, sampled);
    f1_sampled = stats::pairwise_scores(b.labels, d.labels).f1;
  });
  EXPECT_GT(f1_sampled, 0.95);
  EXPECT_LT(f1_first, f1_sampled);
}

}  // namespace
}  // namespace keybin2::baselines
