#include "md/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "md/synthetic.hpp"

namespace keybin2::md {
namespace {

TEST(Trajectory, TorsionAccessorsAreConsistent) {
  Trajectory t(3, 2);
  t.phi(1, 0) = -60.0;
  t.psi(1, 0) = -45.0;
  t.omega(1, 1) = 180.0;
  EXPECT_DOUBLE_EQ(t.phi(1, 0), -60.0);
  EXPECT_DOUBLE_EQ(t.psi(1, 0), -45.0);
  EXPECT_DOUBLE_EQ(t.omega(1, 1), 180.0);
  auto row = t.torsions(1);
  EXPECT_DOUBLE_EQ(row[0], -60.0);
  EXPECT_DOUBLE_EQ(row[1], -45.0);
  EXPECT_DOUBLE_EQ(row[5], 180.0);
}

TEST(Trajectory, StructureUsesClassifier) {
  Trajectory t(1, 1);
  const auto alpha = canonical_torsions(SecondaryStructure::kAlphaHelix);
  t.phi(0, 0) = alpha.phi;
  t.psi(0, 0) = alpha.psi;
  t.omega(0, 0) = alpha.omega;
  EXPECT_EQ(t.structure(0, 0), SecondaryStructure::kAlphaHelix);
}

TEST(Featurize, MatrixOfClassIndices) {
  Trajectory t(2, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto beta = canonical_torsions(SecondaryStructure::kBetaStrand);
    t.phi(0, r) = beta.phi;
    t.psi(0, r) = beta.psi;
    t.omega(0, r) = beta.omega;
    const auto cis = canonical_torsions(SecondaryStructure::kCisPeptide);
    t.phi(1, r) = cis.phi;
    t.psi(1, r) = cis.psi;
    t.omega(1, r) = cis.omega;
  }
  const auto features = featurize_secondary_structure(t);
  EXPECT_EQ(features.rows(), 2u);
  EXPECT_EQ(features.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(features(0, r),
                     static_cast<double>(
                         static_cast<int>(SecondaryStructure::kBetaStrand)));
    EXPECT_DOUBLE_EQ(features(1, r),
                     static_cast<double>(
                         static_cast<int>(SecondaryStructure::kCisPeptide)));
  }
  // Per-frame featurization agrees.
  const auto frame0 = featurize_frame(t, 0);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(frame0[r], features(0, r));
  }
}

TEST(FrameRmsd, IdentityIsZero) {
  const auto st = generate_trajectory({.residues = 10, .frames = 20,
                                       .phases = 2, .transition_frames = 3,
                                       .seed = 1});
  for (std::size_t f = 0; f < 20; ++f) {
    EXPECT_DOUBLE_EQ(frame_rmsd(st.trajectory, f, f), 0.0);
  }
}

TEST(FrameRmsd, SymmetricAndNonNegative) {
  const auto st = generate_trajectory({.residues = 8, .frames = 30,
                                       .phases = 3, .transition_frames = 4,
                                       .seed = 2});
  for (std::size_t a = 0; a < 30; a += 7) {
    for (std::size_t b = 0; b < 30; b += 5) {
      const double ab = frame_rmsd(st.trajectory, a, b);
      EXPECT_DOUBLE_EQ(ab, frame_rmsd(st.trajectory, b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 180.0);
    }
  }
}

TEST(FrameRmsd, HandlesPeriodicWrap) {
  // phi = +179 vs -179 differ by 2 degrees, not 358.
  Trajectory t(2, 1);
  t.phi(0, 0) = 179.0;
  t.psi(0, 0) = 0.0;
  t.phi(1, 0) = -179.0;
  t.psi(1, 0) = 0.0;
  EXPECT_NEAR(frame_rmsd(t, 0, 1), std::sqrt((2.0 * 2.0) / 2.0), 1e-9);
}

TEST(FrameRmsd, FramesInSamePhaseAreCloserThanAcrossPhases) {
  const auto st = generate_trajectory({.residues = 30, .frames = 600,
                                       .phases = 2, .transition_frames = 30,
                                       .seed = 3});
  // Frames 100 & 200 share phase 0; frame 500 is in phase 1.
  const double within = frame_rmsd(st.trajectory, 100, 200);
  const double across = frame_rmsd(st.trajectory, 100, 500);
  EXPECT_LT(within, across);
}

TEST(MeanConformation, ConstantTrajectoryIsItself) {
  Trajectory t(5, 2);
  for (std::size_t f = 0; f < 5; ++f) {
    for (std::size_t r = 0; r < 2; ++r) {
      t.phi(f, r) = -60.0;
      t.psi(f, r) = 120.0;
      t.omega(f, r) = 180.0;
    }
  }
  const auto mean = mean_conformation(t);
  EXPECT_NEAR(mean[0], -60.0, 1e-9);
  EXPECT_NEAR(mean[1], 120.0, 1e-9);
  EXPECT_NEAR(std::fabs(mean[2]), 180.0, 1e-9);
}

TEST(MeanConformation, CircularMeanHandlesWrap) {
  // Two frames at +170 and -170: linear mean is 0 (wrong side); circular
  // mean is ±180.
  Trajectory t(2, 1);
  t.phi(0, 0) = 170.0;
  t.phi(1, 0) = -170.0;
  const auto mean = mean_conformation(t);
  EXPECT_NEAR(std::fabs(mean[0]), 180.0, 1e-9);
}

}  // namespace
}  // namespace keybin2::md
