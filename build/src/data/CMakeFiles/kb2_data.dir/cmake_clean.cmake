file(REMOVE_RECURSE
  "CMakeFiles/kb2_data.dir/dataset.cpp.o"
  "CMakeFiles/kb2_data.dir/dataset.cpp.o.d"
  "CMakeFiles/kb2_data.dir/gaussian_mixture.cpp.o"
  "CMakeFiles/kb2_data.dir/gaussian_mixture.cpp.o.d"
  "CMakeFiles/kb2_data.dir/io.cpp.o"
  "CMakeFiles/kb2_data.dir/io.cpp.o.d"
  "CMakeFiles/kb2_data.dir/partition.cpp.o"
  "CMakeFiles/kb2_data.dir/partition.cpp.o.d"
  "CMakeFiles/kb2_data.dir/shapes.cpp.o"
  "CMakeFiles/kb2_data.dir/shapes.cpp.o.d"
  "libkb2_data.a"
  "libkb2_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
