// Ablation A: discrete-optimization partitioning (KeyBin2, §3.2) vs the
// KeyBin-v1 density-threshold heuristic.
//
// The paper motivates the change: "partitioning through heuristics is not
// deemed to be robust". We sweep cluster separation and mixture imbalance;
// the v1 heuristic needs its threshold tuned per dataset, while the
// discrete optimizer adapts. Reported: F1 of the full pipeline with each
// partitioner, plus each partitioner's rate of recovering the true cut
// count on raw bimodal histograms.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/keybin2.hpp"
#include "core/partitioner.hpp"
#include "data/gaussian_mixture.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace keybin2;

void pipeline_comparison(const bench::Options& opt) {
  std::printf("Full pipeline, 4-component mixture, varying separation:\n");
  std::printf("%-12s %16s %16s\n", "separation", "discrete-opt F1",
              "v1-threshold F1");
  for (double separation : {4.0, 6.0, 10.0, 20.0}) {
    bench::Series f1_opt, f1_v1;
    for (int run = 0; run < opt.runs; ++run) {
      const std::uint64_t seed = opt.seed + 100 * run;
      const auto spec = data::make_paper_mixture(20, 4, seed, separation);
      const auto d = data::sample(spec, 6000, seed + 1);

      core::Params discrete;
      discrete.seed = seed;
      const auto a = core::fit(d.points, discrete);
      f1_opt.add(bench::score_labels(a.labels, d.labels).f1);

      core::Params v1 = discrete;
      v1.use_discrete_opt = false;
      const auto b = core::fit(d.points, v1);
      f1_v1.add(bench::score_labels(b.labels, d.labels).f1);
    }
    std::printf("%-12.1f %16s %16s\n", separation, f1_opt.str().c_str(),
                f1_v1.str().c_str());
  }
}

void cut_recovery(const bench::Options& opt) {
  // Raw histogram study: a bimodal density with imbalanced masses. The v1
  // threshold (a fraction of the PEAK) erases the minority mode once the
  // imbalance exceeds 1/threshold; the discrete optimizer keeps it.
  std::printf(
      "\nCut recovery on imbalanced bimodal histograms (expect 1 cut):\n");
  std::printf("%-12s %18s %18s\n", "imbalance", "discrete-opt cuts",
              "v1-threshold cuts");
  for (double imbalance : {1.0, 4.0, 16.0, 64.0}) {
    bench::Series cuts_opt, cuts_v1;
    for (int run = 0; run < opt.runs * 4; ++run) {
      Rng rng(opt.seed + 17 * static_cast<std::uint64_t>(run));
      stats::Histogram h(0.0, 1.0, 64);
      const int majority = 8000;
      const auto minority =
          static_cast<int>(majority / imbalance);
      for (int i = 0; i < majority; ++i) h.add(rng.normal(0.3, 0.05));
      for (int i = 0; i < minority; ++i) h.add(rng.normal(0.75, 0.05));

      cuts_opt.add(static_cast<double>(
          core::partition_discrete_opt(h.counts(), 0.04).cuts.size()));
      cuts_v1.add(static_cast<double>(
          core::partition_v1_threshold(h.counts(), 0.05).cuts.size()));
    }
    std::printf("%-12.0f %18s %18s\n", imbalance, cuts_opt.str(2).c_str(),
                cuts_v1.str(2).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  std::printf("Ablation A: partitioning mechanism (KeyBin2 vs KeyBin v1).\n\n");
  pipeline_comparison(opt);
  cut_recovery(opt);
  bench::Reporter::global().write(opt);
  return 0;
}
