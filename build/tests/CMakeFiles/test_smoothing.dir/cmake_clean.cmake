file(REMOVE_RECURSE
  "CMakeFiles/test_smoothing.dir/test_smoothing.cpp.o"
  "CMakeFiles/test_smoothing.dir/test_smoothing.cpp.o.d"
  "test_smoothing"
  "test_smoothing.pdb"
  "test_smoothing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
