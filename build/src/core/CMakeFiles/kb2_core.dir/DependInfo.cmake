
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assess.cpp" "src/core/CMakeFiles/kb2_core.dir/assess.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/assess.cpp.o.d"
  "/root/repo/src/core/binner.cpp" "src/core/CMakeFiles/kb2_core.dir/binner.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/binner.cpp.o.d"
  "/root/repo/src/core/cells.cpp" "src/core/CMakeFiles/kb2_core.dir/cells.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/cells.cpp.o.d"
  "/root/repo/src/core/keybin2.cpp" "src/core/CMakeFiles/kb2_core.dir/keybin2.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/keybin2.cpp.o.d"
  "/root/repo/src/core/keys.cpp" "src/core/CMakeFiles/kb2_core.dir/keys.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/keys.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/kb2_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/model.cpp.o.d"
  "/root/repo/src/core/out_of_core.cpp" "src/core/CMakeFiles/kb2_core.dir/out_of_core.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/out_of_core.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/kb2_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/core/CMakeFiles/kb2_core.dir/projection.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/projection.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/kb2_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/kb2_core.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kb2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/kb2_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kb2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
