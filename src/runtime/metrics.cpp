#include "runtime/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/serialize.hpp"
#include "common/timer.hpp"
#include "runtime/health.hpp"
#include "runtime/json.hpp"
#include "runtime/timeline.hpp"

namespace keybin2::runtime {

std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

// ---- LatencyHistogram ----

namespace {

int bucket_index(std::int64_t ns) {
  if (ns <= 1) return 0;
  return std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
}

}  // namespace

void LatencyHistogram::record(std::int64_t ns) {
  if (ns < 0) ns = 0;
  ++buckets_[static_cast<std::size_t>(bucket_index(ns))];
  if (count_ == 0 || ns < min_ns_) min_ns_ = ns;
  if (ns > max_ns_) max_ns_ = ns;
  sum_ns_ += ns;
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  if (o.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  if (count_ == 0 || o.min_ns_ < min_ns_) min_ns_ = o.min_ns_;
  max_ns_ = std::max(max_ns_, o.max_ns_);
  sum_ns_ += o.sum_ns_;
  count_ += o.count_;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= std::max<std::uint64_t>(target, 1)) {
      // The bucket spans [2^i, 2^(i+1)); report its upper edge, clamped to
      // the observed extremes so tails are not overstated.
      const double upper = i >= 62 ? static_cast<double>(max_ns_)
                                   : static_cast<double>(1ull << (i + 1));
      return std::clamp(upper, static_cast<double>(min_ns()),
                        static_cast<double>(max_ns_));
    }
  }
  return static_cast<double>(max_ns_);
}

// ---- MetricsRegistry ----

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::gauge_max(std::string_view name, double value) {
  auto [it, inserted] = gauges_.try_emplace(std::string(name), value);
  if (!inserted) it->second = std::max(it->second, value);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  return histograms_[std::string(name)];
}

void MetricsRegistry::record_send(int peer, int tag, std::size_t bytes,
                                  std::size_t queue_depth) {
  auto& ch = sent_[{peer, tag}];
  ++ch.messages;
  ch.bytes += bytes;
  gauge_max("mailbox_depth", static_cast<double>(queue_depth));
}

void MetricsRegistry::record_recv(int peer, int tag, std::size_t bytes,
                                  std::int64_t wait_ns) {
  auto& ch = received_[{peer, tag}];
  ++ch.messages;
  ch.bytes += bytes;
  histogram("recv_wait").record(wait_ns);
}

void MetricsRegistry::record_barrier(std::int64_t wait_ns) {
  histogram("barrier_wait").record(wait_ns);
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         sent_.empty() && received_.empty();
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  sent_.clear();
  received_.clear();
}

// ---- CommMonitor ----

void CommMonitor::on_send(int self, int dest, int tag, std::size_t bytes,
                          std::uint64_t flow_id, std::size_t queue_depth) {
  (void)self;
  registry_->record_send(dest, tag, bytes, queue_depth);
  if (timeline_ != nullptr) {
    timeline_->add_flow(flow_id, now_ns(), /*start=*/true, dest, tag, bytes);
  }
}

void CommMonitor::on_recv(int self, int src, int tag, std::size_t bytes,
                          std::uint64_t flow_id, std::int64_t wait_ns) {
  (void)self;
  registry_->record_recv(src, tag, bytes, wait_ns);
  if (timeline_ != nullptr) {
    timeline_->add_flow(flow_id, now_ns(), /*start=*/false, src, tag, bytes,
                        wait_ns);
  }
  if (health_ != nullptr) health_->record_wait(wait_ns);
}

void CommMonitor::on_barrier(int self, std::int64_t wait_ns) {
  (void)self;
  registry_->record_barrier(wait_ns);
  if (timeline_ != nullptr) {
    timeline_->add_wait("barrier", now_ns(), wait_ns);
  }
  if (health_ != nullptr) health_->record_wait(wait_ns);
}

// ---- merge_metrics / MetricsReport ----

MetricsReport merge_metrics(const MetricsRegistry& registry,
                            comm::Communicator& comm, int root) {
  ByteWriter writer;
  writer.write<std::uint64_t>(registry.counters().size());
  for (const auto& [name, value] : registry.counters()) {
    writer.write_string(name);
    writer.write(value);
  }
  writer.write<std::uint64_t>(registry.gauges().size());
  for (const auto& [name, value] : registry.gauges()) {
    writer.write_string(name);
    writer.write(value);
  }
  writer.write<std::uint64_t>(registry.histograms().size());
  for (const auto& [name, hist] : registry.histograms()) {
    writer.write_string(name);
    writer.write(hist);  // trivially copyable: fixed buckets + scalars
  }
  writer.write<std::uint64_t>(registry.sent().size());
  for (const auto& [key, traffic] : registry.sent()) {
    writer.write(key.first);
    writer.write(key.second);
    writer.write(traffic);
  }

  const auto gathered = comm.gather(writer.bytes(), root);
  MetricsReport report;
  if (comm.rank() != root) return report;

  report.ranks = comm.size();
  for (std::size_t src = 0; src < gathered.size(); ++src) {
    ByteReader reader(gathered[src]);
    const auto n_counters = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_counters; ++i) {
      const auto name = reader.read_string();
      report.counters[name] += reader.read<std::uint64_t>();
    }
    const auto n_gauges = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_gauges; ++i) {
      const auto name = reader.read_string();
      const auto value = reader.read<double>();
      auto [it, inserted] = report.gauges.try_emplace(name, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
    const auto n_hists = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_hists; ++i) {
      const auto name = reader.read_string();
      report.histograms[name].merge(reader.read<LatencyHistogram>());
    }
    const auto n_sent = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_sent; ++i) {
      const auto dst = reader.read<int>();
      const auto tag = reader.read<int>();
      const auto traffic = reader.read<ChannelTraffic>();
      auto& ch = report.channels[{static_cast<int>(src), dst, tag}];
      ch.messages += traffic.messages;
      ch.bytes += traffic.bytes;
    }
  }
  return report;
}

std::string MetricsReport::heatmap() const {
  // Collapse channels over tags into a src -> dst byte matrix.
  std::map<std::pair<int, int>, std::uint64_t> matrix;
  std::map<int, ChannelTraffic> by_tag;
  for (const auto& [key, traffic] : channels) {
    const auto& [src, dst, tag] = key;
    matrix[{src, dst}] += traffic.bytes;
    auto& t = by_tag[tag];
    t.messages += traffic.messages;
    t.bytes += traffic.bytes;
  }

  std::string out = "comm heatmap (bytes sent, row=src, col=dst)\n";
  char cell[64];
  std::snprintf(cell, sizeof(cell), "%8s", "");
  out += cell;
  for (int dst = 0; dst < ranks; ++dst) {
    std::snprintf(cell, sizeof(cell), " %10s",
                  ("dst " + std::to_string(dst)).c_str());
    out += cell;
  }
  out += '\n';
  for (int src = 0; src < ranks; ++src) {
    std::snprintf(cell, sizeof(cell), "%8s",
                  ("src " + std::to_string(src)).c_str());
    out += cell;
    for (int dst = 0; dst < ranks; ++dst) {
      const auto it = matrix.find({src, dst});
      const std::uint64_t bytes = it == matrix.end() ? 0 : it->second;
      std::snprintf(cell, sizeof(cell), " %10s",
                    bytes == 0 ? "." : human_bytes(bytes).c_str());
      out += cell;
    }
    out += '\n';
  }

  out += "per-tag totals\n";
  for (const auto& [tag, traffic] : by_tag) {
    std::snprintf(cell, sizeof(cell), "  %-16s %6llu msgs %12s\n",
                  comm::tag_name(tag).c_str(),
                  static_cast<unsigned long long>(traffic.messages),
                  human_bytes(traffic.bytes).c_str());
    out += cell;
  }
  return out;
}

std::string MetricsReport::format() const {
  std::string out;
  char line[160];
  if (!counters.empty()) {
    out += "metrics counters\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof(line), "  %-28s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  if (!histograms.empty()) {
    std::snprintf(line, sizeof(line), "%-16s %8s %10s %10s %10s %10s\n",
                  "latency", "count", "p50(us)", "p95(us)", "p99(us)",
                  "max(us)");
    out += line;
    for (const auto& [name, hist] : histograms) {
      std::snprintf(line, sizeof(line),
                    "%-16s %8llu %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                    static_cast<unsigned long long>(hist.count()),
                    hist.quantile(0.50) / 1e3, hist.quantile(0.95) / 1e3,
                    hist.quantile(0.99) / 1e3,
                    static_cast<double>(hist.max_ns()) / 1e3);
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges (max)\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(line, sizeof(line), "  %-28s %.6g\n", name.c_str(), value);
      out += line;
    }
  }
  if (!channels.empty()) out += heatmap();
  return out;
}

std::string MetricsReport::deterministic_fingerprint() const {
  // Maps iterate in key order, so the rendering is stable by construction.
  std::string out;
  char line[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [key, traffic] : channels) {
    const auto& [src, dst, tag] = key;
    std::snprintf(line, sizeof(line), "chan %d->%d %s msgs=%llu bytes=%llu\n",
                  src, dst, comm::tag_name(tag).c_str(),
                  static_cast<unsigned long long>(traffic.messages),
                  static_cast<unsigned long long>(traffic.bytes));
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    std::snprintf(line, sizeof(line), "hist %s count=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(hist.count()));
    out += line;
  }
  return out;
}

void MetricsReport::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("ranks").value(ranks);

  w.key("deterministic").begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    w.key(name).value(std::uint64_t(value));
  }
  w.end_object();
  w.key("channels").begin_array();
  for (const auto& [key, traffic] : channels) {
    const auto& [src, dst, tag] = key;
    w.begin_object();
    w.key("src").value(src);
    w.key("dst").value(dst);
    w.key("tag").value(comm::tag_name(tag));
    w.key("messages").value(std::uint64_t(traffic.messages));
    w.key("bytes").value(std::uint64_t(traffic.bytes));
    w.end_object();
  }
  w.end_array();
  w.key("histogram_counts").begin_object();
  for (const auto& [name, hist] : histograms) {
    w.key(name).value(std::uint64_t(hist.count()));
  }
  w.end_object();
  w.end_object();  // deterministic

  w.key("timing").begin_object();
  w.key("histograms").begin_object();
  for (const auto& [name, hist] : histograms) {
    w.key(name).begin_object();
    w.key("p50_us").value(hist.quantile(0.50) / 1e3);
    w.key("p95_us").value(hist.quantile(0.95) / 1e3);
    w.key("p99_us").value(hist.quantile(0.99) / 1e3);
    w.key("max_us").value(static_cast<double>(hist.max_ns()) / 1e3);
    w.key("mean_us").value(hist.mean_ns() / 1e3);
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.end_object();
  w.end_object();  // timing

  w.end_object();
}

}  // namespace keybin2::runtime
