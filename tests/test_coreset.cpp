// Coreset comm plane (DESIGN.md §9): sampler invariants, sketch codec, the
// capped coreset allreduce on both backends, and the kCoreset/kAuto comm
// modes of the full fit — including the fingerprint contracts (dense ==
// sparse exactly; coreset deterministic per seed and close to dense).
#include "comm/coreset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "comm/launch.hpp"
#include "common/rng.hpp"
#include "core/cells.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"
#include "stats/metrics.hpp"

namespace keybin2 {
namespace {

using comm::coreset::Options;
using comm::coreset::Sketch;

std::vector<double> random_masses(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n);
  for (auto& x : m) x = std::floor(rng.uniform() * 8.0);  // integral, sparse-ish
  return m;
}

double total_mass(std::span<const double> v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// ---- Sampler ----

TEST(CoresetSampler, ExactWhenUnderCap) {
  std::vector<double> masses{0.0, 3.0, 0.0, 1.0, 5.0};
  Options opts;
  opts.max_cells = 8;
  const auto sel = comm::coreset::select_weighted(masses, opts, 99);
  ASSERT_EQ(sel.kept.size(), 3u);
  EXPECT_EQ(sel.kept[0], (std::pair<std::size_t, double>{1, 3.0}));
  EXPECT_EQ(sel.kept[1], (std::pair<std::size_t, double>{3, 1.0}));
  EXPECT_EQ(sel.kept[2], (std::pair<std::size_t, double>{4, 5.0}));
  EXPECT_EQ(sel.mass_dropped, 0.0);
}

TEST(CoresetSampler, CapRespectedHeavyExactMassPreserved) {
  auto masses = random_masses(20000, 11);
  // A few unmistakable heavy hitters.
  masses[17] = 5000.0;
  masses[9999] = 9000.0;
  Options opts;
  opts.max_cells = 1024;
  opts.epsilon = 0.01;
  const double total = total_mass(masses);
  const auto sel = comm::coreset::select_weighted(masses, opts, 7);

  EXPECT_LE(sel.kept.size(), opts.max_cells);
  double kept_total = 0.0;
  std::map<std::size_t, double> kept(sel.kept.begin(), sel.kept.end());
  for (const auto& [pos, w] : kept) kept_total += w;
  // Heavy hitters carried exactly.
  const double threshold = opts.epsilon * total;
  for (std::size_t i = 0; i < masses.size(); ++i) {
    if (masses[i] >= threshold) {
      ASSERT_TRUE(kept.count(i)) << "heavy cell " << i << " sampled away";
      EXPECT_DOUBLE_EQ(kept[i], masses[i]);
    }
  }
  // Systematic resampling preserves total mass (up to FP accumulation).
  EXPECT_NEAR(kept_total, total, 1e-6 * total);
  EXPECT_GT(sel.mass_dropped, 0.0);
  // Positions ascend (required by the sketch wire format).
  for (std::size_t k = 1; k < sel.kept.size(); ++k) {
    EXPECT_LT(sel.kept[k - 1].first, sel.kept[k].first);
  }
}

TEST(CoresetSampler, DeterministicPerSeedAndSeedSensitive) {
  const auto masses = random_masses(8000, 3);
  Options opts;
  opts.max_cells = 256;
  const auto a = comm::coreset::select_weighted(masses, opts, 42);
  const auto b = comm::coreset::select_weighted(masses, opts, 42);
  const auto c = comm::coreset::select_weighted(masses, opts, 43);
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.mass_dropped, b.mass_dropped);
  EXPECT_NE(a.kept, c.kept);  // a different draw lands elsewhere
}

TEST(CoresetSampler, EpsilonClampBoundsHeavySetToHalfTheCap) {
  // Everything "heavy" by the raw epsilon: the clamp must still leave room.
  std::vector<double> masses(64, 1.0);
  Options opts;
  opts.max_cells = 16;
  opts.epsilon = 1e-9;  // raw threshold would admit all 64 cells
  const auto sel = comm::coreset::select_weighted(masses, opts, 5);
  EXPECT_LE(sel.kept.size(), opts.max_cells);
}

// ---- Sketch codec ----

TEST(CoresetSketch, CodecRoundTrip) {
  Options opts;
  const auto masses = random_masses(4096, 21);
  auto s = comm::coreset::build(masses, opts, 77);
  ByteWriter w;
  comm::coreset::encode(s, w);
  ByteReader r(w.bytes());
  const auto back = comm::coreset::decode(r);
  EXPECT_EQ(back.length, s.length);
  EXPECT_EQ(back.index, s.index);
  EXPECT_EQ(back.weight, s.weight);
  EXPECT_DOUBLE_EQ(back.mass_dropped, s.mass_dropped);
  EXPECT_EQ(comm::coreset::expand(back), comm::coreset::expand(s));
}

TEST(CoresetSketch, DecodeRejectsUnsortedAndOutOfRange) {
  Sketch s;
  s.length = 10;
  s.index = {3, 1};  // descending
  s.weight = {1.0, 2.0};
  ByteWriter w;
  comm::coreset::encode(s, w);
  ByteReader r(w.bytes());
  EXPECT_THROW(comm::coreset::decode(r), Error);

  Sketch o;
  o.length = 4;
  o.index = {9};  // out of range
  o.weight = {1.0};
  ByteWriter w2;
  comm::coreset::encode(o, w2);
  ByteReader r2(w2.bytes());
  EXPECT_THROW(comm::coreset::decode(r2), Error);
}

TEST(CoresetSketch, MergeSumsOverlappingIndices) {
  Sketch a, b;
  a.length = b.length = 8;
  a.index = {1, 4};
  a.weight = {2.0, 3.0};
  b.index = {0, 4, 7};
  b.weight = {1.0, 5.0, 6.0};
  b.mass_dropped = 0.5;
  comm::coreset::merge(a, b);
  EXPECT_EQ(a.index, (std::vector<std::uint32_t>{0, 1, 4, 7}));
  EXPECT_EQ(a.weight, (std::vector<double>{1.0, 2.0, 8.0, 6.0}));
  EXPECT_DOUBLE_EQ(a.mass_dropped, 0.5);
}

// ---- The collective ----

TEST(CoresetAllreduce, ExactForDisjointSupportsUnderCap) {
  const std::size_t len = 4096;
  const int ranks = 4;
  std::vector<std::vector<double>> results(ranks);
  std::vector<comm::ReduceProfile> profiles(ranks);
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    std::vector<double> local(len, 0.0);
    for (std::size_t i = 0; i < 100; ++i) {
      local[static_cast<std::size_t>(c.rank()) * 100 + i] =
          static_cast<double>(i + 1);
    }
    Options opts;  // cap 4096 >> 400 occupied cells in the union
    results[static_cast<std::size_t>(c.rank())] =
        c.coreset_allreduce(local, opts,
                            &profiles[static_cast<std::size_t>(c.rank())]);
  });
  // Union fits the cap at every hop, so the reduction is exact.
  std::vector<double> expected(len, 0.0);
  for (int r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < 100; ++i) {
      expected[static_cast<std::size_t>(r) * 100 + i] =
          static_cast<double>(i + 1);
    }
  }
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected);
    EXPECT_EQ(profiles[static_cast<std::size_t>(r)].algo,
              comm::AllreduceAlgo::kCoreset);
    EXPECT_GT(profiles[static_cast<std::size_t>(r)].bytes, 0u);
    EXPECT_DOUBLE_EQ(
        profiles[static_cast<std::size_t>(r)].coreset_mass_dropped, 0.0);
  }
}

TEST(CoresetAllreduce, CapsEveryMessagePreservesMassAndGlobalHeavyHitters) {
  const std::size_t len = 1 << 15;
  const int ranks = 8;
  const std::size_t spike = 7;
  Options opts;
  opts.max_cells = 512;
  opts.epsilon = 0.01;

  std::vector<double> expected(len, 0.0);
  std::vector<std::vector<double>> locals(ranks);
  for (int r = 0; r < ranks; ++r) {
    locals[static_cast<std::size_t>(r)] =
        random_masses(len, 1000 + static_cast<std::uint64_t>(r));
    locals[static_cast<std::size_t>(r)][spike] = 1e6;  // heavy at every level
    for (std::size_t i = 0; i < len; ++i) {
      expected[i] += locals[static_cast<std::size_t>(r)][i];
    }
  }

  std::vector<std::vector<double>> results(ranks);
  std::vector<comm::ReduceProfile> profiles(ranks);
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    results[r] = c.coreset_allreduce(locals[r], opts, &profiles[r]);
  });

  const auto& merged = results[0];
  for (int r = 0; r < ranks; ++r) EXPECT_EQ(results[static_cast<std::size_t>(r)], merged);
  // The globally heavy cell survives every compression exactly.
  EXPECT_DOUBLE_EQ(merged[spike], expected[spike]);
  // Total mass is preserved (systematic resampling moves light mass between
  // neighbouring cells but never loses it).
  EXPECT_NEAR(total_mass(merged), total_mass(expected),
              1e-6 * total_mass(expected));
  // The sketch stayed under the cap even though occupancy is ~10x larger.
  std::size_t nnz = 0;
  for (const double v : merged) nnz += (v != 0.0) ? 1 : 0;
  EXPECT_LE(nnz, opts.max_cells);
  // Per-rank attributed drops sum to something > 0 in this lossy regime.
  double dropped = 0.0;
  for (const auto& p : profiles) dropped += p.coreset_mass_dropped;
  EXPECT_GT(dropped, 0.0);
}

TEST(CoresetAllreduce, DeterministicAcrossRepeatedRuns) {
  const std::size_t len = 1 << 14;
  const int ranks = 6;  // non-power-of-two group
  Options opts;
  opts.max_cells = 256;
  auto run = [&] {
    std::vector<std::vector<double>> results(ranks);
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      const auto local =
          random_masses(len, 50 + static_cast<std::uint64_t>(c.rank()));
      results[static_cast<std::size_t>(c.rank())] =
          c.coreset_allreduce(local, opts);
    });
    return results;
  };
  EXPECT_EQ(run(), run());
}

TEST(CoresetAllreduce, ThreadAndProcessBackendsBitIdentical) {
  const std::size_t len = 1 << 14;
  const int ranks = 4;
  Options opts;
  opts.max_cells = 256;
  auto run = [&](comm::Backend backend) {
    comm::LaunchOptions lo;
    lo.backend = backend;
    return comm::run_ranks_collect_bytes(lo, ranks, [&](comm::Communicator& c) {
      const auto local =
          random_masses(len, 900 + static_cast<std::uint64_t>(c.rank()));
      const auto merged = c.coreset_allreduce(local, opts);
      ByteWriter w;
      w.write_vec(merged);
      return w.take();
    });
  };
  const auto threaded = run(comm::Backend::kThread);
  const auto process = run(comm::Backend::kProcess);
  ASSERT_EQ(threaded.size(), process.size());
  for (std::size_t r = 0; r < threaded.size(); ++r) {
    EXPECT_EQ(threaded[r], process[r]) << "rank " << r;
  }
}

// ---- Weighted-cell coreset (assess stage) ----

TEST(CoresetCells, CapsAndPreservesDensity) {
  core::CellMap cells;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    cells[{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i % 7)}] =
        1.0 + std::floor(rng.uniform() * 4.0);
  }
  double total = 0.0;
  for (const auto& [coord, d] : cells) total += d;

  double dropped = 0.0;
  const auto capped = core::coreset_cells(cells, 512, 0.01, 99, &dropped);
  EXPECT_LE(capped.size(), 512u);
  double kept = 0.0;
  for (const auto& [coord, d] : capped) kept += d;
  EXPECT_NEAR(kept, total, 1e-6 * total);
  EXPECT_GT(dropped, 0.0);

  // Deterministic per seed; a small map passes through untouched.
  EXPECT_EQ(core::coreset_cells(cells, 512, 0.01, 99), capped);
  EXPECT_EQ(core::coreset_cells(cells, 8192, 0.01, 99), cells);
}

// ---- Full fit under the comm modes ----

struct ModeFit {
  std::vector<int> labels;                       // concatenated by rank
  std::map<std::string, std::uint64_t> counters; // merged metrics (root)
  double score = 0.0;
};

ModeFit fit_mode(const std::vector<data::Dataset>& shards, int ranks,
                 const core::Params& params) {
  ModeFit out;
  std::vector<std::vector<int>> labels(static_cast<std::size_t>(ranks));
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    runtime::Context ctx(c, params.seed);
    const auto result =
        core::fit(ctx, shards[static_cast<std::size_t>(c.rank())].points,
                  params);
    labels[static_cast<std::size_t>(c.rank())] = result.labels;
    const auto report = ctx.metrics_report();  // collective
    if (c.rank() == 0) {
      out.counters = report.counters;
      out.score = result.model.score();
    }
  });
  for (const auto& l : labels) {
    out.labels.insert(out.labels.end(), l.begin(), l.end());
  }
  return out;
}

class CoresetFitTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  void SetUp() override {
    const auto spec = data::make_paper_mixture(16, 4, 31);
    data_ = data::sample(spec, 6000, 32);
    shards_ = data::shard(data_, kRanks);
  }
  core::Params base_params() const {
    core::Params p;
    p.seed = 7;
    p.max_depth = 10;
    p.bootstrap_trials = 3;
    return p;
  }
  data::Dataset data_;
  std::vector<data::Dataset> shards_;
};

TEST_F(CoresetFitTest, DenseAndSparseFingerprintsBitIdentical) {
  auto dense = base_params();
  dense.comm_mode = core::CommMode::kDense;
  auto sparse = base_params();
  sparse.comm_mode = core::CommMode::kSparse;
  const auto a = fit_mode(shards_, kRanks, dense);
  const auto b = fit_mode(shards_, kRanks, sparse);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_TRUE(a.counters.count("reduce_algo_tree"));
  EXPECT_FALSE(a.counters.count("reduce_algo_coreset"));
}

TEST_F(CoresetFitTest, ForcedCoresetIsDeterministicAndCloseToDense) {
  auto dense = base_params();
  dense.comm_mode = core::CommMode::kDense;
  auto coreset = base_params();
  coreset.comm_mode = core::CommMode::kCoreset;
  coreset.coreset_max_cells = 1024;  // below occupancy: forces real sampling

  const auto exact = fit_mode(shards_, kRanks, dense);
  const auto approx1 = fit_mode(shards_, kRanks, coreset);
  const auto approx2 = fit_mode(shards_, kRanks, coreset);

  // Same seed -> same sketches -> same model, labels, and metrics.
  EXPECT_EQ(approx1.labels, approx2.labels);
  EXPECT_DOUBLE_EQ(approx1.score, approx2.score);
  EXPECT_EQ(approx1.counters, approx2.counters);

  // The coreset plane actually ran and reported its traffic.
  ASSERT_TRUE(approx1.counters.count("reduce_algo_coreset"));
  EXPECT_GT(approx1.counters.at("coreset_cells_sent"), 0u);

  // Bounded error: clustering agrees with the dense plane.
  const double ari = stats::adjusted_rand_index(approx1.labels, exact.labels);
  EXPECT_GE(ari, 0.9) << "coreset fit diverged from dense fit";
}

TEST_F(CoresetFitTest, AutoUpgradesToCoresetOnceDensityIsObserved) {
  auto params = base_params();
  params.comm_mode = core::CommMode::kAuto;
  params.coreset_max_cells = 64;  // tiny cap: the density rule must trip
  const auto result = fit_mode(shards_, kRanks, params);
  // Trial 0 merges exactly (no density observed yet)...
  const std::uint64_t exact_merges =
      (result.counters.count("reduce_algo_rh")
           ? result.counters.at("reduce_algo_rh")
           : 0) +
      (result.counters.count("reduce_algo_tree")
           ? result.counters.at("reduce_algo_tree")
           : 0);
  EXPECT_GE(exact_merges, 1u);
  // ...and later trials switch to the coreset plane.
  ASSERT_TRUE(result.counters.count("reduce_algo_coreset"))
      << "kAuto never selected the coreset plane";
  EXPECT_GE(result.counters.at("reduce_algo_coreset"), 1u);
}

TEST_F(CoresetFitTest, AutoWithDefaultKnobsMatchesSparseExactly) {
  // The density rule must not trip at default scale: kAuto is the default
  // comm mode, so this is the fingerprint-stability contract for every
  // pre-existing configuration.
  auto sparse = base_params();
  sparse.comm_mode = core::CommMode::kSparse;
  auto auto_mode = base_params();
  auto_mode.comm_mode = core::CommMode::kAuto;  // default knobs: cap 4096
  const auto a = fit_mode(shards_, kRanks, sparse);
  const auto b = fit_mode(shards_, kRanks, auto_mode);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_FALSE(b.counters.count("reduce_algo_coreset"));
}

TEST_F(CoresetFitTest, ForcedCoresetProcessBackendMatchesThreadBackend) {
  auto params = base_params();
  params.comm_mode = core::CommMode::kCoreset;
  params.coreset_max_cells = 256;
  auto run = [&](comm::Backend backend) {
    comm::LaunchOptions lo;
    lo.backend = backend;
    return comm::run_ranks_collect_bytes(
        lo, kRanks, [&](comm::Communicator& c) {
          const auto result =
              core::fit(c, shards_[static_cast<std::size_t>(c.rank())].points,
                        params);
          ByteWriter w;
          w.write_vec(result.labels);
          w.write(result.model.score());
          return w.take();
        });
  };
  const auto threaded = run(comm::Backend::kThread);
  const auto process = run(comm::Backend::kProcess);
  ASSERT_EQ(threaded.size(), process.size());
  for (std::size_t r = 0; r < threaded.size(); ++r) {
    EXPECT_EQ(threaded[r], process[r]) << "rank " << r;
  }
}

}  // namespace
}  // namespace keybin2
