file(REMOVE_RECURSE
  "libkb2_baselines.a"
)
