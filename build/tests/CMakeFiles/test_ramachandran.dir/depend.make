# Empty dependencies file for test_ramachandran.
# This may be replaced when dependencies are built.
