// k-means++ baseline (paper §4 comparator #1: "K-means++, an optimized
// version of the popular K-means algorithm from scikit-learn").
//
// D^2-weighted seeding (Arthur & Vassilvitskii) followed by Lloyd iterations.
// Unlike KeyBin2, k must be given — exactly the handicap the paper gives the
// baselines ("we provide the true number of clusters to kmeans++").
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace keybin2::baselines {

/// How the distributed variant picks initial centres.
enum class Seeding {
  /// Liao's parallel-kmeans: the first k points of the dataset. Cheap and
  /// faithful to the paper's comparator — and the reason it degrades in
  /// high dimension (centres seeded inside one cluster cannot escape once
  /// clusters are far apart).
  kFirstKPoints,
  /// k-means++ on a cross-rank sample (a stronger, modern seeding).
  kSampledKMeansPP,
};

struct KMeansParams {
  std::size_t k = 4;
  int max_iters = 300;
  double tol = 1e-6;        // relative centre-shift convergence threshold
  std::uint64_t seed = 42;
  int n_init = 1;           // restarts; best inertia wins
  Seeding seeding = Seeding::kFirstKPoints;  // parallel_kmeans only
};

struct KMeansResult {
  std::vector<int> labels;
  Matrix centers;  // k x dims
  double inertia = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// D^2-weighted initial centres.
Matrix kmeanspp_init(const Matrix& points, std::size_t k, std::uint64_t seed);

/// Full k-means++: seeding + Lloyd, optionally restarted n_init times.
KMeansResult kmeans(const Matrix& points, const KMeansParams& params);

/// One Lloyd run from the given initial centres (exposed for the
/// distributed variant and for tests).
KMeansResult lloyd(const Matrix& points, Matrix centers, int max_iters,
                   double tol);

}  // namespace keybin2::baselines
