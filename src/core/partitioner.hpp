// Histogram partitioning (paper §3.2).
//
// A partition of one dimension is a set of "primary clusters": contiguous
// bin ranges separated by cuts. KeyBin2 finds the cuts by non-parametric
// discrete optimization entirely in histogram space:
//   1. smooth the merged histogram with a moving average (window = sqrt(B)),
//   2. local linear regression per window -> slope (first derivative),
//   3. difference of slopes -> inflection points (regions of sudden change),
//   4. modes = prominent maxima of the smoothed density; one cut at the
//      density minimum between each pair of consecutive modes.
// This maximizes inter-cluster separation (cuts sit at the lowest density
// between modes) while minimizing intra-cluster spread (every mode keeps its
// full basin), with no density threshold to tune.
//
// The KeyBin-v1 heuristic (dense runs above a fixed fraction of the peak) is
// kept for the ablation benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

/// A dimension's partition: cut positions and derived primary clusters.
struct DimensionPartition {
  /// Start bin of every primary cluster except the first (sorted,
  /// exclusive of 0); empty means the whole dimension is one cluster.
  std::vector<std::size_t> cuts;
  std::size_t bins = 0;

  std::size_t primary_count() const { return cuts.size() + 1; }

  /// Primary cluster index of bin b (0-based).
  std::uint32_t primary_of(std::size_t b) const;

  /// Bin range [begin, end) of primary cluster p.
  std::pair<std::size_t, std::size_t> range_of(std::size_t p) const;
};

/// Diagnostic trace of the discrete optimization (exposed for tests and the
/// Figure 2 bench).
struct PartitionTrace {
  std::vector<double> smoothed;
  std::vector<double> slope;        // local-regression first derivative
  std::vector<double> curvature;    // first difference of slopes
  std::vector<std::size_t> modes;   // prominent maxima
  std::vector<std::size_t> inflections;
};

/// Discrete-optimization partitioner (KeyBin2). `min_prominence` is a
/// fraction of the smoothed peak density. `smoothing` selects the paper's
/// moving average or the KDE it benchmarks against (§3.2).
DimensionPartition partition_discrete_opt(
    std::span<const double> counts, double min_prominence,
    PartitionTrace* trace = nullptr,
    Smoothing smoothing = Smoothing::kMovingAverage);

/// KeyBin v1 heuristic: primary clusters are maximal runs of bins whose
/// density is at least `density_threshold` * peak; sparse gaps between runs
/// are split at their midpoint between the neighbouring runs.
DimensionPartition partition_v1_threshold(std::span<const double> counts,
                                          double density_threshold);

/// Dispatch on Params (used by the pipeline and ablation benches).
DimensionPartition partition(std::span<const double> counts,
                             const Params& params,
                             PartitionTrace* trace = nullptr);

}  // namespace keybin2::core
