# Empty compiler generated dependencies file for fig4_fingerprints.
# This may be replaced when dependencies are built.
