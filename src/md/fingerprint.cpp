#include "md/fingerprint.hpp"

#include <algorithm>
#include <cstdlib>

namespace keybin2::md {

std::vector<FingerprintSegment> fingerprint_segments(
    std::span<const int> labels, std::size_t min_run) {
  std::vector<FingerprintSegment> segments;
  if (labels.empty()) return segments;

  std::size_t start = 0;
  for (std::size_t i = 1; i <= labels.size(); ++i) {
    if (i == labels.size() || labels[i] != labels[start]) {
      segments.push_back(FingerprintSegment{start, i, labels[start]});
      start = i;
    }
  }
  if (min_run <= 1) return segments;

  // Debounce: fold short runs into their successor (or predecessor at the
  // tail) and re-merge equal neighbours.
  std::vector<FingerprintSegment> out;
  for (const auto& seg : segments) {
    const bool s = seg.end - seg.begin >= min_run;
    if (!out.empty() && (!s || out.back().label == seg.label)) {
      if (s && out.back().end - out.back().begin < min_run &&
          out.back().label != seg.label) {
        // Previous run was short flicker: absorb it into this long run.
        out.back() = FingerprintSegment{out.back().begin, seg.end, seg.label};
      } else if (out.back().label == seg.label) {
        out.back().end = seg.end;
      } else {
        out.back().end = seg.end;  // short run absorbed into predecessor
      }
    } else {
      out.push_back(seg);
    }
  }
  return out;
}

std::vector<std::size_t> change_points(std::span<const int> labels,
                                       std::size_t min_run) {
  const auto segments = fingerprint_segments(labels, min_run);
  std::vector<std::size_t> points;
  for (std::size_t s = 1; s < segments.size(); ++s) {
    points.push_back(segments[s].begin);
  }
  return points;
}

BoundaryScore boundary_agreement(std::span<const std::size_t> predicted,
                                 std::span<const std::size_t> truth,
                                 std::size_t tolerance) {
  BoundaryScore score;
  std::vector<bool> used(truth.size(), false);
  for (std::size_t p : predicted) {
    std::size_t best = truth.size();
    std::size_t best_dist = tolerance + 1;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (used[t]) continue;
      const std::size_t dist = p > truth[t] ? p - truth[t] : truth[t] - p;
      if (dist < best_dist) {
        best_dist = dist;
        best = t;
      }
    }
    if (best < truth.size()) {
      used[best] = true;
      ++score.matched;
    }
  }
  score.precision = predicted.empty()
                        ? 0.0
                        : static_cast<double>(score.matched) /
                              static_cast<double>(predicted.size());
  score.recall = truth.empty() ? 0.0
                               : static_cast<double>(score.matched) /
                                     static_cast<double>(truth.size());
  score.f1 = (score.precision + score.recall) > 0.0
                 ? 2.0 * score.precision * score.recall /
                       (score.precision + score.recall)
                 : 0.0;
  return score;
}

}  // namespace keybin2::md
