#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace keybin2::stats {

double ks_statistic_uniform(std::span<const double> counts) {
  const std::size_t n = counts.size();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double ecdf = 0.0, d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ecdf += counts[i] / total;
    const double ucdf = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max(d, std::abs(ecdf - ucdf));
  }
  return d;
}

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  double ta = 0.0, tb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ta += a[i];
    tb += b[i];
  }
  if (ta <= 0.0 || tb <= 0.0) return 0.0;
  double ca = 0.0, cb = 0.0, d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ca += a[i] / ta;
    cb += b[i] / tb;
    d = std::max(d, std::abs(ca - cb));
  }
  return d;
}

double ks_statistic_gaussian(std::span<const double> counts, double lo,
                             double hi) {
  const std::size_t n = counts.size();
  if (n == 0 || hi <= lo) return 0.0;
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;

  // Moment-match a Gaussian on bin centres.
  const double width = (hi - lo) / static_cast<double>(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + width * (static_cast<double>(i) + 0.5);
    mean += x * counts[i];
  }
  mean /= total;
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + width * (static_cast<double>(i) + 0.5);
    var += (x - mean) * (x - mean) * counts[i];
  }
  var /= total;
  if (var <= 0.0) return 0.0;
  const double sigma = std::sqrt(var);

  auto phi = [&](double x) {
    return 0.5 * std::erfc(-(x - mean) / (sigma * std::numbers::sqrt2));
  };
  double ecdf = 0.0, d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ecdf += counts[i] / total;
    const double edge = lo + width * static_cast<double>(i + 1);
    d = std::max(d, std::abs(ecdf - phi(edge)));
  }
  return d;
}

double ks_pvalue(double d, double n) {
  if (d <= 0.0 || n <= 0.0) return 1.0;
  const double sn = std::sqrt(n);
  const double lambda = d * (sn + 0.12 + 0.11 / sn);
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace keybin2::stats
