// Rank-failure soak tests (DESIGN.md §4b): a rank dies mid-trial under a
// randomized fault schedule, and the distributed fit must complete on the
// survivors — shrunken group, valid model, degraded-mode statistics in the
// trace report — without ever hanging. Every schedule is seeded, so a
// passing run is exactly reproducible.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"

namespace keybin2 {
namespace {

using comm::Communicator;
using comm::run_ranks;

core::Params resilient_params() {
  core::Params p;
  // A short deadline turns dropped messages into recoverable TimeoutErrors;
  // generous retries absorb the random faults that keep firing after the
  // shrink.
  p.comm_timeout_seconds = 1.0;
  p.max_shrink_retries = 6;
  return p;
}

TEST(Resilience, SoakKillOneRankMidTrialCompletesOnSurvivors) {
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1200, 2);
  const auto shards = data::shard(d, 4);
  const auto params = resilient_params();

  std::atomic<int> survivors_done{0};
  std::atomic<bool> killed_rank_died{false};
  std::atomic<double> degraded_counter{-1.0};

  run_ranks(4, [&](Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    comm::fault::FaultSchedule s;
    s.seed = 2024;
    if (c.rank() == 2) {
      s.kill_at_op = 40;  // a full fit is hundreds of ops: dies mid-trial
    } else if (c.rank() == 1) {
      s.drop_prob = 0.004;
      s.zero_fill_prob = 0.004;
    }
    comm::fault::FaultyComm faulty(c, s);
    runtime::Context ctx(faulty, params.seed);
    try {
      const auto result = core::fit(ctx, shards[r].points, params);

      // Survivor: the fit completed over the shrunken group.
      EXPECT_TRUE(ctx.degraded());
      EXPECT_EQ(ctx.excluded_ranks(), 1);
      EXPECT_EQ(ctx.size(), 3);
      EXPECT_GE(result.model.n_clusters(), 1);
      EXPECT_EQ(result.labels.size(), shards[r].points.rows());
      for (const int label : result.labels) EXPECT_GE(label, 0);

      // Degraded-mode statistics surface in the merged trace report.
      const auto report = ctx.trace_report();
      if (ctx.is_root()) {
        const auto it = report.counters.find("degraded_ranks");
        ASSERT_NE(it, report.counters.end());
        degraded_counter.store(it->second);
        EXPECT_GE(report.counters.count("fit_retries"), 1u);
      }
      survivors_done.fetch_add(1);
    } catch (const comm::fault::KilledError&) {
      // The killed rank departs; the survivors shrink around it. Catching
      // our own death here keeps run_ranks() from reporting it as a test
      // failure — which is exactly how a real job's dead node looks to the
      // survivors: silence.
      killed_rank_died.store(true);
    }
  });

  EXPECT_TRUE(killed_rank_died.load());
  EXPECT_EQ(survivors_done.load(), 3);
  EXPECT_DOUBLE_EQ(degraded_counter.load(), 1.0);
}

TEST(Resilience, TransientCorruptionRetriesWithoutShrinking) {
  // Zero-filled frames trip the CRC check and trigger retries, but no rank
  // is ever lost: the group must NOT shrink, and the fit must complete over
  // all four ranks.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1200, 2);
  const auto shards = data::shard(d, 4);
  const auto params = resilient_params();

  std::atomic<int> completed{0};
  run_ranks(4, [&](Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    comm::fault::FaultSchedule s;
    s.seed = 7;
    if (c.rank() == 1) s.zero_fill_prob = 0.01;
    comm::fault::FaultyComm faulty(c, s);
    runtime::Context ctx(faulty, params.seed);
    const auto result = core::fit(ctx, shards[r].points, params);
    EXPECT_FALSE(ctx.degraded());
    EXPECT_EQ(ctx.size(), 4);
    EXPECT_GE(result.model.n_clusters(), 1);
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), 4);
}

TEST(Resilience, RetriesExhaustIntoAnErrorNotAHang) {
  // A permanently corrupting rank defeats every retry; the run must end in
  // a CommError once max_shrink_retries is spent — never a hang.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 400, 2);
  const auto shards = data::shard(d, 2);
  core::Params params;
  params.comm_timeout_seconds = 1.0;
  params.max_shrink_retries = 1;

  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& c) {
                  const auto r = static_cast<std::size_t>(c.rank());
                  comm::fault::FaultSchedule s;
                  if (c.rank() == 1) s.zero_fill_prob = 1.0;
                  comm::fault::FaultyComm faulty(c, s);
                  core::fit(faulty, shards[r].points, params);
                }),
      comm::CommError);
}

}  // namespace
}  // namespace keybin2
