# Empty compiler generated dependencies file for kb2_core.
# This may be replaced when dependencies are built.
