// Message-passing substrate for KeyBin2's distributed drivers.
//
// The paper's implementation uses mpi4py on an Infiniband cluster. This
// environment has no MPI runtime, so keybin2::comm provides the same
// programming model from scratch: a fixed group of ranks exchanging typed
// messages, with collectives (barrier, broadcast, reduce, allreduce, gather,
// allgather) built on top of point-to-point send/recv using the standard
// binomial-tree algorithms. Backends:
//   * SelfComm   — a single rank (serial execution, no copies).
//   * ThreadComm — N ranks simulated by N threads in one process, talking
//                  through mailboxes. Exercises the identical code path a
//                  real MPI deployment would (serialize → send → reduce →
//                  broadcast), with real concurrency.
//
// All collective calls must be entered by every rank in the same order
// (SPMD discipline), exactly as in MPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"

namespace keybin2::comm {

/// Reduction operators supported by reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

/// Per-rank traffic counters; used by benches and the runtime tracer to
/// report communication volume (the paper claims the histogram exchange is
/// "as small as several Kbytes"). Send and receive sides are counted
/// symmetrically: within a group, the sums over all ranks must match.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    return *this;
  }

  /// Counter-wise difference (for per-scope deltas); counters are monotone,
  /// so `later - earlier` never underflows.
  TrafficStats operator-(const TrafficStats& o) const {
    return TrafficStats{messages_sent - o.messages_sent,
                        bytes_sent - o.bytes_sent,
                        messages_received - o.messages_received,
                        bytes_received - o.bytes_received};
  }
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Point-to-point: deliver bytes to `dest` under `tag`. User tags must be
  /// in [0, kUserTagLimit); higher tags are reserved for collectives.
  virtual void send(int dest, int tag, std::span<const std::byte> data) = 0;

  /// Blocking receive of the next message from `src` with `tag` (FIFO per
  /// (src, tag) channel).
  virtual std::vector<std::byte> recv(int src, int tag) = 0;

  virtual void barrier() = 0;

  virtual TrafficStats stats() const = 0;

  static constexpr int kUserTagLimit = 1 << 20;

  // ---- Collectives (implemented once, over send/recv) ----

  /// Broadcast `data` from `root` to all ranks (binomial tree).
  void broadcast(std::vector<std::byte>& data, int root);

  /// Elementwise reduction to `root`; every rank passes a vector of the same
  /// length. On non-root ranks the result is empty.
  std::vector<double> reduce(std::span<const double> local, ReduceOp op,
                             int root);
  std::vector<std::uint64_t> reduce(std::span<const std::uint64_t> local,
                                    ReduceOp op, int root);

  /// Elementwise reduction, result available on every rank.
  std::vector<double> allreduce(std::span<const double> local, ReduceOp op);
  std::vector<std::uint64_t> allreduce(std::span<const std::uint64_t> local,
                                       ReduceOp op);

  /// Scalar conveniences.
  double allreduce(double value, ReduceOp op);
  std::uint64_t allreduce(std::uint64_t value, ReduceOp op);

  /// Ring allreduce (sum): the accumulating pass walks the ring 0 -> 1 ->
  /// ... -> p-1, then the distribution pass walks it again, so no central
  /// authority ever exists — the topology the paper notes KeyBin2 also
  /// supports for its histogram merge (§3 step 3). 2(p-1) messages.
  std::vector<double> ring_allreduce(std::span<const double> local);

  /// Gather per-rank byte blobs to `root` (index = source rank). On non-root
  /// ranks the result is empty.
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> local,
                                             int root);

  /// Gather per-rank blobs to every rank.
  std::vector<std::vector<std::byte>> allgather(
      std::span<const std::byte> local);

  // ---- Typed helpers ----

  /// Send a double vector (length prefix included).
  void send_doubles(int dest, int tag, std::span<const double> v);
  std::vector<double> recv_doubles(int src, int tag);

 protected:
  void check_rank(int r) const;
  void check_user_tag(int tag) const;

 private:
  template <typename T>
  std::vector<T> reduce_impl(std::span<const T> local, ReduceOp op, int root,
                             int base_tag);
  template <typename T>
  std::vector<T> allreduce_impl(std::span<const T> local, ReduceOp op);
};

/// Single-rank communicator: all collectives are identity operations and
/// send/recv works as a loopback queue (so SPMD code runs unchanged).
class SelfComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override {}
  TrafficStats stats() const override { return stats_; }

 private:
  // (tag -> FIFO of messages); loopback only.
  std::vector<std::pair<int, std::vector<std::byte>>> queue_;
  TrafficStats stats_;
};

}  // namespace keybin2::comm
