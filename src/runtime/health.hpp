// In-process health monitoring: EWMA baselines of stage latency and
// wait-ratio, with anomalies surfaced live through the EventLog.
//
// Post-mortem trace analysis (runtime/analysis) tells you where a finished
// run spent its time; the HealthMonitor tells you *while the run is still
// going* that a stage suddenly takes 3x its moving baseline, or that a rank
// went from computing to mostly waiting — the live symptom of a straggling
// or fault-injected peer. It observes two streams:
//
//   * Tracer scope closes (ScopeObserver) — per-path wall time. Repeated
//     scopes ("fit/trial3/bin" folds to "fit/trial*/bin") build an EWMA
//     baseline; a close that exceeds `latency_factor` x baseline after
//     warmup emits a "stage_latency_anomaly" event.
//   * Comm waits (record_wait, fed by CommMonitor) — recv/barrier blocked
//     time. Each scope close also checks the fraction of its wall spent
//     blocked against an EWMA wait-ratio baseline; a jump beyond
//     `wait_ratio_slack` emits "wait_ratio_anomaly".
//
// Both events carry the stage, the observed value, and the baseline, so a
// degraded run under fault injection is visible in the JSONL log as it
// happens, not just in the post-mortem report. Anomaly counts also land in
// the MetricsRegistry ("health_latency_anomalies" / "health_wait_anomalies")
// so merged metrics show which rank saw them.
//
// Single-writer like the Tracer: all calls arrive on the owning rank's
// thread.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/tracer.hpp"

namespace keybin2::runtime {

class EventLog;
class MetricsRegistry;

struct HealthConfig {
  double ewma_alpha = 0.2;        // weight of the newest observation
  double latency_factor = 3.0;    // anomaly: wall > factor x EWMA baseline
  double wait_ratio_slack = 0.3;  // anomaly: wait/wall > baseline + slack
  int warmup = 3;                 // observations before a path can alarm
  std::int64_t min_wall_ns = 200'000;  // ignore scopes too short to matter
};

class HealthMonitor final : public ScopeObserver {
 public:
  HealthMonitor(EventLog* log, MetricsRegistry* metrics,
                HealthConfig config = {})
      : log_(log), metrics_(metrics), config_(config) {}

  /// A recv or barrier blocked for `wait_ns` (fed by CommMonitor).
  void record_wait(std::int64_t wait_ns) { total_wait_ns_ += wait_ns; }

  // ScopeObserver:
  void on_scope_open(std::string_view path) override;
  void on_scope_close(std::string_view path, std::int64_t wall_ns) override;

  /// Anomalies emitted so far (latency + wait-ratio).
  std::uint64_t anomalies() const { return anomalies_; }

  /// "fit/trial12/bin" -> "fit/trial*/bin": repeated per-iteration scopes
  /// share one baseline instead of each seeing a single cold sample.
  static std::string baseline_key(std::string_view path);

 private:
  struct Baseline {
    int count = 0;
    double ewma_wall_ns = 0.0;
    double ewma_wait_ratio = 0.0;
  };

  struct OpenScope {
    std::string key;
    std::int64_t wait_at_open = 0;
  };

  EventLog* log_;
  MetricsRegistry* metrics_;
  HealthConfig config_;
  std::int64_t total_wait_ns_ = 0;
  std::vector<OpenScope> open_;
  std::map<std::string, Baseline> baselines_;
  std::uint64_t anomalies_ = 0;
};

}  // namespace keybin2::runtime
