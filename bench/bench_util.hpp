// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench accepts:
//   --points-per-rank N   shard size (default: scaled-down for a laptop/CI)
//   --ranks N             simulated MPI ranks
//   --runs N              independent repetitions (paper: 20)
//   --seed S              base seed
//   --full                the paper's sizes (80,000 points per rank, 20 runs)
//   --trace               per-stage pipeline breakdown (wall time + traffic)
// and prints the same rows the paper's table/figure reports, as
// mean +/- stddev over the runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "comm/launch.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"
#include "runtime/json.hpp"
#include "runtime/metrics.hpp"
#include "runtime/tracer.hpp"
#include "stats/distributions.hpp"
#include "stats/metrics.hpp"

// Build provenance, injected by the kb2_provenance CMake interface target.
// The fallbacks keep bench_util.hpp compilable from targets that don't link
// it — their reports just say "unknown", and the compare warns accordingly.
#ifndef KB2_GIT_SHA
#define KB2_GIT_SHA "unknown"
#endif
#ifndef KB2_COMPILER_ID
#define KB2_COMPILER_ID "unknown"
#endif
#ifndef KB2_COMPILER_VERSION
#define KB2_COMPILER_VERSION ""
#endif
#ifndef KB2_BUILD_FLAGS
#define KB2_BUILD_FLAGS "unknown"
#endif

namespace keybin2::bench {

struct Options {
  std::size_t points_per_rank = 2000;
  int ranks = 16;
  int runs = 3;
  std::uint64_t seed = 42;
  bool full = false;
  bool trace = false;
  std::string name = "bench";  // argv[0] basename; names BENCH_<name>.json

  static Options parse(int argc, char** argv) {
    Options o;
    if (argc >= 1 && argv[0] != nullptr) {
      std::string_view path = argv[0];
      if (const auto slash = path.find_last_of('/');
          slash != std::string_view::npos) {
        path.remove_prefix(slash + 1);
      }
      if (!path.empty()) o.name = std::string(path);
    }
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--points-per-rank")) {
        o.points_per_rank = std::strtoull(next("--points-per-rank"), nullptr, 10);
      } else if (!std::strcmp(argv[i], "--ranks")) {
        o.ranks = std::atoi(next("--ranks"));
      } else if (!std::strcmp(argv[i], "--runs")) {
        o.runs = std::atoi(next("--runs"));
      } else if (!std::strcmp(argv[i], "--seed")) {
        o.seed = std::strtoull(next("--seed"), nullptr, 10);
      } else if (!std::strcmp(argv[i], "--full")) {
        o.full = true;
        o.points_per_rank = 80000;
        o.runs = 20;
      } else if (!std::strcmp(argv[i], "--trace")) {
        o.trace = true;
      } else if (!std::strcmp(argv[i], "--help")) {
        std::printf(
            "usage: %s [--points-per-rank N] [--ranks N] [--runs N] "
            "[--seed S] [--full] [--trace]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
        std::exit(2);
      }
    }
    return o;
  }
};

/// Print a merged per-stage trace (from Context::trace_report()) under a
/// caption. No-op for empty reports, so non-root ranks can call it freely.
inline void print_trace(const char* caption,
                        const runtime::TraceReport& report) {
  if (report.empty()) return;
  std::printf("-- %s --\n%s", caption, report.format().c_str());
}

/// mean +/- stddev accumulator over runs.
class Series {
 public:
  void add(double x) { m_.add(x); }
  double mean() const { return m_.mean(); }
  double stddev() const { return m_.stddev(); }
  std::string str(int precision = 3) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, mean(),
                  precision, stddev());
    return buf;
  }

 private:
  stats::OnlineMoments m_;
};

/// Accuracy row for one method on one run: noise labels (-1) become
/// singletons, matching how the paper scores pdsdbscan's output.
struct Accuracy {
  double clusters = 0.0;
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

inline Accuracy score_labels(std::vector<int> predicted,
                             const std::vector<int>& truth) {
  int next = 0;
  for (int l : predicted) next = std::max(next, l + 1);
  for (auto& l : predicted) {
    if (l < 0) l = next++;
  }
  const auto s = stats::pairwise_scores(predicted, truth);
  Accuracy a;
  a.clusters = static_cast<double>(stats::distinct_labels(predicted));
  a.recall = s.recall;
  a.precision = s.precision;
  a.f1 = s.f1;
  return a;
}

/// Machine-readable mirror of what a bench prints, written to
/// BENCH_<name>.json at exit. Collects three kinds of payload:
///   * rows    — every MethodSeries::print_row call (mean/stddev per column),
///   * series  — ad-hoc named scalar series a bench wants persisted,
///   * captures — merged trace + metrics reports from instrumented fits.
/// Benches that never capture still get comm metrics: write() runs a small
/// probe fit (4 ranks, comm metrics enabled) and stores it labeled "probe",
/// so every BENCH json carries a traffic matrix, stage walls, and latency
/// quantiles. A singleton so print_row can feed it without threading a
/// handle through every harness.
class Reporter {
 public:
  static Reporter& global() {
    static Reporter r;
    return r;
  }

  /// Label attached to subsequently recorded rows (e.g. "ranks=4").
  void set_section(std::string section) { section_ = std::move(section); }

  void add_row(const char* method, const Series& clusters,
               const Series& recall, const Series& precision, const Series& f1,
               const Series& time) {
    rows_.push_back(Row{section_, method, clusters, recall, precision, f1,
                        time});
  }

  void add_series(const std::string& key, const Series& s) {
    series_.emplace_back(key, s);
  }

  /// Collective over ctx.comm(): merge this fit's trace + metrics; the root
  /// rank stores them under `label`, every other rank stores nothing. Call
  /// ctx.enable_comm_metrics() before the fit or the traffic matrix and wait
  /// histograms come back empty.
  void capture(runtime::Context& ctx, const std::string& label) {
    auto trace = ctx.trace_report();
    auto metrics = ctx.metrics_report();
    if (ctx.is_root()) {
      captures_.push_back(
          Capture{label, std::move(trace), std::move(metrics)});
    }
  }

  /// Write BENCH_<opt.name>.json into the working directory.
  void write(const Options& opt) {
    if (captures_.empty()) probe_capture(opt);

    runtime::JsonWriter w;
    w.begin_object();
    w.key("bench").value(opt.name);
    emit_machine(w);
    emit_provenance(w);
    w.key("options").begin_object();
    w.key("points_per_rank").value(static_cast<std::uint64_t>(
        opt.points_per_rank));
    w.key("ranks").value(opt.ranks);
    w.key("runs").value(opt.runs);
    w.key("seed").value(opt.seed);
    w.key("full").value(opt.full);
    w.end_object();

    w.key("rows").begin_array();
    for (const auto& r : rows_) {
      w.begin_object();
      if (!r.section.empty()) w.key("section").value(r.section);
      w.key("method").value(r.method);
      emit_series(w, "clusters", r.clusters);
      emit_series(w, "recall", r.recall);
      emit_series(w, "precision", r.precision);
      emit_series(w, "f1", r.f1);
      emit_series(w, "time_s", r.time);
      w.end_object();
    }
    w.end_array();

    w.key("series").begin_object();
    for (const auto& [key, s] : series_) emit_series(w, key, s);
    w.end_object();

    w.key("captures").begin_array();
    for (const auto& c : captures_) {
      w.begin_object();
      w.key("label").value(c.label);
      emit_trace(w, c.trace);
      w.key("metrics");
      c.metrics.to_json(w);
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const std::string path = "BENCH_" + opt.name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu rows, %zu captures)\n", path.c_str(),
                rows_.size(), captures_.size());
  }

 private:
  struct Row {
    std::string section;
    std::string method;
    Series clusters, recall, precision, f1, time;
  };
  struct Capture {
    std::string label;
    runtime::TraceReport trace;
    runtime::MetricsReport metrics;
  };

  /// Machine provenance so a committed baseline records where its numbers
  /// came from. The perf gate compares options, not machines — but a FAIL
  /// against a baseline from different hardware is diagnosable from this
  /// block instead of a mystery.
  static void emit_machine(runtime::JsonWriter& w) {
    w.key("machine").begin_object();
    w.key("hardware_concurrency")
        .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
#if defined(__unix__) || defined(__APPLE__)
    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) == 0) {
      w.key("hostname").value(host);
    }
    struct utsname uts{};
    if (uname(&uts) == 0) {
      w.key("os").value(std::string(uts.sysname) + " " + uts.release);
      w.key("arch").value(uts.machine);
    }
#endif
    w.end_object();
  }

  /// Build provenance next to the machine block: which commit, compiler,
  /// and flags produced these numbers. kb2_analyze --compare warns (never
  /// fails) when a report and its baseline disagree here — a regression
  /// measured against a baseline from another compiler is a different
  /// conversation than one from the same build.
  static void emit_provenance(runtime::JsonWriter& w) {
    w.key("provenance").begin_object();
    w.key("git_sha").value(KB2_GIT_SHA);
    w.key("compiler").value(KB2_COMPILER_ID " " KB2_COMPILER_VERSION);
    w.key("flags").value(KB2_BUILD_FLAGS);
    w.end_object();
  }

  static void emit_series(runtime::JsonWriter& w, std::string_view key,
                          const Series& s) {
    w.key(key).begin_object();
    w.key("mean").value(s.mean());
    w.key("stddev").value(s.stddev());
    w.end_object();
  }

  static void emit_trace(runtime::JsonWriter& w,
                         const runtime::TraceReport& trace) {
    w.key("trace").begin_object();
    w.key("ranks").value(trace.ranks);
    w.key("counters").begin_object();
    for (const auto& [name, v] : trace.counters) w.key(name).value(v);
    w.end_object();
    w.key("stages").begin_array();
    for (const auto& s : trace.stages) {
      w.begin_object();
      w.key("path").value(s.path);
      w.key("ranks").value(s.ranks);
      w.key("calls").value(s.calls);
      w.key("min_s").value(s.min_seconds);
      w.key("mean_s").value(s.mean_seconds);
      w.key("max_s").value(s.max_seconds);
      w.key("messages_sent").value(s.traffic.messages_sent);
      w.key("bytes_sent").value(s.traffic.bytes_sent);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  /// Fallback for benches that never call capture(): a small instrumented
  /// fit whose merged reports stand in, labeled "probe" to keep it distinct
  /// from anything the bench itself measured.
  void probe_capture(const Options& opt) {
    constexpr int kProbeRanks = 4;
    constexpr std::size_t kProbePoints = 4000;
    const auto spec = data::make_paper_mixture(8, 3, opt.seed);
    const auto d = data::sample(spec, kProbePoints, opt.seed + 1);
    const auto shards = data::shard(d, kProbeRanks);
    core::Params params;
    params.seed = opt.seed;
    params.bootstrap_trials = 2;
    comm::run_ranks(kProbeRanks, [&](comm::Communicator& c) {
      runtime::Context ctx(c, params.seed);
      ctx.enable_comm_metrics();
      (void)core::fit(ctx, shards[static_cast<std::size_t>(c.rank())].points,
                      params);
      capture(ctx, "probe");
    });
  }

  std::string section_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, Series>> series_;
  std::vector<Capture> captures_;
};

/// One printed table row, paper format:
/// method | clusters | recall | precision | F1 | time (s)
struct MethodSeries {
  Series clusters, recall, precision, f1, time;

  void add(const Accuracy& a, double seconds) {
    clusters.add(a.clusters);
    recall.add(a.recall);
    precision.add(a.precision);
    f1.add(a.f1);
    time.add(seconds);
  }

  void print_row(const char* method) const {
    std::printf("%-18s %18s %16s %16s %16s %18s\n", method,
                clusters.str(2).c_str(), recall.str(3).c_str(),
                precision.str(3).c_str(), f1.str(3).c_str(),
                time.str(2).c_str());
    Reporter::global().add_row(method, clusters, recall, precision, f1, time);
  }
};

inline void print_header() {
  std::printf("%-18s %18s %16s %16s %16s %18s\n", "Method", "Clusters",
              "Recall", "Precision", "F1", "Time (sec)");
}

}  // namespace keybin2::bench
