// Kernel density estimation on binned data (paper §3.2's comparison point).
//
// "The kernel density estimation (KDE) is an alternative method that can
// produce an approximation of the true probability density function...
// Our simpler method reaches similar accuracy compared to KDE curves, but
// our smoothing technique is much faster." This module provides the KDE
// the paper compares against, operating on histogram counts (a binned KDE:
// each bin's mass is spread by a Gaussian kernel), so the
// ablation_smoothing bench can reproduce the accuracy/speed claim.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace keybin2::stats {

/// Gaussian-kernel density estimate over bin indices: out[i] =
/// sum_j counts[j] * K((i-j)/h) with K the standard normal kernel,
/// normalized so total mass is preserved. h is the bandwidth in bins.
std::vector<double> kde_smooth(std::span<const double> counts,
                               double bandwidth_bins);

/// Silverman's rule-of-thumb bandwidth for binned data (in bins):
/// h = 1.06 * sigma_hat * n^(-1/5), where sigma_hat is the mass-weighted
/// standard deviation of the bin index and n the total mass. Floored at
/// 0.5 bins.
double silverman_bandwidth(std::span<const double> counts);

}  // namespace keybin2::stats
