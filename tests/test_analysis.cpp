// Trace analytics: hand-built timelines with a known critical path, the
// wall-coverage guarantee on a real distributed fit, straggler attribution
// under injected per-rank delay, HealthMonitor anomaly baselines, the
// JSON parser the tooling reads documents back with, and the
// baseline/current perf-regression comparison.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/analysis/analysis.hpp"
#include "runtime/analysis/compare.hpp"
#include "runtime/context.hpp"
#include "runtime/health.hpp"
#include "runtime/json.hpp"
#include "runtime/log.hpp"
#include "runtime/metrics.hpp"
#include "runtime/timeline.hpp"
#include "runtime/tracer.hpp"

namespace keybin2::runtime {
namespace {

TEST(FoldScopePath, FoldsDigitTailedComponents) {
  EXPECT_EQ(fold_scope_path("fit/trial12/bin"), "fit/trial*/bin");
  EXPECT_EQ(fold_scope_path("fit"), "fit");
  EXPECT_EQ(fold_scope_path("refit/chunk3"), "refit/chunk*");
  EXPECT_EQ(fold_scope_path("pass1_histograms"), "pass1_histograms");
  // The HealthMonitor's baseline keys are the same folding.
  EXPECT_EQ(HealthMonitor::baseline_key("fit/trial7"), "fit/trial*");
}

// The scenario from the design discussion: rank 0 computes for 1000 ns and
// sends; rank 1 finishes its own work at 400 ns, blocks until the message
// lands at 1500 ns (wait 1100), then computes until 2000 ns.
//
//   rank 0:  [==== work 0..1000 ====] --send-->
//   rank 1:  [early 0..400] ....blocked.... recv@1500 [late 1500..2000]
//
// Critical path: rank 0 compute [0,1000] -> transfer [1000,1500] -> rank 1
// compute [1500,2000]. Total 2000 == wall. Rank 0 caused 600 ns of rank 1's
// 1100 ns block (the 400..1000 stretch before the send existed).
std::vector<Timeline> two_rank_handoff() {
  std::vector<Timeline> tls;
  tls.emplace_back(0);
  tls.emplace_back(1);
  tls[0].add_span("work", 0, 1000);
  tls[0].add_flow(1, 1000, /*start=*/true, /*peer=*/1, /*tag=*/9, 64);
  tls[1].add_span("early", 0, 400);
  tls[1].add_flow(1, 1500, /*start=*/false, /*peer=*/0, /*tag=*/9, 64,
                  /*wait_ns=*/1100);
  tls[1].add_span("late", 1500, 2000);
  return tls;
}

TEST(Analyze, HandBuiltHandoffCriticalPath) {
  const auto tls = two_rank_handoff();
  const auto a = analyze(tls);

  EXPECT_EQ(a.ranks, 2);
  EXPECT_EQ(a.wall_ns, 2000);
  EXPECT_EQ(a.critical_total_ns, a.wall_ns);  // exact by construction
  EXPECT_EQ(a.critical_compute_ns, 1500);
  EXPECT_EQ(a.critical_comm_ns, 500);
  EXPECT_EQ(a.critical_wait_ns, 0);
  EXPECT_EQ(a.rank_jumps, 1);

  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_EQ(a.critical_path[0].rank, 0);
  EXPECT_EQ(a.critical_path[0].label, "work");
  EXPECT_EQ(a.critical_path[0].start_ns, 0);
  EXPECT_EQ(a.critical_path[0].end_ns, 1000);
  EXPECT_EQ(a.critical_path[1].kind, CriticalSegment::Kind::kComm);
  EXPECT_EQ(a.critical_path[1].start_ns, 1000);
  EXPECT_EQ(a.critical_path[1].end_ns, 1500);
  EXPECT_EQ(a.critical_path[2].rank, 1);
  EXPECT_EQ(a.critical_path[2].label, "late");

  // Late-sender attribution: rank 1 blocked 1100; 600 of that predates the
  // send and lands on rank 0.
  EXPECT_EQ(a.per_rank[1].wait_ns, 1100);
  EXPECT_EQ(a.per_rank[0].caused_wait_ns, 600);
  EXPECT_EQ(a.straggler_rank, 0);
  EXPECT_EQ(a.straggler_caused_wait_ns, 600);

  const auto text = a.format();
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("straggler: rank 0"), std::string::npos);
}

TEST(Analyze, BarrierWaitLandsOnPath) {
  std::vector<Timeline> tls;
  tls.emplace_back(0);
  tls[0].add_span("step", 0, 1000);
  tls[0].add_wait("barrier", 800, 300);  // blocked 500..800
  const auto a = analyze(tls);
  EXPECT_EQ(a.wall_ns, 1000);
  EXPECT_EQ(a.critical_total_ns, 1000);
  EXPECT_EQ(a.critical_wait_ns, 300);
  EXPECT_EQ(a.critical_compute_ns, 700);
  EXPECT_EQ(a.critical_comm_ns, 0);
}

TEST(Analyze, StageTableImbalance) {
  std::vector<Timeline> tls;
  tls.emplace_back(0);
  tls.emplace_back(1);
  tls[0].add_span("fit/bin", 0, 100);
  tls[1].add_span("fit/bin", 0, 300);
  const auto a = analyze(tls);
  ASSERT_FALSE(a.stages.empty());
  const auto& row = a.stages.front();
  EXPECT_EQ(row.stage, "fit/bin");
  EXPECT_EQ(row.ranks, 2);
  EXPECT_EQ(row.max_ns, 300);
  EXPECT_EQ(row.max_rank, 1);
  EXPECT_DOUBLE_EQ(row.mean_ns(), 200.0);
  EXPECT_DOUBLE_EQ(row.imbalance(), 1.5);
}

TEST(Analyze, SelfTimeExcludesChildren) {
  std::vector<Timeline> tls;
  tls.emplace_back(0);
  tls[0].add_span("fit", 0, 1000);
  tls[0].add_span("fit/bin", 100, 700);
  const auto a = analyze(tls);
  ASSERT_EQ(a.stages.size(), 2u);
  // Sorted by total: the 600 ns child outranks the 400 ns parent remainder.
  EXPECT_EQ(a.stages[0].stage, "fit/bin");
  EXPECT_EQ(a.stages[0].total_ns, 600);
  EXPECT_EQ(a.stages[1].stage, "fit");
  EXPECT_EQ(a.stages[1].total_ns, 400);
}

TEST(Analyze, EmptyInputYieldsEmptyAnalysis) {
  const auto a = analyze(std::vector<Timeline>{});
  EXPECT_EQ(a.ranks, 0);
  EXPECT_EQ(a.wall_ns, 0);
  EXPECT_TRUE(a.critical_path.empty());
}

TEST(Analyze, ToJsonIsWellFormedAndSelfConsistent) {
  const auto a = analyze(two_rank_handoff());
  JsonWriter w;
  a.to_json(w);
  ASSERT_TRUE(json_validate(w.str()));
  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(JsonValue::number_or(doc->find("wall_ns"), -1), 2000.0);
  EXPECT_EQ(JsonValue::number_or(doc->find("critical_path", "total_ns"), -1),
            2000.0);
  EXPECT_EQ(JsonValue::number_or(doc->find("straggler", "rank"), -1), 0.0);
}

/// Run a 4-rank instrumented fit and hand back every rank's timeline.
std::vector<Timeline> traced_fit(
    const comm::fault::FaultSchedule* rank2_schedule = nullptr) {
  const auto spec = data::make_paper_mixture(8, 3, 11);
  const auto d = data::sample(spec, 1200, 12);
  const auto shards = data::shard(d, 4);
  std::vector<Timeline> tls(4);
  comm::run_ranks(4, [&](comm::Communicator& c) {
    core::Params params;
    params.seed = 5;
    params.bootstrap_trials = 2;
    params.comm_timeout_seconds = 20.0;
    auto body = [&](comm::Communicator& endpoint) {
      Context ctx(endpoint, params.seed);
      ctx.enable_timeline();
      (void)core::fit(ctx, shards[static_cast<std::size_t>(c.rank())].points,
                      params);
      tls[static_cast<std::size_t>(c.rank())] = std::move(*ctx.timeline());
    };
    if (rank2_schedule != nullptr && c.rank() == 2) {
      comm::fault::FaultyComm faulty(c, *rank2_schedule);
      body(faulty);
    } else {
      body(c);
    }
  });
  return tls;
}

TEST(Analyze, RealFitCriticalPathCoversWall) {
  const auto tls = traced_fit();
  const auto a = analyze(tls);
  ASSERT_GT(a.wall_ns, 0);
  // The acceptance guarantee: path total equals end-to-end wall within 1%
  // (by construction it is exact; the margin guards the assertion itself).
  EXPECT_NEAR(static_cast<double>(a.critical_total_ns),
              static_cast<double>(a.wall_ns),
              0.01 * static_cast<double>(a.wall_ns));
  EXPECT_GT(a.critical_path.size(), 1u);
  EXPECT_GT(a.rank_jumps, 0);
  // All four ranks show up with busy time.
  ASSERT_EQ(a.per_rank.size(), 4u);
  for (const auto& r : a.per_rank) EXPECT_GT(r.busy_ns, 0);
}

TEST(Analyze, ChromeTraceRoundTripPreservesAnalysis) {
  const auto tls = traced_fit();
  const auto direct = analyze(tls);

  const auto json = chrome_trace_json(tls);
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  const auto back = timelines_from_chrome_trace(*doc);
  ASSERT_EQ(back.size(), tls.size());
  const auto parsed = analyze(back);

  // Timestamps quantize to microseconds with 1 ns rounding in the document;
  // the analysis must agree to well under a percent.
  ASSERT_GT(direct.wall_ns, 0);
  EXPECT_NEAR(static_cast<double>(parsed.wall_ns),
              static_cast<double>(direct.wall_ns),
              0.005 * static_cast<double>(direct.wall_ns) + 2000.0);
  EXPECT_EQ(parsed.critical_total_ns, parsed.wall_ns);
  EXPECT_EQ(parsed.ranks, direct.ranks);
}

TEST(Analyze, ChromeTraceRoundTripKeepsIncarnationTracksAndCounters) {
  // A respawned rank exports two tracks (pid = rank, tid = incarnation).
  // The parser must keep them apart — folding a new incarnation's spans
  // onto the dead one's lane would fabricate overlap — and must carry
  // counter samples ("C" events) through the round trip.
  std::vector<Timeline> tls;
  Timeline first(/*rank=*/1);
  first.add_span("fit", 1000, 5000);
  first.add_counter("sample_density", 2000, 3.0);
  tls.push_back(std::move(first));
  Timeline second(/*rank=*/1);
  second.set_incarnation(2);
  second.add_span("fit", 6000, 9000);
  second.add_counter("sample_density", 7000, 5.0);
  tls.push_back(std::move(second));

  const auto json = chrome_trace_json(tls);
  EXPECT_NE(json.find("rank 1 (inc 2)"), std::string::npos);
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  auto back = timelines_from_chrome_trace(*doc);
  ASSERT_EQ(back.size(), 2u);
  // by_track ordering: (1, 0) before (1, 2).
  EXPECT_EQ(back[0].rank(), 1);
  EXPECT_EQ(back[0].incarnation(), 0);
  EXPECT_EQ(back[1].rank(), 1);
  EXPECT_EQ(back[1].incarnation(), 2);
  for (const auto& tl : back) {
    ASSERT_EQ(tl.spans().size(), 1u);
    ASSERT_EQ(tl.counters().size(), 1u);
    EXPECT_EQ(tl.counters()[0].name, "sample_density");
  }
  EXPECT_DOUBLE_EQ(back[0].counters()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(back[1].counters()[0].value, 5.0);
  // The document rebases to the epoch min; relative layout and durations
  // survive exactly.
  EXPECT_EQ(back[1].spans()[0].start_ns - back[0].spans()[0].start_ns, 5000);
  EXPECT_EQ(back[1].spans()[0].end_ns - back[1].spans()[0].start_ns, 3000);
}

TEST(Analyze, InjectedDelayIsAttributedToTheFaultyRank) {
  // Rank 2's wire delays every message by 2 ms before it is even sent, so
  // every peer blocked on rank 2 accumulates late-sender wait pointing at
  // it. The analysis must name rank 2 the straggler.
  comm::fault::FaultSchedule schedule;
  schedule.delay_prob = 1.0;
  schedule.delay_ms = 2.0;
  const auto tls = traced_fit(&schedule);
  const auto a = analyze(tls);
  EXPECT_EQ(a.straggler_rank, 2);
  EXPECT_GT(a.straggler_caused_wait_ns, 1'000'000);  // >= one 2 ms delay
  EXPECT_GT(a.straggler_share, 0.4);
}

// ---- HealthMonitor ----

HealthConfig tight_config() {
  HealthConfig cfg;
  cfg.warmup = 2;
  cfg.min_wall_ns = 0;
  cfg.latency_factor = 2.0;
  cfg.wait_ratio_slack = 0.3;
  return cfg;
}

TEST(HealthMonitor, LatencyAnomalyAfterWarmup) {
  auto sink = std::make_shared<MemorySink>();
  EventLog log(0);
  log.set_sink(sink);
  MetricsRegistry metrics;
  HealthMonitor hm(&log, &metrics, tight_config());

  // Three 1 ms baselines (trial index varies: all fold to one key), then a
  // 10 ms outlier must alarm; the baseline updates after the check.
  for (int i = 0; i < 3; ++i) {
    hm.on_scope_open("fit/trial" + std::to_string(i));
    hm.on_scope_close("fit/trial" + std::to_string(i), 1'000'000);
  }
  EXPECT_EQ(hm.anomalies(), 0u);
  hm.on_scope_open("fit/trial3");
  hm.on_scope_close("fit/trial3", 10'000'000);
  EXPECT_EQ(hm.anomalies(), 1u);
  const auto events = sink->events_named("stage_latency_anomaly");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(metrics.counters().at("health_latency_anomalies"), 1u);
}

TEST(HealthMonitor, WaitRatioAnomaly) {
  auto sink = std::make_shared<MemorySink>();
  EventLog log(0);
  log.set_sink(sink);
  MetricsRegistry metrics;
  HealthMonitor hm(&log, &metrics, tight_config());

  // Baselines with no blocked time...
  for (int i = 0; i < 3; ++i) {
    hm.on_scope_open("merge" + std::to_string(i));
    hm.on_scope_close("merge" + std::to_string(i), 1'000'000);
  }
  // ...then a scope spending 80% of its wall blocked.
  hm.on_scope_open("merge3");
  hm.record_wait(800'000);
  hm.on_scope_close("merge3", 1'000'000);
  EXPECT_EQ(sink->events_named("wait_ratio_anomaly").size(), 1u);
}

TEST(HealthMonitor, ToleratesAttachMidRun) {
  EventLog log(0);
  MetricsRegistry metrics;
  HealthMonitor hm(&log, &metrics, tight_config());
  // A close with no recorded open (observer attached inside the scope) must
  // not crash or mis-attribute waits.
  hm.on_scope_close("fit", 1'000'000);
  EXPECT_EQ(hm.anomalies(), 0u);
}

TEST(HealthMonitor, ContextIntegrationRunsClean) {
  const auto spec = data::make_paper_mixture(8, 3, 3);
  const auto d = data::sample(spec, 600, 4);
  Context ctx(/*seed=*/5);
  // This test pins the integration wiring (monitor attached to the tracer,
  // quiet on a sane run) — detection sensitivity is pinned by the
  // injected-delay tests above. Default thresholds flake here: under a
  // sanitizer with the suite at full -j, the scheduler can genuinely stall
  // one stage 3x past its EWMA baseline. A descheduled burst is bounded by
  // tens of milliseconds, not 50x a stage wall, so this config stays
  // immune to load while still catching real hangs.
  HealthConfig tolerant;
  tolerant.latency_factor = 50.0;
  tolerant.min_wall_ns = 20'000'000;
  ctx.enable_health_monitor(tolerant);
  core::Params params;
  params.seed = 5;
  params.bootstrap_trials = 2;
  (void)core::fit(ctx, d.points, params);
  ASSERT_NE(ctx.health(), nullptr);
  // A healthy serial fit must not page anyone.
  EXPECT_EQ(ctx.health()->anomalies(), 0u);
}

// ---- JSON parser ----

TEST(JsonParse, BuildsDocumentTree) {
  const auto doc = json_parse(
      R"({"a": [1, 2.5, -3e2], "b": "text", "c": true, "d": null, )"
      R"("nested": {"x": 7}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[2].number(), -300.0);
  EXPECT_EQ(doc->find("b")->string(), "text");
  EXPECT_TRUE(doc->find("c")->boolean());
  EXPECT_EQ(doc->find("d")->kind(), JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(JsonValue::number_or(doc->find("nested", "x"), -1), 7.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(json_parse("{\"a\": }").has_value());
  EXPECT_FALSE(json_parse("[1, 2,]").has_value());
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
}

TEST(JsonParse, DecodesEscapesIncludingSurrogatePairs) {
  const auto doc = json_parse(R"({"s": "héllo 😀"})");
  ASSERT_TRUE(doc.has_value());
  // U+00E9 = C3 A9, U+1F600 = F0 9F 98 80.
  EXPECT_EQ(doc->find("s")->string(), "h\xc3\xa9llo \xf0\x9f\x98\x80");
}

TEST(JsonEscape, EmitsPureAscii) {
  const auto escaped = json_escape("h\xc3\xa9llo");  // "héllo" in UTF-8
  EXPECT_EQ(escaped, "h\\u00e9llo");
  for (const char ch : json_escape("\xf0\x9f\x98\x80")) {
    EXPECT_LT(static_cast<unsigned char>(ch), 0x80u);
  }
  // Escaped output must round-trip through the parser.
  const auto doc = json_parse("\"" + json_escape("sp\xc3\xa4n \x01") + "\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string(), "sp\xc3\xa4n \x01");
}

TEST(JsonEscape, NonAsciiSpanNamesSurviveChromeExport) {
  std::vector<Timeline> tls;
  tls.emplace_back(0);
  tls[0].add_span("r\xc3\xa9gion", 0, 100);  // non-ASCII scope name
  const auto json = chrome_trace_json(tls);
  ASSERT_TRUE(json_validate(json));
  for (const char ch : json) {
    EXPECT_LT(static_cast<unsigned char>(ch), 0x80u);
  }
  EXPECT_NE(json.find("r\\u00e9gion"), std::string::npos);
}

// ---- perf-regression compare ----

std::string bench_doc(double mean_s, double stddev_s, double bytes) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      R"({"bench":"b","options":{"points_per_rank":100,"ranks":4,"runs":3,)"
      R"("seed":42,"full":false},"rows":[],)"
      R"("series":{"staged_seconds":{"mean":%g,"stddev":%g},)"
      R"("reduce_bytes_dense":{"mean":%g,"stddev":0}},"captures":[]})",
      mean_s, stddev_s, bytes);
  return buf;
}

JsonValue parse_or_die(const std::string& text) {
  auto doc = json_parse(text);
  EXPECT_TRUE(doc.has_value());
  return *doc;
}

TEST(Compare, PassesWithinNoiseBand) {
  const auto base = parse_or_die(bench_doc(1.0, 0.05, 1000));
  const auto cur = parse_or_die(bench_doc(1.2, 0.05, 1000));
  const auto result = compare_reports(base, cur);
  EXPECT_TRUE(result.ok()) << result.format();
}

TEST(Compare, SyntheticTwoFoldSlowdownAlwaysFails) {
  const auto base = parse_or_die(bench_doc(1.0, 0.05, 1000));
  const auto cur = parse_or_die(bench_doc(1.0, 0.05, 1000));
  CompareOptions opts;
  opts.scale_time = 2.0;
  const auto result = compare_reports(base, cur, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_GT(result.regressions(), 0);
  EXPECT_NE(result.format().find("REGRESSED"), std::string::npos);
}

TEST(Compare, NoisyBaselineWidensToleranceButCapsAtTwoFold) {
  // cv = 0.5 -> band = min(0.9, 3 * 0.5) = 0.9: 1.85x passes, 2x fails.
  const auto base = parse_or_die(bench_doc(1.0, 0.5, 1000));
  EXPECT_TRUE(
      compare_reports(base, parse_or_die(bench_doc(1.85, 0.5, 1000))).ok());
  EXPECT_FALSE(
      compare_reports(base, parse_or_die(bench_doc(2.05, 0.5, 1000))).ok());
}

TEST(Compare, DeterministicBytesGetTightTolerance) {
  const auto base = parse_or_die(bench_doc(1.0, 0.05, 1000));
  EXPECT_TRUE(
      compare_reports(base, parse_or_die(bench_doc(1.0, 0.05, 1050))).ok());
  const auto result =
      compare_reports(base, parse_or_die(bench_doc(1.0, 0.05, 1200)));
  EXPECT_FALSE(result.ok());
}

TEST(Compare, MissingMetricIsAnError) {
  const auto base = parse_or_die(bench_doc(1.0, 0.05, 1000));
  const auto cur = parse_or_die(
      R"({"bench":"b","options":{"points_per_rank":100,"ranks":4,"runs":3,)"
      R"("seed":42,"full":false},"rows":[],"series":{},"captures":[]})");
  const auto result = compare_reports(base, cur);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.errors.empty());
}

TEST(Compare, OptionMismatchIsAnError) {
  const auto base = parse_or_die(bench_doc(1.0, 0.05, 1000));
  auto text = bench_doc(1.0, 0.05, 1000);
  const auto pos = text.find("\"ranks\":4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"ranks\":8");
  const auto result = compare_reports(base, parse_or_die(text));
  EXPECT_FALSE(result.ok());
}

TEST(Compare, AnalysisReportsCompareOnCriticalPath) {
  auto analysis_doc = [&](std::int64_t scale) {
    const auto tls = two_rank_handoff();
    auto a = analyze(tls);
    a.wall_ns *= scale;
    a.critical_total_ns *= scale;
    a.critical_compute_ns *= scale;
    a.critical_comm_ns *= scale;
    JsonWriter w;
    a.to_json(w);
    return parse_or_die(w.str());
  };
  const auto base = analysis_doc(1);
  EXPECT_TRUE(compare_reports(base, analysis_doc(1)).ok());
  const auto result = compare_reports(base, analysis_doc(3));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace keybin2::runtime
