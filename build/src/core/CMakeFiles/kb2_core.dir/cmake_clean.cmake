file(REMOVE_RECURSE
  "CMakeFiles/kb2_core.dir/assess.cpp.o"
  "CMakeFiles/kb2_core.dir/assess.cpp.o.d"
  "CMakeFiles/kb2_core.dir/binner.cpp.o"
  "CMakeFiles/kb2_core.dir/binner.cpp.o.d"
  "CMakeFiles/kb2_core.dir/cells.cpp.o"
  "CMakeFiles/kb2_core.dir/cells.cpp.o.d"
  "CMakeFiles/kb2_core.dir/keybin2.cpp.o"
  "CMakeFiles/kb2_core.dir/keybin2.cpp.o.d"
  "CMakeFiles/kb2_core.dir/keys.cpp.o"
  "CMakeFiles/kb2_core.dir/keys.cpp.o.d"
  "CMakeFiles/kb2_core.dir/model.cpp.o"
  "CMakeFiles/kb2_core.dir/model.cpp.o.d"
  "CMakeFiles/kb2_core.dir/out_of_core.cpp.o"
  "CMakeFiles/kb2_core.dir/out_of_core.cpp.o.d"
  "CMakeFiles/kb2_core.dir/partitioner.cpp.o"
  "CMakeFiles/kb2_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/kb2_core.dir/projection.cpp.o"
  "CMakeFiles/kb2_core.dir/projection.cpp.o.d"
  "CMakeFiles/kb2_core.dir/streaming.cpp.o"
  "CMakeFiles/kb2_core.dir/streaming.cpp.o.d"
  "libkb2_core.a"
  "libkb2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
