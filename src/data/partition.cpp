#include "data/partition.hpp"

#include "common/error.hpp"

namespace keybin2::data {

std::vector<RowRange> partition_rows(std::size_t rows, int ranks) {
  KB2_CHECK_MSG(ranks >= 1, "need at least one rank");
  const auto p = static_cast<std::size_t>(ranks);
  std::vector<RowRange> out(p);
  const std::size_t base = rows / p, extra = rows % p;
  std::size_t begin = 0;
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t len = base + (r < extra ? 1 : 0);
    out[r] = {begin, begin + len};
    begin += len;
  }
  return out;
}

std::vector<Dataset> shard(const Dataset& d, int ranks) {
  auto ranges = partition_rows(d.size(), ranks);
  std::vector<Dataset> out;
  out.reserve(ranges.size());
  for (const auto& r : ranges) {
    Dataset part;
    part.points = d.points.slice_rows(r.begin, r.end);
    if (d.labelled()) {
      part.labels.assign(
          d.labels.begin() + static_cast<std::ptrdiff_t>(r.begin),
          d.labels.begin() + static_cast<std::ptrdiff_t>(r.end));
    }
    out.push_back(std::move(part));
  }
  return out;
}

}  // namespace keybin2::data
