#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"

namespace keybin2::core {

namespace {

[[noreturn]] void throw_defect(const std::string& path,
                               const std::string& defect,
                               const std::string& detail) {
  std::ostringstream os;
  os << "checkpoint " << path << " " << detail;
  throw CheckpointError(os.str(), path, defect);
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload) {
  ByteWriter header;
  header.write<std::uint64_t>(kCheckpointMagic);
  header.write<std::uint32_t>(kCheckpointVersion);
  header.write<std::uint64_t>(static_cast<std::uint64_t>(payload.size()));
  header.write<std::uint32_t>(crc32(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    KB2_CHECK_MSG(out.is_open(), "cannot open checkpoint file " << tmp
                                                                << " for writing");
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    KB2_CHECK_MSG(out.good(), "short write to checkpoint file " << tmp);
  }
  // Keep one generation of history: the checkpoint being replaced becomes
  // ".prev", so corruption of the new primary (partial disk death, a stray
  // writer) still leaves a valid restore point. Failure to demote is not
  // fatal — the primary write is what matters.
  std::rename(path.c_str(), (path + ".prev").c_str());
  KB2_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot move checkpoint " << tmp << " into place at " << path);
}

std::vector<std::byte> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw_defect(path, "missing", "cannot be opened");
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (raw.size() < kCheckpointHeaderBytes) {
    std::ostringstream os;
    os << "truncated: " << raw.size() << " bytes, header alone needs "
       << kCheckpointHeaderBytes;
    throw_defect(path, "truncated", os.str());
  }

  ByteReader r(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  const auto magic = r.read<std::uint64_t>();
  if (magic != kCheckpointMagic) {
    throw_defect(path, "bad_magic", "has bad magic (not a KB2CKPT file)");
  }
  const auto version = r.read<std::uint32_t>();
  if (version != kCheckpointVersion) {
    std::ostringstream os;
    os << "has version " << version << ", this build reads version "
       << kCheckpointVersion;
    throw_defect(path, "version_skew", os.str());
  }
  const auto payload_size = r.read<std::uint64_t>();
  if (payload_size != raw.size() - kCheckpointHeaderBytes) {
    std::ostringstream os;
    os << "truncated: header promises " << payload_size
       << " payload bytes, file holds "
       << raw.size() - kCheckpointHeaderBytes;
    throw_defect(path, "truncated", os.str());
  }
  const auto expected_crc = r.read<std::uint32_t>();

  std::vector<std::byte> payload(static_cast<std::size_t>(payload_size));
  std::memcpy(payload.data(), raw.data() + kCheckpointHeaderBytes,
              payload.size());
  const auto actual_crc = crc32(payload);
  if (actual_crc != expected_crc) {
    std::ostringstream os;
    os << "failed its CRC32 integrity check (stored " << expected_crc
       << ", computed " << actual_crc << ")";
    throw_defect(path, "crc_mismatch", os.str());
  }
  return payload;
}

std::vector<std::byte> read_checkpoint_file_or_previous(
    const std::string& path, bool* used_previous) {
  if (used_previous != nullptr) *used_previous = false;
  std::exception_ptr primary;
  try {
    return read_checkpoint_file(path);
  } catch (const CheckpointError&) {
    primary = std::current_exception();
  }
  try {
    auto payload = read_checkpoint_file(path + ".prev");
    if (used_previous != nullptr) *used_previous = true;
    return payload;
  } catch (const CheckpointError&) {
    // Neither copy is readable: the primary's error names the checkpoint
    // the caller actually asked for.
    std::rethrow_exception(primary);
  }
}

void corrupt_checkpoint_file(const std::string& path,
                             CheckpointCorruption mode, std::uint64_t seed) {
  std::vector<char> raw;
  {
    std::ifstream in(path, std::ios::binary);
    KB2_CHECK_MSG(in.is_open(), "cannot open checkpoint " << path
                                                          << " to corrupt");
    raw.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
  }
  const std::size_t payload_bytes =
      raw.size() > kCheckpointHeaderBytes ? raw.size() - kCheckpointHeaderBytes
                                          : 0;
  switch (mode) {
    case CheckpointCorruption::kTruncateHeader:
      raw.resize(raw.size() < kCheckpointHeaderBytes ? raw.size() / 2
                                                     : kCheckpointHeaderBytes /
                                                           2);
      break;
    case CheckpointCorruption::kTruncatePayload:
      KB2_CHECK_MSG(payload_bytes > 0,
                    "checkpoint " << path << " has no payload to truncate");
      raw.resize(kCheckpointHeaderBytes + payload_bytes / 2);
      break;
    case CheckpointCorruption::kZeroSpan: {
      KB2_CHECK_MSG(payload_bytes > 0,
                    "checkpoint " << path << " has no payload to zero");
      const std::size_t at = kCheckpointHeaderBytes + seed % payload_bytes;
      const std::size_t len = std::min<std::size_t>(16, raw.size() - at);
      std::memset(raw.data() + at, 0, len);
      break;
    }
    case CheckpointCorruption::kFlipBit: {
      KB2_CHECK_MSG(payload_bytes > 0,
                    "checkpoint " << path << " has no payload to flip");
      const std::size_t at = kCheckpointHeaderBytes + seed % payload_bytes;
      raw[at] = static_cast<char>(raw[at] ^ (1 << (seed % 8)));
      break;
    }
    case CheckpointCorruption::kBadMagic:
      KB2_CHECK_MSG(raw.size() >= 8, "checkpoint " << path << " too short");
      std::memset(raw.data(), 0x5a, 8);
      break;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  KB2_CHECK_MSG(out.is_open(), "cannot rewrite checkpoint " << path);
  out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  out.flush();
  KB2_CHECK_MSG(out.good(), "short write while corrupting " << path);
}

}  // namespace keybin2::core
