#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace keybin2 {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRunsInline) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t, std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> total{0};
  pool.parallel_for(1000, /*grain=*/300,
                    [&](std::size_t begin, std::size_t end) {
                      chunks.fetch_add(1);
                      total.fetch_add(end - begin);
                    });
  EXPECT_EQ(total.load(), 1000u);
  // ceil(1000 / 300) = 4 chunks at most, regardless of worker count.
  EXPECT_LE(chunks.load(), 4);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(8);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> chunks{0};
  pool.parallel_for(100, /*grain=*/1000,
                    [&](std::size_t begin, std::size_t end) {
                      EXPECT_EQ(std::this_thread::get_id(), caller);
                      EXPECT_EQ(begin, 0u);
                      EXPECT_EQ(end, 100u);
                      chunks.fetch_add(1);
                    });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A pool worker (or the caller) re-entering parallel_for must not wait
      // on the pool it is already servicing; the nested loop runs inline.
      pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPool, BackToBackLoopsProduceStableResults) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(257, /*grain=*/16, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
    ASSERT_EQ(total.load(), 257u) << "round " << round;
  }
}

class ThreadPoolShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ThreadPoolShapes, PartitionIsExact) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::atomic<std::size_t> total{0};
  std::atomic<int> chunks{0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    total.fetch_add(end - begin);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(total.load(), n);
  EXPECT_LE(static_cast<std::size_t>(chunks.load()), std::max<std::size_t>(workers, 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreadPoolShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 10},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 1000},
                      std::pair<std::size_t, std::size_t>{8, 7},
                      std::pair<std::size_t, std::size_t>{3, 100}));

}  // namespace
}  // namespace keybin2
