#include "data/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace keybin2::data {

namespace {
constexpr std::uint64_t kMagic = 0x4b42324453ULL;  // "KB2DS"
}

void write_csv(const Dataset& d, const std::string& path) {
  std::ofstream out(path);
  KB2_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.precision(17);
  for (std::size_t j = 0; j < d.dims(); ++j) {
    if (j) out << ',';
    out << 'f' << j;
  }
  if (d.labelled()) out << ",label";
  out << '\n';
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto row = d.points.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j) out << ',';
      out << row[j];
    }
    if (d.labelled()) out << ',' << d.labels[i];
    out << '\n';
  }
  KB2_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Dataset read_csv(const std::string& path) {
  std::ifstream in(path);
  KB2_CHECK_MSG(in.good(), "cannot open " << path);
  std::string line;
  KB2_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                "empty CSV " << path);

  // Parse header; the dataset is labelled iff the last column is "label".
  std::vector<std::string> header;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) header.push_back(cell);
  }
  KB2_CHECK_MSG(!header.empty(), "CSV header empty in " << path);
  const bool labelled = header.back() == "label";
  const std::size_t dims = header.size() - (labelled ? 1 : 0);
  KB2_CHECK_MSG(dims >= 1, "CSV has no feature columns: " << path);

  Dataset d;
  std::vector<double> row(dims);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    for (std::size_t j = 0; j < dims; ++j) {
      KB2_CHECK_MSG(static_cast<bool>(std::getline(ss, cell, ',')),
                    "short row in " << path);
      row[j] = std::stod(cell);
    }
    d.points.append_row(row);
    if (labelled) {
      KB2_CHECK_MSG(static_cast<bool>(std::getline(ss, cell, ',')),
                    "missing label in " << path);
      d.labels.push_back(std::stoi(cell));
    }
  }
  return d;
}

void write_binary(const Dataset& d, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  KB2_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const std::uint64_t rows = d.size(), cols = d.dims();
  const std::uint8_t has_labels = d.labelled() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(&has_labels), sizeof(has_labels));
  const auto flat = d.points.flat();
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size_bytes()));
  if (has_labels) {
    out.write(reinterpret_cast<const char*>(d.labels.data()),
              static_cast<std::streamsize>(d.labels.size() * sizeof(int)));
  }
  KB2_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Dataset read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  KB2_CHECK_MSG(in.good(), "cannot open " << path);
  std::uint64_t magic = 0, rows = 0, cols = 0;
  std::uint8_t has_labels = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  KB2_CHECK_MSG(magic == kMagic, path << " is not a KB2 dataset file");
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  in.read(reinterpret_cast<char*>(&has_labels), sizeof(has_labels));
  std::vector<double> flat(rows * cols);
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(double)));
  Dataset d;
  d.points = Matrix(rows, cols, std::move(flat));
  if (has_labels) {
    d.labels.resize(rows);
    in.read(reinterpret_cast<char*>(d.labels.data()),
            static_cast<std::streamsize>(rows * sizeof(int)));
  }
  KB2_CHECK_MSG(in.good(), "truncated dataset file " << path);
  return d;
}

}  // namespace keybin2::data
