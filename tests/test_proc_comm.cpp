// Process-backed transport tests (DESIGN.md §6): every rank is a real forked
// child talking through POSIX shared memory, so these suites exercise the
// honest versions of the fault stories the thread transport can only
// simulate — an actual SIGKILL mid-fit, waitpid-backed liveness, survivor
// agreement across address spaces, and result blobs that must cross a pipe
// because by-reference captures die with the child.
//
// The whole file is Linux-only (ProcComm is); on other platforms every
// proc launch throws and the tests are skipped at configure time by the
// same #ifdef the implementation uses.
#include "comm/proc_comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/keybin2.hpp"
#include "core/out_of_core.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "data/partition.hpp"
#include "test_util.hpp"

namespace keybin2::comm {
namespace {

#ifdef __linux__

std::vector<std::byte> to_bytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string to_string(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

LaunchOptions proc_options(std::size_t ring_bytes = 0) {
  LaunchOptions o;
  o.backend = Backend::kProcess;
  o.ring_bytes = ring_bytes;
  return o;
}

TEST(ProcComm, SendRecvRoundTripAcrossProcesses) {
  const auto blobs = run_ranks_collect_bytes(
      proc_options(), 2, [](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 0) {
          c.send(1, 7, to_bytes("ping from rank 0"));
          return c.recv(1, 8);
        }
        const auto got = c.recv(0, 7);
        c.send(0, 8, to_bytes("pong: " + to_string(got)));
        return got;
      });
  ASSERT_EQ(blobs.size(), 2u);
  EXPECT_EQ(to_string(blobs[0]), "pong: ping from rank 0");
  EXPECT_EQ(to_string(blobs[1]), "ping from rank 0");
}

TEST(ProcComm, PerChannelFifoHoldsUnderRingWraparound) {
  // 200 x 1 KiB messages through an 8 KiB ring: the ring wraps many times
  // and the sender must block on a full ring, yet per-channel FIFO order is
  // contractual. The receiver checks the sequence number stamped into each
  // payload.
  constexpr int kMessages = 200;
  const auto blobs = run_ranks_collect_bytes(
      proc_options(/*ring_bytes=*/8192), 2,
      [](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 0) {
          for (int i = 0; i < kMessages; ++i) {
            std::vector<std::byte> msg(1000,
                                       static_cast<std::byte>(i & 0xff));
            std::memcpy(msg.data(), &i, sizeof(i));
            c.send(1, 3, msg);
          }
          return to_bytes("sent");
        }
        int in_order = 0;
        for (int i = 0; i < kMessages; ++i) {
          const auto msg = c.recv(0, 3);
          int seq = -1;
          if (msg.size() == 1000) std::memcpy(&seq, msg.data(), sizeof(seq));
          if (seq == i && msg.back() == static_cast<std::byte>(i & 0xff)) {
            ++in_order;
          }
        }
        ByteWriter w;
        w.write<std::int32_t>(in_order);
        return w.take();
      });
  ByteReader r(blobs[1]);
  EXPECT_EQ(r.read<std::int32_t>(), kMessages);
}

TEST(ProcComm, OversizedPayloadsSpillAndRoundTripIntact) {
  // 1 MiB payload through a 4 KiB ring: far beyond the in-ring frame limit,
  // so the payload takes the spill-file path. It must arrive bit-exact.
  const std::size_t n = 1 << 20;
  const auto blobs = run_ranks_collect_bytes(
      proc_options(/*ring_bytes=*/4096), 2,
      [n](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 0) {
          std::vector<std::byte> big(n);
          for (std::size_t i = 0; i < n; ++i) {
            big[i] = static_cast<std::byte>((i * 131) & 0xff);
          }
          c.send(1, 5, big);
          return c.recv(1, 6);  // echoed tail
        }
        const auto big = c.recv(0, 5);
        std::size_t bad = big.size() == n ? 0 : 1;
        for (std::size_t i = 0; i < big.size() && bad == 0; ++i) {
          if (big[i] != static_cast<std::byte>((i * 131) & 0xff)) bad = 1;
        }
        ByteWriter w;
        w.write<std::uint64_t>(big.size());
        w.write<std::uint64_t>(bad);
        c.send(0, 6, w.bytes());
        return w.take();
      });
  ByteReader r(blobs[0]);
  EXPECT_EQ(r.read<std::uint64_t>(), n);
  EXPECT_EQ(r.read<std::uint64_t>(), 0u) << "payload corrupted in transit";
}

TEST(ProcComm, CollectivesMatchTheThreadBackend) {
  // The collectives are built on send/recv, so one allreduce + barrier +
  // gather sweep over four process ranks doubles as a transport shakedown.
  // The reduced vector must match the thread backend bit for bit.
  const auto body = [](Communicator& c) -> std::vector<std::byte> {
    std::vector<double> local(64);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i);
    }
    const auto sum = c.allreduce(local, ReduceOp::kSum);
    c.barrier();
    const auto max1 = c.allreduce(static_cast<double>(c.rank()) * 2.5,
                                  ReduceOp::kMax);
    ByteWriter w;
    w.write_vec(sum);
    w.write<double>(max1);
    return w.take();
  };
  const auto proc = run_ranks_collect_bytes(proc_options(), 4, body);
  const auto thread = run_ranks_collect_bytes(LaunchOptions{}, 4, body);
  ASSERT_EQ(proc.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(proc[r], thread[r]) << "rank " << r;
  }
}

TEST(ProcComm, TrafficStatsMergeSymmetricallyAcrossProcesses) {
  TrafficStats total;
  run_ranks_collect_bytes(
      proc_options(), 3,
      [](Communicator& c) -> std::vector<std::byte> {
        // A fixed all-to-all round: every rank sends one message to every
        // other rank and receives one back.
        for (int peer = 0; peer < c.size(); ++peer) {
          if (peer == c.rank()) continue;
          c.send(peer, 9, to_bytes("x"));
        }
        for (int peer = 0; peer < c.size(); ++peer) {
          if (peer == c.rank()) continue;
          (void)c.recv(peer, 9);
        }
        return {};
      },
      &total);
  // 3 ranks x 2 peers = 6 messages each way, merged by the parent from the
  // per-rank shared-memory counters.
  EXPECT_EQ(total.messages_sent, 6u);
  EXPECT_EQ(total.messages_received, 6u);
  EXPECT_EQ(total.bytes_sent, total.bytes_received);
  EXPECT_GE(total.bytes_sent, 6u);
}

TEST(ProcComm, RecvTimeoutCrossesThePipeWithFullAttribution) {
  // Rank 0 waits on a message rank 1 never sends. The TimeoutError must
  // carry {self, src, tag, elapsed} AND survive reconstruction across the
  // child's result pipe with its original type.
  std::exception_ptr err;
  run_ranks_collect_bytes(
      proc_options(), 2,
      [](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 0) {
          c.set_timeout(0.2);
          (void)c.recv(1, 11);  // throws
        }
        // Rank 1 stays alive (but silent) past the timeout: a rank that
        // departs instead would turn the story into RankFailedError.
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
        return {};
      },
      nullptr, &err);
  ASSERT_TRUE(err != nullptr);
  try {
    std::rethrow_exception(err);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.self(), 0);
    EXPECT_EQ(e.src(), 1);
    EXPECT_EQ(e.tag(), 11);
    EXPECT_GE(e.elapsed_seconds(), 0.2);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(ProcComm, ChildErrorsKeepTheirTypesInTheParent) {
  std::exception_ptr err;
  run_ranks_collect_bytes(
      proc_options(), 2,
      [](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 1) throw Error("rank 1 bailed on purpose");
        return {};
      },
      nullptr, &err);
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), Error);
  try {
    std::rethrow_exception(err);
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "rank 1 bailed on purpose");
  }
}

TEST(ProcComm, FromEnvSelectsTheBackend) {
  ::setenv("KB2_BACKEND", "proc", 1);
  EXPECT_EQ(LaunchOptions::from_env().backend, Backend::kProcess);
  ::setenv("KB2_BACKEND", "process", 1);
  EXPECT_EQ(LaunchOptions::from_env().backend, Backend::kProcess);
  ::setenv("KB2_BACKEND", "thread", 1);
  EXPECT_EQ(LaunchOptions::from_env().backend, Backend::kThread);
  ::unsetenv("KB2_BACKEND");
  EXPECT_EQ(LaunchOptions::from_env().backend, Backend::kThread);
  ::setenv("KB2_BACKEND", "smoke-signals", 1);
  EXPECT_THROW(LaunchOptions::from_env(), Error);
  ::unsetenv("KB2_BACKEND");

  ::setenv("KB2_PROC_RING_BYTES", "65536", 1);
  EXPECT_EQ(LaunchOptions::from_env().ring_bytes, 65536u);
  ::unsetenv("KB2_PROC_RING_BYTES");
}

// ---- Honest failure stories: a real SIGKILL, a real dead process ----

TEST(ProcComm, SigkilledChildSurfacesThroughWaitpidLiveness) {
  // Rank 2 SIGKILLs itself after the opening barrier. The parent reaps it
  // and marks it failed in shared memory; the survivors observe the death
  // three ways: a blocked recv() throws RankFailedError naming rank 2,
  // failed_ranks() reports it, and agree_survivors() converges on {0, 1} —
  // after which the shrunken pair can still talk.
  const auto blobs = run_ranks_collect_bytes(
      proc_options(), 3, [](Communicator& c) -> std::vector<std::byte> {
        c.barrier();
        if (c.rank() == 2) {
          ::raise(SIGKILL);  // a real process death, not an exception
        }
        // Generous bounds: they are only ever reached on failure, and the
        // suite runs under sanitizers at ~10x slowdown with full -j load.
        c.set_timeout(120.0);
        std::string saw_rank_failed = "no";
        if (c.rank() == 0) {
          try {
            (void)c.recv(2, 4);  // blocks until the parent marks the death
          } catch (const RankFailedError& e) {
            saw_rank_failed =
                std::string(e.what()).find("rank 2") != std::string::npos
                    ? "yes"
                    : "wrong-rank";
          } catch (const RecoveryError&) {
            // Rank 1 can learn of the death first and open the survivor
            // agreement before our next wakeup, in which case the blocked
            // recv is abandoned into the agreement instead — the same
            // convergence production recovery relies on. The death is
            // still fully attributed in the failure table.
            saw_rank_failed = c.failed_ranks() == std::vector<int>{2}
                                  ? "yes"
                                  : "wrong-rank";
          }
        } else {
          // Rank 1 polls liveness instead of blocking.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(120);
          while (c.failed_ranks().empty() &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          saw_rank_failed = c.failed_ranks() == std::vector<int>{2}
                                ? "yes"
                                : "wrong-rank";
        }

        const auto survivors = c.agree_survivors();
        // The shrunken group still works end to end.
        if (c.rank() == 0) {
          c.send(1, 12, to_bytes("post-shrink hello"));
        }
        std::string relay = c.rank() == 1 ? to_string(c.recv(0, 12)) : "-";

        ByteWriter w;
        w.write_string(saw_rank_failed);
        w.write<std::uint64_t>(survivors.size());
        for (const int s : survivors) w.write<std::int32_t>(s);
        w.write_string(relay);
        return w.take();
      });

  ASSERT_EQ(blobs.size(), 3u);
  EXPECT_TRUE(blobs[2].empty()) << "a SIGKILLed rank cannot report";
  for (int rank : {0, 1}) {
    ByteReader r(blobs[rank]);
    EXPECT_EQ(r.read_string(), "yes") << "rank " << rank;
    ASSERT_EQ(r.read<std::uint64_t>(), 2u);
    EXPECT_EQ(r.read<std::int32_t>(), 0);
    EXPECT_EQ(r.read<std::int32_t>(), 1);
    const auto relay = r.read_string();
    if (rank == 1) {
      EXPECT_EQ(relay, "post-shrink hello");
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(ProcComm, HonestSigkillMidFitShrinksAndContinues) {
  // The flagship story: rank 2 is destroyed with a genuine SIGKILL partway
  // through a distributed fit — no stack unwinding, no destructors, the
  // process is simply gone — and the three surviving processes must shrink
  // and complete with a valid model. This is the test the thread backend
  // fundamentally cannot run honestly.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1200, 2);
  const auto shards = data::shard(d, 4);
  core::Params params;
  params.comm_timeout_seconds = 2.0;
  params.max_shrink_retries = 6;

  std::exception_ptr err;
  const auto blobs = run_ranks_collect_bytes(
      proc_options(), 4,
      [&](Communicator& c) -> std::vector<std::byte> {
        const auto r = static_cast<std::size_t>(c.rank());
        fault::FaultSchedule s;
        s.seed = 2024;
        if (c.rank() == 2) {
          s.kill_at_op = 40;    // mid-trial, hundreds of ops into the fit
          s.hard_kill = true;   // honored because ProcComm is
                                // process_isolated(): raises SIGKILL
        }
        fault::FaultyComm faulty(c, s);
        const auto result = core::fit(faulty, shards[r].points, params);

        ByteWriter w;
        w.write<std::int32_t>(result.model.n_clusters());
        w.write<std::uint64_t>(result.labels.size());
        int min_label = 0;
        for (const int l : result.labels) min_label = std::min(min_label, l);
        w.write<std::int32_t>(min_label);
        return w.take();
      },
      nullptr, &err);

  // The kill is not an error: the dead rank reports nothing, the survivors
  // succeed, and the parent sees a clean run with one empty blob.
  EXPECT_TRUE(err == nullptr);
  ASSERT_EQ(blobs.size(), 4u);
  EXPECT_TRUE(blobs[2].empty()) << "SIGKILLed rank left a result?";
  for (const int rank : {0, 1, 3}) {
    ByteReader r(blobs[static_cast<std::size_t>(rank)]);
    EXPECT_GE(r.read<std::int32_t>(), 1) << "rank " << rank;
    EXPECT_EQ(r.read<std::uint64_t>(),
              shards[static_cast<std::size_t>(rank)].points.rows());
    EXPECT_GE(r.read<std::int32_t>(), 0) << "negative label, rank " << rank;
  }
}

TEST(ProcComm, FitFingerprintMatchesTheThreadBackendBitForBit) {
  // Same pinned dataset, same params, both backends: the model bytes and
  // every rank's labels must be identical. The transport may not leak into
  // the math.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1000, 3);
  const auto shards = data::shard(d, 4);
  const auto body = [&](Communicator& c) -> std::vector<std::byte> {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = core::fit(c, shards[r].points, core::Params{});
    ByteWriter w;
    result.model.serialize(w);
    w.write_vec(result.labels);
    return w.take();
  };
  const auto proc = run_ranks_collect_bytes(proc_options(), 4, body);
  const auto thread = run_ranks_collect_bytes(LaunchOptions{}, 4, body);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(proc[r], thread[r]) << "fingerprint diverged on rank " << r;
  }
}

TEST(ProcComm, CheckpointSurvivesARealKillAndResumes) {
  // An out-of-core run is SIGKILLed between checkpoint writes — a genuine
  // process death with no teardown. A fresh process resumes from the
  // on-disk checkpoint and must reproduce the uninterrupted run bit for
  // bit. (The thread-backend version of this story can only simulate the
  // death with a budget pause; here the process is really gone.)
  testutil::TempPaths tmp;
  const std::string input = tmp.make("kb2_proc_ckpt_input", ".bin");
  const std::string labels = tmp.make("kb2_proc_ckpt_labels", ".bin");
  const std::string ckpt = tmp.make("kb2_proc_ckpt_state", ".bin");
  const auto spec = data::make_paper_mixture(10, 3, 1);
  data::write_binary(data::sample(spec, 4000, 2), input);

  // Reference: one uninterrupted in-process run.
  const auto clean = core::fit_from_file(input, labels, {}, /*chunk=*/512);
  const auto clean_labels = core::read_labels(labels);
  ByteWriter clean_w;
  clean.model.serialize(clean_w);

  core::CheckpointOptions opts;
  opts.path = ckpt;
  opts.every_chunks = 2;

  // A child works through 3 of 8 chunks (checkpoint lands at chunk 2),
  // then dies by SIGKILL.
  std::exception_ptr err;
  auto blobs = run_ranks_collect_bytes(
      proc_options(), 1,
      [&](Communicator&) -> std::vector<std::byte> {
        auto paused = opts;
        paused.max_chunks = 3;
        (void)core::fit_from_file(input, labels, {}, 512, paused);
        ::raise(SIGKILL);  // die after the budget pause wrote state
        return {};
      },
      nullptr, &err);
  EXPECT_TRUE(err == nullptr);
  EXPECT_TRUE(blobs[0].empty());
  {
    std::FILE* probe = std::fopen(ckpt.c_str(), "rb");
    ASSERT_NE(probe, nullptr) << "checkpoint did not survive the kill";
    std::fclose(probe);
  }

  // A fresh child resumes from the checkpoint and finishes the job.
  blobs = run_ranks_collect_bytes(
      proc_options(), 1,
      [&](Communicator&) -> std::vector<std::byte> {
        const auto resumed = core::fit_from_file(input, labels, {}, 512, opts);
        ByteWriter w;
        w.write<std::uint8_t>(resumed.completed ? 1 : 0);
        w.write<std::uint64_t>(resumed.points);
        resumed.model.serialize(w);
        return w.take();
      },
      nullptr, &err);
  ASSERT_TRUE(err == nullptr);
  ByteReader r(blobs[0]);
  EXPECT_EQ(r.read<std::uint8_t>(), 1);
  EXPECT_EQ(r.read<std::uint64_t>(), 4000u);
  const auto resumed_model =
      std::vector<std::byte>(blobs[0].begin() + 9, blobs[0].end());
  EXPECT_EQ(resumed_model, clean_w.bytes());
  EXPECT_EQ(core::read_labels(labels), clean_labels);
}

TEST(ProcComm, RunRanksOptionsOverloadRethrowsWithOriginalType) {
  // The void-returning overload is the drop-in for existing call sites:
  // same rethrow semantics as the thread backend.
  EXPECT_THROW(
      run_ranks(proc_options(), 2,
                [](Communicator& c) {
                  if (c.rank() == 0) {
                    c.set_timeout(0.1);
                    (void)c.recv(1, 2);
                  }
                  // Keep the silent peer alive past the timeout window.
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(500));
                }),
      TimeoutError);
}

TEST(ProcRecovery, RespawnRejoinsAndFitFingerprintIsBitIdentical) {
  // Rank 2's first incarnation takes a real SIGKILL mid-fit. With respawn
  // budget armed, the supervisor forks a replacement, the survivors'
  // agreement is held open until it arrives, and the regrown full-width
  // group reruns the fit — whose model bytes and every rank's labels must
  // equal the undisturbed thread-backend run bit for bit. Recovery may not
  // leak into the math.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1000, 3);
  const auto shards = data::shard(d, 4);
  core::Params params;
  params.comm_timeout_seconds = 30.0;

  const auto clean = [&](Communicator& c) -> std::vector<std::byte> {
    const auto result =
        core::fit(c, shards[static_cast<std::size_t>(c.rank())].points,
                  params);
    ByteWriter w;
    result.model.serialize(w);
    w.write_vec(result.labels);
    return w.take();
  };
  const auto body = [&](Communicator& c) -> std::vector<std::byte> {
    fault::FaultSchedule s;
    if (c.rank() == 2 && c.incarnation() == 0) {
      s.kill_at_op = 15;
      s.hard_kill = true;
    }
    fault::FaultyComm f(c, s);
    const auto result =
        core::fit(f, shards[static_cast<std::size_t>(c.rank())].points,
                  params);
    ByteWriter w;
    result.model.serialize(w);
    w.write_vec(result.labels);
    return w.take();
  };

  const auto reference = run_ranks_collect_bytes(LaunchOptions{}, 4, clean);
  RecoveryPolicy pol;
  pol.max_respawns = 1;
  pol.backoff_base_ms = 1.0;
  pol.backoff_cap_ms = 4.0;
  const auto res = proc_run_ranks(4, 0, pol, body);
  EXPECT_FALSE(res.first_error) << "regrown run should succeed";
  EXPECT_EQ(res.respawns_total, 1);
  EXPECT_GE(res.regrow_epochs, 1);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(res.results[static_cast<std::size_t>(r)],
              reference[static_cast<std::size_t>(r)])
        << "fingerprint diverged on rank " << r;
  }
}

TEST(ProcRecovery, DoubleFailureDuringRegrowFallsDownTheLadder) {
  // The replacement incarnation dies too, and the budget (1) is spent: the
  // reservation drains without a second respawn and the ladder falls to
  // shrink-and-continue. The survivors finish degraded — no error, no
  // hang, the victim's slot simply reports nothing.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1000, 3);
  const auto shards = data::shard(d, 4);
  core::Params params;
  params.comm_timeout_seconds = 30.0;

  const auto body = [&](Communicator& c) -> std::vector<std::byte> {
    fault::FaultSchedule s;
    if (c.rank() == 2 && c.incarnation() <= 1) {
      s.kill_at_op = 15;
      s.hard_kill = true;
    }
    fault::FaultyComm f(c, s);
    const auto result =
        core::fit(f, shards[static_cast<std::size_t>(c.rank())].points,
                  params);
    ByteWriter w;
    result.model.serialize(w);
    w.write_vec(result.labels);
    return w.take();
  };

  RecoveryPolicy pol;
  pol.max_respawns = 1;
  pol.backoff_base_ms = 1.0;
  pol.backoff_cap_ms = 4.0;
  const auto res = proc_run_ranks(4, 0, pol, body);
  EXPECT_FALSE(res.first_error)
      << "survivors should shrink-and-continue, not error";
  EXPECT_EQ(res.respawns_total, 1) << "budget allowed exactly one respawn";
  EXPECT_TRUE(res.results[2].empty()) << "the dead slot reports nothing";
  for (const int r : {0, 1, 3}) {
    EXPECT_FALSE(res.results[static_cast<std::size_t>(r)].empty())
        << "survivor " << r << " should have finished";
  }
}

TEST(ProcRecovery, SpillFilesOfAKilledRankAreReclaimedMidRun) {
  // Rank 2 parks an oversized (spilled) frame in rank 0's ring and dies by
  // SIGKILL before anyone receives it. The survivor agreement must reclaim
  // the orphaned spill file as part of purging the rings — long-lived
  // groups must not accumulate dead ranks' payloads on tmpfs.
  const auto spill_parent = [] {
    struct stat st{};
    return (::stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode))
               ? std::string("/dev/shm")
               : std::string("/tmp");
  };
  const auto count_victim_spills = [&] {
    // Spill dirs are named kb2-spill-<parent pid>-...; spilled frames are
    // f<flow>.<src>. Count files from src rank 2 across this parent's dirs.
    int found = 0;
    const std::string prefix =
        "kb2-spill-" + std::to_string(::getppid()) + "-";
    DIR* top = ::opendir(spill_parent().c_str());
    if (top == nullptr) return -1;
    while (dirent* e = ::readdir(top)) {
      if (std::strncmp(e->d_name, prefix.c_str(), prefix.size()) != 0) {
        continue;
      }
      const std::string dir = spill_parent() + "/" + e->d_name;
      if (DIR* in = ::opendir(dir.c_str())) {
        while (dirent* f = ::readdir(in)) {
          const std::string name = f->d_name;
          if (name.size() > 2 && name.substr(name.size() - 2) == ".2") {
            ++found;
          }
        }
        ::closedir(in);
      }
    }
    ::closedir(top);
    return found;
  };

  const auto blobs = run_ranks_collect_bytes(
      proc_options(/*ring_bytes=*/4096), 3,
      [&](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 2) {
          // 4 KiB payload > ring_bytes/2: lands as a spill file.
          c.send(0, 5, std::vector<std::byte>(4096));
          ::raise(SIGKILL);
        }
        // Survivors: wait for the death to be detected, observe the
        // orphaned spill, agree, then observe the reclaim.
        while (c.failed_ranks().empty()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        const int before = c.rank() == 0 ? count_victim_spills() : 0;
        (void)c.agree_survivors();
        const int after = c.rank() == 0 ? count_victim_spills() : 0;
        ByteWriter w;
        w.write<std::int32_t>(before);
        w.write<std::int32_t>(after);
        return w.take();
      });
  ASSERT_FALSE(blobs[0].empty());
  ByteReader r(blobs[0]);
  EXPECT_GT(r.read<std::int32_t>(), 0)
      << "the spilled frame should be on disk before the agreement";
  EXPECT_EQ(r.read<std::int32_t>(), 0)
      << "the agreement should have reclaimed the dead rank's spill files";
}

/// Satellite leak gate: after every test in this binary, no shared-memory
/// segment or spill directory created by THIS process may remain. The shm
/// segment is unlinked at birth and spill dirs die with MappedGroup — a
/// name surviving to teardown is a leak, typically from an abnormal-death
/// path that skipped reclamation.
class ProcResidueCheck final : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    const std::string pid = std::to_string(::getpid());
    const std::string leaks = find_residue(pid);
    EXPECT_TRUE(leaks.empty())
        << "test " << info.test_suite_name() << "." << info.name()
        << " leaked process-backend residue: " << leaks;
  }

  static std::string find_residue(const std::string& pid) {
    std::string found;
    for (const char* parent : {"/dev/shm", "/tmp"}) {
      DIR* d = ::opendir(parent);
      if (d == nullptr) continue;
      const std::string spill = "kb2-spill-" + pid + "-";
      const std::string shm = "kb2-proc-" + pid + "-";
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind(spill, 0) == 0 || name.rfind(shm, 0) == 0) {
          found += std::string(parent) + "/" + name + " ";
        }
      }
      ::closedir(d);
    }
    return found;
  }
};

const bool kResidueCheckInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new ProcResidueCheck);
  return true;
}();

#else  // !__linux__

TEST(ProcComm, ProcessBackendThrowsOffLinux) {
  EXPECT_THROW(proc_run_ranks(2, 0,
                              [](Communicator&) -> std::vector<std::byte> {
                                return {};
                              }),
               Error);
}

#endif

}  // namespace
}  // namespace keybin2::comm
