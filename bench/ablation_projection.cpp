// Ablation B: random projection (KeyBin2, §3.1) vs identity/axis-aligned
// binning (KeyBin v1 behaviour).
//
// On axis-separable mixtures both match; on correlated data (Figure 1's
// scenario) only the projected variant separates the clusters — the paper's
// "orthogonality assumption" and "projection overlapping" limitations.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "core/projection.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/shapes.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  const auto opt = bench::Options::parse(argc, argv);
  std::printf("Ablation B: random projection vs axis-aligned binning.\n\n");
  std::printf("%-26s %16s %16s\n", "dataset", "projected F1",
              "axis-aligned F1");

  struct Case {
    const char* name;
    data::Dataset d;
  };
  std::vector<Case> cases;
  {
    const auto spec = data::make_paper_mixture(20, 4, opt.seed);
    cases.push_back({"separable mixture (20d)",
                     data::sample(spec, 6000, opt.seed + 1)});
  }
  cases.push_back(
      {"correlated pair (2d)", data::correlated_pair(3000, 4.0, opt.seed)});
  {
    // Correlated high-dimensional data: an axis-separable mixture rotated by
    // a random orthonormal-ish basis so no single axis separates it.
    const auto spec = data::make_paper_mixture(16, 4, opt.seed + 2, 14.0);
    auto d = data::sample(spec, 6000, opt.seed + 3);
    const auto rotation = core::make_projection_matrix(16, 16, opt.seed + 4);
    d.points = core::project(d.points, rotation);
    cases.push_back({"rotated mixture (16d)", std::move(d)});
  }

  for (const auto& c : cases) {
    bench::Series with, without;
    for (int run = 0; run < opt.runs; ++run) {
      core::Params projected;
      projected.seed = opt.seed + 31 * static_cast<std::uint64_t>(run);
      projected.bootstrap_trials = 10;
      const auto a = core::fit(c.d.points, projected);
      with.add(bench::score_labels(a.labels, c.d.labels).f1);

      core::Params axis = projected;
      axis.use_projection = false;
      const auto b = core::fit(c.d.points, axis);
      without.add(bench::score_labels(b.labels, c.d.labels).f1);
    }
    std::printf("%-26s %16s %16s\n", c.name, with.str().c_str(),
                without.str().c_str());
  }
  std::printf(
      "\nExpected shape: parity on the separable mixture; the projected "
      "variant wins on correlated/rotated data.\n");
  bench::Reporter::global().write(opt);
  return 0;
}
