// Table 2: 1280-dimensional points, weak scaling 1 -> 16 ranks (80,000
// points per process in the paper; scaled-down by default).
//
// Shape to reproduce: KeyBin2's time grows mildly as ranks x data double
// (weak scaling near-flat up to communication), parallel-kmeans grows much
// faster, and pdsdbscan is catastrophically slow and collapses everything
// into one cluster at this dimensionality (distance concentration) — the
// paper only managed the 1-process entry before giving up; we do the same
// by default (its neighbour search is O(n^2 d)).
#include <cstdio>

#include "baselines/dbscan.hpp"
#include "baselines/parallel_kmeans.hpp"
#include "bench/bench_util.hpp"
#include "comm/launch.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace {

using namespace keybin2;

constexpr std::size_t kDims = 1280;

void run_scale(int ranks, const bench::Options& opt, bool include_dbscan) {
  bench::MethodSeries keybin2_row, parallel_row, dbscan_row;
  bench::Reporter::global().set_section("ranks=" + std::to_string(ranks));

  for (int run = 0; run < opt.runs; ++run) {
    const std::uint64_t run_seed = opt.seed + 1000 * run;
    const auto spec = data::make_paper_mixture(kDims, 4, run_seed);
    const auto total = opt.points_per_rank * static_cast<std::size_t>(ranks);
    const auto d = data::sample(spec, total, run_seed + 1);
    const auto shards = data::shard(d, ranks);
    const auto ranges = data::partition_rows(d.size(), ranks);

    {
      std::vector<int> combined(d.size());
      core::Params params;
      params.seed = run_seed;
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        runtime::Context ctx(c, params.seed);
        // Run 0 is the instrumented run: comm metrics feed the BENCH json's
        // traffic matrix and wait histograms. Uniform across ranks, so the
        // collectives below stay in step.
        if (run == 0) ctx.enable_comm_metrics();
        const auto result = core::fit(ctx, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
        if (opt.trace && run == 0) {
          bench::print_trace("keybin2 per-stage, run 0", ctx.trace_report());
        }
        if (run == 0) {
          bench::Reporter::global().capture(
              ctx, "keybin2 ranks=" + std::to_string(ranks));
        }
      });
      keybin2_row.add(bench::score_labels(combined, d.labels),
                      timer.seconds());
    }

    {
      baselines::KMeansParams params;
      params.k = 4;
      params.seed = run_seed;
      std::vector<int> combined(d.size());
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result =
            baselines::parallel_kmeans(c, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
      });
      parallel_row.add(bench::score_labels(combined, d.labels),
                       timer.seconds());
    }

    if (include_dbscan) {
      // "Optimal" parameters, as the paper granted: eps from the k-distance
      // heuristic. At 1280 dims distances concentrate and the heuristic eps
      // connects everything — reproducing the paper's 1-cluster outcome.
      const double eps =
          baselines::estimate_eps(d.points, 5, 256, run_seed) * 1.05;
      std::vector<int> combined(d.size());
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result = baselines::pdsdbscan(
            c, shards[r].points, {.eps = eps, .min_points = 5});
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
      });
      dbscan_row.add(bench::score_labels(combined, d.labels),
                     timer.seconds());
    }
  }

  std::printf("\n== %d process%s (%zu data points) ==\n", ranks,
              ranks == 1 ? "" : "es",
              opt.points_per_rank * static_cast<std::size_t>(ranks));
  bench::print_header();
  keybin2_row.print_row("KeyBin2");
  parallel_row.print_row("parallel-kmeans");
  if (include_dbscan) {
    dbscan_row.print_row("pdsdbscan");
  } else {
    std::printf("%-18s %18s (skipped: O(n^2 d) neighbour search; run rank 1 "
                "or --full to wait it out)\n",
                "pdsdbscan", "--");
  }
}

// ---------------------------------------------------------------------------
// Comm-mode sweep: the accuracy-vs-bytes frontier of DESIGN.md §9.
//
// Fixed at 8 ranks and max_depth 12 — the regime where deep histograms
// re-densify and sparse encoding stops helping — the same fit runs under
// every comm mode. Emitted series (consumed by trace_check --bench and the
// perf gate): reduce_bytes_mode_{dense,sparse,coreset} (bytes-lower-better),
// coreset_vs_sparse_ratio, coreset_ari (labels vs the dense fit),
// coreset_cells_sent, coreset_mass_dropped, auto_picks_coreset.

struct SweepFit {
  std::vector<int> labels;
  double reduce_bytes = 0.0;
  double coreset_merges = 0.0;
  double coreset_cells = 0.0;
  double coreset_mass_dropped = 0.0;
};

constexpr int kSweepRanks = 8;
constexpr std::size_t kSweepDims = 32;
constexpr std::size_t kSweepInformativeDims = 8;
constexpr std::size_t kSweepClusters = 4;
constexpr int kSweepDepth = 12;
constexpr std::size_t kSweepCoresetCells = 1024;
// Tight informative-dim clusters: at depth 12 the occupied-cell count blows
// far past the coreset cap, which is the regime the sweep is meant to probe.
constexpr double kSweepClusterStd = 0.05;

SweepFit sweep_fit(const data::Dataset& d, core::CommMode mode,
                   std::uint64_t run_seed) {
  const auto shards = data::shard(d, kSweepRanks);
  const auto ranges = data::partition_rows(d.size(), kSweepRanks);
  SweepFit out;
  out.labels.resize(d.size());
  core::Params params;
  params.seed = run_seed;
  params.max_depth = kSweepDepth;
  params.bootstrap_trials = 4;
  params.comm_mode = mode;
  params.coreset_max_cells = kSweepCoresetCells;
  comm::run_ranks(kSweepRanks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    runtime::Context ctx(c, params.seed);
    const auto result = core::fit(ctx, shards[r].points, params);
    std::copy(result.labels.begin(), result.labels.end(),
              out.labels.begin() +
                  static_cast<std::ptrdiff_t>(ranges[r].begin));
    const auto metrics = ctx.metrics_report();
    if (ctx.is_root()) {
      const auto get = [&](const char* key) {
        const auto it = metrics.counters.find(key);
        return it == metrics.counters.end() ? 0.0
                                            : static_cast<double>(it->second);
      };
      out.reduce_bytes = get("reduce_bytes");
      out.coreset_merges = get("reduce_algo_coreset");
      out.coreset_cells = get("coreset_cells_sent");
      out.coreset_mass_dropped = get("coreset_mass_dropped");
    }
  });
  return out;
}

bool run_comm_mode_sweep(const bench::Options& opt) {
  bench::Series dense_bytes, sparse_bytes, coreset_bytes, ratio, ari,
      cells_sent, mass_dropped, auto_picks;
  for (int run = 0; run < opt.runs; ++run) {
    const std::uint64_t run_seed = opt.seed + 1000 * run;
    auto spec = data::make_redundant_mixture(kSweepDims, kSweepInformativeDims,
                                             kSweepClusters, run_seed);
    for (auto& comp : spec.components)
      for (std::size_t j = 0; j < kSweepInformativeDims; ++j)
        comp.stddev[j] = kSweepClusterStd;
    const auto total =
        opt.points_per_rank * static_cast<std::size_t>(kSweepRanks);
    const auto d = data::sample(spec, total, run_seed + 1);

    const auto dense = sweep_fit(d, core::CommMode::kDense, run_seed);
    const auto sparse = sweep_fit(d, core::CommMode::kSparse, run_seed);
    const auto coreset = sweep_fit(d, core::CommMode::kCoreset, run_seed);
    const auto autom = sweep_fit(d, core::CommMode::kAuto, run_seed);

    std::printf("run %d clusters: dense %d sparse %d coreset %d auto %d\n",
                run, stats::distinct_labels(dense.labels),
                stats::distinct_labels(sparse.labels),
                stats::distinct_labels(coreset.labels),
                stats::distinct_labels(autom.labels));
    dense_bytes.add(dense.reduce_bytes);
    sparse_bytes.add(sparse.reduce_bytes);
    coreset_bytes.add(coreset.reduce_bytes);
    ratio.add(coreset.reduce_bytes > 0.0
                  ? sparse.reduce_bytes / coreset.reduce_bytes
                  : 0.0);
    ari.add(stats::adjusted_rand_index(coreset.labels, dense.labels));
    cells_sent.add(coreset.coreset_cells);
    mass_dropped.add(coreset.coreset_mass_dropped);
    auto_picks.add(autom.coreset_merges > 0.0 ? 1.0 : 0.0);
  }

  std::printf(
      "\n== comm-mode sweep (%d ranks, depth %d, %zu dims, %zu cell cap) ==\n",
      kSweepRanks, kSweepDepth, kSweepDims, kSweepCoresetCells);
  std::printf("%-10s %22s %18s\n", "Mode", "reduce bytes", "ARI vs dense");
  std::printf("%-10s %22s %18s\n", "dense", dense_bytes.str(0).c_str(), "1.000");
  std::printf("%-10s %22s %18s\n", "sparse", sparse_bytes.str(0).c_str(),
              "1.000");
  std::printf("%-10s %22s %18s\n", "coreset", coreset_bytes.str(0).c_str(),
              ari.str(3).c_str());
  std::printf("sparse/coreset byte ratio %s, coreset cells sent %s, mass "
              "dropped %s, auto picks coreset %s\n",
              ratio.str(1).c_str(), cells_sent.str(0).c_str(),
              mass_dropped.str(0).c_str(), auto_picks.str(2).c_str());

  auto& rep = bench::Reporter::global();
  rep.add_series("reduce_bytes_mode_dense", dense_bytes);
  rep.add_series("reduce_bytes_mode_sparse", sparse_bytes);
  rep.add_series("reduce_bytes_mode_coreset", coreset_bytes);
  rep.add_series("coreset_vs_sparse_ratio", ratio);
  rep.add_series("coreset_ari", ari);
  rep.add_series("coreset_cells_sent", cells_sent);
  rep.add_series("coreset_mass_dropped", mass_dropped);
  rep.add_series("auto_picks_coreset", auto_picks);

  // Acceptance bars — enforced at representative scale only (tiny smoke
  // shards have too few occupied cells for the density regime to exist).
  if (opt.points_per_rank < 1000) return true;
  bool ok = true;
  if (ratio.mean() < 5.0) {
    std::fprintf(stderr,
                 "FAIL: coreset sends only %.1fx fewer reduce bytes than "
                 "sparse (bar: >= 5x)\n",
                 ratio.mean());
    ok = false;
  }
  if (ari.mean() < 0.95) {
    std::fprintf(stderr, "FAIL: coreset ARI vs dense %.3f (bar: >= 0.95)\n",
                 ari.mean());
    ok = false;
  }
  if (auto_picks.mean() < 1.0) {
    std::fprintf(stderr,
                 "FAIL: kAuto did not pick the coreset plane in the dense "
                 "regime\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  if (!opt.full && opt.points_per_rank > 10000) {
    std::fprintf(stderr, "hint: large --points-per-rank without --full\n");
  }
  std::printf(
      "Table 2 reproduction: %zu-dimensional mixture, weak scaling with %zu "
      "points per rank, %d runs.\n",
      kDims, opt.points_per_rank, opt.runs);
  for (int ranks : {1, 2, 4, 8, 16}) {
    // pdsdbscan only for the 1-process row, like the paper.
    run_scale(ranks, opt, /*include_dbscan=*/ranks == 1);
  }
  const bool sweep_ok = run_comm_mode_sweep(opt);
  bench::Reporter::global().write(opt);
  return sweep_ok ? 0 : 1;
}
