// Per-stage hardware counters via perf_event_open (DESIGN.md §8).
//
// A PerfCounterGroup opens one self-monitoring event group on the calling
// thread — cycles (leader), instructions, LLC misses — and reads all three
// with a single read() syscall. The profiler snapshots the group at scope
// open/close and accumulates deltas per folded stage path, which surface as
// perf/<stage>/ipc and perf/<stage>/llc_miss_rate gauges.
//
// perf_event_open is privileged-ish: containers and CI runners commonly run
// with perf_event_paranoid high enough (or seccomp tight enough) that even
// self-monitoring is refused. available() probes this once at construction;
// when the answer is no, the profiler degrades to timing-only and records a
// single `profiler_degraded` event instead of failing the run.
#pragma once

#include <cstdint>

namespace keybin2::runtime::profile {

/// One read() snapshot of the group, in raw event counts.
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;

  PerfSample operator-(const PerfSample& o) const {
    return {cycles - o.cycles, instructions - o.instructions,
            llc_misses - o.llc_misses};
  }
  PerfSample& operator+=(const PerfSample& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    return *this;
  }
};

class PerfCounterGroup {
 public:
  /// Opens the group on the calling thread. Check available() afterwards;
  /// a refused open (EPERM/EACCES/ENOSYS/missing PMU) is not an error.
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return fd_cycles_ >= 0; }

  /// Current cumulative counts since construction. Returns false (zeroed
  /// sample) when unavailable or the read fails.
  bool read(PerfSample* out) const;

 private:
  int open_event(std::uint32_t type, std::uint64_t config, int group_fd);
  void close_all();

  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_misses_ = -1;
};

}  // namespace keybin2::runtime::profile
