#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace keybin2::stats {
namespace {

TEST(Pairwise, PerfectClusteringScoresOne) {
  std::vector<int> truth{0, 0, 1, 1, 2, 2};
  auto s = pairwise_scores(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(Pairwise, LabelPermutationInvariant) {
  std::vector<int> truth{0, 0, 1, 1};
  std::vector<int> permuted{7, 7, 3, 3};
  auto s = pairwise_scores(permuted, truth);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(Pairwise, HandComputedExample) {
  // Pred: {a,b,c} {d,e}; Truth: {a,b} {c,d,e}
  std::vector<int> pred{0, 0, 0, 1, 1};
  std::vector<int> truth{0, 0, 1, 1, 1};
  auto s = pairwise_scores(pred, truth);
  // Pred pairs: C(3,2)+C(2,2) = 4; truth pairs: C(2,2)+C(3,2) = 4.
  // TP pairs: (a,b) and (d,e) = 2.
  EXPECT_EQ(s.predicted_pairs, 4u);
  EXPECT_EQ(s.truth_pairs, 4u);
  EXPECT_EQ(s.true_positive_pairs, 2u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(Pairwise, AllSingletonsHasFullPrecisionZeroRecall) {
  std::vector<int> pred{0, 1, 2, 3};
  std::vector<int> truth{0, 0, 1, 1};
  auto s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.predicted_pairs, 0u);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);  // no predicted pairs at all
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
}

TEST(Pairwise, SingleMegaClusterHasFullRecall) {
  std::vector<int> pred{5, 5, 5, 5};
  std::vector<int> truth{0, 0, 1, 1};
  auto s = pairwise_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_LT(s.precision, 0.5);  // 2 tp of 6 predicted pairs
  EXPECT_NEAR(s.precision, 2.0 / 6.0, 1e-12);
}

TEST(Pairwise, SplittingClustersKeepsPrecision) {
  // Splitting a true cluster in two: precision stays 1, recall drops — the
  // paper's characteristic KeyBin2 signature (more clusters than truth).
  std::vector<int> pred{0, 0, 1, 1};
  std::vector<int> truth{0, 0, 0, 0};
  auto s = pairwise_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 2.0 / 6.0, 1e-12);
}

TEST(Pairwise, MismatchedLengthsThrow) {
  std::vector<int> a{0, 1}, b{0};
  EXPECT_THROW(pairwise_scores(a, b), Error);
}

TEST(Pairwise, EmptyInputsScoreZero) {
  std::vector<int> empty;
  auto s = pairwise_scores(empty, empty);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(Contingency, CountsCells) {
  std::vector<int> pred{0, 0, 1}, truth{1, 1, 2};
  auto cells = contingency_table(pred, truth);
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_EQ((cells[{0, 1}]), 2u);
  EXPECT_EQ((cells[{1, 2}]), 1u);
}

TEST(Ari, IdenticalPartitionsScoreOne) {
  std::vector<int> l{0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(l, l), 1.0);
}

TEST(Ari, PermutedLabelsScoreOne) {
  std::vector<int> a{0, 0, 1, 1}, b{9, 9, 4, 4};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, IndependentPartitionsScoreNearZero) {
  // A checkerboard assignment against blocks.
  std::vector<int> pred, truth;
  for (int i = 0; i < 400; ++i) {
    pred.push_back(i % 2);
    truth.push_back(i < 200 ? 0 : 1);
  }
  EXPECT_NEAR(adjusted_rand_index(pred, truth), 0.0, 0.05);
}

TEST(Ari, DegenerateSingleClusterIsDefinedAsOne) {
  std::vector<int> ones{1, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(ones, ones), 1.0);
}

TEST(Purity, MajorityVote) {
  // Cluster 0: classes {0,0,1} -> 2 correct; cluster 1: {1,1} -> 2 correct.
  std::vector<int> pred{0, 0, 0, 1, 1};
  std::vector<int> truth{0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.8);
}

TEST(Purity, PerfectAndEmpty) {
  std::vector<int> l{0, 1, 0};
  EXPECT_DOUBLE_EQ(purity(l, l), 1.0);
  EXPECT_DOUBLE_EQ(purity({}, {}), 0.0);
}

TEST(DistinctLabels, CountsUnique) {
  std::vector<int> l{3, 1, 3, -1, 1};
  EXPECT_EQ(distinct_labels(l), 3u);
  EXPECT_EQ(distinct_labels({}), 0u);
}

}  // namespace
}  // namespace keybin2::stats
