# Empty compiler generated dependencies file for kb2_md.
# This may be replaced when dependencies are built.
