// Figure 2: assessing projected subspaces in a 2-dimensional example.
//
// The paper's figure shows a 6-cluster 2-D space with per-dimension
// histograms, the partition grid found by KeyBin2, per-cluster centroids
// (histogram modes), and the within/between dispersions feeding Eq. 2a-2c.
// This harness prints all of those quantities for the same scenario.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/assess.hpp"
#include "core/binner.hpp"
#include "core/cells.hpp"
#include "core/partitioner.hpp"
#include "data/gaussian_mixture.hpp"

namespace {

using namespace keybin2;

void print_histogram(const stats::Histogram& h, const char* name) {
  std::printf("%s histogram (%zu bins over [%.2f, %.2f]):\n", name, h.bins(),
              h.lo(), h.hi());
  const double peak =
      *std::max_element(h.counts().begin(), h.counts().end());
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const int bar =
        peak > 0 ? static_cast<int>(40.0 * h.count(b) / peak) : 0;
    std::printf("  %3zu |%-40.*s| %.0f\n", b, bar,
                "########################################", h.count(b));
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const std::size_t n = opt.full ? 60000 : 12000;

  // A 2-D, 6-cluster mixture on a 3x2 grid, like the paper's illustration.
  data::GaussianMixtureSpec spec;
  for (double cx : {0.0, 10.0, 20.0}) {
    for (double cy : {0.0, 10.0}) {
      spec.components.push_back({{cx, cy}, {1.0, 1.0}, 1.0});
    }
  }
  const auto d = data::sample(spec, n, opt.seed);
  std::printf("Figure 2 reproduction: 6 Gaussian clusters in 2-D, %zu points."
              "\n\n", n);

  // Bin both dimensions at depth 5 (32 bins), partition, build cells.
  const int depth = 5;
  std::vector<core::Range> ranges(2);
  for (std::size_t j = 0; j < 2; ++j) {
    double lo = d.points(0, j), hi = d.points(0, j);
    for (std::size_t i = 0; i < d.size(); ++i) {
      lo = std::min(lo, d.points(i, j));
      hi = std::max(hi, d.points(i, j));
    }
    ranges[j] = {lo, hi + 1e-9};
  }
  const auto keys = core::compute_keys(d.points, ranges, depth);
  const auto hierarchies = core::build_histograms(keys, ranges);

  core::Params params;
  std::vector<stats::Histogram> hists;
  std::vector<core::DimensionPartition> partitions;
  for (std::size_t j = 0; j < 2; ++j) {
    auto level = hierarchies[j].level(depth);
    core::PartitionTrace trace;
    auto partition = core::partition_discrete_opt(level.counts(),
                                                  params.min_prominence,
                                                  &trace);
    print_histogram(level, j == 0 ? "dimension x" : "dimension y");
    std::printf("  modes at bins:");
    for (auto m : trace.modes) std::printf(" %zu", m);
    std::printf("\n  cuts at bins:");
    for (auto c : partition.cuts) std::printf(" %zu", c);
    std::printf("  -> %zu primary clusters\n\n", partition.primary_count());
    hists.push_back(std::move(level));
    partitions.push_back(std::move(partition));
  }

  const auto cell_map =
      core::count_cells(keys, {0, 1}, partitions, depth);
  auto cells = core::to_cell_vector(cell_map);
  core::AssessBreakdown breakdown;
  const double cal =
      core::histogram_calinski_harabasz(hists, partitions, cells, &breakdown);

  std::printf("occupied cells (primary-grid coordinates -> density):\n");
  for (std::size_t q = 0; q < cells.size(); ++q) {
    std::printf("  (%u, %u) -> %.0f   centroid bins (%zu, %zu)\n",
                cells[q].coord[0], cells[q].coord[1], cells[q].density,
                breakdown.centroids[q][0], breakdown.centroids[q][1]);
  }
  std::printf("\nglobal centre (50th percentile bins): (%zu, %zu)\n",
              breakdown.global_center[0], breakdown.global_center[1]);
  std::printf("W_Q (within-cluster dispersion):  %.1f\n", breakdown.within);
  std::printf("B_Q (between-cluster dispersion): %.1f\n", breakdown.between);
  std::printf("cal (Eq. 2a): %.2f over %zu clusters\n", cal, cells.size());
  bench::Reporter::global().write(opt);
  return 0;
}
