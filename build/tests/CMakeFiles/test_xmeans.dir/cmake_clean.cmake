file(REMOVE_RECURSE
  "CMakeFiles/test_xmeans.dir/test_xmeans.cpp.o"
  "CMakeFiles/test_xmeans.dir/test_xmeans.cpp.o.d"
  "test_xmeans"
  "test_xmeans.pdb"
  "test_xmeans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
