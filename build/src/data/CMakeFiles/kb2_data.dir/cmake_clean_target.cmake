file(REMOVE_RECURSE
  "libkb2_data.a"
)
