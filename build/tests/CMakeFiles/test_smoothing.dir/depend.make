# Empty dependencies file for test_smoothing.
# This may be replaced when dependencies are built.
