#include "comm/proc_comm.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstring>
#include <optional>

#include "comm/fault.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

#ifdef __linux__
#include <dirent.h>
#include <fcntl.h>
#include <linux/futex.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace keybin2::comm {

#ifdef __linux__

namespace detail {

// The packed-word tricks below (futex on the high half of a 64-bit word)
// assume little-endian layout; every target this backend supports is.
static_assert(std::endian::native == std::endian::little,
              "ProcComm's packed futex words assume little-endian layout");

namespace {

constexpr std::uint64_t kDefaultRingBytes = 1 << 20;  // 1 MiB per (src, dest)
constexpr int kMaxProcRanks = 64;  // survivors travel as one 64-bit mask
constexpr std::uint32_t kShrinkPendingBit = 0x8000'0000u;
constexpr std::uint32_t kFrameSpilled = 1u;  // flags bit: payload is a path
constexpr long kWaitSliceMs = 50;  // bounded futex slice: lost wakeups cannot hang

// Child -> parent error report kinds (result-pipe protocol).
enum : std::uint32_t {
  kErrTimeout = 1,
  kErrRankFailed = 2,
  kErrRecovery = 3,
  kErrCorrupt = 4,
  kErrComm = 5,
  kErrKilled = 6,
  kErrPlain = 7,
  kErrUnknown = 8,
  kErrFitAborted = 9,
};

constexpr std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~7ull; }
constexpr std::uint32_t lo32(std::uint64_t w) {
  return static_cast<std::uint32_t>(w);
}
constexpr std::uint32_t hi32(std::uint64_t w) {
  return static_cast<std::uint32_t>(w >> 32);
}
constexpr std::uint64_t pack64(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace

/// On-wire frame header inside a ring. The payload follows, padded to 8
/// bytes. A spilled frame (flags & kFrameSpilled) carries the spill-file
/// path as its payload instead of the data.
struct FrameHeader {
  std::uint64_t size;  // payload bytes that follow this header
  std::uint64_t flow_id;
  std::uint32_t tag;
  std::uint32_t flags;
};
static_assert(sizeof(FrameHeader) == 24);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

/// One rank's slot in the shared lifecycle/traffic table. Writers: the rank
/// itself (reporting its own exit) or the parent (reporting a signal death
/// after waitpid — by which point the rank has no writer left alive). The
/// reason text is published before the state flips from kLive (release), so
/// any reader that observes a dead state (acquire) sees the full reason.
struct alignas(64) PerRank {
  std::atomic<std::uint8_t> state;        // RankState
  /// Set by whoever marks this rank failed while respawn budget remains:
  /// the parent supervisor owes this slot a replacement fork. Cleared when
  /// the respawn happens or is cancelled (flap).
  std::atomic<std::uint8_t> respawn_reserved;
  std::atomic<std::uint32_t> reason_kind; // kErr* of the recorded failure
  std::atomic<std::uint32_t> reason_len;
  /// Times this slot has been respawned; the original child reads 0.
  /// Bumped by the parent before the slot flips back to kLive.
  std::atomic<std::uint32_t> incarnation;
  std::atomic<std::uint64_t> messages_sent;
  std::atomic<std::uint64_t> bytes_sent;
  std::atomic<std::uint64_t> messages_received;
  std::atomic<std::uint64_t> bytes_received;
  char reason[208];
};
static_assert(sizeof(PerRank) == 256);

/// Cursors of one SPSC byte ring. Exactly one producer process (src) and one
/// consumer process (dest); head/tail are free-running byte counts, so
/// (head - tail) is the fill and wraparound needs no special case.
struct alignas(64) RingHeader {
  std::atomic<std::uint64_t> head;      // bytes ever published (producer)
  std::atomic<std::uint64_t> tail;      // bytes ever consumed (consumer)
  std::atomic<std::uint32_t> data_seq;  // bumped + woken on publish
  std::atomic<std::uint32_t> space_seq; // bumped + woken on consume
  std::atomic<std::uint32_t> msg_count; // frames currently parked (advisory)
};
static_assert(sizeof(RingHeader) == 64);

struct alignas(64) GroupHeader {
  std::uint32_t size = 0;
  std::uint64_t ring_bytes = 0;
  std::atomic<std::uint64_t> next_flow_id{1};
  /// Failures not yet acknowledged by a completed survivor agreement;
  /// nonzero makes every blocked operation throw RankFailedError.
  std::atomic<std::int32_t> unacked_failures{0};
  /// Central barrier, packed {high: generation, low: arrivals}. Waiters
  /// futex on the generation half; the size-th arriver bumps it.
  std::atomic<std::uint64_t> barrier_word{0};
  /// Survivor agreement, packed {high: generation, low: arrivals |
  /// kShrinkPendingBit}. The pending bit is what send/recv poll to learn a
  /// recovery rendezvous is in progress.
  std::atomic<std::uint64_t> shrink_word{0};
  /// Bit r set = rank r survived the last completed agreement. Written
  /// before the shrink generation bump (release) by whoever finalizes.
  std::atomic<std::uint64_t> survivors_mask{0};
  /// Respawn ladder (comm/recovery.hpp). `respawn_budget` is decremented by
  /// whoever marks a live rank failed, reserving one replacement fork;
  /// `respawn_pending` counts reservations the parent has not yet resolved.
  /// A nonzero pending count holds the survivor agreement open
  /// (try_finalize_shrink refuses quorum) so the survivors wait for the
  /// regrown full-width group instead of shrinking around a rank that is
  /// about to come back.
  std::atomic<std::int32_t> respawn_budget{0};
  std::atomic<std::int32_t> respawn_pending{0};
  std::atomic<std::uint32_t> respawns_total{0};
  std::atomic<std::uint32_t> regrow_epochs{0};
  char spill_dir[256] = {};
};

/// The parent-constructed view of the mapped segment. Plain pointers into a
/// MAP_SHARED region: fork preserves the mapping at the same addresses, so
/// children inherit a valid copy of this struct by value.
struct ProcShared {
  GroupHeader* hdr = nullptr;
  PerRank* ranks = nullptr;
  char* rings = nullptr;       // size*size ring slots, row-major by src
  std::uint64_t ring_slot = 0; // sizeof(RingHeader) + ring_bytes
  int size = 0;

  RingHeader* ring(int src, int dest) const {
    return reinterpret_cast<RingHeader*>(
        rings + (static_cast<std::uint64_t>(src) * size + dest) * ring_slot);
  }
  char* ring_data(RingHeader* r) const {
    return reinterpret_cast<char*>(r) + sizeof(RingHeader);
  }
  RankState state_of(int r) const {
    return static_cast<RankState>(
        ranks[r].state.load(std::memory_order_acquire));
  }
  bool shrink_pending() const {
    return (lo32(hdr->shrink_word.load(std::memory_order_acquire)) &
            kShrinkPendingBit) != 0;
  }
};

namespace {

// ---- futex (shared form: no PRIVATE flag — waiters live in other processes) ----

long sys_futex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
               const timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                 timeout, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  sys_futex(addr, FUTEX_WAKE, INT_MAX, nullptr);
}

/// Sleep until `*addr != expected`, a wake, or the slice elapses. Callers
/// always re-check their predicate: the slice bounds the cost of any wakeup
/// this backend might lose (e.g. parent marking a death between our load and
/// our wait).
void futex_wait_slice(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                      long slice_ms) {
  timespec ts{slice_ms / 1000, (slice_ms % 1000) * 1'000'000L};
  sys_futex(addr, FUTEX_WAIT, expected, &ts);
}

/// The futex word for the generation half of a packed {high: gen, low:
/// count} word (little-endian: high half sits at byte offset 4).
std::atomic<std::uint32_t>* gen_half(std::atomic<std::uint64_t>* word) {
  return reinterpret_cast<std::atomic<std::uint32_t>*>(
      reinterpret_cast<char*>(word) + 4);
}

// ---- ring byte movement (free-running cursors, modulo the capacity) ----

void ring_write(const ProcShared& g, RingHeader* r, std::uint64_t pos,
                const void* src, std::size_t n) {
  char* data = g.ring_data(r);
  const std::uint64_t cap = g.hdr->ring_bytes;
  const std::size_t off = static_cast<std::size_t>(pos % cap);
  const std::size_t first = std::min(n, static_cast<std::size_t>(cap) - off);
  std::memcpy(data + off, src, first);
  std::memcpy(data, static_cast<const char*>(src) + first, n - first);
}

void ring_read(const ProcShared& g, RingHeader* r, std::uint64_t pos, void* dst,
               std::size_t n) {
  const char* data = g.ring_data(r);
  const std::uint64_t cap = g.hdr->ring_bytes;
  const std::size_t off = static_cast<std::size_t>(pos % cap);
  const std::size_t first = std::min(n, static_cast<std::size_t>(cap) - off);
  std::memcpy(dst, data + off, first);
  std::memcpy(static_cast<char*>(dst) + first, data, n - first);
}

// ---- spill files (payloads too large for half a ring) ----

std::string spill_path(const ProcShared& g, int src, std::uint64_t flow_id) {
  return std::string(g.hdr->spill_dir) + "/f" + std::to_string(flow_id) + "." +
         std::to_string(src);
}

void write_spill(const std::string& path, std::span<const std::byte> data) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
  KB2_CHECK_MSG(fd >= 0, "ProcComm: cannot create spill file " << path);
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      ::unlink(path.c_str());
      throw Error("ProcComm: short write to spill file " + path);
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

std::vector<std::byte> read_and_unlink_spill(const std::string& path,
                                             std::vector<std::byte>&& buf) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  KB2_CHECK_MSG(fd >= 0, "ProcComm: missing spill file " << path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("ProcComm: cannot stat spill file " + path);
  }
  buf.resize(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::read(fd, buf.data() + done, buf.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      throw Error("ProcComm: short read from spill file " + path);
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return std::move(buf);
}

// ---- group-wide wakeups and failure marking ----

void wake_group(const ProcShared& g) {
  for (int s = 0; s < g.size; ++s) {
    for (int d = 0; d < g.size; ++d) {
      RingHeader* r = g.ring(s, d);
      futex_wake_all(&r->data_seq);
      futex_wake_all(&r->space_seq);
    }
  }
  futex_wake_all(gen_half(&g.hdr->barrier_word));
  futex_wake_all(gen_half(&g.hdr->shrink_word));
}

/// Drop every frame parked in every ring. Walks the frames rather than just
/// snapping tail to head so that spilled payloads are unlinked along with
/// the ring bytes that referenced them — otherwise an abandoned protocol
/// leaks one file per in-flight oversized frame. Only safe when no rank is
/// mid-send/mid-recv (the finalize rendezvous guarantees that).
void purge_rings(const ProcShared& g) {
  for (int s = 0; s < g.size; ++s) {
    for (int d = 0; d < g.size; ++d) {
      RingHeader* r = g.ring(s, d);
      std::uint64_t tail = r->tail.load(std::memory_order_acquire);
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      while (tail != head) {
        FrameHeader fh{};
        ring_read(g, r, tail, &fh, sizeof(fh));
        if ((fh.flags & kFrameSpilled) != 0) {
          std::string path(static_cast<std::size_t>(fh.size), '\0');
          ring_read(g, r, tail + sizeof(fh), path.data(), path.size());
          ::unlink(path.c_str());
        }
        tail += align8(sizeof(fh) + fh.size);
      }
      r->tail.store(head, std::memory_order_release);
      r->msg_count.store(0, std::memory_order_relaxed);
    }
  }
}

/// Unlink every spill file rank `src` wrote (names end in ".<src>"): a rank
/// killed between writing a spill file and publishing the ring frame that
/// references it leaves a file nothing will ever read. Called during
/// finalize for each dead rank, when nobody can still be consuming from it.
void sweep_rank_spills(const ProcShared& g, int src) {
  DIR* d = ::opendir(g.hdr->spill_dir);
  if (d == nullptr) return;
  const std::string suffix = "." + std::to_string(src);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ::unlink((std::string(g.hdr->spill_dir) + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

/// Complete a pending survivor agreement if every live rank has arrived.
/// Runs in whichever process notices quorum — the last arriver or the parent
/// after marking a death. The survivor snapshot, the purge, and the
/// acknowledgement all happen *before* the generation bump that releases the
/// waiters (every live rank is parked inside agree_survivors() at that
/// point, so nothing is mid-send during the purge).
void try_finalize_shrink(const ProcShared& g) {
  for (;;) {
    std::uint64_t w = g.hdr->shrink_word.load(std::memory_order_acquire);
    if ((lo32(w) & kShrinkPendingBit) == 0) return;
    // A reserved-but-unresolved respawn holds the agreement open: the dead
    // slot will flip back to kLive and its replacement must be counted in
    // the quorum, or the survivors would finalize a shrink around a rank
    // that is about to rejoin.
    if (g.hdr->respawn_pending.load(std::memory_order_acquire) > 0) return;
    std::uint64_t mask = 0;
    int live = 0;
    bool has_respawned_member = false;
    for (int r = 0; r < g.size; ++r) {
      if (g.state_of(r) == RankState::kLive) {
        mask |= 1ull << r;
        ++live;
        if (g.ranks[r].incarnation.load(std::memory_order_acquire) > 0) {
          has_respawned_member = true;
        }
      }
    }
    const std::uint32_t arrived = lo32(w) & ~kShrinkPendingBit;
    if (static_cast<int>(arrived) < live) return;
    // A regrow epoch: the agreed group is wider than the last agreement
    // (or this is the first agreement and a replacement incarnation is
    // already among the members) — a respawned rank made it back.
    const std::uint64_t prev =
        g.hdr->survivors_mask.load(std::memory_order_relaxed);
    const bool regrew = (prev != 0 && (mask & ~prev) != 0) ||
                        (prev == 0 && has_respawned_member);
    if (regrew) g.hdr->regrow_epochs.fetch_add(1, std::memory_order_relaxed);
    g.hdr->survivors_mask.store(mask, std::memory_order_release);
    purge_rings(g);
    for (int r = 0; r < g.size; ++r) {
      if (g.state_of(r) == RankState::kFailed) sweep_rank_spills(g, r);
    }
    g.hdr->unacked_failures.store(0, std::memory_order_release);
    // A rank that died inside the barrier never withdrew its arrival; reset
    // the count (nobody is mid-barrier — see above).
    const std::uint64_t bw = g.hdr->barrier_word.load(std::memory_order_relaxed);
    g.hdr->barrier_word.store(pack64(hi32(bw), 0), std::memory_order_relaxed);
    if (g.hdr->shrink_word.compare_exchange_weak(w, pack64(hi32(w) + 1, 0),
                                                 std::memory_order_acq_rel)) {
      futex_wake_all(gen_half(&g.hdr->shrink_word));
      return;
    }
    // An arrival or withdrawal raced the bump; re-evaluate the quorum.
  }
}

/// Record a dead rank in the shared table. `expected` is the state the rank
/// must still be in (its writer is gone, so no store can race this). Returns
/// false when the rank already recorded its own exit.
bool mark_failed_in_shared(const ProcShared& g, int rank,
                           const std::string& reason, std::uint32_t kind,
                           RankState expected = RankState::kLive) {
  PerRank& p = g.ranks[rank];
  if (p.state.load(std::memory_order_acquire) !=
      static_cast<std::uint8_t>(expected)) {
    return false;
  }
  if (expected == RankState::kLive) {
    // Reserve a respawn while budget remains — atomically with publishing
    // the failure, so no observer can finalize a shrink in the window
    // between "rank died" and "a replacement is owed". A kDeparted rank
    // (finished, result lost) is never respawned: its work is done.
    std::int32_t budget =
        g.hdr->respawn_budget.load(std::memory_order_acquire);
    while (budget > 0 && !g.hdr->respawn_budget.compare_exchange_weak(
                             budget, budget - 1, std::memory_order_acq_rel)) {
    }
    if (budget > 0) {
      p.respawn_reserved.store(1, std::memory_order_relaxed);
      g.hdr->respawn_pending.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  const std::size_t n = std::min(reason.size(), sizeof(p.reason));
  std::memcpy(p.reason, reason.data(), n);
  p.reason_len.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  p.reason_kind.store(kind, std::memory_order_relaxed);
  p.state.store(static_cast<std::uint8_t>(RankState::kFailed),
                std::memory_order_release);
  g.hdr->unacked_failures.fetch_add(1, std::memory_order_acq_rel);
  try_finalize_shrink(g);
  wake_group(g);
  return true;
}

std::string read_reason(const ProcShared& g, int r) {
  const PerRank& p = g.ranks[r];
  const std::uint32_t n =
      std::min<std::uint32_t>(p.reason_len.load(std::memory_order_acquire),
                              sizeof(p.reason));
  return std::string(p.reason, n);
}

}  // namespace
}  // namespace detail

using detail::ProcShared;

// ---- ProcComm: the per-rank endpoint (runs inside a forked child) ----

ProcComm::ProcComm(detail::ProcShared* shared, int rank)
    : g_(shared), rank_(rank) {}

int ProcComm::size() const { return g_->size; }

void ProcComm::throw_rank_failed(const char* op, int self, int peer, int tag) {
  throw RankFailedError(rank_failed_message(
      op, self, peer, tag, size(), [&](int r) { return g_->state_of(r); },
      [&](int r) { return detail::read_reason(*g_, r); }));
}

void ProcComm::drain_rings() {
  for (int src = 0; src < g_->size; ++src) {
    if (src == rank_) continue;
    detail::RingHeader* r = g_->ring(src, rank_);
    for (;;) {
      // Sole consumer of this ring: tail is ours, head is the producer's.
      const std::uint64_t tail = r->tail.load(std::memory_order_relaxed);
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      if (head == tail) break;
      detail::FrameHeader fh{};
      detail::ring_read(*g_, r, tail, &fh, sizeof(fh));
      auto buf = stash_.take_buffer();
      buf.resize(static_cast<std::size_t>(fh.size));
      detail::ring_read(*g_, r, tail + sizeof(fh), buf.data(), buf.size());
      r->tail.store(tail + detail::align8(sizeof(fh) + fh.size),
                    std::memory_order_release);
      if (r->msg_count.load(std::memory_order_relaxed) > 0) {
        r->msg_count.fetch_sub(1, std::memory_order_relaxed);
      }
      r->space_seq.fetch_add(1, std::memory_order_release);
      detail::futex_wake_all(&r->space_seq);
      if ((fh.flags & detail::kFrameSpilled) != 0) {
        const std::string path(reinterpret_cast<const char*>(buf.data()),
                               buf.size());
        buf = detail::read_and_unlink_spill(path, std::move(buf));
      }
      stash_.push(src, static_cast<int>(fh.tag),
                  Message{std::move(buf), fh.flow_id});
    }
  }
}

void ProcComm::send(int dest, int tag, std::span<const std::byte> data) {
  KB2_CHECK_MSG(dest >= 0 && dest < size(),
                "send dest " << dest << " out of group size " << size());
  // Flight begin before any throw or blocking wait; the matching end fires
  // only on the success path, so a SIGKILL inside the ring-full wait (or a
  // thrown abandonment) leaves the unmatched begin the post-mortem reads.
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kSend, dest, tag, data.size());
  }
  if (g_->shrink_pending()) {
    throw RecoveryError(abandoned_message(rank_, "send", dest, tag));
  }
  const RankState dest_state = g_->state_of(dest);
  if (dest_state == RankState::kFailed) {
    throw_rank_failed("send", rank_, dest, tag);
  }
  if (dest_state == RankState::kDeparted) {
    throw RankFailedError(send_departed_message(rank_, dest, tag));
  }

  const std::uint64_t flow_id =
      g_->hdr->next_flow_id.fetch_add(1, std::memory_order_relaxed);
  detail::FrameHeader fh{};
  fh.flow_id = flow_id;
  fh.tag = static_cast<std::uint32_t>(tag);

  // Oversized payloads travel through a spill file: the ring carries only
  // the path, so no payload size can exceed (and thus deadlock) a ring.
  std::string spill;
  std::span<const std::byte> wire = data;
  if (detail::align8(sizeof(fh) + data.size()) > g_->hdr->ring_bytes / 2) {
    spill = detail::spill_path(*g_, rank_, flow_id);
    detail::write_spill(spill, data);
    fh.flags |= detail::kFrameSpilled;
    wire = std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(spill.data()), spill.size());
  }
  fh.size = wire.size();
  const std::uint64_t need = detail::align8(sizeof(fh) + wire.size());

  detail::RingHeader* r = g_->ring(rank_, dest);
  const auto start = CommClock::now();
  const double tmo = timeout();
  for (;;) {
    // Sole producer of this ring: head is ours, tail is the consumer's.
    const std::uint64_t head = r->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = r->tail.load(std::memory_order_acquire);
    if (g_->hdr->ring_bytes - (head - tail) >= need) {
      detail::ring_write(*g_, r, head, &fh, sizeof(fh));
      detail::ring_write(*g_, r, head + sizeof(fh), wire.data(), wire.size());
      if (CommProbe* p = probe()) {
        // Fire before the head publish below: the receiver cannot observe
        // this frame until the store, so the send timestamp precedes the
        // matching recv timestamp on the shared clock. Depth = frames
        // currently in flight toward dest, plus this one.
        std::size_t depth = 1;
        for (int s = 0; s < g_->size; ++s) {
          depth += g_->ring(s, dest)->msg_count.load(std::memory_order_relaxed);
        }
        p->on_send(rank_, dest, tag, data.size(), flow_id, depth);
      }
      r->head.store(head + need, std::memory_order_release);
      r->msg_count.fetch_add(1, std::memory_order_relaxed);
      r->data_seq.fetch_add(1, std::memory_order_release);
      detail::futex_wake_all(&r->data_seq);
      detail::PerRank& me = g_->ranks[rank_];
      me.messages_sent.fetch_add(1, std::memory_order_relaxed);
      me.bytes_sent.fetch_add(data.size(), std::memory_order_relaxed);
      if (FlightHook* f = flight_hook()) {
        f->on_op_end(FlightHook::kSend, dest, tag, data.size());
      }
      return;
    }

    // Ring full: drain our own inbox while we wait (two ranks flooding each
    // other must not deadlock on two full rings), re-check the group state,
    // then sleep a bounded slice on the consumer's progress word.
    drain_rings();
    if (g_->shrink_pending()) {
      if (!spill.empty()) ::unlink(spill.c_str());
      throw RecoveryError(abandoned_message(rank_, "send", dest, tag));
    }
    if (g_->state_of(dest) != RankState::kLive) {
      if (!spill.empty()) ::unlink(spill.c_str());
      throw_rank_failed("send", rank_, dest, tag);
    }
    if (tmo > 0.0 && CommClock::now() >= comm_deadline(start, tmo)) {
      if (!spill.empty()) ::unlink(spill.c_str());
      throw TimeoutError("rank " + std::to_string(rank_) + " send(peer=" +
                             std::to_string(dest) + ", tag=" +
                             std::to_string(tag) + ") timed out after " +
                             std::to_string(comm_seconds_since(start)) + "s",
                         rank_, dest, tag, comm_seconds_since(start));
    }
    const std::uint32_t seq = r->space_seq.load(std::memory_order_acquire);
    if (g_->hdr->ring_bytes - (r->head.load(std::memory_order_relaxed) -
                               r->tail.load(std::memory_order_acquire)) >=
        need) {
      continue;  // consumer advanced between the check and the wait
    }
    detail::futex_wait_slice(&r->space_seq, seq, detail::kWaitSliceMs);
  }
}

std::vector<std::byte> ProcComm::recv(int src, int tag) {
  KB2_CHECK_MSG(src >= 0 && src < size(),
                "recv src " << src << " out of group size " << size());
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kRecv, src, tag, 0);
  }
  const auto start = CommClock::now();
  const std::int64_t t0 = now_ns();
  const double tmo = timeout();
  detail::RingHeader* r = g_->ring(src, rank_);
  for (;;) {
    drain_rings();
    Message msg;
    if (stash_.try_pop(src, tag, &msg)) {
      detail::PerRank& me = g_->ranks[rank_];
      me.messages_received.fetch_add(1, std::memory_order_relaxed);
      me.bytes_received.fetch_add(msg.bytes.size(), std::memory_order_relaxed);
      if (CommProbe* p = probe()) {
        p->on_recv(rank_, src, tag, msg.bytes.size(), msg.flow_id,
                   now_ns() - t0);
      }
      if (FlightHook* f = flight_hook()) {
        f->on_op_end(FlightHook::kRecv, src, tag, msg.bytes.size());
      }
      return std::move(msg.bytes);
    }
    // Same precedence as ThreadComm's pop: deliver if possible (above), then
    // recovery rendezvous, then unacknowledged failures, then a departed
    // source, then the deadline.
    if (g_->shrink_pending()) {
      throw RecoveryError(abandoned_message(rank_, "recv", src, tag));
    }
    if (g_->hdr->unacked_failures.load(std::memory_order_acquire) > 0) {
      throw_rank_failed("recv", rank_, src, tag);
    }
    if (g_->state_of(src) == RankState::kDeparted) {
      throw RankFailedError(recv_departed_message(rank_, src, tag));
    }
    if (tmo > 0.0 && CommClock::now() >= comm_deadline(start, tmo)) {
      throw_recv_timeout(rank_, src, tag, comm_seconds_since(start));
    }
    const std::uint32_t seq = r->data_seq.load(std::memory_order_acquire);
    if (r->head.load(std::memory_order_acquire) !=
        r->tail.load(std::memory_order_relaxed)) {
      continue;  // a frame landed between the drain and the wait
    }
    detail::futex_wait_slice(&r->data_seq, seq, detail::kWaitSliceMs);
  }
}

void ProcComm::barrier() {
  const auto start = CommClock::now();
  const std::int64_t t0 = now_ns();
  const double tmo = timeout();
  // Flight end fires only on completion; an abandoned barrier leaves the
  // unmatched begin as evidence of where the rank was parked.
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kBarrier, -1, -1, 0);
  }
  if (g_->shrink_pending()) {
    throw RecoveryError(abandoned_message(rank_, "barrier", -1, -1));
  }
  // Full-group collective: once any rank is dead or gone it can never
  // complete (shrunken groups synchronize through SubgroupComm::barrier).
  for (int r = 0; r < size(); ++r) {
    if (g_->state_of(r) != RankState::kLive) {
      throw_rank_failed("barrier", rank_, /*peer=*/-1, /*tag=*/-1);
    }
  }

  std::atomic<std::uint64_t>& bw = g_->hdr->barrier_word;
  std::uint64_t w = bw.load(std::memory_order_acquire);
  std::uint32_t my_generation;
  for (;;) {
    my_generation = detail::hi32(w);
    const std::uint32_t count = detail::lo32(w);
    if (static_cast<int>(count) + 1 == size()) {
      // Last arriver: release the generation and wake the waiters.
      if (bw.compare_exchange_weak(w, detail::pack64(my_generation + 1, 0),
                                   std::memory_order_acq_rel)) {
        detail::futex_wake_all(detail::gen_half(&bw));
        if (CommProbe* p = probe()) p->on_barrier(rank_, now_ns() - t0);
        if (FlightHook* f = flight_hook()) {
          f->on_op_end(FlightHook::kBarrier, -1, -1, 0);
        }
        return;
      }
    } else if (bw.compare_exchange_weak(
                   w, detail::pack64(my_generation, count + 1),
                   std::memory_order_acq_rel)) {
      break;
    }
  }

  const auto withdraw = [&]() -> bool {
    // Undo our arrival so a later barrier is not miscounted; fails (returns
    // false) when the barrier completed while we were trying.
    std::uint64_t cur = bw.load(std::memory_order_acquire);
    for (;;) {
      if (detail::hi32(cur) != my_generation) return false;
      if (bw.compare_exchange_weak(
              cur,
              detail::pack64(my_generation, detail::lo32(cur) - 1),
              std::memory_order_acq_rel)) {
        return true;
      }
    }
  };

  for (;;) {
    w = bw.load(std::memory_order_acquire);
    if (detail::hi32(w) != my_generation) {
      if (CommProbe* p = probe()) p->on_barrier(rank_, now_ns() - t0);
      if (FlightHook* f = flight_hook()) {
        f->on_op_end(FlightHook::kBarrier, -1, -1, 0);
      }
      return;
    }
    if (g_->shrink_pending()) {
      if (!withdraw()) continue;  // completed after all
      throw RecoveryError(abandoned_message(rank_, "barrier", -1, -1));
    }
    if (g_->hdr->unacked_failures.load(std::memory_order_acquire) > 0) {
      if (!withdraw()) continue;
      throw_rank_failed("barrier", rank_, /*peer=*/-1, /*tag=*/-1);
    }
    if (tmo > 0.0 && CommClock::now() >= comm_deadline(start, tmo)) {
      if (!withdraw()) continue;
      throw_barrier_timeout(rank_, comm_seconds_since(start));
    }
    detail::futex_wait_slice(detail::gen_half(&bw), my_generation,
                             detail::kWaitSliceMs);
  }
}

std::vector<int> ProcComm::agree_survivors() {
  const auto start = CommClock::now();
  const double tmo = timeout();
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kAgree, -1, -1, 0);
  }
  std::atomic<std::uint64_t>& sw = g_->hdr->shrink_word;

  // Arrive: set the pending bit (waking blocked peers into RecoveryError so
  // they converge here too) and count ourselves.
  std::uint64_t w = sw.load(std::memory_order_acquire);
  std::uint32_t my_generation;
  bool initiated;
  for (;;) {
    my_generation = detail::hi32(w);
    const std::uint32_t lo = detail::lo32(w);
    initiated = (lo & detail::kShrinkPendingBit) == 0;
    if (sw.compare_exchange_weak(
            w,
            detail::pack64(my_generation,
                           (lo | detail::kShrinkPendingBit) + 1),
            std::memory_order_acq_rel)) {
      break;
    }
  }
  if (initiated) detail::wake_group(*g_);

  for (;;) {
    detail::try_finalize_shrink(*g_);  // we may be the quorum's last member
    w = sw.load(std::memory_order_acquire);
    if (detail::hi32(w) != my_generation) break;  // agreement completed
    if (tmo > 0.0 && CommClock::now() >= comm_deadline(start, tmo)) {
      // Withdraw our arrival (a retry will re-arrive) unless the agreement
      // completed while we were timing out.
      std::uint64_t cur = sw.load(std::memory_order_acquire);
      bool withdrawn = false;
      for (;;) {
        if (detail::hi32(cur) != my_generation) break;
        if (sw.compare_exchange_weak(
                cur,
                detail::pack64(my_generation, detail::lo32(cur) - 1),
                std::memory_order_acq_rel)) {
          withdrawn = true;
          break;
        }
      }
      if (!withdrawn) break;  // completed after all
      throw_agree_timeout(rank_, comm_seconds_since(start));
    }
    detail::futex_wait_slice(detail::gen_half(&sw), my_generation,
                             detail::kWaitSliceMs);
  }

  // In-flight traffic was purged group-wide at finalize; drop what we had
  // already drained locally so nothing stale leaks into the retried protocol.
  stash_.clear();
  const std::uint64_t mask =
      g_->hdr->survivors_mask.load(std::memory_order_acquire);
  std::vector<int> survivors;
  for (int r = 0; r < size(); ++r) {
    if ((mask >> r) & 1u) survivors.push_back(r);
  }
  if (FlightHook* f = flight_hook()) {
    f->on_op_end(FlightHook::kAgree, -1, -1, survivors.size());
  }
  return survivors;
}

TrafficStats ProcComm::stats() const {
  const detail::PerRank& me = g_->ranks[rank_];
  return TrafficStats{
      me.messages_sent.load(std::memory_order_relaxed),
      me.bytes_sent.load(std::memory_order_relaxed),
      me.messages_received.load(std::memory_order_relaxed),
      me.bytes_received.load(std::memory_order_relaxed),
  };
}

void ProcComm::recycle_buffer(std::vector<std::byte>&& buf) {
  stash_.recycle(std::move(buf));
}

std::vector<int> ProcComm::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size(); ++r) {
    if (g_->state_of(r) == RankState::kFailed) out.push_back(r);
  }
  return out;
}

int ProcComm::incarnation() const {
  return static_cast<int>(
      g_->ranks[rank_].incarnation.load(std::memory_order_acquire));
}

std::uint64_t ProcComm::respawns_total() const {
  return g_->hdr->respawns_total.load(std::memory_order_relaxed);
}

std::uint64_t ProcComm::regrow_epochs() const {
  return g_->hdr->regrow_epochs.load(std::memory_order_relaxed);
}

// ---- parent side: segment construction, fork, monitor, collection ----

namespace detail {
namespace {

/// RAII owner of the mapped segment and the spill directory. Constructed in
/// the parent before any fork; the shm object is unlinked immediately after
/// mmap, so the kernel reclaims it when the last process unmaps (even on a
/// crash), and children inherit it purely through the shared mapping.
class MappedGroup {
 public:
  MappedGroup(int n, std::uint64_t ring_bytes) {
    if (ring_bytes == 0) ring_bytes = kDefaultRingBytes;
    ring_bytes = align8(std::max<std::uint64_t>(ring_bytes, 4096));
    const std::uint64_t ring_slot = sizeof(RingHeader) + ring_bytes;
    const std::uint64_t total =
        sizeof(GroupHeader) + static_cast<std::uint64_t>(n) * sizeof(PerRank) +
        static_cast<std::uint64_t>(n) * n * ring_slot;

    std::string name;
    int fd = -1;
    for (int attempt = 0; attempt < 64 && fd < 0; ++attempt) {
      name = "/kb2-proc-" + std::to_string(::getpid()) + "-" +
             std::to_string(attempt);
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd < 0 && errno != EEXIST) break;
    }
    KB2_CHECK_MSG(fd >= 0, "ProcComm: shm_open failed for group segment");
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw Error("ProcComm: ftruncate(" + std::to_string(total) +
                  ") failed for group segment");
    }
    void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);
    ::shm_unlink(name.c_str());
    KB2_CHECK_MSG(base != MAP_FAILED, "ProcComm: mmap failed for group segment");
    map_base_ = base;
    map_len_ = total;

    auto* hdr = new (base) GroupHeader{};
    hdr->size = static_cast<std::uint32_t>(n);
    hdr->ring_bytes = ring_bytes;
    char* cursor = static_cast<char*>(base) + sizeof(GroupHeader);
    auto* ranks = reinterpret_cast<PerRank*>(cursor);
    for (int r = 0; r < n; ++r) new (&ranks[r]) PerRank{};
    cursor += static_cast<std::uint64_t>(n) * sizeof(PerRank);
    for (int i = 0; i < n * n; ++i) {
      new (cursor + static_cast<std::uint64_t>(i) * ring_slot) RingHeader{};
    }

    shared_.hdr = hdr;
    shared_.ranks = ranks;
    shared_.rings = cursor;
    shared_.ring_slot = ring_slot;
    shared_.size = n;

    // Spill directory: tmpfs when available so oversized frames stay
    // memory-speed, /tmp otherwise.
    struct stat st{};
    const char* parent_dir =
        (::stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode)) ? "/dev/shm"
                                                              : "/tmp";
    spill_dir_ = std::string(parent_dir) + "/kb2-spill-" +
                 std::to_string(::getpid()) + "-" + name.substr(name.rfind('-') + 1);
    KB2_CHECK_MSG(::mkdir(spill_dir_.c_str(), 0700) == 0,
                  "ProcComm: cannot create spill dir " << spill_dir_);
    KB2_CHECK_MSG(spill_dir_.size() < sizeof(hdr->spill_dir),
                  "ProcComm: spill dir path too long");
    std::memcpy(hdr->spill_dir, spill_dir_.c_str(), spill_dir_.size() + 1);
  }

  ~MappedGroup() {
    if (!spill_dir_.empty()) {
      if (DIR* d = ::opendir(spill_dir_.c_str())) {
        while (dirent* e = ::readdir(d)) {
          if (std::strcmp(e->d_name, ".") == 0 ||
              std::strcmp(e->d_name, "..") == 0) {
            continue;
          }
          ::unlink((spill_dir_ + "/" + e->d_name).c_str());
        }
        ::closedir(d);
      }
      ::rmdir(spill_dir_.c_str());
    }
    if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
  }

  MappedGroup(const MappedGroup&) = delete;
  MappedGroup& operator=(const MappedGroup&) = delete;

  ProcShared& shared() { return shared_; }

 private:
  ProcShared shared_;
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
  std::string spill_dir_;
};

/// One child's error report, parsed from its result pipe.
struct ChildReport {
  bool complete = false;  // a full frame arrived before EOF
  bool ok = false;
  std::vector<std::byte> result;
  std::uint32_t err_kind = 0;
  std::string err_what;
  int t_self = 0, t_src = 0, t_tag = 0;  // kErrTimeout attribution
  double t_elapsed = 0.0;
  int a_attempts = 0;                    // kErrFitAborted attribution
  std::string a_last_kind;
};

ChildReport parse_report(const std::string& buf) {
  ChildReport rep;
  if (buf.empty()) return rep;
  try {
    ByteReader rd(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(buf.data()), buf.size()));
    const auto status = rd.read<std::uint8_t>();
    if (status == 0) {
      rep.result = rd.read_vec<std::byte>();
      rep.ok = true;
    } else {
      rep.err_kind = rd.read<std::uint32_t>();
      rep.err_what = rd.read_string();
      if (rep.err_kind == kErrTimeout) {
        rep.t_self = rd.read<std::int32_t>();
        rep.t_src = rd.read<std::int32_t>();
        rep.t_tag = rd.read<std::int32_t>();
        rep.t_elapsed = rd.read<double>();
      } else if (rep.err_kind == kErrFitAborted) {
        rep.a_attempts = rd.read<std::int32_t>();
        rep.a_last_kind = rd.read_string();
      }
    }
    rep.complete = rd.exhausted();
  } catch (const Error&) {
    rep.complete = false;  // truncated mid-frame (the child died writing it)
  }
  return rep;
}

std::exception_ptr reconstruct_error(const ChildReport& rep) {
  switch (rep.err_kind) {
    case kErrTimeout:
      return std::make_exception_ptr(TimeoutError(
          rep.err_what, rep.t_self, rep.t_src, rep.t_tag, rep.t_elapsed));
    case kErrRankFailed:
      return std::make_exception_ptr(RankFailedError(rep.err_what));
    case kErrRecovery:
      return std::make_exception_ptr(RecoveryError(rep.err_what));
    case kErrCorrupt:
      return std::make_exception_ptr(CorruptFrameError(rep.err_what));
    case kErrComm:
      return std::make_exception_ptr(CommError(rep.err_what));
    case kErrKilled:
      return std::make_exception_ptr(fault::KilledError(rep.err_what));
    case kErrFitAborted:
      return std::make_exception_ptr(
          FitAbortedError(rep.err_what, rep.a_attempts, rep.a_last_kind));
    default:
      return std::make_exception_ptr(Error(rep.err_what));
  }
}

void write_all(int fd, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return;  // parent died; nothing left to report to
    done += static_cast<std::size_t>(n);
  }
}

/// The forked child's whole life: run the rank function over a ProcComm
/// endpoint, record the outcome in shared memory (so peers unblock with the
/// right story), ship the result or error up the pipe, and _Exit without
/// running atexit handlers — this process shares the parent's file
/// descriptors, gtest state, and stdio buffers, none of which it owns.
[[noreturn]] void child_main(
    ProcShared& g, int rank, int pipe_fd,
    const std::function<std::vector<std::byte>(Communicator&)>& fn,
    bool rejoin) {
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // no orphans if the parent dies
  reset_global_pool_after_fork();

  ByteWriter out;
  int exit_code = 0;
  const auto record_failure = [&](std::uint32_t kind, const char* what) {
    mark_failed_in_shared(g, rank, what, kind);
    out.write<std::uint8_t>(1);
    out.write<std::uint32_t>(kind);
    out.write_string(what);
    exit_code = 1;
  };

  ProcComm comm(&g, rank);
  try {
    Communicator* endpoint = &comm;
    std::optional<SubgroupComm> sub;
    if (rejoin) {
      // A replacement incarnation: converge through the survivor rendezvous
      // before touching the protocol. The survivors are parked in (or
      // converging into) agree_survivors() — the agreement was held open
      // for us — and the agreed set tells us which group to run over: the
      // regrown full group, or (after earlier terminal losses) the same
      // shrunken subgroup the survivors retry on.
      auto survivors = comm.agree_survivors();
      if (static_cast<int>(survivors.size()) < comm.size()) {
        sub.emplace(comm, std::move(survivors));
        endpoint = &*sub;
      }
    }
    std::vector<std::byte> result = fn(*endpoint);
    // Departed before reporting: survivors blocked on us (or waiting for us
    // in agree_survivors) wake rather than hang on a rank that finished.
    g.ranks[rank].state.store(static_cast<std::uint8_t>(RankState::kDeparted),
                              std::memory_order_release);
    try_finalize_shrink(g);
    wake_group(g);
    out.write<std::uint8_t>(0);
    out.write_vec(result);
  } catch (const TimeoutError& e) {
    record_failure(kErrTimeout, e.what());
    out.write<std::int32_t>(e.self());
    out.write<std::int32_t>(e.src());
    out.write<std::int32_t>(e.tag());
    out.write<double>(e.elapsed_seconds());
  } catch (const FitAbortedError& e) {
    record_failure(kErrFitAborted, e.what());
    out.write<std::int32_t>(e.attempts());
    out.write_string(e.last_kind());
  } catch (const RankFailedError& e) {
    record_failure(kErrRankFailed, e.what());
  } catch (const RecoveryError& e) {
    record_failure(kErrRecovery, e.what());
  } catch (const CorruptFrameError& e) {
    record_failure(kErrCorrupt, e.what());
  } catch (const CommError& e) {
    record_failure(kErrComm, e.what());
  } catch (const fault::KilledError& e) {
    record_failure(kErrKilled, e.what());
  } catch (const std::exception& e) {
    record_failure(kErrPlain, e.what());
  } catch (...) {
    record_failure(kErrUnknown, "unknown exception");
  }

  write_all(pipe_fd, out.bytes());
  ::close(pipe_fd);
  std::_Exit(exit_code);
}

}  // namespace
}  // namespace detail

ProcRunResult proc_run_ranks(
    int n_ranks, std::size_t ring_bytes, const RecoveryPolicy& policy,
    const std::function<std::vector<std::byte>(Communicator&)>& fn,
    const AbnormalDeathFn& on_abnormal_death) {
  KB2_CHECK_MSG(n_ranks >= 1, "need at least one rank, got " << n_ranks);
  KB2_CHECK_MSG(n_ranks <= detail::kMaxProcRanks,
                "process backend supports at most " << detail::kMaxProcRanks
                                                    << " ranks, got "
                                                    << n_ranks);
  detail::MappedGroup group(n_ranks, ring_bytes);
  detail::ProcShared& g = group.shared();
  g.hdr->respawn_budget.store(policy.max_respawns, std::memory_order_relaxed);

  struct Child {
    pid_t pid = -1;
    int fd = -1;          // parent's read end of the result pipe
    std::string buf;      // bytes received so far
    bool eof = false;
    bool reaped = false;
    bool evaluated = false;
    int status = 0;       // waitpid status once reaped
    int incarnation = 0;  // how many times this slot has been respawned
    bool respawn_due = false;            // a replacement fork is scheduled
    CommClock::time_point respawn_at{};  // when the backoff elapses
    CommClock::time_point last_spawn{};  // flap-window reference point
  };
  std::vector<Child> children(static_cast<std::size_t>(n_ranks));
  std::vector<int> error_order;  // ranks with error reports, arrival order
  std::vector<detail::ChildReport> reports(static_cast<std::size_t>(n_ranks));
  int open_pipes = 0;
  int alive = 0;
  int scheduled_respawns = 0;

  // Fork one rank with clean stdio: a child that exits (or is killed) must
  // not flush a duplicated copy of the parent's buffered output. The child
  // closes every other live child's read end (their write ends were already
  // closed in the parent right after their own fork), so a dead sibling's
  // pipe still delivers EOF to the parent alone.
  const auto spawn = [&](int r, bool rejoin) {
    std::array<int, 2> p{};
    KB2_CHECK_MSG(::pipe(p.data()) == 0, "ProcComm: pipe() failed");
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    KB2_CHECK_MSG(pid >= 0, "ProcComm: fork() failed for rank " << r);
    if (pid == 0) {
      ::close(p[0]);
      for (const Child& sibling : children) {
        if (sibling.fd >= 0 && !sibling.eof) ::close(sibling.fd);
      }
      detail::child_main(g, r, p[1], fn, rejoin);
    }
    Child& c = children[static_cast<std::size_t>(r)];
    c.pid = pid;
    c.fd = p[0];
    ::close(p[1]);
    c.buf.clear();
    c.eof = c.reaped = c.evaluated = false;
    c.status = 0;
    c.last_spawn = CommClock::now();
    ++open_pipes;
    ++alive;
  };
  for (int r = 0; r < n_ranks; ++r) spawn(r, /*rejoin=*/false);

  // Monitor: drain result pipes and reap children until both are done. The
  // parent is the group's failure detector — a child that dies by signal
  // (or exits without a complete report) is marked failed in shared memory
  // so the survivors' blocked operations wake with an attributed error.
  // While respawn budget remains, it is also the recovery supervisor: a
  // failed slot whose death reserved budget is forked again after a
  // deterministic backoff and rejoins through the held-open agreement.
  std::vector<pollfd> fds;
  std::vector<int> fd_rank;
  char chunk[65536];
  while (open_pipes > 0 || alive > 0 || scheduled_respawns > 0) {
    fds.clear();
    fd_rank.clear();
    for (int r = 0; r < n_ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (c.eof) continue;
      fds.push_back(pollfd{c.fd, POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (!fds.empty()) {
      ::poll(fds.data(), fds.size(), 100);
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Child& c = children[static_cast<std::size_t>(fd_rank[i])];
        const ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
        if (n > 0) {
          c.buf.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          ::close(c.fd);
          c.eof = true;
          --open_pipes;
        }
      }
    }
    for (int r = 0; r < n_ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (c.reaped) continue;
      const pid_t got = ::waitpid(c.pid, &c.status, WNOHANG);
      if (got == c.pid) {
        c.reaped = true;
        --alive;
      }
    }
    // A child is fully accounted once its pipe closed and it was reaped;
    // only then can we distinguish "reported, then exited" from "died
    // mid-flight" (its report, if any, is truncated).
    for (int r = 0; r < n_ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (c.evaluated || !c.reaped || !c.eof) continue;
      c.evaluated = true;
      auto& rep = reports[static_cast<std::size_t>(r)];
      rep = detail::parse_report(c.buf);
      c.buf.clear();
      c.buf.shrink_to_fit();
      if (rep.complete) {
        // The child recorded its own fate in shared memory before exiting;
        // nothing to mark — just remember error arrival order.
        if (!rep.ok) error_order.push_back(r);
        continue;
      }
      std::string reason;
      if (WIFSIGNALED(c.status)) {
        reason = "killed by signal " + std::to_string(WTERMSIG(c.status));
      } else {
        reason = "exited (status " +
                 std::to_string(WIFEXITED(c.status) ? WEXITSTATUS(c.status)
                                                    : c.status) +
                 ") without reporting";
      }
      if (!detail::mark_failed_in_shared(g, r, reason, detail::kErrUnknown)) {
        // It had already marked itself departed but died before its result
        // crossed the pipe: the result is lost, which peers must learn.
        detail::mark_failed_in_shared(g, r, reason + " (result lost)",
                                      detail::kErrUnknown,
                                      RankState::kDeparted);
      }
      // Abnormal death observed at the supervisor: let the forensics layer
      // freeze and dump the black-box rings before any respawn reuses them.
      if (on_abnormal_death) on_abnormal_death(r, c.incarnation, reason);
    }
    // Schedule reserved respawns. A death that won budget (respawn_reserved
    // set inside mark_failed_in_shared, before the state flip) gets a
    // replacement fork after a deterministic backoff — unless the slot is
    // flapping (died again too soon after its last respawn), in which case
    // the reservation is cancelled and the held-open agreement finalizes as
    // an ordinary shrink: the ladder falls to the next rung.
    for (int r = 0; r < n_ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (!c.evaluated || c.respawn_due) continue;
      detail::PerRank& p = g.ranks[r];
      if (p.respawn_reserved.load(std::memory_order_acquire) == 0) continue;
      const auto now = CommClock::now();
      if (policy.flap_window_seconds > 0.0 && c.incarnation > 0 &&
          std::chrono::duration<double>(now - c.last_spawn).count() <
              policy.flap_window_seconds) {
        p.respawn_reserved.store(0, std::memory_order_relaxed);
        g.hdr->respawn_pending.fetch_sub(1, std::memory_order_acq_rel);
        detail::try_finalize_shrink(g);
        detail::wake_group(g);
        continue;
      }
      const double delay = backoff_ms(
          policy, c.incarnation,
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) ^
              static_cast<std::uint64_t>(c.incarnation));
      c.respawn_at = now + std::chrono::microseconds(
                               static_cast<std::int64_t>(delay * 1000.0));
      c.respawn_due = true;
      ++scheduled_respawns;
    }
    // Fire due respawns: resurrect the slot in shared memory, fork the
    // replacement, then release the held-open agreement. Ordering matters —
    // the slot must read kLive before respawn_pending drops, so a waiter
    // re-scanning at that instant needs the newcomer for quorum and the
    // agreement can never finalize at shrunken width in the gap.
    for (int r = 0; r < n_ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (!c.respawn_due || CommClock::now() < c.respawn_at) continue;
      detail::PerRank& p = g.ranks[r];
      p.reason_len.store(0, std::memory_order_relaxed);
      p.reason_kind.store(0, std::memory_order_relaxed);
      p.respawn_reserved.store(0, std::memory_order_relaxed);
      p.incarnation.fetch_add(1, std::memory_order_relaxed);
      p.state.store(static_cast<std::uint8_t>(RankState::kLive),
                    std::memory_order_release);
      // The dead incarnation no longer speaks for this slot: its report and
      // place in the error order are superseded by whatever the replacement
      // produces.
      reports[static_cast<std::size_t>(r)] = {};
      std::erase(error_order, r);
      c.respawn_due = false;
      --scheduled_respawns;
      ++c.incarnation;
      spawn(r, /*rejoin=*/true);
      g.hdr->respawns_total.fetch_add(1, std::memory_order_relaxed);
      g.hdr->respawn_pending.fetch_sub(1, std::memory_order_acq_rel);
      detail::wake_group(g);
    }
    if (fds.empty() && scheduled_respawns > 0) {
      // Every pipe is closed but a replacement fork is pending: nap through
      // the backoff instead of spinning.
      const timespec nap{0, 2'000'000};
      ::nanosleep(&nap, nullptr);
    }
  }

  ProcRunResult out;
  out.results.resize(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    auto& rep = reports[static_cast<std::size_t>(r)];
    if (rep.complete && rep.ok) {
      out.results[static_cast<std::size_t>(r)] = std::move(rep.result);
    }
  }
  for (const int r : error_order) {
    out.first_error =
        detail::reconstruct_error(reports[static_cast<std::size_t>(r)]);
    break;
  }
  for (int r = 0; r < n_ranks; ++r) {
    const detail::PerRank& p = g.ranks[r];
    out.total_stats += TrafficStats{
        p.messages_sent.load(std::memory_order_relaxed),
        p.bytes_sent.load(std::memory_order_relaxed),
        p.messages_received.load(std::memory_order_relaxed),
        p.bytes_received.load(std::memory_order_relaxed),
    };
  }
  out.respawns_total = static_cast<int>(
      g.hdr->respawns_total.load(std::memory_order_relaxed));
  out.regrow_epochs = static_cast<int>(
      g.hdr->regrow_epochs.load(std::memory_order_relaxed));
  return out;
}

ProcRunResult proc_run_ranks(
    int n_ranks, std::size_t ring_bytes,
    const std::function<std::vector<std::byte>(Communicator&)>& fn) {
  return proc_run_ranks(n_ranks, ring_bytes, RecoveryPolicy{}, fn);
}

#else  // !__linux__

namespace detail {
struct ProcShared {};
}  // namespace detail

namespace {
[[noreturn]] void no_proc_backend() {
  throw Error(
      "the process-backed communicator requires Linux "
      "(shm_open + futex); use the thread backend here");
}
}  // namespace

ProcComm::ProcComm(detail::ProcShared*, int) { no_proc_backend(); }
int ProcComm::size() const { no_proc_backend(); }
void ProcComm::send(int, int, std::span<const std::byte>) { no_proc_backend(); }
std::vector<std::byte> ProcComm::recv(int, int) { no_proc_backend(); }
void ProcComm::barrier() { no_proc_backend(); }
TrafficStats ProcComm::stats() const { no_proc_backend(); }
void ProcComm::recycle_buffer(std::vector<std::byte>&&) { no_proc_backend(); }
std::vector<int> ProcComm::failed_ranks() const { no_proc_backend(); }
std::vector<int> ProcComm::agree_survivors() { no_proc_backend(); }
int ProcComm::incarnation() const { no_proc_backend(); }
std::uint64_t ProcComm::respawns_total() const { no_proc_backend(); }
std::uint64_t ProcComm::regrow_epochs() const { no_proc_backend(); }
void ProcComm::drain_rings() { no_proc_backend(); }
void ProcComm::throw_rank_failed(const char*, int, int, int) {
  no_proc_backend();
}

ProcRunResult proc_run_ranks(
    int, std::size_t, const RecoveryPolicy&,
    const std::function<std::vector<std::byte>(Communicator&)>&,
    const AbnormalDeathFn&) {
  no_proc_backend();
}

ProcRunResult proc_run_ranks(
    int, std::size_t,
    const std::function<std::vector<std::byte>(Communicator&)>&) {
  no_proc_backend();
}

#endif  // __linux__

}  // namespace keybin2::comm
