// Weighted coreset sketches for sublinear histogram reduction (DESIGN.md §9).
//
// A Sketch is a sorted, weighted subset of a dense non-negative vector: the
// heavy hitters (mass >= epsilon * total) are carried through exactly, and
// the remaining "light" mass is systematic-resampled at a seeded offset so
// the sketch never exceeds `max_cells` entries while preserving the total
// mass bit-for-bit in expectation-free arithmetic (the retained light mass
// equals the original light mass exactly; only its placement is sampled).
//
// Size-cap proof sketch: with epsilon_eff = max(epsilon, 2/max_cells), at
// most 1/epsilon_eff <= max_cells/2 cells can individually hold
// epsilon_eff of the total, so the heavy set leaves at least max_cells/2
// slots for the light sample. Merging two capped sketches can at most sum
// their entry counts, and every merge re-compresses before the result is
// framed, so no message ever carries more than max_cells entries.
//
// Determinism: every sampling decision derives from a caller-provided draw
// seed (see fork_seed), so the same seed over the same input yields the
// same sketch — byte-identical across ThreadComm and ProcComm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace keybin2::comm::coreset {

struct Options {
  /// Hard cap on entries per sketch (and therefore per framed message).
  std::size_t max_cells = 4096;

  /// Heavy-hitter threshold as a fraction of total mass; cells at or above
  /// epsilon * total are transmitted exactly. Clamped internally to
  /// [2/max_cells, 1] so the heavy set fits in half the cap.
  double epsilon = 0.001;

  /// Base seed; per-(rank, round) draws are forked from it (fork_seed).
  std::uint64_t seed = 42;
};

/// A compressed view of a dense vector: ascending unique indices with
/// positive weights, plus the cumulative original mass that sampling left
/// unrepresented (diagnostic only — the *retained* total mass equals the
/// input's total mass; mass_dropped records how much of it moved between
/// cells rather than vanishing).
struct Sketch {
  std::uint64_t length = 0;  // dense length this sketch abbreviates
  std::vector<std::uint32_t> index;
  std::vector<double> weight;
  double mass_dropped = 0.0;

  std::size_t entries() const { return index.size(); }
};

/// Deterministic per-(a, b) seed derivation, used so each rank/round pair
/// samples independently but reproducibly from one base seed.
std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// Core sampler shared by the dense-vector sketch and the weighted-cell
/// coreset (core/cells.cpp): choose at most opts.max_cells positions from a
/// non-negative mass array. Heavy positions keep their exact mass; light
/// positions are systematic-resampled (stride = light_total / slots, seeded
/// offset), so the kept light weights sum to the original light total
/// exactly. Positions with zero mass are never selected.
struct Selection {
  std::vector<std::pair<std::size_t, double>> kept;  // ascending positions
  double mass_dropped = 0.0;  // sum of original masses at unselected positions
};
Selection select_weighted(std::span<const double> masses, const Options& opts,
                          std::uint64_t draw_seed);

/// Build a sketch of a dense non-negative vector. Exact (every non-zero
/// carried, mass_dropped == 0) whenever the vector has at most
/// opts.max_cells non-zeros.
Sketch build(std::span<const double> dense, const Options& opts,
             std::uint64_t draw_seed);

/// Weighted union: sum weights of shared indices, keep the rest. The result
/// may exceed the cap — callers re-compress before transmitting.
void merge(Sketch& into, const Sketch& other);

/// Re-apply the size cap to an oversized sketch in place. No-op when the
/// sketch already fits.
void compress(Sketch& sketch, const Options& opts, std::uint64_t draw_seed);

/// Expand back to the dense vector the sketch abbreviates.
std::vector<double> expand(const Sketch& sketch);

/// Wire codec (framed by the transport's CRC layer like any other message).
void encode(const Sketch& sketch, ByteWriter& w);
Sketch decode(ByteReader& r);

}  // namespace keybin2::comm::coreset
