// Continuous-profiler and telemetry-plane tests (DESIGN.md §8): the
// lock-free sampling primitives (StageCursor seqlock, SampleTable,
// DensitySeries), the shared-memory telemetry segment with its attach/
// snapshot observer protocol and the kb2_top JSON schema, live
// stage-accurate snapshots read by a concurrent observer while a profiled
// fit runs on BOTH backends, and the respawn story: a SIGKILL'd rank's
// replacement incarnation reclaims the same telemetry slot with a bumped
// incarnation number.
//
// The CPU burners busy-spin, never sleep: the SIGPROF engine samples CPU
// time (ITIMER_PROF), so a sleeping rank would legitimately collect zero
// samples and the assertions would race the scheduler instead of testing
// the profiler.
#include "runtime/profile/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "comm/proc_comm.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"
#include "runtime/json.hpp"
#include "runtime/profile/perf_counters.hpp"
#include "runtime/profile/stage_cursor.hpp"
#include "runtime/profile/telemetry.hpp"

namespace keybin2::runtime::profile {
namespace {

/// Burn roughly `ms` of CPU time. Busy work, deliberately: ITIMER_PROF
/// ticks on CPU time, so only spinning guarantees the sampler fires.
void burn_cpu_ms(int ms) {
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile double acc = 0.0;
  while (std::chrono::steady_clock::now() < end) {
    for (int i = 0; i < 1000; ++i) {
      acc = acc + static_cast<double>(i) * 1e-9;
    }
  }
  (void)acc;
}

// ---------------------------------------------------------------------------
// Lock-free primitives (platform-independent).

TEST(StageCursor, PublishSnapshotRoundTrip) {
  StageCursor c;
  char buf[StageCursor::kMaxPath];
  std::uint32_t len = 99;
  // A never-published cursor reads back as the empty path, untorn.
  ASSERT_TRUE(c.snapshot(buf, &len));
  EXPECT_EQ(len, 0u);

  c.publish("fit/trial3/bin");
  ASSERT_TRUE(c.snapshot(buf, &len));
  EXPECT_EQ(std::string(buf, len), "fit/trial3/bin");

  // Republishing replaces, not appends.
  c.publish("fit/agree");
  ASSERT_TRUE(c.snapshot(buf, &len));
  EXPECT_EQ(std::string(buf, len), "fit/agree");
}

TEST(StageCursor, OverlongPathsKeepTheirTail) {
  // The leaf stage is the interesting part of a deep path, so truncation
  // must drop the front, never the back.
  std::string path = "fit";
  while (path.size() < 2 * StageCursor::kMaxPath) {
    path += "/deeply_nested_stage";
  }
  path += "/leaf";

  StageCursor c;
  c.publish(path);
  char buf[StageCursor::kMaxPath];
  std::uint32_t len = 0;
  ASSERT_TRUE(c.snapshot(buf, &len));
  EXPECT_EQ(len, StageCursor::kMaxPath - 1);
  const std::string got(buf, len);
  EXPECT_EQ(got, path.substr(path.size() - (StageCursor::kMaxPath - 1)));
  EXPECT_NE(got.find("leaf"), std::string::npos);
}

TEST(SampleTable, RecordsAggregateAndDropsAreCounted) {
  SampleTable t;
  const char* a = "fit/trial1/bin";
  const char* b = "fit/agree";
  for (int i = 0; i < 3; ++i) {
    t.record(a, static_cast<std::uint32_t>(std::strlen(a)));
  }
  for (int i = 0; i < 2; ++i) {
    t.record(b, static_cast<std::uint32_t>(std::strlen(b)));
  }
  t.drop();  // e.g. a torn cursor read

  EXPECT_EQ(t.total(), 6u);
  EXPECT_EQ(t.dropped(), 1u);
  std::map<std::string, std::uint64_t> seen;
  t.for_each([&](std::string_view path, std::uint64_t count) {
    seen[std::string(path)] = count;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[a], 3u);
  EXPECT_EQ(seen[b], 2u);
}

TEST(CollapseStack, SwapsScopeSeparatorsForFlamegraphs) {
  EXPECT_EQ(collapse_stack("fit/trial*/bin"), "fit;trial*;bin");
  EXPECT_EQ(collapse_stack("fit"), "fit");
  EXPECT_EQ(collapse_stack(""), "");
}

TEST(DensitySeries, OutOfRangeSamplesFoldIntoEdgeBuckets) {
  DensitySeries d;
  d.t0_ns = 1'000'000;
  d.record(0);            // before t0 -> bucket 0, never a negative index
  d.record(d.t0_ns + 1);  // bucket 0
  d.record(d.t0_ns +
           d.bucket_ns * static_cast<std::int64_t>(
                             DensitySeries::kMaxBuckets + 5));  // past the end
  EXPECT_EQ(d.counts[0].load(), 2u);
  EXPECT_EQ(d.counts[DensitySeries::kMaxBuckets - 1].load(), 1u);
}

#ifdef __linux__

/// Per-test unique shm name under this process's residue-check prefix.
std::string unique_name(const std::string& suffix) {
  return "kb2-tele-" + std::to_string(::getpid()) + "-" + suffix;
}

// ---------------------------------------------------------------------------
// Telemetry segment: publish / attach / snapshot.

TEST(Telemetry, PublishAttachSnapshotRoundTrip) {
  TelemetrySegment seg(unique_name("rt"), 3, "unit test job");
  TelemetryPublisher pub(seg.slot(1), /*cadence_ns=*/0);
  TelemetryPublisher::Update u;
  u.state = TelemetrySlot::kLive;
  u.incarnation = 2;
  u.samples = 41;
  u.points_total = 1234;
  u.points_per_sec = 5000.0;
  u.wait_ratio = 0.25;
  u.anomalies = 3;
  u.stage = "fit/trial0/bin";
  pub.publish_now(u);

  std::string err;
  const auto reader = TelemetryReader::attach(seg.name(), &err);
  ASSERT_NE(reader, nullptr) << err;
  EXPECT_EQ(reader->header().n_ranks, 3u);
  EXPECT_EQ(std::string(reader->header().job), "unit test job");
  EXPECT_EQ(reader->header().creator_pid, ::getpid());

  const auto samples = reader->snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].slot.state, TelemetrySlot::kEmpty);
  EXPECT_EQ(samples[2].slot.state, TelemetrySlot::kEmpty);
  const auto& s = samples[1].slot;
  EXPECT_EQ(samples[1].rank, 1);
  EXPECT_EQ(s.state, TelemetrySlot::kLive);
  EXPECT_EQ(s.incarnation, 2u);
  EXPECT_EQ(s.pid, ::getpid());
  EXPECT_GT(s.published_ns, 0);
  EXPECT_EQ(s.samples, 41u);
  EXPECT_EQ(s.points_total, 1234u);
  EXPECT_DOUBLE_EQ(s.points_per_sec, 5000.0);
  EXPECT_DOUBLE_EQ(s.wait_ratio, 0.25);
  EXPECT_GT(s.rss_kb, 0u);  // read_rss_kb works on Linux
  EXPECT_EQ(s.anomalies, 3u);
  EXPECT_STREQ(s.stage, "fit/trial0/bin");
}

TEST(Telemetry, OverlongStageIsTailTruncatedInTheSlot) {
  TelemetrySegment seg(unique_name("trunc"), 1, "trunc");
  TelemetryPublisher pub(seg.slot(0), 0);
  std::string stage = "fit";
  while (stage.size() < 2 * TelemetrySlot::kMaxStage) stage += "/nested";
  stage += "/leaf";
  TelemetryPublisher::Update u;
  u.stage = stage;
  pub.publish_now(u);

  std::string err;
  const auto reader = TelemetryReader::attach(seg.name(), &err);
  ASSERT_NE(reader, nullptr) << err;
  const auto samples = reader->snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const std::string got(samples[0].slot.stage);
  EXPECT_EQ(got.size(), TelemetrySlot::kMaxStage - 1);
  EXPECT_EQ(got, stage.substr(stage.size() - (TelemetrySlot::kMaxStage - 1)));
  EXPECT_NE(got.find("leaf"), std::string::npos);
}

TEST(Telemetry, AttachToMissingSegmentFailsWithMessage) {
  std::string err;
  const auto reader =
      TelemetryReader::attach(unique_name("does-not-exist"), &err);
  EXPECT_EQ(reader, nullptr);
  EXPECT_FALSE(err.empty());
}

TEST(Telemetry, TopSnapshotJsonMatchesSchema) {
  TelemetrySegment seg(unique_name("json"), 2, "schema probe");
  TelemetryPublisher pub(seg.slot(0), 0);
  TelemetryPublisher::Update u;
  u.state = TelemetrySlot::kLive;
  u.samples = 7;
  u.stage = "fit/agree";
  pub.publish_now(u);

  std::string err;
  const auto reader = TelemetryReader::attach(seg.name(), &err);
  ASSERT_NE(reader, nullptr) << err;
  const auto json = top_snapshot_json(*reader, now_ns() + 1);
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value()) << json;

  const auto* job = doc->find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->string(), "schema probe");
  EXPECT_EQ(JsonValue::number_or(doc->find("n_ranks"), -1), 2.0);
  EXPECT_EQ(JsonValue::number_or(doc->find("creator_pid"), -1),
            static_cast<double>(::getpid()));

  const auto* ranks = doc->find("ranks");
  ASSERT_NE(ranks, nullptr);
  ASSERT_TRUE(ranks->is_array());
  ASSERT_EQ(ranks->array().size(), 2u);

  const auto& r0 = ranks->array()[0];
  ASSERT_NE(r0.find("state"), nullptr);
  EXPECT_EQ(r0.find("state")->string(), "live");
  EXPECT_EQ(r0.find("stage")->string(), "fit/agree");
  EXPECT_EQ(JsonValue::number_or(r0.find("rank"), -1), 0.0);
  EXPECT_EQ(JsonValue::number_or(r0.find("samples"), -1), 7.0);
  EXPECT_EQ(JsonValue::number_or(r0.find("pid"), -1),
            static_cast<double>(::getpid()));
  // Published just above with a now_ns()+1 reference clock: a tiny positive
  // age, never the -1 "never published" sentinel.
  EXPECT_GE(JsonValue::number_or(r0.find("heartbeat_age_ms"), -99), 0.0);
  // Recovery-ladder columns (v2 schema): present even when zero, so kb2_top
  // and trace_check --profile can rely on them unconditionally.
  EXPECT_EQ(JsonValue::number_or(r0.find("respawns_total"), -1), 0.0);
  EXPECT_EQ(JsonValue::number_or(r0.find("regrow_epochs"), -1), 0.0);
  EXPECT_EQ(JsonValue::number_or(r0.find("recovery_p50_ns"), -1), 0.0);
  EXPECT_EQ(JsonValue::number_or(r0.find("recovery_p99_ns"), -1), 0.0);

  const auto& r1 = ranks->array()[1];
  EXPECT_EQ(r1.find("state")->string(), "empty");
  EXPECT_EQ(JsonValue::number_or(r1.find("heartbeat_age_ms"), 0), -1.0);
}

// ---------------------------------------------------------------------------
// Profiler: sampling and degrade paths.

TEST(PerfCounters, ProbeEitherWorksOrDegradesCleanly) {
  PerfCounterGroup g;
  PerfSample s;
  if (g.available()) {
    burn_cpu_ms(5);
    ASSERT_TRUE(g.read(&s));
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, 0u);
  } else {
    // Hardened container: the probe already failed, read() must report it
    // with a zeroed sample rather than returning garbage.
    EXPECT_FALSE(g.read(&s));
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.instructions, 0u);
  }
}

TEST(Profiler, CollectsSamplesFromBusySpinScopes) {
  std::atomic<std::uint64_t> total_samples{0};
  std::atomic<bool> folded_has_fit{true};
  std::atomic<bool> mode_is_thread{true};
  comm::run_ranks(2, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    ProfilerConfig cfg;
    cfg.sample_interval_us = 1000;
    ctx.enable_profiler(cfg);
    {
      auto fit = ctx.tracer().scope("fit");
      for (int i = 0; i < 8; ++i) {
        auto t = ctx.tracer().scope("trial" + std::to_string(i));
        burn_cpu_ms(15);
      }
    }
    ctx.profiler()->stop();
    // Thread backend -> the hub-thread engine, SIGPROF stays free for the
    // process backend.
    if (ctx.profiler()->active_mode() != SamplerMode::kThread) {
      mode_is_thread = false;
    }
    total_samples += ctx.profiler()->samples();
    const auto folded = ctx.profiler()->folded_output();
    if (folded.find("fit") == std::string::npos) folded_has_fit = false;
  });
  // ~120 ms of spinning per rank at a 1 ms tick: samples must exist, and
  // the folded stacks must attribute them to the spun scopes.
  EXPECT_GT(total_samples.load(), 0u);
  EXPECT_TRUE(folded_has_fit.load());
  EXPECT_TRUE(mode_is_thread.load());
}

TEST(Profiler, PerfGaugesOrDegradedFlagButNeverFatal) {
  comm::run_ranks(1, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    ctx.enable_profiler();
    {
      auto fit = ctx.tracer().scope("fit");
      burn_cpu_ms(20);
    }
    ctx.profiler()->stop();
    const auto& gauges = ctx.metrics().gauges();
    EXPECT_EQ(gauges.count("profiler_samples"), 1u);
    if (ctx.profiler()->perf_available()) {
      bool found_perf_gauge = false;
      for (const auto& [name, value] : gauges) {
        if (name.rfind("perf/", 0) == 0) found_perf_gauge = true;
      }
      EXPECT_TRUE(found_perf_gauge)
          << "perf available but no per-stage ratio gauges flushed";
      EXPECT_EQ(gauges.count("profiler_degraded"), 0u);
    } else {
      ASSERT_EQ(gauges.count("profiler_degraded"), 1u)
          << "refused perf_event_open must surface as a gauge";
      EXPECT_EQ(gauges.at("profiler_degraded"), 1.0);
    }
  });
}

// ---------------------------------------------------------------------------
// Live snapshots while a run is in flight, on both backends.

/// Drive a 2-rank profiled scope workload while a concurrent observer
/// thread polls the segment the way kb2_top does. Asserts that a live,
/// stage-accurate snapshot was observable mid-run (through both the raw
/// reader and the kb2_top JSON payload) and that the final slots read done
/// with samples accounted.
void live_snapshot_case(const comm::LaunchOptions& options,
                        const std::string& suffix) {
  constexpr int kRanks = 2;
  // Created BEFORE the launch: forked ranks (process backend) inherit the
  // MAP_SHARED mapping, threads share it directly.
  TelemetrySegment seg(unique_name(suffix), kRanks, "live test");

  std::atomic<bool> saw_live{false};
  std::atomic<bool> saw_fit_stage{false};
  std::atomic<bool> stop_reader{false};
  std::string live_json;  // written by the reader thread, read after join
  std::thread observer([&] {
    std::string err;
    const auto reader = TelemetryReader::attach(seg.name(), &err);
    if (reader == nullptr) return;
    while (!stop_reader.load()) {
      for (const auto& s : reader->snapshot()) {
        if (s.slot.state != TelemetrySlot::kLive) continue;
        saw_live = true;
        if (std::string_view(s.slot.stage).find("fit") !=
            std::string_view::npos) {
          live_json = top_snapshot_json(*reader, now_ns());
          saw_fit_stage = true;
        }
      }
      if (saw_fit_stage.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  comm::run_ranks(options, kRanks, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    ProfilerConfig cfg;
    cfg.sample_interval_us = 1000;
    cfg.telemetry_cadence_ns = 1'000'000;  // publish on ~every scope churn
    ctx.enable_profiler(cfg, seg.slot(c.rank()));
    {
      auto fit = ctx.tracer().scope("fit");
      for (int i = 0; i < 40; ++i) {
        auto t = ctx.tracer().scope("spin" + std::to_string(i));
        burn_cpu_ms(10);
      }
    }
    ctx.profiler()->stop();
  });
  stop_reader = true;
  observer.join();

  EXPECT_TRUE(saw_live.load()) << "observer never saw a live slot mid-run";
  ASSERT_TRUE(saw_fit_stage.load())
      << "observer never saw a live slot inside the fit scope";

  // The captured kb2_top payload carries the stage-accurate live row.
  const auto doc = json_parse(live_json);
  ASSERT_TRUE(doc.has_value()) << live_json;
  const auto* ranks = doc->find("ranks");
  ASSERT_NE(ranks, nullptr);
  bool json_has_live_fit = false;
  for (const auto& r : ranks->array()) {
    const auto* state = r.find("state");
    const auto* stage = r.find("stage");
    if (state != nullptr && state->string() == "live" && stage != nullptr &&
        stage->string().find("fit") != std::string::npos) {
      json_has_live_fit = true;
      EXPECT_GT(JsonValue::number_or(r.find("pid"), 0), 0.0);
      EXPECT_GE(JsonValue::number_or(r.find("incarnation"), -1), 0.0);
    }
  }
  EXPECT_TRUE(json_has_live_fit) << live_json;

  // After the run: every slot done, with samples accounted. ~400 ms of
  // CPU-burning per rank at a 1 ms tick guarantees a nonzero count under
  // either sampler engine.
  std::string err;
  const auto reader = TelemetryReader::attach(seg.name(), &err);
  ASSERT_NE(reader, nullptr) << err;
  const auto samples = reader->snapshot();
  ASSERT_EQ(samples.size(), static_cast<std::size_t>(kRanks));
  for (const auto& s : samples) {
    EXPECT_EQ(s.slot.state, TelemetrySlot::kDone) << "rank " << s.rank;
    EXPECT_GT(s.slot.samples, 0u) << "rank " << s.rank;
    EXPECT_GT(s.slot.pid, 0) << "rank " << s.rank;
    EXPECT_EQ(s.slot.incarnation, 0u) << "rank " << s.rank;
  }
}

TEST(ProfilerLive, SnapshotsAreStageAccurateOnThreadBackend) {
  live_snapshot_case(comm::LaunchOptions{}, "live-thread");
}

TEST(ProfilerLive, SnapshotsAreStageAccurateOnProcBackend) {
  comm::LaunchOptions options;
  options.backend = comm::Backend::kProcess;
  live_snapshot_case(options, "live-proc");
}

// ---------------------------------------------------------------------------
// Respawn: the replacement incarnation reclaims the victim's slot.

TEST(ProfilerRecovery, RespawnedIncarnationReclaimsItsTelemetrySlot) {
  // Rank 2's first incarnation takes a real SIGKILL mid-fit; the recovery
  // ladder forks a replacement which rejoins and reruns. Its profiler
  // writes the SAME telemetry slot — fork inheritance of the pre-launch
  // mapping — so after the run slot 2 must read incarnation 1, state done,
  // not a stale incarnation-0 ghost.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1000, 3);
  const auto shards = data::shard(d, 4);
  core::Params params;
  params.comm_timeout_seconds = 30.0;

  TelemetrySegment seg(unique_name("respawn"), 4, "respawn test");
  comm::RecoveryPolicy pol;
  pol.max_respawns = 1;
  pol.backoff_base_ms = 1.0;
  pol.backoff_cap_ms = 4.0;
  const auto res = comm::proc_run_ranks(
      4, 0, pol, [&](comm::Communicator& c) -> std::vector<std::byte> {
        comm::fault::FaultSchedule s;
        if (c.rank() == 2 && c.incarnation() == 0) {
          s.kill_at_op = 15;
          s.hard_kill = true;
        }
        comm::fault::FaultyComm f(c, s);
        Context ctx(f, params.seed);
        ctx.enable_profiler({}, seg.slot(c.rank()));
        const auto result = core::fit(
            ctx, shards[static_cast<std::size_t>(c.rank())].points, params);
        ctx.profiler()->stop();
        ByteWriter w;
        result.model.serialize(w);
        w.write_vec(result.labels);
        return w.take();
      });
  EXPECT_FALSE(res.first_error) << "regrown run should succeed";
  EXPECT_EQ(res.respawns_total, 1);

  std::string err;
  const auto reader = TelemetryReader::attach(seg.name(), &err);
  ASSERT_NE(reader, nullptr) << err;
  const auto samples = reader->snapshot();
  ASSERT_EQ(samples.size(), 4u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.slot.state, TelemetrySlot::kDone) << "rank " << s.rank;
    EXPECT_GT(s.slot.pid, 0) << "rank " << s.rank;
    const std::uint32_t want_inc = s.rank == 2 ? 1u : 0u;
    EXPECT_EQ(s.slot.incarnation, want_inc)
        << "rank " << s.rank << " slot carries the wrong incarnation";
  }
}

// ---------------------------------------------------------------------------
// Residue gate: no telemetry segment created by THIS process may outlive
// its test. Segments stay linked while a job runs (that is kb2_top's attach
// surface) but ~TelemetrySegment unlinks — a name surviving to teardown is
// a leak. Also re-checks the process-backend prefixes, since this binary
// forks ranks of its own.
class TeleResidueCheck final : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    const std::string pid = std::to_string(::getpid());
    const std::string leaks = find_residue(pid);
    EXPECT_TRUE(leaks.empty())
        << "test " << info.test_suite_name() << "." << info.name()
        << " leaked telemetry/process residue: " << leaks;
  }

  static std::string find_residue(const std::string& pid) {
    std::string found;
    for (const char* parent : {"/dev/shm", "/tmp"}) {
      DIR* dir = ::opendir(parent);
      if (dir == nullptr) continue;
      const std::string tele = "kb2-tele-" + pid;
      const std::string shm = "kb2-proc-" + pid + "-";
      const std::string spill = "kb2-spill-" + pid + "-";
      while (dirent* e = ::readdir(dir)) {
        const std::string name = e->d_name;
        if (name.rfind(tele, 0) == 0 || name.rfind(shm, 0) == 0 ||
            name.rfind(spill, 0) == 0) {
          found += std::string(parent) + "/" + name + " ";
        }
      }
      ::closedir(dir);
    }
    return found;
  }
};

const bool kResidueCheckInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new TeleResidueCheck);
  return true;
}();

#else  // !__linux__

TEST(Telemetry, SegmentRequiresLinux) {
  EXPECT_THROW(TelemetrySegment("kb2-tele-x", 1, "job"), Error);
  std::string err;
  EXPECT_EQ(TelemetryReader::attach("kb2-tele-x", &err), nullptr);
  EXPECT_FALSE(err.empty());
}

#endif

}  // namespace
}  // namespace keybin2::runtime::profile
