// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench accepts:
//   --points-per-rank N   shard size (default: scaled-down for a laptop/CI)
//   --ranks N             simulated MPI ranks
//   --runs N              independent repetitions (paper: 20)
//   --seed S              base seed
//   --full                the paper's sizes (80,000 points per rank, 20 runs)
//   --trace               per-stage pipeline breakdown (wall time + traffic)
// and prints the same rows the paper's table/figure reports, as
// mean +/- stddev over the runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/tracer.hpp"
#include "stats/distributions.hpp"
#include "stats/metrics.hpp"

namespace keybin2::bench {

struct Options {
  std::size_t points_per_rank = 2000;
  int ranks = 16;
  int runs = 3;
  std::uint64_t seed = 42;
  bool full = false;
  bool trace = false;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--points-per-rank")) {
        o.points_per_rank = std::strtoull(next("--points-per-rank"), nullptr, 10);
      } else if (!std::strcmp(argv[i], "--ranks")) {
        o.ranks = std::atoi(next("--ranks"));
      } else if (!std::strcmp(argv[i], "--runs")) {
        o.runs = std::atoi(next("--runs"));
      } else if (!std::strcmp(argv[i], "--seed")) {
        o.seed = std::strtoull(next("--seed"), nullptr, 10);
      } else if (!std::strcmp(argv[i], "--full")) {
        o.full = true;
        o.points_per_rank = 80000;
        o.runs = 20;
      } else if (!std::strcmp(argv[i], "--trace")) {
        o.trace = true;
      } else if (!std::strcmp(argv[i], "--help")) {
        std::printf(
            "usage: %s [--points-per-rank N] [--ranks N] [--runs N] "
            "[--seed S] [--full] [--trace]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
        std::exit(2);
      }
    }
    return o;
  }
};

/// Print a merged per-stage trace (from Context::trace_report()) under a
/// caption. No-op for empty reports, so non-root ranks can call it freely.
inline void print_trace(const char* caption,
                        const runtime::TraceReport& report) {
  if (report.empty()) return;
  std::printf("-- %s --\n%s", caption, report.format().c_str());
}

/// mean +/- stddev accumulator over runs.
class Series {
 public:
  void add(double x) { m_.add(x); }
  double mean() const { return m_.mean(); }
  double stddev() const { return m_.stddev(); }
  std::string str(int precision = 3) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, mean(),
                  precision, stddev());
    return buf;
  }

 private:
  stats::OnlineMoments m_;
};

/// Accuracy row for one method on one run: noise labels (-1) become
/// singletons, matching how the paper scores pdsdbscan's output.
struct Accuracy {
  double clusters = 0.0;
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

inline Accuracy score_labels(std::vector<int> predicted,
                             const std::vector<int>& truth) {
  int next = 0;
  for (int l : predicted) next = std::max(next, l + 1);
  for (auto& l : predicted) {
    if (l < 0) l = next++;
  }
  const auto s = stats::pairwise_scores(predicted, truth);
  Accuracy a;
  a.clusters = static_cast<double>(stats::distinct_labels(predicted));
  a.recall = s.recall;
  a.precision = s.precision;
  a.f1 = s.f1;
  return a;
}

/// One printed table row, paper format:
/// method | clusters | recall | precision | F1 | time (s)
struct MethodSeries {
  Series clusters, recall, precision, f1, time;

  void add(const Accuracy& a, double seconds) {
    clusters.add(a.clusters);
    recall.add(a.recall);
    precision.add(a.precision);
    f1.add(a.f1);
    time.add(seconds);
  }

  void print_row(const char* method) const {
    std::printf("%-18s %18s %16s %16s %16s %18s\n", method,
                clusters.str(2).c_str(), recall.str(3).c_str(),
                precision.str(3).c_str(), f1.str(3).c_str(),
                time.str(2).c_str());
  }
};

inline void print_header() {
  std::printf("%-18s %18s %16s %16s %16s %18s\n", "Method", "Clusters",
              "Recall", "Precision", "F1", "Time (sec)");
}

}  // namespace keybin2::bench
