#include "runtime/tracer.hpp"

#include <gtest/gtest.h>

#include "comm/launch.hpp"
#include "common/error.hpp"
#include "runtime/context.hpp"

namespace keybin2::runtime {
namespace {

std::vector<std::byte> payload(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

TEST(Tracer, ScopesNestIntoSlashPaths) {
  Tracer tracer;
  {
    auto outer = tracer.scope("fit");
    {
      auto trial = tracer.scope("trial0");
      auto stage = tracer.scope("bin");
    }
    { auto trial = tracer.scope("trial1"); }
  }
  const auto& e = tracer.entries();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e.count("fit"), 1u);
  EXPECT_EQ(e.count("fit/trial0"), 1u);
  EXPECT_EQ(e.count("fit/trial0/bin"), 1u);
  EXPECT_EQ(e.count("fit/trial1"), 1u);
}

TEST(Tracer, RepeatedScopesAccumulateCalls) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    auto s = tracer.scope("stage");
  }
  ASSERT_EQ(tracer.entries().count("stage"), 1u);
  EXPECT_EQ(tracer.entries().at("stage").calls, 3u);
  EXPECT_GE(tracer.entries().at("stage").seconds, 0.0);
}

TEST(Tracer, CloseIsIdempotentAndEarly) {
  Tracer tracer;
  auto s = tracer.scope("a");
  s.close();
  s.close();  // no-op
  EXPECT_EQ(tracer.entries().at("a").calls, 1u);
}

TEST(Tracer, ParentTimeIncludesChild) {
  Tracer tracer;
  {
    auto parent = tracer.scope("p");
    auto child = tracer.scope("c");
    // Burn a little time inside the child.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  }
  EXPECT_GE(tracer.entries().at("p").seconds,
            tracer.entries().at("p/c").seconds);
}

TEST(Tracer, CountersAccumulate) {
  Tracer tracer;
  tracer.counter("points", 10.0);
  tracer.counter("points", 5.0);
  EXPECT_DOUBLE_EQ(tracer.counters().at("points"), 15.0);
}

TEST(Tracer, ResetClearsState) {
  Tracer tracer;
  { auto s = tracer.scope("x"); }
  tracer.counter("n", 1.0);
  tracer.reset();
  EXPECT_TRUE(tracer.entries().empty());
  EXPECT_TRUE(tracer.counters().empty());
}

TEST(Tracer, TrafficAttributedExclusivelyToInnermostScope) {
  comm::SelfComm comm;
  Tracer tracer(&comm);
  {
    auto outer = tracer.scope("outer");
    comm.send(0, 1, payload(100));
    comm.recv(0, 1);
    {
      auto inner = tracer.scope("inner");
      comm.send(0, 2, payload(40));
      comm.recv(0, 2);
    }
  }
  const auto& outer = tracer.entries().at("outer").traffic;
  const auto& inner = tracer.entries().at("outer/inner").traffic;
  EXPECT_EQ(outer.bytes_sent, 100u);
  EXPECT_EQ(outer.messages_sent, 1u);
  EXPECT_EQ(inner.bytes_sent, 40u);
  EXPECT_EQ(inner.messages_sent, 1u);
  EXPECT_EQ(outer.bytes_received, 100u);
  EXPECT_EQ(inner.bytes_received, 40u);
}

TEST(Tracer, TotalTrafficMatchesCommunicatorStats) {
  comm::SelfComm comm;
  Tracer tracer(&comm);
  {
    auto a = tracer.scope("a");
    comm.send(0, 1, payload(8));
    comm.recv(0, 1);
    auto b = tracer.scope("b");
    comm.send(0, 2, payload(16));
    comm.recv(0, 2);
  }
  const auto total = tracer.total_traffic();
  const auto stats = comm.stats();
  EXPECT_EQ(total.messages_sent, stats.messages_sent);
  EXPECT_EQ(total.bytes_sent, stats.bytes_sent);
  EXPECT_EQ(total.messages_received, stats.messages_received);
  EXPECT_EQ(total.bytes_received, stats.bytes_received);
}

TEST(Context, SerialContextOwnsSingleRankComm) {
  Context ctx(/*seed=*/7);
  EXPECT_EQ(ctx.rank(), 0);
  EXPECT_EQ(ctx.size(), 1);
  EXPECT_TRUE(ctx.is_root());
}

TEST(Context, SameSeedSameRngStream) {
  Context a(123), b(123);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

TEST(Context, BorrowedCommIsShared) {
  comm::SelfComm comm;
  Context ctx(comm, 1);
  EXPECT_EQ(&ctx.comm(), static_cast<comm::Communicator*>(&comm));
}

TEST(ReduceReport, MergesRanksIntoMinMeanMax) {
  auto report_text = std::string{};
  comm::run_ranks(4, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    {
      auto s = ctx.tracer().scope("work");
      // Rank-dependent traffic so the summed columns are easy to predict.
      if (c.rank() > 0) c.send(0, 1, payload(10));
      if (c.rank() == 0) {
        for (int r = 1; r < 4; ++r) c.recv(r, 1);
      }
    }
    ctx.tracer().counter("items", static_cast<double>(c.rank()));
    auto report = ctx.trace_report();
    if (c.rank() == 0) {
      ASSERT_EQ(report.ranks, 4);
      ASSERT_EQ(report.stages.size(), 1u);
      const auto& stage = report.stages[0];
      EXPECT_EQ(stage.path, "work");
      EXPECT_EQ(stage.ranks, 4);
      EXPECT_EQ(stage.calls, 1u);
      EXPECT_LE(stage.min_seconds, stage.mean_seconds);
      EXPECT_LE(stage.mean_seconds, stage.max_seconds);
      // Summed over ranks: 3 sends of 10 bytes, 3 receives at root.
      EXPECT_EQ(stage.traffic.messages_sent, 3u);
      EXPECT_EQ(stage.traffic.bytes_sent, 30u);
      EXPECT_EQ(stage.traffic.messages_received, 3u);
      EXPECT_EQ(stage.traffic.bytes_received, 30u);
      EXPECT_DOUBLE_EQ(report.counters.at("items"), 0.0 + 1 + 2 + 3);
      report_text = report.format();
    } else {
      EXPECT_TRUE(report.empty());
    }
  });
  // The formatted table carries the stage row and the counter.
  EXPECT_NE(report_text.find("work"), std::string::npos);
  EXPECT_NE(report_text.find("items"), std::string::npos);
}

TEST(ReduceReport, StagesMissingOnSomeRanksStillMerge) {
  comm::run_ranks(2, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    if (c.rank() == 1) {
      auto s = ctx.tracer().scope("only_rank1");
    }
    auto report = ctx.trace_report();
    if (c.rank() == 0) {
      ASSERT_EQ(report.stages.size(), 1u);
      EXPECT_EQ(report.stages[0].path, "only_rank1");
      EXPECT_EQ(report.stages[0].ranks, 1);
    }
  });
}

}  // namespace
}  // namespace keybin2::runtime
