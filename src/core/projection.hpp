// Random projection into a lower space (paper §3.1).
//
// A projection matrix A (N x N_rp) with unit-norm Gaussian columns maps each
// point x to x' = x A. In high dimension random unit vectors are near
// orthogonal, so the mapping both rotates the data (decorrelating clusters
// whose axis-aligned projections overlap — Figure 1) and compresses it to
// N_rp = 1.5 ln N dimensions. KeyBin2 needs only that the ordering of points
// along each column is informative, a far weaker requirement than the
// Johnson–Lindenstrauss distance-preservation bound.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"

namespace keybin2::core {

/// The paper's target-dimension rule N_rp = 1.5 log(N), floored at 2 and
/// capped at N (projecting up makes no sense).
int choose_n_rp(std::size_t input_dims);

/// N x n_rp matrix with i.i.d. Gaussian entries, columns normalized to unit
/// length. Deterministic in `seed`.
Matrix make_projection_matrix(std::size_t input_dims, int n_rp,
                              std::uint64_t seed);

/// X' = X A, parallelized over rows via the global thread pool.
Matrix project(const Matrix& points, const Matrix& a);

/// Project a single point: out[j] = sum_i x[i] * a(i, j).
void project_point(std::span<const double> x, const Matrix& a,
                   std::span<double> out);

}  // namespace keybin2::core
