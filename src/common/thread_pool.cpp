#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace keybin2 {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::condition_variable done_cv;
  std::mutex done_mu;

  const std::size_t base = n / chunks, extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    auto task = [&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == chunks) {
        std::lock_guard lk(done_mu);
        done_cv.notify_one();
      }
    };
    {
      std::lock_guard lk(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
    begin = end;
  }
  {
    std::unique_lock lk(done_mu);
    done_cv.wait(lk, [&] { return done.load() == chunks; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace keybin2
