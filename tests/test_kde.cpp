#include "stats/kde.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/partitioner.hpp"
#include "stats/histogram.hpp"
#include "stats/smoothing.hpp"

namespace keybin2::stats {
namespace {

TEST(Kde, ConservesMass) {
  Rng rng(1);
  std::vector<double> counts(64, 0.0);
  for (int i = 0; i < 64; ++i) counts[static_cast<std::size_t>(i)] = rng.uniform(0.0, 10.0);
  double in = 0.0;
  for (double c : counts) in += c;
  for (double h : {0.6, 1.5, 4.0}) {
    const auto out = kde_smooth(counts, h);
    double total = 0.0;
    for (double v : out) total += v;
    EXPECT_NEAR(total, in, 1e-9) << "bandwidth " << h;
  }
}

TEST(Kde, PointMassBecomesGaussianBump) {
  std::vector<double> counts(41, 0.0);
  counts[20] = 100.0;
  const auto out = kde_smooth(counts, 2.0);
  // Symmetric around the spike, peaked there, decaying outward.
  EXPECT_GT(out[20], out[18]);
  EXPECT_GT(out[18], out[15]);
  EXPECT_NEAR(out[18], out[22], 1e-9);
  EXPECT_LT(out[0], out[20] * 0.01);
}

TEST(Kde, WiderBandwidthSmoothsMore) {
  std::vector<double> counts(64, 0.0);
  counts[20] = 100.0;
  counts[40] = 100.0;
  const auto narrow = kde_smooth(counts, 1.0);
  const auto wide = kde_smooth(counts, 10.0);
  // The valley between the spikes fills in as bandwidth grows.
  EXPECT_LT(narrow[30], wide[30]);
  // Peaks flatten.
  EXPECT_GT(narrow[20], wide[20]);
}

TEST(Kde, PreservesBimodalStructureAtModerateBandwidth) {
  Rng rng(2);
  Histogram h(0.0, 1.0, 64);
  for (int i = 0; i < 20000; ++i) {
    h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.06));
  }
  const auto smoothed = kde_smooth(h.counts(), silverman_bandwidth(h.counts()));
  const double peak = *std::max_element(smoothed.begin(), smoothed.end());
  const auto modes = prominent_maxima(smoothed, 0.05 * peak);
  EXPECT_EQ(modes.size(), 2u);
}

TEST(Kde, EmptyAndInvalidInputs) {
  EXPECT_TRUE(kde_smooth({}, 1.0).empty());
  std::vector<double> counts(4, 1.0);
  EXPECT_THROW(kde_smooth(counts, 0.0), Error);
  EXPECT_THROW(kde_smooth(counts, -1.0), Error);
}

TEST(Silverman, ScalesWithSpread) {
  std::vector<double> tight(64, 0.0), wide(64, 0.0);
  for (int i = 30; i < 34; ++i) tight[static_cast<std::size_t>(i)] = 100.0;
  for (int i = 8; i < 56; ++i) wide[static_cast<std::size_t>(i)] = 100.0;
  EXPECT_GT(silverman_bandwidth(wide), silverman_bandwidth(tight));
}

TEST(Silverman, DegenerateInputsGetFloor) {
  std::vector<double> zeros(8, 0.0);
  EXPECT_GE(silverman_bandwidth(zeros), 0.5);
  std::vector<double> spike(8, 0.0);
  spike[3] = 10.0;
  EXPECT_GE(silverman_bandwidth(spike), 0.5);
}

TEST(KdePartitioner, AgreesWithMovingAverageOnCleanBimodal) {
  // §3.2's claim: "our simpler method reaches similar accuracy compared to
  // KDE curves". Both partitioners must find the same single cut region.
  Rng rng(3);
  Histogram h(0.0, 1.0, 64);
  for (int i = 0; i < 30000; ++i) {
    h.add(rng.normal(i % 2 ? 0.25 : 0.75, 0.07));
  }
  const auto ma = core::partition_discrete_opt(h.counts(), 0.04, nullptr,
                                               core::Smoothing::kMovingAverage);
  const auto kde = core::partition_discrete_opt(h.counts(), 0.04, nullptr,
                                                core::Smoothing::kKernelDensity);
  ASSERT_EQ(ma.cuts.size(), 1u);
  ASSERT_EQ(kde.cuts.size(), 1u);
  const auto diff = ma.cuts[0] > kde.cuts[0] ? ma.cuts[0] - kde.cuts[0]
                                             : kde.cuts[0] - ma.cuts[0];
  EXPECT_LE(diff, 6u);
}

}  // namespace
}  // namespace keybin2::stats
