#include "data/dataset.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace keybin2::data {

Dataset concat(const std::vector<Dataset>& parts) {
  Dataset out;
  bool all_labelled = true;
  for (const auto& p : parts) {
    all_labelled = all_labelled && p.labelled();
  }
  for (const auto& p : parts) {
    if (!p.points.empty() && !out.points.empty()) {
      KB2_CHECK_MSG(p.dims() == out.dims(),
                    "concat dims mismatch: " << p.dims() << " vs "
                                             << out.dims());
    }
    for (std::size_t i = 0; i < p.size(); ++i) out.points.append_row(p.points.row(i));
    if (all_labelled)
      out.labels.insert(out.labels.end(), p.labels.begin(), p.labels.end());
  }
  return out;
}

std::vector<std::pair<double, double>> minmax_normalize(Matrix& points) {
  const std::size_t n = points.cols();
  std::vector<std::pair<double, double>> bounds(
      n, {std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()});
  for (std::size_t i = 0; i < points.rows(); ++i) {
    auto row = points.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      bounds[j].first = std::min(bounds[j].first, row[j]);
      bounds[j].second = std::max(bounds[j].second, row[j]);
    }
  }
  for (std::size_t i = 0; i < points.rows(); ++i) {
    auto row = points.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double span = bounds[j].second - bounds[j].first;
      row[j] = span > 0.0 ? (row[j] - bounds[j].first) / span : 0.5;
    }
  }
  return bounds;
}

}  // namespace keybin2::data
