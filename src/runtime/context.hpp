// The runtime Context: everything a pipeline stage needs from its
// environment, bundled per rank.
//
//   Context
//   ├── comm::Communicator  — this rank's endpoint (owned SelfComm for
//   │                         serial runs, or borrowed from the SPMD harness)
//   ├── ThreadPool          — worker pool for data-parallel kernels
//   │                         (defaults to the process-wide global_pool())
//   ├── Rng                 — deterministic per-context random stream,
//   │                         seeded explicitly
//   ├── Tracer              — per-rank timed scopes + traffic attribution
//   ├── MetricsRegistry     — counters/gauges/latency histograms + traffic
//   │                         matrix (populated once enable_comm_metrics())
//   ├── EventLog            — structured events (silent until a sink is set)
//   └── Timeline            — span/flow capture for Perfetto export
//                             (allocated by enable_timeline())
//
// Every clustering driver (batch fit, streaming refit, out-of-core,
// md::insitu) executes its stages against a Context, so timing,
// communication volume, and randomness are owned in exactly one place.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "comm/communicator.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "runtime/flight/flight.hpp"
#include "runtime/health.hpp"
#include "runtime/log.hpp"
#include "runtime/metrics.hpp"
#include "runtime/profile/profiler.hpp"
#include "runtime/timeline.hpp"
#include "runtime/tracer.hpp"

namespace keybin2::runtime {

class Context {
 public:
  /// Distributed context: borrow this rank's communicator endpoint (the
  /// caller — typically run_ranks() — keeps it alive for the context's
  /// lifetime).
  explicit Context(comm::Communicator& comm, std::uint64_t seed = 42,
                   ThreadPool* pool = nullptr)
      : comm_(&comm), pool_(pool != nullptr ? pool : &global_pool()),
        rng_(seed), tracer_(&comm), log_(comm.rank()) {}

  /// Serial context: owns a single-rank SelfComm.
  explicit Context(std::uint64_t seed = 42, ThreadPool* pool = nullptr)
      : owned_comm_(std::make_unique<comm::SelfComm>()),
        comm_(owned_comm_.get()),
        pool_(pool != nullptr ? pool : &global_pool()), rng_(seed),
        tracer_(owned_comm_.get()) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  ~Context() {
    // The communicator may be borrowed and outlive us; never leave it
    // holding a probe into this context's (about to die) monitor.
    if (monitor_ != nullptr) comm_->set_probe(nullptr);
    if (flight_ != nullptr) comm_->set_flight_hook(nullptr);
    // The profiler dies before the tracer (reverse declaration order);
    // detach it so a scope racing destruction can't call a dead observer.
    if (profiler_ != nullptr) tracer_.remove_observer(profiler_.get());
    if (flight_ != nullptr) tracer_.remove_observer(flight_.get());
  }

  comm::Communicator& comm() { return *comm_; }
  const comm::Communicator& comm() const { return *comm_; }
  ThreadPool& pool() { return *pool_; }
  Rng& rng() { return rng_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  int rank() const { return comm_->rank(); }
  int size() const { return comm_->size(); }
  bool is_root() const { return comm_->rank() == 0; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventLog& log() { return log_; }
  /// Non-null once enable_timeline() was called.
  Timeline* timeline() { return timeline_.get(); }

  /// Start deep comm instrumentation: attach a probe feeding this context's
  /// MetricsRegistry with the per-(peer, tag) traffic matrix, recv/barrier
  /// wait histograms, and mailbox depth gauges. Idempotent.
  void enable_comm_metrics() {
    if (monitor_ == nullptr) monitor_ = std::make_unique<CommMonitor>(&metrics_);
    comm_->set_probe(monitor_.get());
  }

  /// Start timeline capture: tracer scopes become spans, and (via the comm
  /// probe, enabled as a side effect) each send/recv becomes one end of a
  /// flow event. Idempotent.
  void enable_timeline() {
    if (timeline_ == nullptr) {
      timeline_ = std::make_unique<Timeline>(comm_->rank());
      // A respawned rank's events render on their own track ("rank N
      // (inc I)") in the Chrome export, and the capture epoch anchors the
      // lane so incarnations stay aligned in merged traces.
      timeline_->set_incarnation(comm_->incarnation());
      timeline_->set_epoch_ns(now_ns());
    }
    tracer_.set_timeline(timeline_.get());
    enable_comm_metrics();
    monitor_->set_timeline(timeline_.get());
  }

  /// Start live health monitoring: an EWMA-baseline HealthMonitor observes
  /// every tracer scope close and (via the comm probe, enabled as a side
  /// effect) every recv/barrier wait, emitting stage_latency_anomaly /
  /// wait_ratio_anomaly events into this context's EventLog. Idempotent;
  /// the config of the first call wins.
  void enable_health_monitor(HealthConfig config = {}) {
    if (health_ == nullptr) {
      health_ = std::make_unique<HealthMonitor>(&log_, &metrics_, config);
    }
    tracer_.add_observer(health_.get());
    enable_comm_metrics();
    monitor_->set_health(health_.get());
  }

  /// Non-null once enable_health_monitor() was called.
  HealthMonitor* health() { return health_.get(); }

  /// Start the continuous profiler (DESIGN.md §8): a sampling profiler over
  /// the tracer's stage scopes, per-stage hardware counters (degrading to
  /// timing-only where perf_event_open is refused), and — when `slot` is
  /// non-null — live telemetry publishes into that slot of the launcher's
  /// TelemetrySegment. Deep comm metrics come on as a side effect (the
  /// telemetry wait ratio needs the wait histograms). Idempotent; the
  /// config of the first call wins. The profiler flushes its gauges and
  /// density counters at stop() — called here from the Context destructor
  /// path via ~Profiler, or explicitly for mid-run reports.
  void enable_profiler(profile::ProfilerConfig config = {},
                       profile::TelemetrySlot* slot = nullptr) {
    if (profiler_ == nullptr) {
      profiler_ = std::make_unique<profile::Profiler>(comm_, &metrics_, &log_,
                                                      config);
      tracer_.add_observer(profiler_.get());
    }
    enable_comm_metrics();
    if (timeline_ != nullptr) profiler_->set_timeline(timeline_.get());
    if (health_ != nullptr) profiler_->set_health(health_.get());
    if (flight_ != nullptr) profiler_->set_flight(flight_.get());
    if (slot != nullptr) profiler_->set_telemetry_slot(slot);
    profiler_->start();
  }

  /// Non-null once enable_profiler() was called.
  profile::Profiler* profiler() { return profiler_.get(); }

  /// Attach this rank to the launcher's pre-fork flight-recorder segment
  /// (DESIGN.md §10): stage transitions (tracer observer) and comm op
  /// begin/end (FlightHook on the communicator) stream into the rank's
  /// black-box ring, which the supervisor dumps on abnormal death.
  /// Idempotent; the first segment wins.
  void enable_flight_recorder(flight::FlightSegment* seg) {
    if (seg == nullptr) return;
    if (flight_ == nullptr) {
      flight_ = std::make_unique<flight::FlightRecorder>(
          seg, comm_->rank(), comm_->incarnation());
      tracer_.add_observer(flight_.get());
    }
    comm_->set_flight_hook(flight_.get());
    if (profiler_ != nullptr) profiler_->set_flight(flight_.get());
  }

  /// Non-null once enable_flight_recorder() was called.
  flight::FlightRecorder* flight() { return flight_.get(); }

  /// Merge all ranks' traces at root (collective; see reduce_report()).
  TraceReport trace_report() { return reduce_report(tracer_, *comm_); }

  /// Merge all ranks' metrics at root (collective; see merge_metrics()).
  MetricsReport metrics_report() { return merge_metrics(metrics_, *comm_); }

  /// ULFM-style shrink-and-continue: after a comm::CommError, every
  /// surviving rank calls this in step. It runs the agree_survivors()
  /// rendezvous and, if ranks were lost, swaps this context's communicator
  /// for a SubgroupComm over the survivors (densely renumbered; rank()/
  /// size()/is_root() all reflect the shrunken group afterwards), rebinds
  /// the tracer, and records the loss in the "degraded_ranks" counter (at
  /// the new root only, so the cross-rank counter sum equals the total
  /// number of excluded ranks). Returns false when nobody was lost — the
  /// failure was transient (e.g. a corrupt frame) and the caller should
  /// simply retry over the same group.
  bool shrink_to_survivors() {
    // Failures visible before the rendezvous tell regrow apart from a plain
    // transient retry: if somebody was dead going in but the agreed set is
    // still full-width, a respawned incarnation rejoined and the group grew
    // back (process backend, recovery ladder rung 3).
    const bool had_failures = !comm_->failed_ranks().empty();
    const auto t0 = std::chrono::steady_clock::now();
    auto survivors = comm_->agree_survivors();
    const std::int64_t latency_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    metrics_.histogram("recovery_latency_ns").record(latency_ns);
    const int lost = comm_->size() - static_cast<int>(survivors.size());
    if (lost == 0) {
      if (had_failures) {
        metrics_.add("regrow_epochs");
        log_.warn("regrow", {{"size", std::to_string(comm_->size())}});
        if (timeline_ != nullptr) timeline_->add_instant("regrow", now_ns());
        if (flight_ != nullptr) {
          flight_->event(flight::EventType::kRecovery, "regrow",
                         static_cast<std::uint64_t>(comm_->size()));
        }
      }
      return false;
    }
    auto sub =
        std::make_unique<comm::SubgroupComm>(*comm_, std::move(survivors));
    comm_ = sub.get();
    // Earlier subgroups must stay alive: each SubgroupComm borrows its
    // parent, so repeated shrinks form a chain down to the original comm.
    subgroups_.push_back(std::move(sub));
    tracer_.rebind(comm_);
    excluded_ranks_ += lost;
    metrics_.add("survivor_shrinks");
    log_.warn("survivor_shrink",
              {{"lost", std::to_string(lost)},
               {"survivors", std::to_string(comm_->size())}});
    if (timeline_ != nullptr) {
      timeline_->add_instant("survivor_shrink", now_ns());
    }
    if (flight_ != nullptr) {
      flight_->event(flight::EventType::kRecovery, "shrink",
                     static_cast<std::uint64_t>(comm_->size()));
    }
    if (comm_->rank() == 0) {
      tracer_.counter("degraded_ranks", static_cast<double>(lost));
    }
    return true;
  }

  /// True once shrink_to_survivors() has excluded at least one rank.
  bool degraded() const { return excluded_ranks_ > 0; }

  /// Total ranks excluded across all shrinks of this context.
  int excluded_ranks() const { return excluded_ranks_; }

 private:
  std::unique_ptr<comm::Communicator> owned_comm_;  // serial mode only
  comm::Communicator* comm_;
  ThreadPool* pool_;
  Rng rng_;
  Tracer tracer_;
  MetricsRegistry metrics_;
  EventLog log_;
  std::unique_ptr<Timeline> timeline_;
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<CommMonitor> monitor_;
  std::unique_ptr<profile::Profiler> profiler_;
  std::unique_ptr<flight::FlightRecorder> flight_;
  std::vector<std::unique_ptr<comm::SubgroupComm>> subgroups_;
  int excluded_ranks_ = 0;
};

}  // namespace keybin2::runtime
