# Empty compiler generated dependencies file for table3_trajectories.
# This may be replaced when dependencies are built.
