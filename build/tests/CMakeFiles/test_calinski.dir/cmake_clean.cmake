file(REMOVE_RECURSE
  "CMakeFiles/test_calinski.dir/test_calinski.cpp.o"
  "CMakeFiles/test_calinski.dir/test_calinski.cpp.o.d"
  "test_calinski"
  "test_calinski.pdb"
  "test_calinski[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calinski.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
