// Histogram smoothing and discrete differentiation (paper §3.2).
//
// KeyBin2 partitions a dimension by (1) smoothing its merged histogram with a
// centered moving average whose window is the square root of the bin count,
// (2) fitting a local linear regression per window to get the slope (first
// derivative), (3) differencing slopes to locate inflection points, and
// (4) cutting at density minima between modes. This replaces the v1 density
// threshold and is the "discrete optimization" of the paper — all operations
// live in histogram space, independent of the number of data points.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace keybin2::stats {

/// Centered moving average with half-window w (full window 2w+1); the window
/// truncates at the edges so mass near the borders is not smeared outward.
std::vector<double> moving_average(std::span<const double> y, std::size_t w);

/// Paper's window rule: "window size equal to the square root of the number
/// of bins", floored at 1.
std::size_t smoothing_window(std::size_t bins);

/// Slope of the least-squares line fit over the centered window [i-w, i+w]
/// (truncated at edges) for every index i: the discrete first derivative.
std::vector<double> local_linear_slope(std::span<const double> y,
                                       std::size_t w);

/// First difference of a series (out[i] = y[i+1] - y[i], size n-1).
std::vector<double> first_difference(std::span<const double> y);

/// Indices i where the sign of d2 changes between i and i+1 (inflection
/// points of the smoothed density).
std::vector<std::size_t> sign_changes(std::span<const double> d2);

/// Local minima of `y` that are separated from both neighbouring maxima by a
/// drop of at least `min_prominence` (absolute units). Returns the minima
/// indices in increasing order; flat valleys report their midpoint.
std::vector<std::size_t> prominent_minima(std::span<const double> y,
                                          double min_prominence);

/// Local maxima (modes) with the same prominence rule.
std::vector<std::size_t> prominent_maxima(std::span<const double> y,
                                          double min_prominence);

}  // namespace keybin2::stats
