
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/calinski.cpp" "src/stats/CMakeFiles/kb2_stats.dir/calinski.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/calinski.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/kb2_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/eigen.cpp" "src/stats/CMakeFiles/kb2_stats.dir/eigen.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/eigen.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/kb2_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/kb2_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/kb2_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/kb2_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/metrics.cpp.o.d"
  "/root/repo/src/stats/smoothing.cpp" "src/stats/CMakeFiles/kb2_stats.dir/smoothing.cpp.o" "gcc" "src/stats/CMakeFiles/kb2_stats.dir/smoothing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kb2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
