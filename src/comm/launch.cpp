#include "comm/launch.hpp"

#include "common/error.hpp"

namespace keybin2::comm {

TrafficStats run_ranks(int n_ranks,
                       const std::function<void(Communicator&)>& fn) {
  KB2_CHECK_MSG(n_ranks >= 1, "need at least one rank, got " << n_ranks);
  ThreadCommHub hub(n_ranks);

  std::exception_ptr first_error;
  std::mutex err_mu;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadComm c = hub.comm(r);
      try {
        fn(c);
        // Normal return: the rank leaves the group. Survivors blocked on it
        // (or waiting for it in agree_survivors) are woken rather than hung.
        hub.mark_departed(r);
      } catch (const std::exception& e) {
        {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Per-rank failure flag: peers blocked on this rank wake with a
        // RankFailedError naming it, and may shrink-and-continue without it.
        hub.mark_failed(r, e.what());
      } catch (...) {
        {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        hub.mark_failed(r, "unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  TrafficStats total;
  for (int r = 0; r < n_ranks; ++r) total += hub.stats(r);
  return total;
}

}  // namespace keybin2::comm
