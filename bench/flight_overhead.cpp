// Flight-recorder overhead benchmark (DESIGN.md §10).
//
// Alternates plain and flight-recorded distributed fits (stage transitions,
// comm op begin/end, recovery events all streaming into the pre-created
// black-box rings) over the thread backend and measures the wall-time
// ratio. Two guarantees are gated:
//   * overhead — the mean recorded/plain ratio must stay under 1.05: the
//     flight recorder is an always-on crash-forensics facility (it is the
//     default under --backend proc), so a 5% fit-time tax is the acceptance
//     bar and the bench exits nonzero beyond it;
//   * non-perturbation — every run's model bytes and labels must be
//     bit-identical between the plain and recorded fit. The recorder
//     observes the computation; it may never change it. The bench aborts on
//     the first divergence.
//
// Pair ordering alternates (plain-first on even runs, recorded-first on
// odd) so slow machine drift cancels out of the ratio instead of biasing
// one side.
//
// Series written to BENCH_flight_overhead.json (the *_seconds series are
// gated lower-is-better by the perf-regression comparison; the ratio is
// informational there because its inputs are gated directly):
//   plain_fit_seconds, recorded_fit_seconds, flight_overhead_ratio
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/serialize.hpp"
#include "core/keybin2.hpp"
#include "runtime/context.hpp"
#include "runtime/flight/flight.hpp"

#ifndef __linux__
int main() {
  std::fprintf(
      stderr,
      "flight_overhead: the forensics plane requires Linux; skipping\n");
  return 0;
}
#else

namespace keybin2 {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One distributed fit; `seg` non-null attaches every rank to its black-box
/// ring. Returns wall seconds and fills `fingerprints` with each rank's
/// {model bytes, labels} blob.
double timed_fit(const std::vector<data::Dataset>& shards,
                 const core::Params& params,
                 runtime::flight::FlightSegment* seg,
                 std::vector<std::vector<std::byte>>& fingerprints) {
  const int ranks = static_cast<int>(shards.size());
  const double t0 = now_seconds();
  fingerprints = comm::run_ranks_collect_bytes(
      comm::LaunchOptions{}, ranks,
      [&](comm::Communicator& c) -> std::vector<std::byte> {
        const auto r = static_cast<std::size_t>(c.rank());
        runtime::Context ctx(c, params.seed);
        if (seg != nullptr) ctx.enable_flight_recorder(seg);
        const auto result = core::fit(ctx, shards[r].points, params);
        ByteWriter w;
        result.model.serialize(w);
        w.write_vec(result.labels);
        return w.take();
      });
  return now_seconds() - t0;
}

int run_bench(const bench::Options& opt) {
  const auto spec = data::make_paper_mixture(8, 4, opt.seed);
  const auto d = data::sample(
      spec, opt.points_per_rank * static_cast<std::size_t>(opt.ranks),
      static_cast<unsigned>(opt.seed + 1));
  const auto shards = data::shard(d, opt.ranks);
  core::Params params;
  params.seed = opt.seed;

  runtime::flight::FlightSegment seg(opt.ranks, "flight_overhead bench");

  bench::Series plain_s, recorded_s, ratio_s;
  std::printf("== flight-recorder overhead: %d ranks x %zu points ==\n",
              opt.ranks, opt.points_per_rank);
  // One unrecorded warmup pair: page faults, allocator growth, and branch
  // history belong to neither side of the ratio.
  std::vector<std::vector<std::byte>> plain_fp, recorded_fp;
  (void)timed_fit(shards, params, nullptr, plain_fp);
  (void)timed_fit(shards, params, &seg, recorded_fp);

  for (int run = 0; run < opt.runs; ++run) {
    double tp, tq;
    if (run % 2 == 0) {
      tp = timed_fit(shards, params, nullptr, plain_fp);
      tq = timed_fit(shards, params, &seg, recorded_fp);
    } else {
      tq = timed_fit(shards, params, &seg, recorded_fp);
      tp = timed_fit(shards, params, nullptr, plain_fp);
    }
    for (std::size_t r = 0; r < plain_fp.size(); ++r) {
      if (plain_fp[r] != recorded_fp[r]) {
        std::fprintf(stderr,
                     "FATAL: recorded fit fingerprint diverges from plain "
                     "on rank %zu — the flight recorder perturbed the "
                     "computation\n",
                     r);
        std::exit(1);
      }
    }
    plain_s.add(tp);
    recorded_s.add(tq);
    ratio_s.add(tq / tp);
    std::printf("run %d: plain %.3fs  recorded %.3fs  ratio %.3fx\n", run,
                tp, tq, tq / tp);
  }
  std::printf("plain %s s | recorded %s s | ratio %s\n",
              plain_s.str().c_str(), recorded_s.str().c_str(),
              ratio_s.str(3).c_str());

  auto& rep = bench::Reporter::global();
  rep.add_series("plain_fit_seconds", plain_s);
  rep.add_series("recorded_fit_seconds", recorded_s);
  rep.add_series("flight_overhead_ratio", ratio_s);
  rep.write(opt);

  if (ratio_s.mean() >= 1.05) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder overhead %.3fx >= 1.05x acceptance "
                 "bar\n",
                 ratio_s.mean());
    return 1;
  }
  std::printf(
      "flight_overhead: OK (%.3fx < 1.05x, fingerprints bit-identical)\n",
      ratio_s.mean());
  return 0;
}

}  // namespace
}  // namespace keybin2

int main(int argc, char** argv) {
  const auto opt = keybin2::bench::Options::parse(argc, argv);
  return keybin2::run_bench(opt);
}

#endif  // __linux__
