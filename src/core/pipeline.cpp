#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/assess.hpp"
#include "core/projection.hpp"
#include "stats/ks_test.hpp"

namespace keybin2::core {

namespace {

/// 1-D histogram-space CH of a single dimension's partition (its primaries
/// act as the cells) — the per-dimension depth-selection criterion.
double single_dimension_score(const stats::Histogram& level,
                              const DimensionPartition& partition) {
  std::vector<Cell> cells;
  for (std::size_t p = 0; p < partition.primary_count(); ++p) {
    const auto [begin, end] = partition.range_of(p);
    double mass = 0.0;
    for (std::size_t b = begin; b < end; ++b) mass += level.count(b);
    if (mass > 0.0) {
      cells.push_back(Cell{{static_cast<std::uint32_t>(p)}, mass, -1});
    }
  }
  return histogram_calinski_harabasz({level}, {partition}, cells);
}

/// Coarse depth for the coreset merge's exact calibration pass: level-6
/// histograms are 64 bins per dimension — O(dims) doubles, negligible next
/// to the sketch — and shipping them exactly pins every derived level at or
/// above this depth to the exact answer.
constexpr int kCoresetCalibrationDepth = 6;

/// The coreset comm plane's histogram merge (DESIGN.md §9): a capped sketch
/// of the deepest level plus an exact allreduce of the tiny coarse level
/// (with one extra element carrying each rank's dropped mass), then a
/// per-block reconciliation so each coarse bin's children sum to the exact
/// coarse count:
///
///   * nothing dropped anywhere -> the sketch is exact; pass it through;
///   * mass was dropped -> inside each coarse block, only entries above the
///     heavy-hitter threshold (>= epsilon_eff * global mass, carried exactly
///     by the sampler's contract) keep their placement; the block's residual
///     exact mass spreads uniformly across the other children. Sampled light
///     entries have meaningful MASS but arbitrary placement, and leaving
///     them as spikes seeds phantom cuts in the deep-level partitioner.
///
/// Shallow levels (collapse, moderate partition depths) come out exact;
/// deep levels are exact at block granularity with genuine heavy structure
/// preserved bin-exact. Both collectives charge `profile`, so reduce_bytes
/// covers the calibration traffic too.
std::vector<double> coreset_merge_histograms(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    std::span<const double> flat, const comm::coreset::Options& opts,
    comm::ReduceProfile* profile) {
  const double drops_before = profile->coreset_mass_dropped;
  auto merged = ctx.comm().coreset_allreduce(flat, opts, profile);
  if (hists.empty()) return merged;

  const int max_depth = hists[0].max_depth();
  const int coarse_depth = std::min(max_depth, kCoresetCalibrationDepth);
  std::vector<double> coarse_local;
  coarse_local.reserve((hists.size() << coarse_depth) + 1);
  for (const auto& h : hists) {
    const auto level = h.level(coarse_depth);
    coarse_local.insert(coarse_local.end(), level.counts().begin(),
                        level.counts().end());
  }
  // Every drop happens at exactly one rank (build or a tree-hop compress),
  // so the sum of the per-rank deltas is the global dropped mass.
  coarse_local.push_back(profile->coreset_mass_dropped - drops_before);
  const auto coarse = ctx.comm().allreduce(
      coarse_local, comm::ReduceOp::kSum, comm::AllreduceAlgo::kTree, profile);
  const double global_drops = coarse.back();
  if (global_drops == 0.0) return merged;  // sketch is exact end to end

  double global_mass = 0.0;
  for (std::size_t i = 0; i + 1 < coarse.size(); ++i) global_mass += coarse[i];
  const double heavy_threshold =
      std::clamp(opts.epsilon,
                 2.0 / static_cast<double>(std::max<std::size_t>(
                           opts.max_cells, 2)),
                 1.0) *
      global_mass;

  const std::size_t coarse_bins = std::size_t{1} << coarse_depth;
  const std::size_t children = std::size_t{1} << (max_depth - coarse_depth);
  std::size_t deep_off = 0;
  std::size_t coarse_off = 0;
  for (std::size_t j = 0; j < hists.size(); ++j) {
    for (std::size_t c = 0; c < coarse_bins; ++c) {
      const double exact = coarse[coarse_off + c];
      double* block = merged.data() + deep_off + c * children;
      double heavy_mass = 0.0;
      std::size_t heavy_count = 0;
      for (std::size_t k = 0; k < children; ++k) {
        if (block[k] >= heavy_threshold) {
          heavy_mass += block[k];
          ++heavy_count;
        }
      }
      if (heavy_count == children ||
          (heavy_mass >= exact && heavy_mass > 0.0)) {
        // Merged heavies overshoot the block (drops elsewhere): keep their
        // relative placement, scaled onto the exact block mass.
        const double scale = exact / heavy_mass;
        for (std::size_t k = 0; k < children; ++k) {
          block[k] = block[k] >= heavy_threshold ? block[k] * scale : 0.0;
        }
      } else {
        const double light_each =
            (exact - heavy_mass) /
            static_cast<double>(children - heavy_count);
        for (std::size_t k = 0; k < children; ++k) {
          if (block[k] < heavy_threshold) block[k] = light_each;
        }
      }
    }
    deep_off += hists[j].deepest_counts().size();
    coarse_off += coarse_bins;
  }
  return merged;
}

}  // namespace

ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             std::size_t input_dims, int n_rp,
                             bool use_projection, std::uint64_t trial_seed) {
  return stage_project(ctx, local_points,
                       use_projection
                           ? make_projection_matrix(input_dims, n_rp,
                                                    trial_seed)
                           : Matrix());
}

ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             Matrix projection) {
  auto scope = ctx.tracer().scope(stage::kProject);
  ProjectedTrial out;
  if (projection.empty()) {
    out.projected = local_points;
  } else {
    out.projected = project(local_points, projection);
    out.projection = std::move(projection);
  }
  return out;
}

std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      const Matrix& projected,
                                      std::size_t dims) {
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    auto row = projected.row(i);
    for (std::size_t j = 0; j < dims; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  return stage_agree_ranges(ctx, lo, hi);
}

std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      std::span<const double> local_lo,
                                      std::span<const double> local_hi) {
  KB2_CHECK_MSG(local_lo.size() == local_hi.size(),
                "agree_ranges envelope length mismatch: "
                    << local_lo.size() << " vs " << local_hi.size());
  auto scope = ctx.tracer().scope(stage::kAgreeRanges);
  const auto lo = ctx.comm().allreduce(local_lo, comm::ReduceOp::kMin);
  const auto hi = ctx.comm().allreduce(local_hi, comm::ReduceOp::kMax);
  std::vector<Range> ranges(lo.size());
  for (std::size_t j = 0; j < lo.size(); ++j) {
    if (!std::isfinite(lo[j]) || !std::isfinite(hi[j])) {
      // No rank observed any value in this dimension (every shard empty):
      // the +inf/-inf sentinels survived the allreduce. Clamp to a valid
      // degenerate range so keys and histograms stay well-defined.
      ranges[j] = Range{0.0, 1.0};
    } else {
      ranges[j] = Range{lo[j], hi[j] > lo[j] ? hi[j] : lo[j] + 1.0};
    }
  }
  return ranges;
}

BinnedTrial stage_bin(runtime::Context& ctx, const Matrix& projected,
                      const std::vector<Range>& ranges, int max_depth) {
  auto scope = ctx.tracer().scope(stage::kBin);
  BinnedTrial out;
  out.keys = compute_keys(projected, ranges, max_depth);
  out.hists = build_histograms(out.keys, ranges);
  ctx.metrics().add("points_binned", projected.rows());
  return out;
}

void stage_merge_histograms(runtime::Context& ctx,
                            std::vector<stats::HierarchicalHistogram>& hists,
                            Topology topology, bool integral_counts) {
  // The classic adaptive dense/sparse plane (pre-comm-mode behaviour);
  // callers with a full Params use the comm-mode dispatch below.
  Params params;
  params.topology = topology;
  params.comm_mode = CommMode::kSparse;
  stage_merge_histograms(ctx, hists, params, integral_counts, nullptr);
}

void stage_merge_histograms(runtime::Context& ctx,
                            std::vector<stats::HierarchicalHistogram>& hists,
                            const Params& params, bool integral_counts,
                            std::uint64_t* observed_nnz) {
  auto scope = ctx.tracer().scope(stage::kMergeHistograms);
  // The only point-derived data that ever crosses ranks,
  // O(dims * 2^max_depth) doubles — through the tree allreduce (adaptive:
  // recursive halving with sparse segments once integral counts make
  // reordering exact and the payload is worth it), around a ring (§3
  // step 3), or through capped coreset sketches (DESIGN.md §9).
  const auto flat = flatten_counts(hists);
  const auto before = ctx.comm().stats();
  comm::ReduceProfile profile;
  std::vector<double> merged;
  bool coreset = false;
  if (params.topology == Topology::kRing) {
    merged = ctx.comm().ring_allreduce(flat);
    // Ring traffic is not profiled; charge the stats delta instead (both
    // accountings count framed bytes, so they agree where they overlap).
    profile.bytes = (ctx.comm().stats() - before).bytes_sent;
  } else {
    comm::coreset::Options copts;
    copts.max_cells = params.coreset_max_cells;
    copts.epsilon = params.coreset_epsilon;
    copts.seed = params.seed;
    // Non-integral (fractional) counts never take the adaptive
    // recursive-halving path: re-associating an FP sum would perturb
    // results by rounding. A *forced* kCoreset still runs (it is
    // approximate by contract); kAuto stays exact for fractional counts.
    const auto exact_algo = integral_counts ? comm::AllreduceAlgo::kAuto
                                            : comm::AllreduceAlgo::kTree;
    switch (params.comm_mode) {
      case CommMode::kDense:
        merged = ctx.comm().allreduce(flat, comm::ReduceOp::kSum,
                                      comm::AllreduceAlgo::kTree, &profile);
        break;
      case CommMode::kSparse:
        merged = ctx.comm().allreduce(flat, comm::ReduceOp::kSum, exact_algo,
                                      &profile);
        break;
      case CommMode::kCoreset:
        merged = coreset_merge_histograms(ctx, hists, flat, copts, &profile);
        coreset = true;
        break;
      case CommMode::kAuto: {
        const bool dense_enough =
            observed_nnz != nullptr &&
            *observed_nnz >=
                kCoresetAutoDensityFactor *
                    static_cast<std::uint64_t>(params.coreset_max_cells);
        if (integral_counts && dense_enough) {
          merged = coreset_merge_histograms(ctx, hists, flat, copts, &profile);
          coreset = true;
        } else {
          merged = ctx.comm().allreduce(flat, comm::ReduceOp::kSum, exact_algo,
                                        &profile);
        }
        break;
      }
    }
  }
  unflatten_counts(merged, hists);
  if (observed_nnz != nullptr) {
    std::uint64_t nnz = 0;
    for (const double v : merged) nnz += (v != 0.0) ? 1 : 0;
    *observed_nnz = nnz;
  }
  ctx.metrics().add("reduce_bytes", profile.bytes);
  if (params.topology != Topology::kRing) {
    if (coreset) {
      ctx.metrics().add("reduce_algo_coreset");
      ctx.metrics().add("coreset_cells_sent", profile.coreset_cells);
      // Counters are integers; for integral histogram counts the rounded
      // dropped mass is exact.
      ctx.metrics().add("coreset_mass_dropped",
                        static_cast<std::uint64_t>(
                            std::llround(profile.coreset_mass_dropped)));
    } else {
      ctx.metrics().add(profile.algo == comm::AllreduceAlgo::kRecursiveHalving
                            ? "reduce_algo_rh"
                            : "reduce_algo_tree");
    }
    if (profile.sparse_blocks > 0) {
      ctx.metrics().add("sparse_hits", profile.sparse_blocks);
    }
  }
  ctx.metrics().add("histogram_merges");
}

std::vector<int> collapse_dimensions(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const Params& params) {
  auto scope = ctx.tracer().scope(stage::kCollapse);
  // KS-based dimension collapsing on a mid-level histogram (64 bins).
  const int collapse_depth = std::min(params.max_depth, 6);
  std::vector<int> kept_dims;
  for (std::size_t j = 0; j < hists.size(); ++j) {
    const auto level = hists[j].level(collapse_depth);
    const double ks =
        stats::ks_statistic_gaussian(level.counts(), level.lo(), level.hi());
    if (ks >= params.collapse_threshold) {
      kept_dims.push_back(static_cast<int>(j));
    }
  }
  return kept_dims;
}

std::vector<std::vector<int>> depth_candidates(
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, const Params& params) {
  std::vector<std::vector<int>> candidates;
  if (params.per_dimension_depth) {
    std::vector<int> chosen;
    chosen.reserve(kept_dims.size());
    for (int j : kept_dims) {
      int best_depth = params.min_depth;
      double best_dim_score = -1.0;
      for (int depth = params.min_depth; depth <= params.max_depth; ++depth) {
        const auto level = hists[static_cast<std::size_t>(j)].level(depth);
        const auto part = partition(level.counts(), params);
        const double s = single_dimension_score(level, part);
        if (s > best_dim_score) {
          best_dim_score = s;
          best_depth = depth;
        }
      }
      chosen.push_back(best_depth);
    }
    candidates.push_back(std::move(chosen));
  } else {
    for (int depth = params.min_depth; depth <= params.max_depth; ++depth) {
      candidates.emplace_back(kept_dims.size(), depth);
    }
  }
  return candidates;
}

PartitionedCandidate stage_partition(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, std::vector<int> depths,
    const Params& params) {
  KB2_CHECK_MSG(depths.size() == kept_dims.size(),
                "stage_partition: " << depths.size() << " depths for "
                                    << kept_dims.size() << " kept dims");
  auto scope = ctx.tracer().scope(stage::kPartition);
  PartitionedCandidate out;
  out.depths = std::move(depths);
  out.dim_hists.reserve(kept_dims.size());
  out.partitions.reserve(kept_dims.size());
  for (std::size_t k = 0; k < kept_dims.size(); ++k) {
    const auto j = static_cast<std::size_t>(kept_dims[k]);
    auto level = hists[j].level(out.depths[k]);
    out.partitions.push_back(partition(level.counts(), params));
    out.dim_hists.push_back(std::move(level));
  }
  return out;
}

AssessedCandidate stage_assess(runtime::Context& ctx, const KeyTable& keys,
                               const std::vector<int>& kept_dims,
                               const PartitionedCandidate& candidate,
                               double weight_per_point) {
  return stage_assess(ctx, keys, kept_dims, candidate, Params{},
                      weight_per_point);
}

AssessedCandidate stage_assess(runtime::Context& ctx, const KeyTable& keys,
                               const std::vector<int>& kept_dims,
                               const PartitionedCandidate& candidate,
                               const Params& params, double weight_per_point) {
  auto scope = ctx.tracer().scope(stage::kAssess);
  // Occupied cells: local count, merged at the root.
  auto local_cells = count_cells(keys, kept_dims, candidate.partitions,
                                 candidate.depths, weight_per_point);
  if (params.comm_mode == CommMode::kCoreset &&
      local_cells.size() > params.coreset_max_cells) {
    // Forced coreset mode caps the assess gather too. kAuto deliberately
    // does not: cell maps are usually far smaller than deep histograms, and
    // keeping them exact preserves default-mode fingerprints.
    double dropped = 0.0;
    local_cells = coreset_cells(
        local_cells, params.coreset_max_cells, params.coreset_epsilon,
        comm::coreset::fork_seed(params.seed,
                                 static_cast<std::uint64_t>(ctx.comm().rank()),
                                 /*b=*/0x5eedULL),
        &dropped);
    ctx.metrics().add("cells_coreset");
    ctx.metrics().add("coreset_mass_dropped",
                      static_cast<std::uint64_t>(std::llround(dropped)));
  }
  ctx.metrics().add("cells_assessed", local_cells.size());
  auto gathered = ctx.comm().gather(serialize_cells(local_cells), /*root=*/0);

  AssessedCandidate out;
  if (ctx.is_root()) {
    CellMap global_cells;
    for (const auto& blob : gathered) merge_cells(global_cells, blob);
    out.cells = to_cell_vector(global_cells);
    out.score = histogram_calinski_harabasz(candidate.dim_hists,
                                            candidate.partitions, out.cells);
    out.scored = true;
  }
  return out;
}

Model stage_share_model(runtime::Context& ctx, std::optional<Model> root_model,
                        const std::function<void(ByteWriter&)>& write_extra,
                        const std::function<void(ByteReader&)>& read_extra) {
  KB2_CHECK_MSG(root_model.has_value() == ctx.is_root(),
                "stage_share_model: exactly the root supplies the model");
  auto scope = ctx.tracer().scope(stage::kShareModel);
  ByteWriter writer;
  if (root_model.has_value()) {
    root_model->serialize(writer);
    if (write_extra) write_extra(writer);
  }
  auto bytes = writer.take();
  ctx.comm().broadcast(bytes, /*root=*/0);
  ByteReader reader(bytes);
  Model model = Model::deserialize(reader);
  if (read_extra) read_extra(reader);
  return model;
}

}  // namespace keybin2::core
