// Protein folding trajectories in torsion space.
//
// A trajectory is F frames x R residues; each residue carries a
// (phi, psi, omega) torsion triple per frame. Featurization for clustering
// follows the paper: "every residue was characterized by the torsion angle
// phi versus psi and omega" and mapped to one of six secondary structures,
// so a frame becomes an R-dimensional vector of structure classes.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "md/ramachandran.hpp"

namespace keybin2::md {

class Trajectory {
 public:
  Trajectory() = default;

  /// frames x residues trajectory; torsions stored frame-major as
  /// [phi_0, psi_0, omega_0, phi_1, ...].
  Trajectory(std::size_t frames, std::size_t residues)
      : residues_(residues), torsions_(frames, residues * 3) {}

  std::size_t frames() const { return torsions_.rows(); }
  std::size_t residues() const { return residues_; }

  double& phi(std::size_t frame, std::size_t residue) {
    return torsions_(frame, residue * 3);
  }
  double& psi(std::size_t frame, std::size_t residue) {
    return torsions_(frame, residue * 3 + 1);
  }
  double& omega(std::size_t frame, std::size_t residue) {
    return torsions_(frame, residue * 3 + 2);
  }
  double phi(std::size_t frame, std::size_t residue) const {
    return torsions_(frame, residue * 3);
  }
  double psi(std::size_t frame, std::size_t residue) const {
    return torsions_(frame, residue * 3 + 1);
  }
  double omega(std::size_t frame, std::size_t residue) const {
    return torsions_(frame, residue * 3 + 2);
  }

  /// Raw torsion row of one frame.
  std::span<const double> torsions(std::size_t frame) const {
    return torsions_.row(frame);
  }

  /// Secondary structure of one residue in one frame.
  SecondaryStructure structure(std::size_t frame, std::size_t residue) const {
    return classify(phi(frame, residue), psi(frame, residue),
                    omega(frame, residue));
  }

 private:
  std::size_t residues_ = 0;
  Matrix torsions_;
};

/// Paper featurization: frames x residues matrix of secondary-structure
/// class indices (as doubles, ready for KeyBin2).
Matrix featurize_secondary_structure(const Trajectory& traj);

/// One frame's feature vector (for streaming ingestion).
std::vector<double> featurize_frame(const Trajectory& traj, std::size_t frame);

/// Torsion-space distance between two frames: root mean squared angular
/// deviation over all (phi, psi) pairs, with periodic wrap (degrees). This
/// plays the role of the paper's "root mean squared deviation with respect
/// to each frame" for the offline validation.
double frame_rmsd(const Trajectory& traj, std::size_t a, std::size_t b);

/// RMSD of a frame against an explicit torsion vector (e.g. the mean
/// conformation).
double frame_rmsd(const Trajectory& traj, std::size_t frame,
                  std::span<const double> torsions);

/// Per-coordinate circular mean conformation of the whole trajectory.
std::vector<double> mean_conformation(const Trajectory& traj);

}  // namespace keybin2::md
