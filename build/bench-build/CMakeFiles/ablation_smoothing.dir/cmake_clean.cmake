file(REMOVE_RECURSE
  "../bench/ablation_smoothing"
  "../bench/ablation_smoothing.pdb"
  "CMakeFiles/ablation_smoothing.dir/ablation_smoothing.cpp.o"
  "CMakeFiles/ablation_smoothing.dir/ablation_smoothing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
