// Byte-buffer serialization for inter-rank messages.
//
// Every message exchanged through keybin2::comm is a flat byte vector, the
// same way an MPI program sends typed buffers. ByteWriter/ByteReader provide
// bounds-checked packing of trivially-copyable scalars, vectors, and strings.
#pragma once

#include <bit>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace keybin2 {

// Serialized bytes are raw memcpy'd object representations: they cross rank
// boundaries (which, under the process backend, are real process boundaries
// and in an MPI deployment would be real machines) and land in checkpoint
// files that a restarted run reads back. That is only well-defined while
// every producer and consumer agrees on byte order and byte width — assert
// the assumption once, here, instead of corrupting data quietly on an
// exotic target.
static_assert(std::endian::native == std::endian::little,
              "keybin2 serialization assumes little-endian object "
              "representations (frames and checkpoints are raw memcpy)");
static_assert(CHAR_BIT == 8,
              "keybin2 serialization assumes 8-bit bytes");

class ByteWriter {
 public:
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "write() requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  template <typename T>
  void write_span(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size_bytes());
  }

  template <typename T>
    requires(!std::is_const_v<T>)
  void write_span(std::span<T> v) {
    write_span(std::span<const T>(v));
  }

  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

  /// Drop the contents but keep the capacity, so a long-lived writer can be
  /// reused across messages without reallocating (reduce hot loop).
  void clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    // Overflow-safe bound: a corrupt length prefix must not wrap the
    // byte-count multiplication (or reach std::vector's length_error).
    KB2_CHECK_MSG(n <= remaining() / sizeof(T),
                  "ByteReader: vector length " << n << " exceeds remaining "
                                               << remaining() << " bytes");
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    KB2_CHECK_MSG(n <= remaining(), "ByteReader: string length "
                                        << n << " exceeds remaining "
                                        << remaining() << " bytes");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    KB2_CHECK_MSG(pos_ + n <= data_.size(),
                  "ByteReader underflow: need " << n << " bytes at offset "
                                                << pos_ << " of "
                                                << data_.size());
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace keybin2
