#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"

namespace keybin2::core {

void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload) {
  ByteWriter header;
  header.write<std::uint64_t>(kCheckpointMagic);
  header.write<std::uint32_t>(kCheckpointVersion);
  header.write<std::uint64_t>(static_cast<std::uint64_t>(payload.size()));
  header.write<std::uint32_t>(crc32(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    KB2_CHECK_MSG(out.is_open(), "cannot open checkpoint file " << tmp
                                                                << " for writing");
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    KB2_CHECK_MSG(out.good(), "short write to checkpoint file " << tmp);
  }
  KB2_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot move checkpoint " << tmp << " into place at " << path);
}

std::vector<std::byte> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  KB2_CHECK_MSG(in.is_open(), "cannot open checkpoint file " << path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  KB2_CHECK_MSG(raw.size() >= kCheckpointHeaderBytes,
                "checkpoint " << path << " truncated: " << raw.size()
                              << " bytes, header alone needs "
                              << kCheckpointHeaderBytes);

  ByteReader r(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  const auto magic = r.read<std::uint64_t>();
  KB2_CHECK_MSG(magic == kCheckpointMagic,
                "checkpoint " << path << " has bad magic (not a KB2CKPT file)");
  const auto version = r.read<std::uint32_t>();
  KB2_CHECK_MSG(version == kCheckpointVersion,
                "checkpoint " << path << " has version " << version
                              << ", this build reads version "
                              << kCheckpointVersion);
  const auto payload_size = r.read<std::uint64_t>();
  KB2_CHECK_MSG(payload_size == raw.size() - kCheckpointHeaderBytes,
                "checkpoint " << path << " truncated: header promises "
                              << payload_size << " payload bytes, file holds "
                              << raw.size() - kCheckpointHeaderBytes);
  const auto expected_crc = r.read<std::uint32_t>();

  std::vector<std::byte> payload(static_cast<std::size_t>(payload_size));
  std::memcpy(payload.data(), raw.data() + kCheckpointHeaderBytes,
              payload.size());
  const auto actual_crc = crc32(payload);
  KB2_CHECK_MSG(actual_crc == expected_crc,
                "checkpoint " << path << " failed its CRC32 integrity check"
                              << " (stored " << expected_crc << ", computed "
                              << actual_crc << ")");
  return payload;
}

}  // namespace keybin2::core
