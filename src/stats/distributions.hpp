// Distribution helpers used by KeyBin2's dimensionality analysis (paper §3.1)
// and by the evaluation harnesses.
#pragma once

#include <cstdint>
#include <span>

namespace keybin2::stats {

/// log(n choose k) via lgamma; returns -inf for invalid (k > n).
double log_choose(std::uint64_t n, std::uint64_t k);

/// Hypergeometric PMF: probability of drawing exactly `k` marked items when
/// sampling `draws` without replacement from a population of `total` with
/// `marked` marked items (paper Eq. 1 models selecting informative projected
/// dimensions this way).
double hypergeometric_pmf(std::uint64_t total, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t k);

/// Expectation draws * marked / total of the hypergeometric distribution.
double hypergeometric_mean(std::uint64_t total, std::uint64_t marked,
                           std::uint64_t draws);

/// Percentile (p in [0,100]) of a binned distribution: the smallest bin whose
/// cumulative mass reaches p% of the total. The paper's global centre `c` is
/// the 50th percentile bin per dimension. Returns 0 for empty histograms.
std::size_t percentile_bin(std::span<const double> counts, double p);

/// Welford online mean/variance/min/max accumulator.
class OnlineMoments {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace keybin2::stats
