#include "core/fused.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/projection.hpp"

namespace keybin2::core {

namespace {

// Chunks below these sizes are not worth a worker wake-up; they also bound
// the number of count shards pass B has to zero and merge.
constexpr std::size_t kProjectGrain = 1024;
constexpr std::size_t kBinGrain = 4096;

// ---- Compile-time-RP row kernels -----------------------------------------
//
// The projected dimensionality is tiny (the paper's rule gives 2-9), so the
// hot loops are specialized on it: with RP a compile-time constant the
// per-row accumulators live in registers, the j-loops fully unroll, and the
// divisions in the key computation pipeline independently instead of
// serializing through one memory-carried chain. Every specialization
// performs the IDENTICAL per-lane operation sequence as the generic code
// (same i-order, same mul-then-add, zero-skip preserved, no FP contraction —
// fused.cpp is built with -ffp-contract=off), so results stay bit-identical.

template <int RP>
void project_envelope_rows(const double* __restrict pts, std::size_t in_dims,
                           const double* __restrict a, double* __restrict out,
                           std::size_t begin, std::size_t end,
                           double* __restrict lo, double* __restrict hi) {
  double vlo[RP], vhi[RP];
  for (int j = 0; j < RP; ++j) {
    vlo[j] = lo[j];
    vhi[j] = hi[j];
  }
  // Four points in flight: each point's accumulator chain is a strict
  // k-ordered sequence of adds (the bit-identity contract), so a single
  // point is latency-bound on vaddpd; four independent chains fill the
  // pipeline. Lane order within each point is untouched.
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const double* r0 = pts + i * in_dims;
    const double* r1 = r0 + in_dims;
    const double* r2 = r1 + in_dims;
    const double* r3 = r2 + in_dims;
    double a0[RP] = {}, a1[RP] = {}, a2[RP] = {}, a3[RP] = {};
    for (std::size_t k = 0; k < in_dims; ++k) {
      const double* ar = a + k * static_cast<std::size_t>(RP);
      const double x0 = r0[k], x1 = r1[k], x2 = r2[k], x3 = r3[k];
      if (x0 != 0.0) {  // same zero-skip as project_point
        for (int j = 0; j < RP; ++j) a0[j] += x0 * ar[j];
      }
      if (x1 != 0.0) {
        for (int j = 0; j < RP; ++j) a1[j] += x1 * ar[j];
      }
      if (x2 != 0.0) {
        for (int j = 0; j < RP; ++j) a2[j] += x2 * ar[j];
      }
      if (x3 != 0.0) {
        for (int j = 0; j < RP; ++j) a3[j] += x3 * ar[j];
      }
    }
    double* dst = out + i * static_cast<std::size_t>(RP);
    for (int j = 0; j < RP; ++j) {  // envelope folds stay in row order
      dst[j] = a0[j];
      dst[RP + j] = a1[j];
      dst[2 * RP + j] = a2[j];
      dst[3 * RP + j] = a3[j];
      vlo[j] = std::min(std::min(std::min(std::min(vlo[j], a0[j]), a1[j]),
                                 a2[j]),
                        a3[j]);
      vhi[j] = std::max(std::max(std::max(std::max(vhi[j], a0[j]), a1[j]),
                                 a2[j]),
                        a3[j]);
    }
  }
  for (; i < end; ++i) {
    const double* row = pts + i * in_dims;
    double acc[RP] = {};
    for (std::size_t k = 0; k < in_dims; ++k) {
      const double xi = row[k];
      if (xi == 0.0) continue;
      const double* ar = a + k * static_cast<std::size_t>(RP);
      for (int j = 0; j < RP; ++j) acc[j] += xi * ar[j];
    }
    double* dst = out + i * static_cast<std::size_t>(RP);
    for (int j = 0; j < RP; ++j) {
      dst[j] = acc[j];
      vlo[j] = std::min(vlo[j], acc[j]);
      vhi[j] = std::max(vhi[j], acc[j]);
    }
  }
  for (int j = 0; j < RP; ++j) {
    lo[j] = vlo[j];
    hi[j] = vhi[j];
  }
}

void project_envelope_rows_generic(const double* pts, std::size_t in_dims,
                                   std::size_t rp, const double* a,
                                   double* out, std::size_t begin,
                                   std::size_t end, double* lo, double* hi) {
  for (std::size_t i = begin; i < end; ++i) {
    const double* row = pts + i * in_dims;
    double* dst = out + i * rp;
    for (std::size_t j = 0; j < rp; ++j) dst[j] = 0.0;
    for (std::size_t k = 0; k < in_dims; ++k) {
      const double xi = row[k];
      if (xi == 0.0) continue;
      const double* ar = a + k * rp;
      for (std::size_t j = 0; j < rp; ++j) dst[j] += xi * ar[j];
    }
    for (std::size_t j = 0; j < rp; ++j) {
      lo[j] = std::min(lo[j], dst[j]);
      hi[j] = std::max(hi[j], dst[j]);
    }
  }
}

template <int RP>
void key_bin_rows(const double* __restrict proj,
                  const BinScale* __restrict scales,
                  std::uint32_t* __restrict keys, double* __restrict counts,
                  std::size_t bins, std::size_t begin, std::size_t end) {
  // Struct-of-arrays copy of the per-dimension constants so the j-loop loads
  // them as contiguous vectors instead of gathering through the BinScale
  // stride.
  double s_lo[RP], s_hi[RP], s_den[RP], s_dbins[RP], s_dlast[RP];
  std::int32_t s_last[RP];
  for (int j = 0; j < RP; ++j) {
    s_lo[j] = scales[j].lo;
    s_hi[j] = scales[j].hi;
    s_den[j] = scales[j].den;
    s_dbins[j] = scales[j].dbins;
    s_dlast[j] = scales[j].dlast;
    s_last[j] = static_cast<std::int32_t>(scales[j].last);
  }
  for (std::size_t i = begin; i < end; ++i) {
    const double* row = proj + i * static_cast<std::size_t>(RP);
    std::int32_t k[RP];
    for (int j = 0; j < RP; ++j) {
      // Same operation sequence as fused_key; the clamp bounds p to
      // [0, 2^24), so converting through int32 (vcvttpd2dq vectorizes on
      // AVX2, the unsigned convert does not) yields the identical bin.
      const double x = row[j];
      const double t = (x - s_lo[j]) / s_den[j];
      double p = t * s_dbins[j];
      p = p < 0.0 ? 0.0 : p;
      p = p > s_dlast[j] ? s_dlast[j] : p;
      auto b = static_cast<std::int32_t>(p);
      b = x <= s_lo[j] ? 0 : b;
      b = x >= s_hi[j] ? s_last[j] : b;
      k[j] = b;
    }
    std::uint32_t* krow = keys + i * static_cast<std::size_t>(RP);
    for (int j = 0; j < RP; ++j) {
      krow[j] = static_cast<std::uint32_t>(k[j]);
      counts[static_cast<std::size_t>(j) * bins +
             static_cast<std::uint32_t>(k[j])] += 1.0;
    }
  }
}

#if defined(__AVX2__)

// ---- Explicit AVX2 kernels for the ymm-aligned widths (RP = 4, 8) --------
//
// GCC scalarizes the accumulator arrays across the zero-skip branches and
// never re-vectorizes them, so the template kernels above compile to scalar
// code. These intrinsic versions are lane-for-lane identical to the scalar
// reference:
//   * vmulpd/vaddpd/vsubpd/vdivpd are per-lane IEEE ops, and writing mul and
//     add as separate intrinsics keeps them unfused (-ffp-contract=off).
//   * std::min(x, y) returns x on ties (signed zeros!) and y only when
//     y < x; _mm256_min_pd(a, b) returns b on ties and when either is NaN.
//     Hence std::min(x, y) == _mm256_min_pd(y, x) exactly, including ±0 and
//     NaN; same argument swap for max.
//   * the ternary clamps `p < 0 ? 0 : p` / `p > dlast ? dlast : p` keep p on
//     ties and NaN, which is _mm256_max_pd(0, p) / _mm256_min_pd(dlast, p)
//     with p in the second operand.
//   * vcvttpd2dq truncates toward zero exactly like the scalar int32 cast
//     (the clamp bounds p to [0, 2^24), so the value is always in range).

// Each 64-bit compare lane is all-ones or all-zeros; picking the even 32-bit
// words compresses it to a 4 x int32 mask in lane order.
inline __m128i mask64_to_mask32(__m256d m) {
  const __m256 ps = _mm256_castpd_ps(m);
  const __m128 lo = _mm256_castps256_ps128(ps);
  const __m128 hi = _mm256_extractf128_ps(ps, 1);
  return _mm_castps_si128(_mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0)));
}

// Non-temporal store of one ymm value: full-width when the destination is
// 32-byte aligned, two xmm streams at 16-byte alignment (malloc's
// guarantee), regular store otherwise. All produce identical memory
// contents; streaming just skips the read-for-ownership of a buffer that is
// written once and not read until it has left the cache anyway.
enum class StreamMode { kNone, kXmm, kYmm };

inline StreamMode stream_mode(const void* base) {
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  if ((addr & 31) == 0) return StreamMode::kYmm;
  if ((addr & 15) == 0) return StreamMode::kXmm;
  return StreamMode::kNone;
}

inline void store_row(double* dst, __m256d v, StreamMode mode) {
  switch (mode) {
    case StreamMode::kYmm:
      _mm256_stream_pd(dst, v);
      break;
    case StreamMode::kXmm:
      _mm_stream_pd(dst, _mm256_castpd256_pd128(v));
      _mm_stream_pd(dst + 2, _mm256_extractf128_pd(v, 1));
      break;
    case StreamMode::kNone:
      _mm256_storeu_pd(dst, v);
      break;
  }
}

void project_envelope_rows_avx2_rp4(const double* pts, std::size_t in_dims,
                                    const double* a, double* out,
                                    std::size_t begin, std::size_t end,
                                    double* lo, double* hi) {
  __m256d vlo = _mm256_loadu_pd(lo);
  __m256d vhi = _mm256_loadu_pd(hi);
  // Output offsets advance by 32-byte multiples, so one base-alignment check
  // picks the streaming mode for the whole chunk.
  const StreamMode nt = stream_mode(out);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const double* r0 = pts + i * in_dims;
    const double* r1 = r0 + in_dims;
    const double* r2 = r1 + in_dims;
    const double* r3 = r2 + in_dims;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = a0, a2 = a0, a3 = a0;
    // No zero-skip branch here: project_point's skip of x == 0 terms is
    // unobservable in the result bits. The product 0.0 * ar is +/-0 for any
    // finite ar, the accumulators start at +0 and can never become -0 under
    // addition (x + -x rounds to +0), and adding +/-0 to {+0, nonzero} is the
    // identity. The skip only matters if the projection matrix holds inf/NaN,
    // which make_projection_matrix never emits.
    for (std::size_t k = 0; k < in_dims; ++k) {
      const __m256d ar = _mm256_loadu_pd(a + k * 4);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_set1_pd(r0[k]), ar));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_set1_pd(r1[k]), ar));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_set1_pd(r2[k]), ar));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_set1_pd(r3[k]), ar));
    }
    double* dst = out + i * 4;
    store_row(dst, a0, nt);
    store_row(dst + 4, a1, nt);
    store_row(dst + 8, a2, nt);
    store_row(dst + 12, a3, nt);
    vlo = _mm256_min_pd(a0, vlo);  // std::min(vlo, a0), row order preserved
    vlo = _mm256_min_pd(a1, vlo);
    vlo = _mm256_min_pd(a2, vlo);
    vlo = _mm256_min_pd(a3, vlo);
    vhi = _mm256_max_pd(a0, vhi);
    vhi = _mm256_max_pd(a1, vhi);
    vhi = _mm256_max_pd(a2, vhi);
    vhi = _mm256_max_pd(a3, vhi);
  }
  if (nt != StreamMode::kNone) {
    _mm_sfence();  // order streaming stores before the pool join
  }
  _mm256_storeu_pd(lo, vlo);
  _mm256_storeu_pd(hi, vhi);
  for (; i < end; ++i) {
    const double* row = pts + i * in_dims;
    double acc[4] = {};
    for (std::size_t k = 0; k < in_dims; ++k) {
      const double xi = row[k];
      if (xi == 0.0) continue;
      const double* ar = a + k * 4;
      for (int j = 0; j < 4; ++j) acc[j] += xi * ar[j];
    }
    double* dst = out + i * 4;
    for (int j = 0; j < 4; ++j) {
      dst[j] = acc[j];
      lo[j] = std::min(lo[j], acc[j]);
      hi[j] = std::max(hi[j], acc[j]);
    }
  }
}

void project_envelope_rows_avx2_rp8(const double* pts, std::size_t in_dims,
                                    const double* a, double* out,
                                    std::size_t begin, std::size_t end,
                                    double* lo, double* hi) {
  __m256d vlo0 = _mm256_loadu_pd(lo);
  __m256d vlo1 = _mm256_loadu_pd(lo + 4);
  __m256d vhi0 = _mm256_loadu_pd(hi);
  __m256d vhi1 = _mm256_loadu_pd(hi + 4);
  const StreamMode nt = stream_mode(out);
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {  // 2 points x 2 ymm = 4 independent chains
    const double* r0 = pts + i * in_dims;
    const double* r1 = r0 + in_dims;
    __m256d a00 = _mm256_setzero_pd();
    __m256d a01 = a00, a10 = a00, a11 = a00;
    // Branch-free: skipping x == 0 terms is unobservable in the result bits
    // for a finite projection matrix (see the width-4 kernel note).
    for (std::size_t k = 0; k < in_dims; ++k) {
      const __m256d ar0 = _mm256_loadu_pd(a + k * 8);
      const __m256d ar1 = _mm256_loadu_pd(a + k * 8 + 4);
      const __m256d b0 = _mm256_set1_pd(r0[k]);
      const __m256d b1 = _mm256_set1_pd(r1[k]);
      a00 = _mm256_add_pd(a00, _mm256_mul_pd(b0, ar0));
      a01 = _mm256_add_pd(a01, _mm256_mul_pd(b0, ar1));
      a10 = _mm256_add_pd(a10, _mm256_mul_pd(b1, ar0));
      a11 = _mm256_add_pd(a11, _mm256_mul_pd(b1, ar1));
    }
    double* dst = out + i * 8;
    store_row(dst, a00, nt);
    store_row(dst + 4, a01, nt);
    store_row(dst + 8, a10, nt);
    store_row(dst + 12, a11, nt);
    vlo0 = _mm256_min_pd(a00, vlo0);
    vlo1 = _mm256_min_pd(a01, vlo1);
    vhi0 = _mm256_max_pd(a00, vhi0);
    vhi1 = _mm256_max_pd(a01, vhi1);
    vlo0 = _mm256_min_pd(a10, vlo0);
    vlo1 = _mm256_min_pd(a11, vlo1);
    vhi0 = _mm256_max_pd(a10, vhi0);
    vhi1 = _mm256_max_pd(a11, vhi1);
  }
  if (nt != StreamMode::kNone) _mm_sfence();
  _mm256_storeu_pd(lo, vlo0);
  _mm256_storeu_pd(lo + 4, vlo1);
  _mm256_storeu_pd(hi, vhi0);
  _mm256_storeu_pd(hi + 4, vhi1);
  for (; i < end; ++i) {
    const double* row = pts + i * in_dims;
    double acc[8] = {};
    for (std::size_t k = 0; k < in_dims; ++k) {
      const double xi = row[k];
      if (xi == 0.0) continue;
      const double* ar = a + k * 8;
      for (int j = 0; j < 8; ++j) acc[j] += xi * ar[j];
    }
    double* dst = out + i * 8;
    for (int j = 0; j < 8; ++j) {
      dst[j] = acc[j];
      lo[j] = std::min(lo[j], acc[j]);
      hi[j] = std::max(hi[j], acc[j]);
    }
  }
}

// Pass B, width 4: vectorized key computation with direct stores, then a
// separate scalar accumulation loop (the scatter increments cannot
// vectorize, so keeping them out of the SIMD loop lets it stay branch-free).
// Alternating rows between two count replicas (c1 != nullptr) breaks the
// store-to-load forwarding chains that clustered inputs create when
// consecutive rows land in the same bin; the replicas hold integer-valued
// doubles, so folding them afterwards sums exactly.
void key_bin_rows_avx2_rp4(const double* proj, const BinScale* s,
                           std::uint32_t* keys, double* c0, double* c1,
                           std::size_t bins, std::size_t begin,
                           std::size_t end) {
  const __m256d lo = _mm256_set_pd(s[3].lo, s[2].lo, s[1].lo, s[0].lo);
  const __m256d hi = _mm256_set_pd(s[3].hi, s[2].hi, s[1].hi, s[0].hi);
  const __m256d den = _mm256_set_pd(s[3].den, s[2].den, s[1].den, s[0].den);
  const __m256d dbins =
      _mm256_set_pd(s[3].dbins, s[2].dbins, s[1].dbins, s[0].dbins);
  const __m256d dlast =
      _mm256_set_pd(s[3].dlast, s[2].dlast, s[1].dlast, s[0].dlast);
  const __m128i last = _mm_set_epi32(
      static_cast<int>(s[3].last), static_cast<int>(s[2].last),
      static_cast<int>(s[1].last), static_cast<int>(s[0].last));
  const __m256d zero = _mm256_setzero_pd();
  // Blocked so the key rows written by the SIMD loop are still cached when
  // the accumulation loop reads them back (a chunk-sized split would stream
  // the whole key table to memory and re-read it).
  constexpr std::size_t kBlock = 4096;
  for (std::size_t bs = begin; bs < end; bs += kBlock) {
    const std::size_t bend = std::min(bs + kBlock, end);
    for (std::size_t i = bs; i < bend; ++i) {
      const __m256d x = _mm256_loadu_pd(proj + i * 4);
      const __m256d t = _mm256_div_pd(_mm256_sub_pd(x, lo), den);
      __m256d p = _mm256_mul_pd(t, dbins);
      p = _mm256_max_pd(zero, p);   // p < 0 ? 0 : p
      p = _mm256_min_pd(dlast, p);  // p > dlast ? dlast : p
      __m128i b = _mm256_cvttpd_epi32(p);
      const __m128i m_le = mask64_to_mask32(_mm256_cmp_pd(x, lo, _CMP_LE_OQ));
      const __m128i m_ge = mask64_to_mask32(_mm256_cmp_pd(x, hi, _CMP_GE_OQ));
      b = _mm_andnot_si128(m_le, b);       // x <= lo -> bin 0
      b = _mm_blendv_epi8(b, last, m_ge);  // x >= hi -> last bin
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i * 4), b);
    }
    for (std::size_t i = bs; i < bend; ++i) {
      const std::uint32_t* krow = keys + i * 4;
      double* c = (c1 != nullptr && (i & 1)) ? c1 : c0;
      for (int j = 0; j < 4; ++j) {
        c[static_cast<std::size_t>(j) * bins + krow[j]] += 1.0;
      }
    }
  }
}

void key_bin_rows_avx2_rp8(const double* proj, const BinScale* s,
                           std::uint32_t* keys, double* c0, double* c1,
                           std::size_t bins, std::size_t begin,
                           std::size_t end) {
  const __m256d lo0 = _mm256_set_pd(s[3].lo, s[2].lo, s[1].lo, s[0].lo);
  const __m256d lo1 = _mm256_set_pd(s[7].lo, s[6].lo, s[5].lo, s[4].lo);
  const __m256d hi0 = _mm256_set_pd(s[3].hi, s[2].hi, s[1].hi, s[0].hi);
  const __m256d hi1 = _mm256_set_pd(s[7].hi, s[6].hi, s[5].hi, s[4].hi);
  const __m256d den0 = _mm256_set_pd(s[3].den, s[2].den, s[1].den, s[0].den);
  const __m256d den1 = _mm256_set_pd(s[7].den, s[6].den, s[5].den, s[4].den);
  const __m256d dbins0 =
      _mm256_set_pd(s[3].dbins, s[2].dbins, s[1].dbins, s[0].dbins);
  const __m256d dbins1 =
      _mm256_set_pd(s[7].dbins, s[6].dbins, s[5].dbins, s[4].dbins);
  const __m256d dlast0 =
      _mm256_set_pd(s[3].dlast, s[2].dlast, s[1].dlast, s[0].dlast);
  const __m256d dlast1 =
      _mm256_set_pd(s[7].dlast, s[6].dlast, s[5].dlast, s[4].dlast);
  const __m128i last0 = _mm_set_epi32(
      static_cast<int>(s[3].last), static_cast<int>(s[2].last),
      static_cast<int>(s[1].last), static_cast<int>(s[0].last));
  const __m128i last1 = _mm_set_epi32(
      static_cast<int>(s[7].last), static_cast<int>(s[6].last),
      static_cast<int>(s[5].last), static_cast<int>(s[4].last));
  const __m256d zero = _mm256_setzero_pd();
  constexpr std::size_t kBlock = 2048;
  for (std::size_t bs = begin; bs < end; bs += kBlock) {
    const std::size_t bend = std::min(bs + kBlock, end);
    for (std::size_t i = bs; i < bend; ++i) {
      const __m256d x0 = _mm256_loadu_pd(proj + i * 8);
      const __m256d x1 = _mm256_loadu_pd(proj + i * 8 + 4);
      const __m256d t0 = _mm256_div_pd(_mm256_sub_pd(x0, lo0), den0);
      const __m256d t1 = _mm256_div_pd(_mm256_sub_pd(x1, lo1), den1);
      __m256d p0 = _mm256_mul_pd(t0, dbins0);
      __m256d p1 = _mm256_mul_pd(t1, dbins1);
      p0 = _mm256_max_pd(zero, p0);
      p1 = _mm256_max_pd(zero, p1);
      p0 = _mm256_min_pd(dlast0, p0);
      p1 = _mm256_min_pd(dlast1, p1);
      __m128i b0 = _mm256_cvttpd_epi32(p0);
      __m128i b1 = _mm256_cvttpd_epi32(p1);
      b0 = _mm_andnot_si128(
          mask64_to_mask32(_mm256_cmp_pd(x0, lo0, _CMP_LE_OQ)), b0);
      b1 = _mm_andnot_si128(
          mask64_to_mask32(_mm256_cmp_pd(x1, lo1, _CMP_LE_OQ)), b1);
      b0 = _mm_blendv_epi8(
          b0, last0, mask64_to_mask32(_mm256_cmp_pd(x0, hi0, _CMP_GE_OQ)));
      b1 = _mm_blendv_epi8(
          b1, last1, mask64_to_mask32(_mm256_cmp_pd(x1, hi1, _CMP_GE_OQ)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i * 8), b0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i * 8 + 4), b1);
    }
    for (std::size_t i = bs; i < bend; ++i) {
      const std::uint32_t* krow = keys + i * 8;
      double* c = (c1 != nullptr && (i & 1)) ? c1 : c0;
      for (int j = 0; j < 8; ++j) {
        c[static_cast<std::size_t>(j) * bins + krow[j]] += 1.0;
      }
    }
  }
}

#endif  // __AVX2__

void key_bin_rows_generic(const double* proj, std::size_t rp,
                          const BinScale* scales, std::uint32_t* keys,
                          double* counts, std::size_t bins, std::size_t begin,
                          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const double* row = proj + i * rp;
    std::uint32_t* krow = keys + i * rp;
    for (std::size_t j = 0; j < rp; ++j) {
      krow[j] = fused_key(row[j], scales[j]);
    }
    for (std::size_t j = 0; j < rp; ++j) {
      counts[j * bins + krow[j]] += 1.0;
    }
  }
}

}  // namespace

BinScale make_bin_scale(const Range& range, int d_max) {
  KB2_CHECK_MSG(d_max >= 1 && d_max <= 24, "d_max " << d_max
                                                    << " out of [1, 24]");
  KB2_CHECK_MSG(range.hi > range.lo, "empty key range");
  const auto bins = std::uint32_t{1} << static_cast<unsigned>(d_max);
  BinScale s;
  s.lo = range.lo;
  s.hi = range.hi;
  s.den = range.hi - range.lo;
  s.dbins = static_cast<double>(bins);
  s.last = bins - 1;
  s.dlast = static_cast<double>(bins - 1);
  return s;
}

const Matrix& fused_project_envelope(const Matrix& local_points,
                                     const Matrix& projection,
                                     std::size_t dims, FusedWorkspace& ws) {
  const bool identity = projection.empty();
  const std::size_t rows = local_points.rows();
  if (identity) {
    KB2_CHECK_MSG(rows == 0 || local_points.cols() == dims,
                  "identity projection dims mismatch: " << local_points.cols()
                                                        << " vs " << dims);
  } else {
    KB2_CHECK_MSG(projection.cols() == dims,
                  "projection dims mismatch: " << projection.cols() << " vs "
                                               << dims);
    KB2_CHECK_MSG(rows == 0 || local_points.cols() == projection.rows(),
                  "projection shape mismatch: " << local_points.cols()
                                                << " vs " << projection.rows());
    ws.projected.reshape(rows, dims);
  }
  const Matrix& out = identity ? local_points : ws.projected;

  ws.env_lo.assign(dims, std::numeric_limits<double>::infinity());
  ws.env_hi.assign(dims, -std::numeric_limits<double>::infinity());
  if (rows == 0) return out;

  const std::size_t max_chunks = std::max<std::size_t>(1, global_pool().size());
  if (ws.chunk_envelopes.size() < max_chunks) {
    ws.chunk_envelopes.resize(max_chunks);
  }
  std::atomic<std::size_t> cursor{0};

  const double* pts = local_points.flat().data();
  const std::size_t in_dims = local_points.cols();
  const double* a = projection.flat().data();
  double* proj_out = identity ? nullptr : ws.projected.flat().data();

  global_pool().parallel_for(rows, kProjectGrain, [&](std::size_t begin,
                                                      std::size_t end) {
    auto& env = ws.chunk_envelopes[cursor.fetch_add(1)];
    env.begin = begin;
    env.lo.assign(dims, std::numeric_limits<double>::infinity());
    env.hi.assign(dims, -std::numeric_limits<double>::infinity());
    double* lo = env.lo.data();
    double* hi = env.hi.data();
    if (identity) {
      for (std::size_t i = begin; i < end; ++i) {
        const double* row = pts + i * in_dims;
        for (std::size_t j = 0; j < dims; ++j) {
          lo[j] = std::min(lo[j], row[j]);
          hi[j] = std::max(hi[j], row[j]);
        }
      }
      return;
    }
    switch (dims) {
      case 2: project_envelope_rows<2>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      case 3: project_envelope_rows<3>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      case 4:
#if defined(__AVX2__)
        project_envelope_rows_avx2_rp4(pts, in_dims, a, proj_out, begin, end, lo, hi);
#else
        project_envelope_rows<4>(pts, in_dims, a, proj_out, begin, end, lo, hi);
#endif
        break;
      case 5: project_envelope_rows<5>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      case 6: project_envelope_rows<6>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      case 7: project_envelope_rows<7>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      case 8:
#if defined(__AVX2__)
        project_envelope_rows_avx2_rp8(pts, in_dims, a, proj_out, begin, end, lo, hi);
#else
        project_envelope_rows<8>(pts, in_dims, a, proj_out, begin, end, lo, hi);
#endif
        break;
      case 9: project_envelope_rows<9>(pts, in_dims, a, proj_out, begin, end, lo, hi); break;
      default:
        project_envelope_rows_generic(pts, in_dims, dims, a, proj_out, begin,
                                      end, lo, hi);
    }
  });

  // Merge chunk envelopes in row order: min/max keep the first of equal
  // values, so an ordered fold of ordered folds reproduces the sequential
  // scan bit-for-bit (signed zeros included).
  const std::size_t used = std::min(cursor.load(), max_chunks);
  std::sort(ws.chunk_envelopes.begin(),
            ws.chunk_envelopes.begin() + static_cast<std::ptrdiff_t>(used),
            [](const auto& a, const auto& b) { return a.begin < b.begin; });
  for (std::size_t c = 0; c < used; ++c) {
    const auto& env = ws.chunk_envelopes[c];
    for (std::size_t j = 0; j < dims; ++j) {
      ws.env_lo[j] = std::min(ws.env_lo[j], env.lo[j]);
      ws.env_hi[j] = std::max(ws.env_hi[j], env.hi[j]);
    }
  }
  return out;
}

std::vector<stats::HierarchicalHistogram> fused_key_bin(
    const Matrix& projected, const std::vector<Range>& ranges, int d_max,
    FusedWorkspace& ws) {
  const std::size_t dims = projected.cols();
  const std::size_t rows = projected.rows();
  KB2_CHECK_MSG(ranges.size() == dims, "ranges size " << ranges.size()
                                                      << " != dims " << dims);
  const std::size_t bins = stats::HierarchicalHistogram::bins_at(d_max);

  ws.scales.resize(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    ws.scales[j] = make_bin_scale(ranges[j], d_max);
  }
  ws.keys.reshape(rows, dims, d_max);

  const std::size_t max_shards = std::max<std::size_t>(1, global_pool().size());
  if (ws.shards.size() < max_shards) ws.shards.resize(max_shards);
  std::atomic<std::size_t> cursor{0};

  const BinScale* scales = ws.scales.data();
  const double* proj = projected.flat().data();
  std::uint32_t* keys_out = rows > 0 ? &ws.keys.at(0, 0) : nullptr;
  // Two count replicas per shard break the store-to-load chains that
  // clustered data creates when consecutive rows hit the same bin; capped so
  // deep histograms do not double a large allocation.
  const bool dual = dims * bins <= (std::size_t{1} << 20);
  global_pool().parallel_for(rows, kBinGrain, [&](std::size_t begin,
                                                  std::size_t end) {
    auto& shard = ws.shards[cursor.fetch_add(1)];
    shard.assign(dims * bins * (dual ? 2 : 1), 0.0);
    double* counts = shard.data();
    double* counts2 = dual ? counts + dims * bins : nullptr;
    (void)counts2;
    switch (dims) {
      case 2: key_bin_rows<2>(proj, scales, keys_out, counts, bins, begin, end); break;
      case 3: key_bin_rows<3>(proj, scales, keys_out, counts, bins, begin, end); break;
      case 4:
#if defined(__AVX2__)
        key_bin_rows_avx2_rp4(proj, scales, keys_out, counts, counts2, bins,
                              begin, end);
#else
        key_bin_rows<4>(proj, scales, keys_out, counts, bins, begin, end);
#endif
        break;
      case 5: key_bin_rows<5>(proj, scales, keys_out, counts, bins, begin, end); break;
      case 6: key_bin_rows<6>(proj, scales, keys_out, counts, bins, begin, end); break;
      case 7: key_bin_rows<7>(proj, scales, keys_out, counts, bins, begin, end); break;
      case 8:
#if defined(__AVX2__)
        key_bin_rows_avx2_rp8(proj, scales, keys_out, counts, counts2, bins,
                              begin, end);
#else
        key_bin_rows<8>(proj, scales, keys_out, counts, bins, begin, end);
#endif
        break;
      case 9: key_bin_rows<9>(proj, scales, keys_out, counts, bins, begin, end); break;
      default:
        key_bin_rows_generic(proj, dims, scales, keys_out, counts, bins,
                             begin, end);
    }
    if (dual) {  // fold the second replica back in (exact: integer counts)
      const std::size_t n = dims * bins;
      for (std::size_t k = 0; k < n; ++k) counts[k] += counts[n + k];
    }
  });

  // Pairwise tree merge of the claimed shards. Disjoint targets per task, so
  // no locks; counts are integer-valued doubles, so any merge order sums
  // exactly (bit-identical to the staged per-dimension scan).
  std::size_t used = std::min(cursor.load(), max_shards);
  if (used == 0) {
    ws.shards[0].assign(dims * bins, 0.0);
    used = 1;
  }
  for (std::size_t gap = 1; gap < used; gap <<= 1) {
    const std::size_t pairs = (used - gap + 2 * gap - 1) / (2 * gap);
    global_pool().parallel_for(pairs, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        const std::size_t dst = p * 2 * gap;
        const std::size_t src = dst + gap;
        if (src >= used) continue;
        double* a = ws.shards[dst].data();
        const double* b = ws.shards[src].data();
        for (std::size_t k = 0; k < dims * bins; ++k) a[k] += b[k];
      }
    });
  }

  std::vector<stats::HierarchicalHistogram> hists;
  hists.reserve(dims);
  const std::span<const double> merged(ws.shards[0]);
  for (std::size_t j = 0; j < dims; ++j) {
    hists.emplace_back(ranges[j].lo, ranges[j].hi, d_max);
    hists[j].set_deepest_counts(merged.subspan(j * bins, bins));
  }
  return hists;
}

}  // namespace keybin2::core
