#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite.
#
#   tools/check_tier1.sh           # full suite (what CI runs)
#   tools/check_tier1.sh --quick   # skip suites labelled `slow` (ctest -LE slow)
#   tools/check_tier1.sh --tsan    # ThreadSanitizer build, comm/fault suites only
#   tools/check_tier1.sh --asan    # AddressSanitizer build, comm/fault suites only
#
# The sanitizer modes build into their own directories (build-tsan/build-asan)
# so they never dirty the primary build, and run only the `comm`-labelled
# suites (thread_comm, fault injection, resilience soak) — the lock-heavy code
# where a sanitizer earns its ~10x slowdown.
#
# Extra arguments after the flags are forwarded to ctest.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"

sanitize=""
ctest_args=()
for arg in "$@"; do
  case "${arg}" in
    --quick) ctest_args+=(-LE slow) ;;
    --tsan) sanitize="thread" ;;
    --asan) sanitize="address" ;;
    *) ctest_args+=("${arg}") ;;
  esac
done

cmake_args=()
if [[ "${sanitize}" == "thread" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"
  cmake_args+=(-DKB2_SANITIZE=thread)
  ctest_args+=(-L comm)
elif [[ "${sanitize}" == "address" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-asan}"
  cmake_args+=(-DKB2_SANITIZE=address)
  ctest_args+=(-L comm)
fi

cmake -B "${build_dir}" -S "${repo_root}" "${cmake_args[@]}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" \
  "${ctest_args[@]}"
