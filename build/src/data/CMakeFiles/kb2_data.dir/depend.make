# Empty dependencies file for kb2_data.
# This may be replaced when dependencies are built.
