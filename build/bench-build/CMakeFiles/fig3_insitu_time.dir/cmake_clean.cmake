file(REMOVE_RECURSE
  "../bench/fig3_insitu_time"
  "../bench/fig3_insitu_time.pdb"
  "CMakeFiles/fig3_insitu_time.dir/fig3_insitu_time.cpp.o"
  "CMakeFiles/fig3_insitu_time.dir/fig3_insitu_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_insitu_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
