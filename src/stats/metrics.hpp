// Clustering quality metrics (paper §4).
//
// The paper evaluates clustering as a classification problem over point
// pairs: precision = tp/(tp+fp), recall = tp/(tp+fn) where a true positive
// is a pair of points placed in the same predicted cluster that also share a
// ground-truth class. All quantities are computed in O(#distinct label
// pairs) from the contingency table — never by enumerating the M^2 pairs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace keybin2::stats {

struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::uint64_t true_positive_pairs = 0;
  std::uint64_t predicted_pairs = 0;  // tp + fp
  std::uint64_t truth_pairs = 0;      // tp + fn
};

/// Pairwise precision/recall/F1 of `predicted` against `truth`
/// (same length, any integer label alphabet).
PairwiseScores pairwise_scores(std::span<const int> predicted,
                               std::span<const int> truth);

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
double adjusted_rand_index(std::span<const int> predicted,
                           std::span<const int> truth);

/// Purity: fraction of points whose predicted cluster's majority class is
/// their own class.
double purity(std::span<const int> predicted, std::span<const int> truth);

/// Number of distinct labels in a labelling.
std::size_t distinct_labels(std::span<const int> labels);

/// Contingency table counts[(pred, truth)] — exposed for tests.
std::map<std::pair<int, int>, std::uint64_t> contingency_table(
    std::span<const int> predicted, std::span<const int> truth);

}  // namespace keybin2::stats
