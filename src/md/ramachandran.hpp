// Ramachandran secondary-structure classification (paper §5.1).
//
// "Based on the constraints of the torsion angles (phi, psi, and omega) as
// described by the Ramachandran [plot], we can associate each amino acid
// residue with one of six types of secondary structures: alpha-helix,
// beta-strand, Polyproline PII-helix, gamma'-turn, gamma-turn, and
// cis-peptide bonds." The regions below are standard Ramachandran boxes;
// omega near 0 deg marks the rare cis case, near 180 deg the trans case.
#pragma once

#include <string_view>

namespace keybin2::md {

enum class SecondaryStructure : int {
  kAlphaHelix = 0,
  kBetaStrand = 1,
  kPPIIHelix = 2,
  kGammaPrimeTurn = 3,
  kGammaTurn = 4,
  kCisPeptide = 5,
  kOther = 6,
};

inline constexpr int kSecondaryStructureCount = 7;

/// Classify one residue's (phi, psi, omega) torsion triple (degrees,
/// wrapped to (-180, 180]). Cis-peptide (|omega| < 30 deg) takes precedence;
/// conformations outside every canonical box are kOther.
SecondaryStructure classify(double phi_deg, double psi_deg, double omega_deg);

/// Canonical (phi, psi, omega) centre of a secondary-structure region — the
/// synthetic trajectory generator emits angles around these centres, which
/// guarantees generator/classifier agreement.
struct TorsionTriple {
  double phi = 0.0, psi = 0.0, omega = 180.0;
};
TorsionTriple canonical_torsions(SecondaryStructure ss);

std::string_view to_string(SecondaryStructure ss);

}  // namespace keybin2::md
