// End-to-end tests of the keybin2 command-line tool: generate a dataset,
// cluster it with each algorithm, and check outputs and exit codes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "data/io.hpp"
#include "stats/metrics.hpp"
#include "test_util.hpp"

namespace {

#ifndef KB2_CLI_PATH
#error "KB2_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string cmd = std::string(KB2_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  CommandResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  while (fgets(buf.data(), buf.size(), pipe)) result.output += buf.data();
  result.exit_code = pclose(pipe);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_path_ = tmp_.make("kb2_cli_test_data", ".csv");
    out_path_ = tmp_.make("kb2_cli_test_out", ".csv");
    const auto gen = run("generate " + data_path_ +
                         " --points 1500 --dims 8 --k 3 --seed 5");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }

  keybin2::testutil::TempPaths tmp_;
  std::string data_path_, out_path_;
};

TEST_F(CliTest, GenerateProducesLabelledCsv) {
  const auto d = keybin2::data::read_csv(data_path_);
  EXPECT_EQ(d.size(), 1500u);
  EXPECT_EQ(d.dims(), 8u);
  EXPECT_TRUE(d.labelled());
}

TEST_F(CliTest, ClusterKeyBin2WritesAssignments) {
  const auto r = run("cluster " + data_path_ + " --out " + out_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("keybin2:"), std::string::npos);
  EXPECT_NE(r.output.find("F1"), std::string::npos);

  const auto d = keybin2::data::read_csv(data_path_);
  const auto out = keybin2::data::read_csv(out_path_);
  ASSERT_EQ(out.size(), d.size());
  ASSERT_TRUE(out.labelled());
  // The written assignments must actually cluster the data.
  EXPECT_GT(keybin2::stats::pairwise_scores(out.labels, d.labels).f1, 0.8);
}

TEST_F(CliTest, EveryAlgorithmRuns) {
  for (const char* algo : {"kmeans", "xmeans", "dbscan"}) {
    const auto r = run("cluster " + data_path_ + " --algo " + algo +
                       " --k 3");
    EXPECT_EQ(r.exit_code, 0) << algo << ": " << r.output;
    EXPECT_NE(r.output.find(algo), std::string::npos) << r.output;
  }
}

TEST_F(CliTest, UnknownAlgorithmFails) {
  const auto r = run("cluster " + data_path_ + " --algo nonsense");
  EXPECT_NE(r.exit_code, 0);
}

TEST_F(CliTest, MissingInputFileFails) {
  const auto r = run("cluster /tmp/kb2_does_not_exist_42.csv");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

TEST_F(CliTest, BadUsageFails) {
  EXPECT_NE(run("frobnicate x").exit_code, 0);
  EXPECT_NE(run("cluster").exit_code, 0);
}

TEST_F(CliTest, DistributedRunAcceptsFaultToleranceKnobs) {
  const auto r = run("cluster " + data_path_ +
                     " --ranks 2 --timeout 30 --retries 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("on 2 ranks"), std::string::npos) << r.output;
}

TEST_F(CliTest, TraceJsonExportsLoadableRankTimelines) {
  const std::string trace_path = tmp_.make("kb2_cli_test_trace", ".json");
  const std::string log_path = tmp_.make("kb2_cli_test_events", ".jsonl");
  const auto r = run("cluster " + data_path_ +
                     " --ranks 4 --trace --trace-json " + trace_path +
                     " --log " + log_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // --trace printed the per-stage table, the metrics counters, and the
  // rank-by-rank traffic heatmap.
  EXPECT_NE(r.output.find("stage"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("points_binned"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("comm heatmap"), std::string::npos) << r.output;

  // The exported trace is one JSON document with all four rank timelines
  // and at least one completed send->recv flow pair.
  std::string trace;
  {
    std::FILE* f = std::fopen(trace_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::array<char, 4096> chunk{};
    std::size_t n = 0;
    while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
      trace.append(chunk.data(), n);
    }
    std::fclose(f);
  }
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  auto count = [&](const std::string& needle) {
    std::size_t c = 0;
    for (auto pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + needle.size())) {
      ++c;
    }
    return c;
  };
  // process_name + thread_name metadata per rank lane.
  EXPECT_EQ(count("\"ph\":\"M\""), 8u);
  EXPECT_GE(count("\"ph\":\"X\""), 4u);
  EXPECT_GE(count("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count("\"ph\":\"s\""), count("\"ph\":\"f\""));

  // A clean run emits no fault-path events, but --log must leave a (possibly
  // empty) file rather than failing silently.
  std::FILE* lf = std::fopen(log_path.c_str(), "rb");
  EXPECT_NE(lf, nullptr);
  if (lf) std::fclose(lf);
}

#ifdef __linux__
TEST_F(CliTest, ProcessBackendMatchesThreadBackendEndToEnd) {
  // Same input, both transports: identical assignments, and the merged
  // trace artifacts (per-stage table, Chrome trace, event log) must come
  // out of the forked children just like they do from threads.
  const std::string thread_out = tmp_.make("kb2_cli_test_thr", ".csv");
  const std::string trace_path = tmp_.make("kb2_cli_test_ptrace", ".json");
  const std::string log_path = tmp_.make("kb2_cli_test_pevents", ".jsonl");
  const auto t = run("cluster " + data_path_ +
                     " --ranks 4 --backend thread --out " + thread_out);
  ASSERT_EQ(t.exit_code, 0) << t.output;

  const auto p = run("cluster " + data_path_ +
                     " --ranks 4 --backend proc --trace --trace-json " +
                     trace_path + " --log " + log_path + " --out " +
                     out_path_);
  ASSERT_EQ(p.exit_code, 0) << p.output;
  EXPECT_NE(p.output.find("on 4 ranks (process backend)"),
            std::string::npos)
      << p.output;
  EXPECT_NE(p.output.find("stage"), std::string::npos) << p.output;
  EXPECT_NE(p.output.find("comm heatmap"), std::string::npos) << p.output;

  const auto thread_labels = keybin2::data::read_csv(thread_out);
  const auto proc_labels = keybin2::data::read_csv(out_path_);
  EXPECT_EQ(proc_labels.labels, thread_labels.labels)
      << "transport leaked into the math";

  // The exported trace has all four rank lanes with paired flows, exactly
  // like the thread backend's (kb2_analyze parses this shape).
  std::string trace;
  {
    std::FILE* f = std::fopen(trace_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::array<char, 4096> chunk{};
    std::size_t n = 0;
    while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
      trace.append(chunk.data(), n);
    }
    std::fclose(f);
  }
  auto count = [&](const std::string& needle) {
    std::size_t c = 0;
    for (auto pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + needle.size())) {
      ++c;
    }
    return c;
  };
  EXPECT_EQ(count("\"ph\":\"M\""), 8u);
  EXPECT_GE(count("\"ph\":\"X\""), 4u);
  EXPECT_GE(count("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count("\"ph\":\"s\""), count("\"ph\":\"f\""));

  // --log left a (possibly empty) file behind, truncated by the parent and
  // appended by the children.
  std::FILE* lf = std::fopen(log_path.c_str(), "rb");
  EXPECT_NE(lf, nullptr);
  if (lf) std::fclose(lf);
}
#endif  // __linux__

class CliFitFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bin_path_ = tmp_.make("kb2_cli_test_bin", ".bin");
    labels_path_ = tmp_.make("kb2_cli_test_bin_labels", ".bin");
    ckpt_path_ = tmp_.make("kb2_cli_test_ckpt", ".bin");
    const auto gen = run("generate " + bin_path_ +
                         " --points 2000 --dims 8 --k 3 --seed 5 --binary");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }

  keybin2::testutil::TempPaths tmp_;
  std::string bin_path_, labels_path_, ckpt_path_;
};

TEST_F(CliFitFileTest, FitFileClustersABinaryDataset) {
  const auto r = run("fit-file " + bin_path_ + " --out " + labels_path_ +
                     " --chunk 256");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("keybin2 fit-file:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2000 points"), std::string::npos) << r.output;
}

TEST_F(CliFitFileTest, CheckpointPausesAndResumesAcrossInvocations) {
  // A budget-limited first invocation "dies" partway through pass 1 …
  const std::string common = "fit-file " + bin_path_ + " --out " +
                             labels_path_ + " --chunk 256 --checkpoint " +
                             ckpt_path_;
  const auto paused = run(common + " --budget-chunks 3");
  EXPECT_EQ(paused.exit_code, 0) << paused.output;
  EXPECT_NE(paused.output.find("paused"), std::string::npos) << paused.output;
  {
    std::FILE* f = std::fopen(ckpt_path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);  // resumable state left behind
    std::fclose(f);
  }

  // … and rerunning the identical command finishes the job.
  const auto resumed = run(common);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("keybin2 fit-file:"), std::string::npos)
      << resumed.output;
  std::FILE* gone = std::fopen(ckpt_path_.c_str(), "rb");
  EXPECT_EQ(gone, nullptr);  // checkpoint consumed on success
  if (gone) std::fclose(gone);
}

}  // namespace
