file(REMOVE_RECURSE
  "../bench/table2_scaling"
  "../bench/table2_scaling.pdb"
  "CMakeFiles/table2_scaling.dir/table2_scaling.cpp.o"
  "CMakeFiles/table2_scaling.dir/table2_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
