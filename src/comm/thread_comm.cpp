#include "comm/thread_comm.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"

namespace keybin2::comm {

ThreadCommHub::ThreadCommHub(int size) {
  KB2_CHECK_MSG(size >= 1, "hub size must be >= 1, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  traffic_.resize(static_cast<std::size_t>(size));
  rank_state_ =
      std::make_unique<std::atomic<RankState>[]>(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) rank_state_[i].store(RankState::kLive);
  fail_reasons_.resize(static_cast<std::size_t>(size));
}

ThreadComm ThreadCommHub::comm(int rank) {
  KB2_CHECK_MSG(rank >= 0 && rank < size(),
                "rank " << rank << " out of hub size " << size());
  return ThreadComm(this, rank);
}

TrafficStats ThreadCommHub::stats(int rank) const {
  std::lock_guard lk(traffic_mu_);
  return traffic_[static_cast<std::size_t>(rank)];
}

int ThreadCommHub::live_count_locked() const {
  int live = 0;
  for (int r = 0; r < size(); ++r) {
    if (rank_state_[r].load() == RankState::kLive) ++live;
  }
  return live;
}

void ThreadCommHub::wake_everyone() {
  for (auto& box : mailboxes_) {
    std::lock_guard lk(box->mu);
    box->cv.notify_all();
  }
}

void ThreadCommHub::throw_rank_failed(const char* op, int self, int peer,
                                      int tag) {
  std::string msg;
  {
    std::lock_guard lk(state_mu_);
    msg = rank_failed_message(
        op, self, peer, tag, size(),
        [&](int r) { return rank_state_[r].load(); },
        [&](int r) { return fail_reasons_[static_cast<std::size_t>(r)]; });
  }
  throw RankFailedError(msg);
}

void ThreadCommHub::mark_failed(int rank, const std::string& reason) {
  {
    std::lock_guard lk(state_mu_);
    if (rank_state_[rank].load() != RankState::kLive) return;
    rank_state_[rank].store(RankState::kFailed);
    fail_reasons_[static_cast<std::size_t>(rank)] = reason;
    unacked_failures_.fetch_add(1);
    // The dead rank will never arrive at a pending agreement; re-check the
    // quorum with it removed from the live count.
    maybe_finalize_shrink_locked();
    barrier_cv_.notify_all();
    shrink_cv_.notify_all();
  }
  wake_everyone();
}

void ThreadCommHub::mark_departed(int rank) {
  {
    std::lock_guard lk(state_mu_);
    if (rank_state_[rank].load() != RankState::kLive) return;
    rank_state_[rank].store(RankState::kDeparted);
    maybe_finalize_shrink_locked();
    barrier_cv_.notify_all();
    shrink_cv_.notify_all();
  }
  wake_everyone();
}

std::vector<int> ThreadCommHub::failed_ranks() const {
  std::lock_guard lk(state_mu_);
  std::vector<int> out;
  for (int r = 0; r < size(); ++r) {
    if (rank_state_[r].load() == RankState::kFailed) out.push_back(r);
  }
  return out;
}

void ThreadCommHub::poison(const std::string& reason) {
  for (int r = 0; r < size(); ++r) mark_failed(r, reason);
}

ThreadCommHub::SendInfo ThreadCommHub::push(int src, int dest, int tag,
                                            std::span<const std::byte> data,
                                            CommProbe* probe) {
  if (shrink_pending_.load()) {
    throw RecoveryError(abandoned_message(src, "send", dest, tag));
  }
  const auto dest_state = rank_state_[dest].load();
  if (dest_state == RankState::kFailed) {
    throw_rank_failed("send", src, dest, tag);
  }
  if (dest_state == RankState::kDeparted) {
    throw RankFailedError(send_departed_message(src, dest, tag));
  }

  SendInfo info;
  info.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lk(box.mu);
    // Reuse a recycled delivery buffer when one is available: the capacity
    // survives the pool round-trip, so steady-state collectives stop paying
    // one allocation per message.
    auto buf = box.stash.take_buffer();
    buf.assign(data.begin(), data.end());
    box.stash.push(src, tag, Message{std::move(buf), info.flow_id});
    if (probe != nullptr) {
      // Total messages parked in the destination mailbox across all (src,
      // tag) channels — the backlog a slow consumer is accumulating.
      info.queue_depth = box.stash.total_depth();
      // Fire while the lock is held: the receiver cannot pop this message
      // until we release box.mu, so the send timestamp the probe records
      // precedes the matching recv timestamp on the shared clock.
      probe->on_send(src, dest, tag, data.size(), info.flow_id,
                     info.queue_depth);
    }
  }
  box.cv.notify_all();
  {
    std::lock_guard lk(traffic_mu_);
    auto& t = traffic_[static_cast<std::size_t>(src)];
    ++t.messages_sent;
    t.bytes_sent += data.size();
  }
  return info;
}

void ThreadCommHub::recycle(int rank, std::vector<std::byte>&& buf) {
  auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lk(box.mu);
  box.stash.recycle(std::move(buf));
}

std::vector<std::byte> ThreadCommHub::pop(int self, int src, int tag,
                                          double timeout_seconds,
                                          std::uint64_t* flow_id_out) {
  auto& box = *mailboxes_[static_cast<std::size_t>(self)];
  const auto start = CommClock::now();
  std::unique_lock lk(box.mu);

  for (;;) {
    const auto ready = [&] {
      if (shrink_pending_.load() || unacked_failures_.load() > 0 ||
          rank_state_[src].load() == RankState::kDeparted) {
        return true;
      }
      return box.stash.has_message(src, tag);
    };
    bool timed_out = false;
    if (timeout_seconds > 0.0) {
      timed_out =
          !box.cv.wait_until(lk, comm_deadline(start, timeout_seconds), ready);
    } else {
      box.cv.wait(lk, ready);
    }

    // Deliver pending messages even when the group is disturbed: in-flight
    // traffic drains; only block-forever is fatal.
    Message msg;
    if (box.stash.try_pop(src, tag, &msg)) {
      lk.unlock();
      if (flow_id_out) *flow_id_out = msg.flow_id;
      {
        std::lock_guard tlk(traffic_mu_);
        auto& t = traffic_[static_cast<std::size_t>(self)];
        ++t.messages_received;
        t.bytes_received += msg.bytes.size();
      }
      return std::move(msg.bytes);
    }

    if (shrink_pending_.load()) {
      lk.unlock();
      throw RecoveryError(abandoned_message(self, "recv", src, tag));
    }
    if (unacked_failures_.load() > 0) {
      lk.unlock();
      throw_rank_failed("recv", self, src, tag);
    }
    if (rank_state_[src].load() == RankState::kDeparted) {
      lk.unlock();
      throw RankFailedError(recv_departed_message(self, src, tag));
    }
    if (timed_out) {
      lk.unlock();
      throw_recv_timeout(self, src, tag, comm_seconds_since(start));
    }
    // A disturbance was acknowledged between the wake-up and the checks
    // above (possible but rare); go back to waiting.
  }
}

void ThreadCommHub::barrier_wait(int self, double timeout_seconds) {
  const auto start = CommClock::now();
  std::unique_lock lk(state_mu_);
  if (shrink_pending_.load()) {
    lk.unlock();
    throw RecoveryError(abandoned_message(self, "barrier", -1, -1));
  }
  // The hub barrier is a full-group collective: once any rank is dead or
  // gone it can never complete, acknowledged failure or not. (Shrunken
  // groups synchronize through SubgroupComm::barrier instead.)
  if (live_count_locked() < size()) {
    lk.unlock();
    throw_rank_failed("barrier", self, /*peer=*/-1, /*tag=*/-1);
  }

  const auto my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }

  const auto woken = [&] {
    return barrier_generation_ != my_generation || shrink_pending_.load() ||
           unacked_failures_.load() > 0;
  };
  bool timed_out = false;
  if (timeout_seconds > 0.0) {
    timed_out = !barrier_cv_.wait_until(
        lk, comm_deadline(start, timeout_seconds), woken);
  } else {
    barrier_cv_.wait(lk, woken);
  }
  if (barrier_generation_ != my_generation) return;  // barrier completed

  --barrier_count_;  // withdraw so a later barrier is not miscounted
  if (shrink_pending_.load()) {
    lk.unlock();
    throw RecoveryError(abandoned_message(self, "barrier", -1, -1));
  }
  if (unacked_failures_.load() > 0) {
    lk.unlock();
    throw_rank_failed("barrier", self, /*peer=*/-1, /*tag=*/-1);
  }
  lk.unlock();
  KB2_CHECK_MSG(timed_out, "barrier woke without progress or failure");
  throw_barrier_timeout(self, comm_seconds_since(start));
}

void ThreadCommHub::maybe_finalize_shrink_locked() {
  if (!shrink_pending_.load()) return;
  if (shrink_arrived_ < live_count_locked()) return;
  // Every live rank is inside agree_survivors(): nobody can be mid-send, so
  // after the purge below the retried protocol starts from a clean slate.
  survivors_.clear();
  for (int r = 0; r < size(); ++r) {
    if (rank_state_[r].load() == RankState::kLive) survivors_.push_back(r);
  }
  for (auto& box : mailboxes_) {
    std::lock_guard blk(box->mu);
    box->stash.clear();
  }
  unacked_failures_.store(0);
  shrink_arrived_ = 0;
  barrier_count_ = 0;  // a rank that died inside a barrier never withdrew
  shrink_pending_.store(false);
  ++shrink_generation_;
  shrink_cv_.notify_all();
}

std::vector<int> ThreadCommHub::agree_survivors(int self,
                                                double timeout_seconds) {
  const auto start = CommClock::now();
  std::unique_lock lk(state_mu_);
  if (!shrink_pending_.load()) {
    shrink_pending_.store(true);
    // Wake every blocked operation so the other live ranks converge here.
    barrier_cv_.notify_all();
    lk.unlock();
    wake_everyone();
    lk.lock();
  }

  const auto my_generation = shrink_generation_;
  ++shrink_arrived_;
  maybe_finalize_shrink_locked();
  if (shrink_generation_ == my_generation) {
    const auto done = [&] { return shrink_generation_ != my_generation; };
    bool timed_out = false;
    if (timeout_seconds > 0.0) {
      timed_out = !shrink_cv_.wait_until(
          lk, comm_deadline(start, timeout_seconds), done);
    } else {
      shrink_cv_.wait(lk, done);
    }
    if (timed_out) {
      --shrink_arrived_;  // withdraw; a retry will re-arrive
      lk.unlock();
      throw_agree_timeout(self, comm_seconds_since(start));
    }
  }
  return survivors_;
}

int ThreadComm::size() const { return hub_->size(); }

void ThreadComm::send(int dest, int tag, std::span<const std::byte> data) {
  KB2_CHECK_MSG(dest >= 0 && dest < size(),
                "send dest " << dest << " out of group size " << size());
  // Begin before the (potentially blocking) push, end only on success: an
  // exception or death mid-push leaves an unmatched begin in the flight
  // ring, which is the post-mortem's in-flight evidence.
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kSend, dest, tag, data.size());
  }
  hub_->push(rank_, dest, tag, data, probe());
  if (FlightHook* f = flight_hook()) {
    f->on_op_end(FlightHook::kSend, dest, tag, data.size());
  }
}

std::vector<std::byte> ThreadComm::recv(int src, int tag) {
  KB2_CHECK_MSG(src >= 0 && src < size(),
                "recv src " << src << " out of group size " << size());
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kRecv, src, tag, 0);
  }
  CommProbe* p = probe();
  std::vector<std::byte> data;
  if (!p) {
    data = hub_->pop(rank_, src, tag, timeout(), nullptr);
  } else {
    std::uint64_t flow = 0;
    const std::int64_t t0 = now_ns();
    data = hub_->pop(rank_, src, tag, timeout(), &flow);
    p->on_recv(rank_, src, tag, data.size(), flow, now_ns() - t0);
  }
  if (FlightHook* f = flight_hook()) {
    f->on_op_end(FlightHook::kRecv, src, tag, data.size());
  }
  return data;
}

void ThreadComm::barrier() {
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kBarrier, -1, -1, 0);
  }
  CommProbe* p = probe();
  if (!p) {
    hub_->barrier_wait(rank_, timeout());
  } else {
    const std::int64_t t0 = now_ns();
    hub_->barrier_wait(rank_, timeout());
    p->on_barrier(rank_, now_ns() - t0);
  }
  if (FlightHook* f = flight_hook()) {
    f->on_op_end(FlightHook::kBarrier, -1, -1, 0);
  }
}

TrafficStats ThreadComm::stats() const { return hub_->stats(rank_); }

void ThreadComm::recycle_buffer(std::vector<std::byte>&& buf) {
  hub_->recycle(rank_, std::move(buf));
}

std::vector<int> ThreadComm::failed_ranks() const {
  return hub_->failed_ranks();
}

std::vector<int> ThreadComm::agree_survivors() {
  if (FlightHook* f = flight_hook()) {
    f->on_op_begin(FlightHook::kAgree, -1, -1, 0);
  }
  auto survivors = hub_->agree_survivors(rank_, timeout());
  if (FlightHook* f = flight_hook()) {
    f->on_op_end(FlightHook::kAgree, -1, -1, survivors.size());
  }
  return survivors;
}

}  // namespace keybin2::comm
