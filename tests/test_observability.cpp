// Observability subsystem tests: the shared now_ns() clock, latency
// histograms, the metrics registry + collective merge (with its pinned
// seed-deterministic fingerprint), Chrome trace-event export, the JSON
// writer/validator pair, the structured event log, and Tracer::rebind
// across a SubgroupComm shrink.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "comm/launch.hpp"
#include "common/timer.hpp"
#include "runtime/context.hpp"
#include "runtime/json.hpp"
#include "runtime/log.hpp"
#include "runtime/metrics.hpp"
#include "runtime/timeline.hpp"
#include "runtime/tracer.hpp"

namespace keybin2::runtime {
namespace {

std::vector<std::byte> payload(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

TEST(NowNs, MonotoneNonDecreasing) {
  std::int64_t prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const auto t = now_ns();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(LatencyHistogram, PowerOfTwoBuckets) {
  LatencyHistogram h;
  h.record(1);     // bucket 0
  h.record(2);     // bucket 1
  h.record(3);     // bucket 1
  h.record(1024);  // bucket 10
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.min_ns(), 1);
  EXPECT_EQ(h.max_ns(), 1024);
  EXPECT_DOUBLE_EQ(h.mean_ns(), (1.0 + 2.0 + 3.0 + 1024.0) / 4.0);
}

TEST(LatencyHistogram, QuantilesClampToObservedRange) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_GE(h.quantile(0.5), h.min_ns());
  EXPECT_LE(h.quantile(0.5), h.max_ns());
  EXPECT_LE(h.quantile(0.99), h.max_ns());
  // Empty histogram: quantiles are 0, not garbage.
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, MergeSumsBuckets) {
  LatencyHistogram a, b;
  a.record(10);
  b.record(10);
  b.record(100000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_ns(), 10);
  EXPECT_EQ(a.max_ns(), 100000);
}

TEST(Json, WriterEmitsValidDocuments) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\" str\nwith\tcontrol");
  w.key("n").value(std::uint64_t{42});
  w.key("x").value(-1.5);
  w.key("flag").value(true);
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object().end_object();
  w.end_object();
  EXPECT_TRUE(json_validate(w.str()));
  EXPECT_NE(w.str().find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(w.str().find("\\n"), std::string::npos);
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_validate("{}"));
  EXPECT_TRUE(json_validate("[1, 2.5, -3e4, \"s\", true, null]"));
  EXPECT_TRUE(json_validate("  {\"a\": [{}]}  "));
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":}"));
  EXPECT_FALSE(json_validate("[1,]"));
  EXPECT_FALSE(json_validate("{} trailing"));
  EXPECT_FALSE(json_validate("'single'"));
}

TEST(Metrics, RegistryCountersAndGauges) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("events");
  m.add("events", 4);
  m.gauge_max("depth", 3.0);
  m.gauge_max("depth", 1.0);  // lower: ignored
  EXPECT_EQ(m.counters().at("events"), 5u);
  EXPECT_DOUBLE_EQ(m.gauges().at("depth"), 3.0);
  EXPECT_FALSE(m.empty());
  m.reset();
  EXPECT_TRUE(m.empty());
}

TEST(Metrics, CommRecordsFeedChannelsAndHistograms) {
  MetricsRegistry m;
  m.record_send(/*peer=*/1, /*tag=*/5, /*bytes=*/100, /*queue_depth=*/2);
  m.record_send(1, 5, 50, 7);
  m.record_recv(/*peer=*/3, /*tag=*/5, /*bytes=*/20, /*wait_ns=*/1500);
  m.record_barrier(/*wait_ns=*/300);

  const auto& out = m.sent().at({1, 5});
  EXPECT_EQ(out.messages, 2u);
  EXPECT_EQ(out.bytes, 150u);
  const auto& in = m.received().at({3, 5});
  EXPECT_EQ(in.messages, 1u);
  EXPECT_EQ(in.bytes, 20u);
  EXPECT_EQ(m.histograms().at("recv_wait").count(), 1u);
  EXPECT_EQ(m.histograms().at("barrier_wait").count(), 1u);
  EXPECT_DOUBLE_EQ(m.gauges().at("mailbox_depth"), 7.0);
}

// A scripted ring exchange whose merged traffic matrix is exactly
// predictable: every rank sends one (10 * (rank + 1))-byte message to the
// next rank on tag 9.
MetricsReport scripted_exchange_report() {
  MetricsReport out;
  comm::run_ranks(4, [&](comm::Communicator& c) {
    Context ctx(c, /*seed=*/1);
    ctx.enable_comm_metrics();
    const int next = (c.rank() + 1) % 4;
    const int prev = (c.rank() + 3) % 4;
    c.send(next, 9, payload(10 * static_cast<std::size_t>(c.rank() + 1)));
    (void)c.recv(prev, 9);
    auto report = ctx.metrics_report();
    if (c.rank() == 0) out = std::move(report);
  });
  return out;
}

TEST(Metrics, MergedChannelsPinnedForScriptedExchange) {
  const auto report = scripted_exchange_report();
  ASSERT_EQ(report.ranks, 4);
  ASSERT_EQ(report.channels.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const auto it = report.channels.find({r, (r + 1) % 4, 9});
    ASSERT_NE(it, report.channels.end()) << "missing channel from rank " << r;
    EXPECT_EQ(it->second.messages, 1u);
    EXPECT_EQ(it->second.bytes, 10u * static_cast<std::uint64_t>(r + 1));
  }
  // Every rank's recv was observed with a wait-latency sample.
  ASSERT_EQ(report.histograms.count("recv_wait"), 1u);
  EXPECT_EQ(report.histograms.at("recv_wait").count(), 4u);
  // The heatmap renders every source rank's row.
  const auto heat = report.heatmap();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(heat.find("src " + std::to_string(r)), std::string::npos);
  }
}

TEST(Metrics, DeterministicFingerprintIsBitIdenticalAcrossRuns) {
  const auto a = scripted_exchange_report();
  const auto b = scripted_exchange_report();
  ASSERT_FALSE(a.deterministic_fingerprint().empty());
  // Bit-identical: same channels, counters, and histogram counts — wall
  // times and quantiles are excluded by construction.
  EXPECT_EQ(a.deterministic_fingerprint(), b.deterministic_fingerprint());
  // Pinned: the fingerprint names the scripted channels explicitly.
  EXPECT_NE(a.deterministic_fingerprint().find("chan 0->1 user:9 msgs=1"),
            std::string::npos);
}

TEST(Metrics, ReportJsonSeparatesDeterministicFromTiming) {
  const auto report = scripted_exchange_report();
  JsonWriter w;
  report.to_json(w);
  ASSERT_TRUE(json_validate(w.str()));
  EXPECT_NE(w.str().find("\"deterministic\""), std::string::npos);
  EXPECT_NE(w.str().find("\"timing\""), std::string::npos);
  // Channel totals live in the deterministic section...
  const auto det = w.str().find("\"deterministic\"");
  const auto timing = w.str().find("\"timing\"");
  const auto channels = w.str().find("\"channels\"");
  EXPECT_GT(channels, det);
  EXPECT_LT(channels, timing);
  // ...quantiles in the timing section.
  EXPECT_GT(w.str().find("\"p99_us\""), timing);
}

TEST(Metrics, MergeOfEmptyRegistriesYieldsEmptyReport) {
  // All ranks enter the collective with untouched registries: the merge
  // must complete (it's a collective — a hang here deadlocks the job) and
  // produce a structurally empty report whose fingerprint is still a
  // stable string, not garbage.
  MetricsReport out;
  comm::run_ranks(3, [&](comm::Communicator& c) {
    MetricsRegistry empty;
    auto report = merge_metrics(empty, c);
    if (c.rank() == 0) out = std::move(report);
  });
  EXPECT_EQ(out.ranks, 3);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(out.counters.empty());
  EXPECT_TRUE(out.histograms.empty());
  EXPECT_TRUE(out.channels.empty());
  const auto fp = out.deterministic_fingerprint();
  EXPECT_EQ(fp, out.deterministic_fingerprint());
  // And formatting an empty report must not crash or emit channel rows.
  EXPECT_EQ(out.heatmap().find("src 3"), std::string::npos);
}

TEST(LatencyHistogram, SaturatedTopBucketSurvivesMerge) {
  // Values at the top of the representable range all collapse into the
  // highest reachable log-2 bucket (62: bit_width(INT64_MAX) - 1). Counts,
  // extremes, and quantile clamping must survive a merge of two such
  // saturated histograms without overflow artifacts.
  constexpr std::int64_t kHuge = std::numeric_limits<std::int64_t>::max();
  LatencyHistogram a, b;
  for (int i = 0; i < 5; ++i) a.record(kHuge);
  for (int i = 0; i < 7; ++i) b.record(kHuge - 1);
  b.record((std::int64_t{1} << 62) + 1);  // same bucket, different value
  EXPECT_EQ(a.buckets()[62], 5u);
  EXPECT_EQ(b.buckets()[62], 8u);

  a.merge(b);
  EXPECT_EQ(a.count(), 13u);
  EXPECT_EQ(a.buckets()[62], 13u);
  EXPECT_EQ(a.max_ns(), kHuge);
  EXPECT_EQ(a.min_ns(), (std::int64_t{1} << 62) + 1);
  // Quantiles clamp to the observed max instead of reporting the bucket's
  // upper edge 2^63 (which would overflow back to a wrong magnitude).
  EXPECT_LE(a.quantile(0.99), static_cast<double>(kHuge));
  EXPECT_GE(a.quantile(0.5), static_cast<double>(a.min_ns()));
  // Merging an empty histogram in either direction is the identity.
  LatencyHistogram empty;
  const auto before = a.count();
  a.merge(empty);
  EXPECT_EQ(a.count(), before);
  empty.merge(a);
  EXPECT_EQ(empty.count(), before);
  EXPECT_EQ(empty.max_ns(), kHuge);
}

TEST(Metrics, FingerprintInvariantUnderMergeOrderPermutation) {
  // merge_metrics gathers rank-by-rank, so the merged maps are built in a
  // different insertion order depending on which rank held which data. The
  // fingerprint covers counters and histogram counts (rank-agnostic
  // fields); permuting the data-to-rank assignment must not change it.
  // Channels are deliberately absent: their (src, dst, tag) keys encode
  // rank identity, so they are *expected* to move with the permutation.
  const std::vector<std::vector<std::pair<const char*, std::uint64_t>>>
      datasets = {
          {{"points_binned", 101}, {"retries", 3}},
          {{"points_binned", 202}, {"collapses", 9}},
          {{"points_binned", 303}, {"retries", 1}, {"spills", 4}},
      };
  auto fingerprint_with = [&](const std::vector<int>& assign) {
    std::string fp;
    comm::run_ranks(3, [&](comm::Communicator& c) {
      MetricsRegistry m;
      for (const auto& [name, v] :
           datasets[static_cast<std::size_t>(assign[
               static_cast<std::size_t>(c.rank())])]) {
        m.add(name, v);
      }
      // Histogram observation counts are fingerprinted too; give each
      // dataset a distinct count so a mis-merge would show.
      auto& h = m.histogram("stage_wall");
      for (std::uint64_t i = 0;
           i <= datasets[static_cast<std::size_t>(
                    assign[static_cast<std::size_t>(c.rank())])][0].second;
           i += 50) {
        h.record(static_cast<std::int64_t>(i) + 1);
      }
      auto report = merge_metrics(m, c);
      if (c.rank() == 0) fp = report.deterministic_fingerprint();
    });
    return fp;
  };

  const auto base = fingerprint_with({0, 1, 2});
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("points_binned"), std::string::npos);
  for (const auto& perm : std::vector<std::vector<int>>{
           {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}) {
    EXPECT_EQ(fingerprint_with(perm), base)
        << "fingerprint changed under assignment permutation";
  }
}

TEST(Timeline, TracerScopesBecomeSpans) {
  Timeline tl(/*rank=*/0);
  Tracer tracer;
  tracer.set_timeline(&tl);
  {
    auto outer = tracer.scope("fit");
    auto inner = tracer.scope("bin");
  }
  ASSERT_EQ(tl.spans().size(), 2u);
  // Inner closes first; both carry the full path and ordered timestamps.
  EXPECT_EQ(tl.spans()[0].name, "fit/bin");
  EXPECT_EQ(tl.spans()[1].name, "fit");
  for (const auto& s : tl.spans()) EXPECT_LE(s.start_ns, s.end_ns);
  EXPECT_LE(tl.spans()[1].start_ns, tl.spans()[0].start_ns);
}

TEST(Timeline, ChromeTraceJsonPairsFlows) {
  std::vector<Timeline> ranks;
  ranks.emplace_back(0);
  ranks.emplace_back(1);
  ranks[0].add_span("fit", 1000, 5000);
  ranks[1].add_span("fit", 1100, 5100);
  // Flow 7: sent by rank 0 at t=2000, received by rank 1 at t=2500.
  ranks[0].add_flow(7, 2000, /*start=*/true, /*peer=*/1, /*tag=*/9, 128);
  ranks[1].add_flow(7, 2500, /*start=*/false, /*peer=*/0, /*tag=*/9, 128);
  // Flow 8 has no matching recv: must be dropped, not half-emitted.
  ranks[0].add_flow(8, 3000, /*start=*/true, /*peer=*/1, /*tag=*/9, 64);
  ranks[1].add_instant("survivor_shrink", 4000);

  const auto json = chrome_trace_json(ranks);
  ASSERT_TRUE(json_validate(json));
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (auto pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  // process_name + thread_name per rank (pid = tid = rank lanes).
  EXPECT_EQ(count("\"ph\":\"M\""), 4u);
  EXPECT_EQ(count("\"ph\":\"X\""), 2u);
  EXPECT_EQ(count("\"ph\":\"s\""), 1u);  // only the completed pair
  EXPECT_EQ(count("\"ph\":\"f\""), 1u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("msg:user:9"), std::string::npos);
  // Earliest event (span at 1000ns) is shifted to ts 0.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
}

TEST(Timeline, EmptyRanksStillGetNamedTracks) {
  std::vector<Timeline> ranks;
  for (int r = 0; r < 4; ++r) ranks.emplace_back(r);
  const auto json = chrome_trace_json(ranks);
  ASSERT_TRUE(json_validate(json));
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(json.find("rank " + std::to_string(r)), std::string::npos);
  }
}

TEST(EventLog, MemorySinkCapturesLeveledEvents) {
  auto sink = std::make_shared<MemorySink>();
  EventLog log(/*rank=*/3);
  EXPECT_FALSE(log.enabled(LogLevel::kError));  // no sink: silent
  log.set_sink(sink);
  log.set_level(LogLevel::kWarn);
  log.info("ignored_below_threshold");
  log.warn("fit_retry", {{"kind", "timeout"}, {"attempt", "1"}});
  log.error("fit_abandoned");

  ASSERT_EQ(sink->events().size(), 2u);
  const auto retry = sink->events_named("fit_retry");
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0].rank, 3);
  EXPECT_GT(retry[0].t_ns, 0);
  ASSERT_EQ(retry[0].attrs.size(), 2u);
  EXPECT_EQ(retry[0].attrs[0].first, "kind");
  EXPECT_EQ(retry[0].attrs[0].second, "timeout");
  // Each event renders as one valid JSONL line.
  EXPECT_TRUE(json_validate(retry[0].to_json()));
  EXPECT_NE(retry[0].to_json().find("\"level\":\"warn\""), std::string::npos);
}

TEST(EventLog, JsonlFileSinkRotatesAtSizeCap) {
  const std::string path =
      ::testing::TempDir() + "kb2_rotate_test.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  EventLog log(/*rank=*/0);
  auto sink = std::make_shared<JsonlFileSink>(path, /*append=*/false,
                                              /*max_bytes=*/512);
  ASSERT_TRUE(sink->ok());
  log.set_sink(sink);
  // Each line is ~70 bytes, so a few dozen events must roll the file over
  // at least once (and likely several times — only the last two generations
  // survive, current plus .1).
  for (int i = 0; i < 40; ++i) {
    log.info("rotation_filler", {{"i", std::to_string(i)}});
  }
  EXPECT_GE(sink->rotations(), 1u);

  // Both generations exist, every surviving line is valid JSONL, the
  // current generation respects the cap, and together they hold the newest
  // events (the tail is never lost to rotation).
  std::size_t current_bytes = 0;
  bool saw_last = false;
  for (const auto& p : {path, path + ".1"}) {
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::string line;
    std::size_t bytes = 0;
    while (std::getline(in, line)) {
      EXPECT_TRUE(json_validate(line)) << line;
      bytes += line.size() + 1;
      if (line.find("\"i\":\"39\"") != std::string::npos) saw_last = true;
    }
    if (p == path) current_bytes = bytes;
  }
  EXPECT_LE(current_bytes, 512u);
  EXPECT_TRUE(saw_last);

  // Append mode never rotates: rotation accounting can't know the shared
  // file's true size when several rank processes append to it.
  auto shared = std::make_shared<JsonlFileSink>(path, /*append=*/true,
                                                /*max_bytes=*/64);
  log.set_sink(shared);
  for (int i = 0; i < 10; ++i) log.info("append_mode_filler");
  EXPECT_EQ(shared->rotations(), 0u);

  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(TracerRebind, SubgroupShrinkKeepsTrafficMonotone) {
  comm::run_ranks(4, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    auto& tracer = ctx.tracer();
    {
      auto s = tracer.scope("full_group");
      if (c.rank() == 3) c.send(0, 11, payload(64));
      if (c.rank() == 0) (void)c.recv(3, 11);
    }
    const auto before = tracer.total_traffic();

    // Ranks 0-2 continue as a subgroup (rank 3 idles — a stand-in for a
    // dead rank; a real shrink reaches this through agree_survivors()).
    if (c.rank() < 3) {
      comm::SubgroupComm sub(c, {0, 1, 2});
      tracer.rebind(&sub);
      {
        auto s = tracer.scope("survivor_group");
        if (sub.rank() == 1) sub.send(0, 12, payload(32));
        if (sub.rank() == 0) (void)sub.recv(1, 12);
      }
      const auto after = tracer.total_traffic();
      // Monotone: the rebind never loses previously attributed traffic
      // (SubgroupComm::stats() continues the parent's counters).
      EXPECT_GE(after.bytes_sent, before.bytes_sent);
      EXPECT_GE(after.messages_sent, before.messages_sent);
      EXPECT_GE(after.bytes_received, before.bytes_received);
      // Reconciliation: summed per-scope traffic equals the communicator's
      // own totals, across the rebind.
      const auto stats = sub.stats();
      EXPECT_EQ(after.messages_sent, stats.messages_sent);
      EXPECT_EQ(after.bytes_sent, stats.bytes_sent);
      EXPECT_EQ(after.messages_received, stats.messages_received);
      EXPECT_EQ(after.bytes_received, stats.bytes_received);
      // The subgroup scope attributed exactly the survivor-group exchange.
      const auto& entry = tracer.entries().at("survivor_group").traffic;
      if (sub.rank() == 1) {
        EXPECT_EQ(entry.messages_sent, 1u);
        EXPECT_EQ(entry.bytes_sent, 32u);
      }
      if (sub.rank() == 0) {
        EXPECT_EQ(entry.messages_received, 1u);
        EXPECT_EQ(entry.bytes_received, 32u);
      }
      tracer.rebind(&c);  // detach before sub dies
    }
  });
}

TEST(ContextObservability, ProbeSurvivesManualSubgroup) {
  // Comm metrics keep flowing after traffic moves to a subgroup: the probe
  // sits on the leaf transport and SubgroupComm forwards set_probe to its
  // parent, so full-group rank numbering is preserved in the channels.
  comm::run_ranks(3, [&](comm::Communicator& c) {
    Context ctx(c, 1);
    ctx.enable_comm_metrics();
    comm::SubgroupComm sub(c, {0, 1, 2});
    if (sub.rank() == 2) sub.send(1, 13, payload(48));
    if (sub.rank() == 1) (void)sub.recv(2, 13);
    if (c.rank() == 2) {
      const auto it = ctx.metrics().sent().find({1, 13});
      ASSERT_NE(it, ctx.metrics().sent().end());
      EXPECT_EQ(it->second.bytes, 48u);
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace keybin2::runtime
