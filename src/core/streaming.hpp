// Streaming / in-situ KeyBin2 (paper §3: "extrapolates for data streams with
// M = 1"; §5's protein-folding analysis runs in this mode).
//
// A stream engine holds, per bootstrap trial, a fixed random projection and
// one hierarchical histogram per projected dimension. push() costs
// O(n_rp * d_max) per point and retains nothing point-sized: when a value
// falls outside a histogram's current range the range doubles (pairs of
// deepest bins collapse), so early points never need re-keying.
//
// refit() rebuilds the model from the accumulated histograms — after a batch,
// or periodically for a stream, exactly as the paper communicates histograms
// "after a number of updates". Occupied-cell densities (which are not
// derivable from per-dimension marginals) are estimated from a bounded
// reservoir sample, scaled to the stream's total mass; the points themselves
// may be discarded, matching the paper's "the point can be either discarded
// or sent to secondary storage awaiting its final clustering assignment".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/model.hpp"
#include "core/params.hpp"
#include "runtime/context.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

class StreamingKeyBin2 {
 public:
  /// `input_dims` must be known up front (stream schema).
  explicit StreamingKeyBin2(std::size_t input_dims, Params params = {},
                            std::size_t reservoir_capacity = 4096);

  std::size_t input_dims() const { return input_dims_; }
  std::uint64_t points_seen() const { return points_seen_; }

  /// Ingest one point (O(trials * n_rp * d_max), no allocation on the steady
  /// path).
  void push(std::span<const double> point);

  /// Ingest a batch of rows.
  void push_batch(const Matrix& batch);

  /// Rebuild the model from current histograms, merging state across the
  /// ranks of the context's communicator (every rank must call refit in
  /// step). Executes through the shared core/pipeline stages; the context's
  /// tracer accumulates per-stage time and traffic under
  /// "refit/trial{t}/{stage}" scopes. Recoverable comm failures restart the
  /// refit up to Params::max_shrink_retries times, shrinking to the
  /// survivors after a rank death (same recovery loop as core::fit; the
  /// re-run's rebinning pass is mass-conserving, so retrying is safe).
  const Model& refit(runtime::Context& ctx);

  /// Convenience: refit over a bare communicator (a fresh Context is built
  /// around it; its trace is discarded).
  const Model& refit(comm::Communicator& comm);

  /// Single-site refit.
  const Model& refit();

  /// True once refit() has produced a model.
  bool has_model() const { return model_.has_value(); }

  /// Last refit model; throws if refit was never called.
  const Model& model() const;

  /// Label one point with the current model.
  int label(std::span<const double> point) const;

  // ---- Checkpoint/restart (DESIGN.md §4b) ----
  //
  // serialize() captures the engine EXACTLY — doubling histograms, seen
  // envelopes, reservoir contents, the reservoir RNG's internal state, the
  // model if any — so a deserialized engine continues the identical point
  // stream bit-for-bit: a killed-then-resumed run reproduces an
  // uninterrupted run's model fingerprint.

  /// Append the full engine state to `w`.
  void serialize(ByteWriter& w) const;

  /// Restore state previously written by serialize(); the engine must have
  /// been constructed with the same input_dims and compatible Params.
  void restore(ByteReader& r);

  /// Write the engine state to `path` as a versioned, CRC32-checked
  /// checkpoint file (see core/checkpoint.hpp).
  void save_checkpoint(const std::string& path) const;

  /// Rebuild an engine from a checkpoint written by save_checkpoint().
  /// `params` must match the ones the checkpointed engine was built with
  /// (the structural fields are validated against the payload).
  static StreamingKeyBin2 resume_from(const std::string& path,
                                      Params params = {},
                                      std::size_t reservoir_capacity = 4096);

 private:
  struct TrialState {
    Matrix projection;  // empty => identity
    std::vector<stats::HierarchicalHistogram> hists;  // lazily anchored
    std::vector<bool> anchored;
    // Tight per-dimension envelope of the values actually seen; refit
    // reconciles all ranks onto the global envelope (the doubling ranges of
    // the histograms overshoot and would waste bin resolution).
    std::vector<double> seen_lo, seen_hi;
  };

  void ingest(TrialState& trial, std::span<const double> projected);
  const Model& refit_once(runtime::Context& ctx);

  std::size_t input_dims_;
  Params params_;
  int n_rp_;
  std::vector<TrialState> trials_;
  std::uint64_t points_seen_ = 0;

  // Reservoir sample (algorithm R) of raw points for cell-density estimates.
  std::size_t reservoir_capacity_;
  Matrix reservoir_;
  Rng reservoir_rng_;

  std::optional<Model> model_;
  std::vector<double> scratch_;  // projected-point buffer
};

}  // namespace keybin2::core
