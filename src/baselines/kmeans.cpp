#include "baselines/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace keybin2::baselines {

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] - b[i];
    d += x * x;
  }
  return d;
}

/// Assign each point to its nearest centre; returns total inertia.
double assign(const Matrix& points, const Matrix& centers,
              std::vector<int>& labels) {
  double inertia = 0.0;
  std::vector<double> partial(points.rows(), 0.0);
  global_pool().parallel_for(
      points.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto row = points.row(i);
          double best = std::numeric_limits<double>::infinity();
          int best_c = 0;
          for (std::size_t c = 0; c < centers.rows(); ++c) {
            const double d = sq_distance(row, centers.row(c));
            if (d < best) {
              best = d;
              best_c = static_cast<int>(c);
            }
          }
          labels[i] = best_c;
          partial[i] = best;
        }
      });
  for (double p : partial) inertia += p;
  return inertia;
}

}  // namespace

Matrix kmeanspp_init(const Matrix& points, std::size_t k, std::uint64_t seed) {
  KB2_CHECK_MSG(k >= 1 && k <= points.rows(),
                "k=" << k << " invalid for " << points.rows() << " points");
  Rng rng(seed);
  Matrix centers(k, points.cols());

  // First centre: uniform.
  const auto first = rng.uniform_int(points.rows());
  std::copy_n(points.row(first).begin(), points.cols(),
              centers.row(0).begin());

  std::vector<double> d2(points.rows(),
                         std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    // Update shortest distance to the chosen set.
    double total = 0.0;
    for (std::size_t i = 0; i < points.rows(); ++i) {
      d2[i] = std::min(d2[i], sq_distance(points.row(i), centers.row(c - 1)));
      total += d2[i];
    }
    // D^2-weighted draw (falls back to uniform if all points coincide).
    std::size_t chosen = points.rows() - 1;
    if (total > 0.0) {
      double u = rng.uniform() * total;
      for (std::size_t i = 0; i < points.rows(); ++i) {
        u -= d2[i];
        if (u <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.uniform_int(points.rows());
    }
    std::copy_n(points.row(chosen).begin(), points.cols(),
                centers.row(c).begin());
  }
  return centers;
}

KMeansResult lloyd(const Matrix& points, Matrix centers, int max_iters,
                   double tol) {
  const std::size_t k = centers.rows();
  const std::size_t dims = points.cols();
  KMeansResult result;
  result.labels.assign(points.rows(), 0);

  for (int iter = 0; iter < max_iters; ++iter) {
    result.inertia = assign(points, centers, result.labels);
    result.iterations = iter + 1;

    // Recompute centres.
    Matrix next(k, dims);
    std::vector<double> counts(k, 0.0);
    for (std::size_t i = 0; i < points.rows(); ++i) {
      const auto c = static_cast<std::size_t>(result.labels[i]);
      auto row = points.row(i);
      auto acc = next.row(c);
      for (std::size_t j = 0; j < dims; ++j) acc[j] += row[j];
      counts[c] += 1.0;
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto nc = next.row(c);
      auto oc = centers.row(c);
      if (counts[c] > 0.0) {
        for (std::size_t j = 0; j < dims; ++j) nc[j] /= counts[c];
      } else {
        // Empty cluster keeps its old centre (scikit-learn reseeds; keeping
        // the centre is simpler and only matters for pathological inputs).
        std::copy(oc.begin(), oc.end(), nc.begin());
      }
      shift += sq_distance(nc, oc);
    }
    centers = std::move(next);
    if (shift <= tol * tol) {
      result.converged = true;
      break;
    }
  }
  result.inertia = assign(points, centers, result.labels);
  result.centers = std::move(centers);
  return result;
}

KMeansResult kmeans(const Matrix& points, const KMeansParams& params) {
  KB2_CHECK_MSG(params.n_init >= 1, "n_init must be >= 1");
  Rng seed_stream(params.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < params.n_init; ++r) {
    auto centers = kmeanspp_init(points, params.k, seed_stream.fork_seed());
    auto result =
        lloyd(points, std::move(centers), params.max_iters, params.tol);
    if (result.inertia < best.inertia) best = std::move(result);
  }
  return best;
}

}  // namespace keybin2::baselines
