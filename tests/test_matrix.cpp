#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace keybin2 {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, ElementAccessIsRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 2) = 3.0;
  m(1, 1) = 5.0;
  auto flat = m.flat();
  EXPECT_EQ(flat[0], 1.0);
  EXPECT_EQ(flat[2], 3.0);
  EXPECT_EQ(flat[4], 5.0);
}

TEST(Matrix, AdoptStorageValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), Error);
}

TEST(Matrix, RowViewIsWritable) {
  Matrix m(2, 2);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_EQ(m(1, 0), 7.0);
}

TEST(Matrix, RowOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.row(2), Error);
}

TEST(Matrix, AppendRowGrowsAndSetsColsOnFirst) {
  Matrix m;
  const double r0[] = {1.0, 2.0, 3.0};
  m.append_row(r0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  const double r1[] = {4.0, 5.0, 6.0};
  m.append_row(r1);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, AppendRowRejectsWrongLength) {
  Matrix m(1, 3);
  const double bad[] = {1.0, 2.0};
  EXPECT_THROW(m.append_row(bad), Error);
}

TEST(Matrix, SliceRowsCopiesRange) {
  Matrix m(4, 2);
  for (std::size_t i = 0; i < 4; ++i) m(i, 0) = static_cast<double>(i);
  auto s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 1.0);
  EXPECT_EQ(s(1, 0), 2.0);
}

TEST(Matrix, SliceRowsValidatesBounds) {
  Matrix m(4, 2);
  EXPECT_THROW(m.slice_rows(3, 2), Error);
  EXPECT_THROW(m.slice_rows(0, 5), Error);
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b(1, 1) = 1.0;
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == Matrix(2, 3));
}

TEST(Matmul, IdentityPreserves) {
  Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  Matrix id(2, 2, {1.0, 0.0, 0.0, 1.0});
  EXPECT_TRUE(matmul(a, id) == a);
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Matmul, SkipsZeroEntries) {
  // Sparse-ish input exercises the aik == 0 fast path.
  Matrix a(1, 3, {0.0, 2.0, 0.0});
  Matrix b(3, 1, {5.0, 7.0, 9.0});
  EXPECT_EQ(matmul(a, b)(0, 0), 14.0);
}

}  // namespace
}  // namespace keybin2
