#include "md/ramachandran.hpp"

#include <cmath>

namespace keybin2::md {

namespace {

bool in_box(double v, double lo, double hi) { return v >= lo && v <= hi; }

}  // namespace

SecondaryStructure classify(double phi_deg, double psi_deg,
                            double omega_deg) {
  // Cis-peptide: omega restricted to ~0 deg (trans is ~180 deg).
  if (std::fabs(omega_deg) < 30.0) return SecondaryStructure::kCisPeptide;

  // Right-handed alpha helix: phi ~ -60, psi ~ -45.
  if (in_box(phi_deg, -100.0, -30.0) && in_box(psi_deg, -80.0, -5.0)) {
    return SecondaryStructure::kAlphaHelix;
  }
  // Beta strand: phi ~ -120, psi ~ 130 (extended).
  if (in_box(phi_deg, -180.0, -90.0) &&
      (in_box(psi_deg, 90.0, 180.0) || in_box(psi_deg, -180.0, -150.0))) {
    return SecondaryStructure::kBetaStrand;
  }
  // Polyproline II helix: phi ~ -75, psi ~ +150.
  if (in_box(phi_deg, -90.0, -50.0) && in_box(psi_deg, 120.0, 180.0)) {
    return SecondaryStructure::kPPIIHelix;
  }
  // Inverse gamma turn (gamma'): phi ~ -85, psi ~ +70.
  if (in_box(phi_deg, -110.0, -60.0) && in_box(psi_deg, 40.0, 100.0)) {
    return SecondaryStructure::kGammaPrimeTurn;
  }
  // Classic gamma turn: phi ~ +75, psi ~ -60.
  if (in_box(phi_deg, 40.0, 110.0) && in_box(psi_deg, -100.0, -20.0)) {
    return SecondaryStructure::kGammaTurn;
  }
  return SecondaryStructure::kOther;
}

TorsionTriple canonical_torsions(SecondaryStructure ss) {
  switch (ss) {
    case SecondaryStructure::kAlphaHelix:
      return {-63.0, -43.0, 180.0};
    case SecondaryStructure::kBetaStrand:
      return {-120.0, 130.0, 180.0};
    case SecondaryStructure::kPPIIHelix:
      return {-75.0, 150.0, 180.0};
    case SecondaryStructure::kGammaPrimeTurn:
      return {-85.0, 70.0, 180.0};
    case SecondaryStructure::kGammaTurn:
      return {75.0, -60.0, 180.0};
    case SecondaryStructure::kCisPeptide:
      return {-75.0, 160.0, 0.0};
    case SecondaryStructure::kOther:
      return {60.0, 60.0, 180.0};
  }
  return {};
}

std::string_view to_string(SecondaryStructure ss) {
  switch (ss) {
    case SecondaryStructure::kAlphaHelix:
      return "alpha-helix";
    case SecondaryStructure::kBetaStrand:
      return "beta-strand";
    case SecondaryStructure::kPPIIHelix:
      return "PPII-helix";
    case SecondaryStructure::kGammaPrimeTurn:
      return "gamma'-turn";
    case SecondaryStructure::kGammaTurn:
      return "gamma-turn";
    case SecondaryStructure::kCisPeptide:
      return "cis-peptide";
    case SecondaryStructure::kOther:
      return "other";
  }
  return "?";
}

}  // namespace keybin2::md
