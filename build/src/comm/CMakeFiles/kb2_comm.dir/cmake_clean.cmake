file(REMOVE_RECURSE
  "CMakeFiles/kb2_comm.dir/communicator.cpp.o"
  "CMakeFiles/kb2_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/kb2_comm.dir/launch.cpp.o"
  "CMakeFiles/kb2_comm.dir/launch.cpp.o.d"
  "CMakeFiles/kb2_comm.dir/thread_comm.cpp.o"
  "CMakeFiles/kb2_comm.dir/thread_comm.cpp.o.d"
  "libkb2_comm.a"
  "libkb2_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
