file(REMOVE_RECURSE
  "libkb2_core.a"
)
