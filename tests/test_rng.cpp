#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace keybin2 {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Rng, IsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_int(bound), bound);
    }
  }
}

TEST(Rng, UniformIntZeroBoundReturnsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Rng, UniformIntCoversSmallRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParametersScales) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ForkSeedsProduceIndependentStreams) {
  Rng parent(31);
  Rng a(parent.fork_seed());
  Rng b(parent.fork_seed());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, EverySeedYieldsHealthyUniforms) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.03) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace keybin2
