// KeyBin2: the full distributed clustering pipeline (paper §3).
//
// fit() is SPMD: every rank calls it with its local shard of the data; the
// sequence of collectives is identical on all ranks. The steps are exactly
// the paper's:
//   1. project into a lower space      (random projection, per trial)
//   2. assign keys per point/dimension (local, embarrassingly parallel)
//   3. communicate binning histograms  (allreduce — the only data that moves)
//   4. partition histograms            (discrete optimization, deterministic
//                                       from the merged histograms)
//   5. perform clustering assignments  (local, via the broadcast model)
//   6. assess projected subspaces      (histogram-space Calinski–Harabasz,
//                                       bootstrapped over t trials x depths)
//
// A serial run is the same code over a single-rank SelfComm.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "common/matrix.hpp"
#include "core/model.hpp"
#include "core/params.hpp"
#include "runtime/context.hpp"

namespace keybin2::core {

/// Score of one (bootstrap trial, depth) candidate — kept for diagnostics
/// and the ablation benches.
struct TrialDiagnostics {
  int trial = 0;
  int depth = 0;
  int kept_dims = 0;
  int cells = 0;
  double score = 0.0;
};

struct FitResult {
  std::vector<int> labels;  // one per local point
  Model model;
  std::vector<TrialDiagnostics> trials;

  int n_clusters() const { return model.n_clusters(); }
};

/// Cluster `local_points` (this rank's shard) jointly with all other ranks
/// of the context's communicator, executing through the shared
/// core/pipeline stages. Every rank receives the same model and its own
/// local labels; the context's tracer accumulates per-stage wall time and
/// traffic under "fit/trial{t}/{stage}" scopes.
FitResult fit(runtime::Context& ctx, const Matrix& local_points,
              const Params& params = {});

/// Convenience: fit over a bare communicator (a fresh Context is built
/// around it; its trace is discarded).
FitResult fit(comm::Communicator& comm, const Matrix& local_points,
              const Params& params = {});

/// Serial convenience: fit over a single-rank communicator.
FitResult fit(const Matrix& points, const Params& params = {});

}  // namespace keybin2::core
