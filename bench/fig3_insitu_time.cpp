// Figure 3: execution time for clustering the 31 protein trajectories.
//
// Paper: KeyBin2 clusters all 31 MoDEL trajectories in ~4 s total
// (~0.0004 s/frame) — far below kmeans++ and DBSCAN on the same
// featurization. We regenerate the figure's series: per-trajectory wall
// time for each method, plus totals and time-per-frame.
//
// Scaled-down defaults cap frames per trajectory (KeyBin2 itself handles
// full trajectories easily, but serial DBSCAN's O(n^2) neighbour search
// dominates the harness); --full lifts the caps.
#include <algorithm>
#include <cstdio>

#include "baselines/dbscan.hpp"
#include "baselines/kmeans.hpp"
#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "md/synthetic.hpp"
#include "md/trajectory.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  auto opt = bench::Options::parse(argc, argv);
  const std::size_t frame_cap = opt.full ? SIZE_MAX : 1500;
  const std::size_t dbscan_cap = opt.full ? 5000 : 500;
  const std::size_t count = opt.full ? 31 : 10;

  auto library = md::make_model_library(opt.seed, count);
  std::printf(
      "Figure 3 reproduction: clustering time for %zu synthetic "
      "trajectories (frame cap %zu; DBSCAN additionally capped to %zu "
      "frames, scaled to a full-trajectory estimate).\n\n",
      library.size(), frame_cap, dbscan_cap);

  std::printf("%-6s %9s %8s | %12s %12s %14s\n", "Traj", "Residues",
              "Frames", "KeyBin2 (s)", "kmeans++ (s)", "DBSCAN est (s)");

  double total_keybin2 = 0.0, total_kmeans = 0.0, total_dbscan = 0.0;
  std::size_t total_frames = 0;
  for (std::size_t i = 0; i < library.size(); ++i) {
    auto cfg = library[i];
    cfg.frames = std::min(cfg.frames, frame_cap);
    cfg.transition_frames = std::min(cfg.transition_frames, cfg.frames / 10);
    const auto st = md::generate_trajectory(cfg);
    const auto features = md::featurize_secondary_structure(st.trajectory);
    total_frames += features.rows();

    double t_keybin2 = 0.0;
    {
      core::Params params;
      params.seed = opt.seed + i;
      WallTimer timer;
      const auto result = core::fit(features, params);
      t_keybin2 = timer.seconds();
      (void)result;
    }

    double t_kmeans = 0.0;
    {
      baselines::KMeansParams params;
      params.k = cfg.phases;  // baselines get the true structure count
      params.seed = opt.seed + i;
      params.n_init = 10;  // scikit-learn's default, matching the comparator
      WallTimer timer;
      baselines::kmeans(features, params);
      t_kmeans = timer.seconds();
    }

    double t_dbscan = 0.0;
    {
      const auto sub = features.slice_rows(
          0, std::min(features.rows(), dbscan_cap));
      const double eps =
          baselines::estimate_eps(sub, 5, 256, opt.seed + i) + 1e-9;
      WallTimer timer;
      baselines::dbscan(sub, {.eps = eps, .min_points = 5});
      const double measured = timer.seconds();
      // O(n^2) extrapolation to the full (capped) trajectory.
      const double scale =
          static_cast<double>(features.rows()) /
          static_cast<double>(sub.rows());
      t_dbscan = measured * scale * scale;
    }

    std::printf("%-6zu %9zu %8zu | %12.3f %12.3f %14.3f\n", i + 1,
                cfg.residues, features.rows(), t_keybin2, t_kmeans,
                t_dbscan);
    total_keybin2 += t_keybin2;
    total_kmeans += t_kmeans;
    total_dbscan += t_dbscan;
  }

  std::printf("\n%-25s | %12.3f %12.3f %14.3f\n", "TOTAL (s)", total_keybin2,
              total_kmeans, total_dbscan);
  std::printf("%-25s | %12.6f %12.6f %14.6f\n", "per frame (s)",
              total_keybin2 / static_cast<double>(total_frames),
              total_kmeans / static_cast<double>(total_frames),
              total_dbscan / static_cast<double>(total_frames));
  std::printf(
      "\nPaper reference: KeyBin2 ~4 s total (~0.0004 s/frame), far below "
      "the comparators.\n");
  bench::Reporter::global().write(opt);
  return 0;
}
