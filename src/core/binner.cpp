#include "core/binner.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace keybin2::core {

std::vector<stats::HierarchicalHistogram> build_histograms(
    const KeyTable& keys, const std::vector<Range>& ranges) {
  KB2_CHECK_MSG(ranges.size() == keys.dims(),
                "ranges size " << ranges.size() << " != key dims "
                               << keys.dims());
  const int d_max = keys.d_max();
  std::vector<stats::HierarchicalHistogram> hists;
  hists.reserve(ranges.size());
  for (const auto& r : ranges) {
    hists.emplace_back(r.lo, r.hi, d_max);
  }
  // Parallel over dimensions: each worker owns whole histograms, no sharing.
  global_pool().parallel_for(
      ranges.size(), [&](std::size_t dim_begin, std::size_t dim_end) {
        const std::size_t m = keys.points();
        for (std::size_t j = dim_begin; j < dim_end; ++j) {
          std::vector<double> counts(
              stats::HierarchicalHistogram::bins_at(d_max), 0.0);
          for (std::size_t i = 0; i < m; ++i) {
            counts[keys.at(i, j)] += 1.0;
          }
          hists[j].set_deepest_counts(std::move(counts));
        }
      });
  return hists;
}

std::vector<double> flatten_counts(
    const std::vector<stats::HierarchicalHistogram>& hists) {
  std::size_t total = 0;
  for (const auto& h : hists) total += h.deepest_counts().size();
  std::vector<double> flat;
  flat.reserve(total);
  for (const auto& h : hists) {
    auto c = h.deepest_counts();
    flat.insert(flat.end(), c.begin(), c.end());
  }
  return flat;
}

void unflatten_counts(std::span<const double> flat,
                      std::vector<stats::HierarchicalHistogram>& hists) {
  std::size_t offset = 0;
  for (auto& h : hists) {
    const std::size_t n = h.deepest_counts().size();
    KB2_CHECK_MSG(offset + n <= flat.size(), "unflatten_counts underflow");
    h.set_deepest_counts(flat.subspan(offset, n));
    offset += n;
  }
  KB2_CHECK_MSG(offset == flat.size(), "unflatten_counts length mismatch");
}

}  // namespace keybin2::core
