#include "comm/fault.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/crc32.hpp"

namespace keybin2::comm::fault {

namespace {

/// Rewrite a framed message's CRC32 header so the mutated payload passes the
/// transport checksum (schedule.fix_crc mode). No-op on unframed tails.
void refresh_crc(std::vector<std::byte>& framed) {
  if (framed.size() < sizeof(std::uint32_t)) return;
  const std::span<const std::byte> payload(
      framed.data() + sizeof(std::uint32_t),
      framed.size() - sizeof(std::uint32_t));
  const std::uint32_t crc = crc32(payload);
  std::memcpy(framed.data(), &crc, sizeof(crc));
}

}  // namespace

FaultyComm::FaultyComm(Communicator& inner, FaultSchedule schedule)
    : inner_(&inner), schedule_(schedule),
      // Mix the rank in so identically-seeded schedules on different ranks
      // still draw independent fault streams.
      rng_(schedule.seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(inner.rank()) + 1))) {
  Communicator::set_timeout(inner.timeout());
}

void FaultyComm::count_op_and_maybe_kill(FlightHook::Op op, int peer, int tag,
                                         std::size_t bytes) {
  ++ops_;
  if (schedule_.kill_at_op > 0 && ops_ >= schedule_.kill_at_op) {
    // Record the op this kill interrupts so the black-box ring shows the
    // same unmatched begin a real mid-op SIGKILL would leave behind.
    if (FlightHook* f = flight_hook()) f->on_op_begin(op, peer, tag, bytes);
#ifdef SIGKILL
    if (schedule_.hard_kill && inner_->process_isolated()) {
      // The honest node death: no unwinding, no destructors, no goodbye.
      // Only possible when this rank is a real OS process — the parent's
      // waitpid() turns the corpse into a RankFailedError for the peers.
      ::raise(SIGKILL);
    }
#endif
    std::ostringstream os;
    os << "rank " << inner_->rank() << " killed by fault schedule at op "
       << ops_ << " (kill_at_op=" << schedule_.kill_at_op << ")";
    throw KilledError(os.str());
  }
}

void FaultyComm::send(int dest, int tag, std::span<const std::byte> data) {
  count_op_and_maybe_kill(FlightHook::kSend, dest, tag, data.size());

  if (schedule_.drop_prob > 0.0 && rng_.uniform() < schedule_.drop_prob) {
    return;  // the wire ate it
  }
  if (schedule_.delay_prob > 0.0 && rng_.uniform() < schedule_.delay_prob) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(schedule_.delay_ms));
    inner_->send(dest, tag, data);
    return;
  }
  if (schedule_.truncate_prob > 0.0 &&
      rng_.uniform() < schedule_.truncate_prob && !data.empty()) {
    std::vector<std::byte> cut(data.begin(),
                               data.begin() + static_cast<std::ptrdiff_t>(
                                                  data.size() / 2));
    if (schedule_.fix_crc) refresh_crc(cut);
    inner_->send(dest, tag, cut);
    return;
  }
  if (schedule_.corrupt_length_prob > 0.0 &&
      rng_.uniform() < schedule_.corrupt_length_prob &&
      data.size() >= sizeof(std::uint32_t) + sizeof(std::uint64_t)) {
    // Overwrite the first 8 payload bytes — where ByteWriter puts a length
    // prefix — with a huge value that still "parses".
    std::vector<std::byte> mutated(data.begin(), data.end());
    const std::uint64_t huge = 0x7fffffffffffffffULL;
    std::memcpy(mutated.data() + sizeof(std::uint32_t), &huge, sizeof(huge));
    if (schedule_.fix_crc) refresh_crc(mutated);
    inner_->send(dest, tag, mutated);
    return;
  }
  if (schedule_.zero_fill_prob > 0.0 &&
      rng_.uniform() < schedule_.zero_fill_prob && !data.empty()) {
    std::vector<std::byte> zeroed(data.size(), std::byte{0});
    if (schedule_.fix_crc) refresh_crc(zeroed);
    inner_->send(dest, tag, zeroed);
    return;
  }
  inner_->send(dest, tag, data);
}

std::vector<std::byte> FaultyComm::recv(int src, int tag) {
  count_op_and_maybe_kill(FlightHook::kRecv, src, tag, 0);
  return inner_->recv(src, tag);
}

void FaultyComm::barrier() {
  count_op_and_maybe_kill(FlightHook::kBarrier, -1, -1, 0);
  inner_->barrier();
}

void FaultyComm::set_timeout(double seconds) {
  Communicator::set_timeout(seconds);
  inner_->set_timeout(seconds);
}

std::vector<int> FaultyComm::agree_survivors() {
  // A rank past its kill step must not sneak back in through recovery.
  count_op_and_maybe_kill(FlightHook::kAgree, -1, -1, 0);
  return inner_->agree_survivors();
}

}  // namespace keybin2::comm::fault
