// Transport-neutral mailbox core shared by ThreadComm and ProcComm.
//
// Both backends present the same Communicator contract over the same
// delivery model: a per-rank stash of messages keyed by (source, tag),
// FIFO within a channel, plus a bounded buffer pool so steady-state
// collectives stop paying one allocation per message. What differs is only
// how bytes cross the rank boundary — ThreadComm pushes directly into the
// destination's stash under a mutex, ProcComm drains shared-memory rings
// into a rank-private stash — so the stash, the rank-lifecycle states, the
// deadline arithmetic, and the exact error-message composers live here,
// written once. The composers matter: tests assert these strings verbatim,
// and a driver's retry logic keys off error_kind(), so the two transports
// must fail with byte-identical narratives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"

namespace keybin2::comm {

/// Per-rank lifecycle, shared by both transports (and, for ProcComm, stored
/// in shared memory — keep it byte-sized and trivially copyable).
enum class RankState : std::uint8_t { kLive = 0, kFailed = 1, kDeparted = 2 };

/// One queued delivery, stamped with the group-unique flow id assigned at
/// send time so a probe can pair the send with the matching recv.
struct Message {
  std::vector<std::byte> bytes;
  std::uint64_t flow_id = 0;
};

/// A rank's message store: FIFO queues keyed by (source, tag) plus a bounded
/// free list of recycled delivery buffers. Not thread-safe — ThreadComm
/// guards one per rank with the mailbox mutex; ProcComm owns one privately
/// per process.
class MessageStash {
 public:
  /// Buffers retained by the pool; a burst cannot pin memory forever.
  static constexpr std::size_t kPoolCap = 32;

  /// Take a recycled buffer (capacity retained) or a fresh one.
  std::vector<std::byte> take_buffer() {
    if (pool_.empty()) return {};
    auto buf = std::move(pool_.back());
    pool_.pop_back();
    return buf;
  }

  void push(int src, int tag, Message&& msg) {
    queues_[{src, tag}].push_back(std::move(msg));
  }

  /// True when at least one message is queued on (src, tag).
  bool has_message(int src, int tag) const {
    const auto it = queues_.find({src, tag});
    return it != queues_.end() && !it->second.empty();
  }

  /// Pop the oldest message on (src, tag); false when the channel is empty.
  bool try_pop(int src, int tag, Message* out) {
    const auto it = queues_.find({src, tag});
    if (it == queues_.end() || it->second.empty()) return false;
    *out = std::move(it->second.front());
    it->second.pop_front();
    return true;
  }

  /// Total messages parked across all (src, tag) channels — the backlog a
  /// slow consumer is accumulating (what a probe reports as queue depth).
  std::size_t total_depth() const {
    std::size_t depth = 0;
    for (const auto& [key, q] : queues_) depth += q.size();
    return depth;
  }

  void recycle(std::vector<std::byte>&& buf) {
    if (pool_.size() < kPoolCap) {
      buf.clear();
      pool_.push_back(std::move(buf));
    }
  }

  /// Drop every queued message (survivor agreement purges in-flight traffic
  /// so nothing stale leaks into the retried protocol). The pool survives.
  void clear() { queues_.clear(); }

 private:
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
  std::vector<std::vector<std::byte>> pool_;
};

// ---- Deadline arithmetic ----

using CommClock = std::chrono::steady_clock;

inline CommClock::time_point comm_deadline(CommClock::time_point start,
                                           double seconds) {
  return start + std::chrono::duration_cast<CommClock::duration>(
                     std::chrono::duration<double>(seconds));
}

inline double comm_seconds_since(CommClock::time_point start) {
  return std::chrono::duration<double>(CommClock::now() - start).count();
}

// ---- Error-message composers (strings must match across transports) ----

/// "rank N recv(peer=P, tag=T) abandoned: survivor agreement in progress";
/// pass peer < 0 for the barrier form ("rank N barrier() abandoned: ...").
std::string abandoned_message(int self, const char* op, int peer, int tag);

/// "rank N send(peer=P, tag=T) aborted: rank P left the group"
std::string send_departed_message(int self, int dest, int tag);

/// "rank N recv(peer=P, tag=T) will never complete: rank P left the group"
std::string recv_departed_message(int self, int src, int tag);

/// "rank N op(peer=P, tag=T) aborted:" (peer omitted when < 0).
std::string rank_failed_prefix(const char* op, int self, int peer, int tag);

/// "rank N op(peer=P, tag=T) aborted: [rank R failed: reason] ..." — the
/// caller supplies per-rank state and failure reasons (however it stores
/// them) via the two accessors.
template <typename StateFn, typename ReasonFn>
std::string rank_failed_message(const char* op, int self, int peer, int tag,
                                int size, StateFn&& state_of,
                                ReasonFn&& reason_of) {
  std::string msg = rank_failed_prefix(op, self, peer, tag);
  for (int r = 0; r < size; ++r) {
    const RankState st = state_of(r);
    if (st == RankState::kFailed) {
      msg += " [rank " + std::to_string(r) + " failed: " + reason_of(r) + "]";
    } else if (st == RankState::kDeparted) {
      msg += " [rank " + std::to_string(r) + " left the group]";
    }
  }
  return msg;
}

[[noreturn]] void throw_recv_timeout(int self, int src, int tag,
                                     double elapsed_seconds);
[[noreturn]] void throw_barrier_timeout(int self, double elapsed_seconds);
[[noreturn]] void throw_agree_timeout(int self, double elapsed_seconds);

}  // namespace keybin2::comm
