// trace_check: validate a Chrome trace-event JSON file produced by
// `keybin2 cluster --trace-json` (or anything else emitting the same shape).
//
//   trace_check trace.json [--min-ranks N] [--min-flows N]
//   trace_check --bench BENCH_kernel_fusion.json
//
// Default (trace) mode checks, in order:
//   1. the file parses as a single well-formed JSON value (json_validate),
//   2. it declares at least --min-ranks rank timelines ("ph":"M" metadata),
//   3. it holds at least one duration span ("ph":"X") — empty-metrics traces
//      fail here,
//   4. it holds at least --min-flows send->recv flow pairs, and the "s" and
//      "f" ends balance (the exporter only emits completed pairs).
//
// --bench mode validates a bench reporter file instead: well-formed JSON, a
// "series" object, and every series the kernel-fusion gate depends on
// (staged_seconds, fused_seconds, fused_speedup, reduce_bytes_dense,
// reduce_bytes_sparse, reduce_bytes_savings) present with a "mean" field.
//
// Exit 0 when everything holds, 1 with a diagnostic otherwise — which is
// what lets check_tier1.sh --trace-smoke / --bench-smoke gate on it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "runtime/json.hpp"

namespace {

std::size_t count_occurrences(std::string_view text, std::string_view needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string_view::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

int fail(const char* what) {
  std::fprintf(stderr, "trace_check: FAIL: %s\n", what);
  return 1;
}

// Series every BENCH_kernel_fusion.json must carry (bench/kernel_fusion.cpp
// writes exactly these; the smoke gate fails if any goes missing or is
// renamed without updating this list).
constexpr const char* kBenchSeries[] = {
    "staged_seconds",     "fused_seconds",      "fused_speedup",
    "reduce_bytes_dense", "reduce_bytes_sparse", "reduce_bytes_savings",
};

int check_bench(const std::string& text) {
  if (text.empty()) return fail("file is empty");
  if (!keybin2::runtime::json_validate(text)) {
    return fail("not well-formed JSON");
  }
  if (text.find("\"series\"") == std::string::npos) {
    return fail("no series object");
  }
  for (const char* name : kBenchSeries) {
    const auto key = "\"" + std::string(name) + "\"";
    const auto pos = text.find(key);
    if (pos == std::string::npos) {
      std::fprintf(stderr, "trace_check: FAIL: missing series %s\n", name);
      return 1;
    }
    // Each series value is an object holding at least a numeric mean; the
    // reporter writes "name":{"mean":...,...}.
    if (text.find("\"mean\"", pos) == std::string::npos) {
      std::fprintf(stderr, "trace_check: FAIL: series %s has no mean\n", name);
      return 1;
    }
  }
  std::printf("trace_check: OK: bench report carries all %zu series\n",
              sizeof(kBenchSeries) / sizeof(kBenchSeries[0]));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  long min_ranks = 1;
  long min_flows = 0;
  bool bench_mode = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_check: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--min-ranks")) {
      min_ranks = std::strtol(next("--min-ranks"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--min-flows")) {
      min_flows = std::strtol(next("--min-flows"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--bench")) {
      bench_mode = true;
    } else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: trace_check trace.json [--min-ranks N] "
                  "[--min-flows N]\n"
                  "       trace_check --bench BENCH_*.json\n");
      return 0;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "trace_check: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_check trace.json [--min-ranks N] "
                 "[--min-flows N]\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  if (bench_mode) return check_bench(text);

  if (text.empty()) return fail("file is empty");
  if (!keybin2::runtime::json_validate(text)) {
    return fail("not well-formed JSON");
  }
  if (text.find("\"traceEvents\"") == std::string::npos) {
    return fail("no traceEvents array");
  }

  // The exporter writes events with "ph" first, so these fixed substrings
  // are reliable for its own output (json_validate above already guarantees
  // we are not counting inside broken syntax).
  const auto ranks = count_occurrences(text, "\"ph\":\"M\"");
  const auto spans = count_occurrences(text, "\"ph\":\"X\"");
  const auto flow_starts = count_occurrences(text, "\"ph\":\"s\"");
  const auto flow_ends = count_occurrences(text, "\"ph\":\"f\"");

  if (ranks < static_cast<std::size_t>(min_ranks)) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %zu rank timeline(s), need >= %ld\n",
                 ranks, min_ranks);
    return 1;
  }
  if (spans == 0) return fail("no duration spans (empty metrics?)");
  if (flow_starts != flow_ends) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %zu flow starts vs %zu flow ends\n",
                 flow_starts, flow_ends);
    return 1;
  }
  if (flow_starts < static_cast<std::size_t>(min_flows)) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %zu flow pair(s), need >= %ld\n",
                 flow_starts, min_flows);
    return 1;
  }

  std::printf(
      "trace_check: OK: %zu rank timeline(s), %zu span(s), %zu flow pair(s)\n",
      ranks, spans, flow_starts);
  return 0;
}
