#include "md/insitu.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "common/error.hpp"
#include "md/fingerprint.hpp"
#include "md/synthetic.hpp"
#include "stats/metrics.hpp"

namespace keybin2::md {
namespace {

TEST(InSitu, LabelsArriveAfterFirstRefit) {
  const auto st = generate_trajectory({.residues = 20, .frames = 600,
                                       .phases = 2, .transition_frames = 20,
                                       .seed = 1});
  InSituAnalyzer analyzer(20, {}, /*refit_interval=*/200);
  for (std::size_t f = 0; f < 250; ++f) {
    const int label = analyzer.push_frame(st.trajectory, f);
    if (f < 199) {
      EXPECT_EQ(label, -1) << "no model before the first refit";
    } else {
      EXPECT_GE(label, 0);
    }
  }
  EXPECT_EQ(analyzer.frames_seen(), 250u);
  EXPECT_EQ(analyzer.fingerprint().size(), 250u);
}

TEST(InSitu, RelabelRequiresAModel) {
  InSituAnalyzer analyzer(5);
  EXPECT_THROW(analyzer.relabel_all(), Error);
}

TEST(InSitu, ContextBackedRefitMatchesSerial) {
  const auto st = generate_trajectory({.residues = 20, .frames = 600,
                                       .phases = 2, .transition_frames = 20,
                                       .seed = 1});
  InSituAnalyzer serial(20, {}, /*refit_interval=*/200);
  runtime::Context ctx(core::Params{}.seed);
  InSituAnalyzer traced(ctx, 20, {}, /*refit_interval=*/200);
  for (std::size_t f = 0; f < 400; ++f) {
    const int a = serial.push_frame(st.trajectory, f);
    const int b = traced.push_frame(st.trajectory, f);
    EXPECT_EQ(a, b) << "frame " << f;
  }
  // The periodic refits ran through the context's tracer.
  EXPECT_EQ(ctx.tracer().entries().count("refit"), 1u);
  EXPECT_EQ(ctx.tracer().entries().at("refit").calls, 2u);
}

TEST(InSitu, FingerprintTracksMetastablePhases) {
  // The paper's Figure 4 claim: fingerprint changes line up with
  // metastable-phase changes.
  const auto st = generate_trajectory({.residues = 30, .frames = 2000,
                                       .phases = 4, .transition_frames = 40,
                                       .change_fraction = 0.5, .seed = 2});
  InSituAnalyzer analyzer(30, {}, /*refit_interval=*/500);
  for (std::size_t f = 0; f < st.trajectory.frames(); ++f) {
    analyzer.push_frame(st.trajectory, f);
  }
  analyzer.refit();
  const auto labels = analyzer.relabel_all();

  // Offline consolidated labels must agree with the ground-truth phases.
  std::vector<int> truth;
  for (std::size_t f = 0; f < st.phase.size(); ++f) truth.push_back(st.phase[f]);
  const double ari = stats::adjusted_rand_index(labels, truth);
  EXPECT_GT(ari, 0.5);

  // Change points of the (debounced) fingerprint line up with true phase
  // boundaries within a transition-window tolerance.
  std::vector<std::size_t> true_boundaries;
  for (std::size_t f = 1; f < st.phase.size(); ++f) {
    if (st.phase[f] != st.phase[f - 1]) true_boundaries.push_back(f);
  }
  const auto predicted = change_points(labels, /*min_run=*/30);
  const auto score = boundary_agreement(predicted, true_boundaries, 60);
  EXPECT_GT(score.recall, 0.6);
}

TEST(InSitu, RelabelAllIsConsistentWithModelPredict) {
  const auto st = generate_trajectory({.residues = 15, .frames = 500,
                                       .phases = 2, .transition_frames = 20,
                                       .seed = 3});
  InSituAnalyzer analyzer(15, {}, 250);
  for (std::size_t f = 0; f < 500; ++f) analyzer.push_frame(st.trajectory, f);
  analyzer.refit();
  const auto labels = analyzer.relabel_all();
  ASSERT_EQ(labels.size(), 500u);
  // Spot-check: relabel uses the final model on the stored features.
  for (std::size_t f = 0; f < 500; f += 97) {
    const auto features = featurize_frame(st.trajectory, f);
    EXPECT_EQ(labels[f], analyzer.engine().model().predict(features));
  }
}

TEST(InSitu, PerFrameCostIsBounded) {
  // §5.2: "0.0004 seconds per frame" on the paper's hardware — here we just
  // assert in-situ ingestion stays cheap enough to run alongside a
  // simulation (well under a millisecond per frame on any machine).
  const auto st = generate_trajectory({.residues = 58, .frames = 2000,
                                       .phases = 3, .transition_frames = 30,
                                       .seed = 4});
  InSituAnalyzer analyzer(58, {}, /*refit_interval=*/1000);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < 2000; ++f) analyzer.push_frame(st.trajectory, f);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs / 2000.0, 5e-3);
}

TEST(InSitu, ValidatesConfiguration) {
  EXPECT_THROW(InSituAnalyzer(10, {}, 0), Error);
}

}  // namespace
}  // namespace keybin2::md
