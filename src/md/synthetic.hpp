// Synthetic molecular-dynamics trajectories (substitute for MoDEL, §5).
//
// MoDEL is a proprietary-download library of real MD trajectories; what the
// paper's analysis consumes from it is torsion-angle time series with
// metastable and transition phases ("in a metastable stage, consecutive
// conformations keep a similar structure ... in a transition stage [they]
// change from one meta-stable stage to another"). The generator reproduces
// exactly that structure with known ground truth:
//   * each phase assigns every residue a target secondary structure,
//     consecutive phases differing in a random subset of residues;
//   * within a phase, torsions jitter around the structure's canonical
//     Ramachandran centre (metastable);
//   * between phases, torsions interpolate over a transition window with
//     extra jitter (transition).
// make_model_library() instantiates 31 trajectories whose residue and frame
// counts match Table 3's statistics (58-747 residues, 2,000-20,000 frames).
#pragma once

#include <cstdint>
#include <vector>

#include "md/trajectory.hpp"

namespace keybin2::md {

struct SyntheticTrajectoryConfig {
  std::size_t residues = 100;
  std::size_t frames = 5000;
  std::size_t phases = 5;           // number of metastable phases
  std::size_t transition_frames = 50;  // length of each transition window
  double jitter_deg = 8.0;          // torsion noise inside a phase
  double transition_jitter_deg = 25.0;
  double change_fraction = 0.35;    // residues whose structure changes/phase
  std::uint64_t seed = 42;
};

struct SyntheticTrajectory {
  Trajectory trajectory;
  /// Ground-truth phase id per frame; transition frames carry the id of the
  /// phase being entered, and `in_transition` marks them.
  std::vector<int> phase;
  std::vector<bool> in_transition;
  /// Target secondary structure per (phase, residue).
  std::vector<std::vector<SecondaryStructure>> phase_structures;
};

SyntheticTrajectory generate_trajectory(const SyntheticTrajectoryConfig& cfg);

/// Per-trajectory (residues, frames) sizes for a 31-trajectory library with
/// Table 3's spread; deterministic in `seed`.
std::vector<SyntheticTrajectoryConfig> make_model_library(
    std::uint64_t seed = 42, std::size_t count = 31);

}  // namespace keybin2::md
