// Transport-overhead benchmark: thread-backed vs process-backed ranks
// (DESIGN.md §6).
//
// Two planes:
//   * fit plane — the full distributed fit at --points-per-rank per rank,
//     once over ThreadComm (in-process mailboxes) and once over ProcComm
//     (forked children + shared-memory rings). Model bytes and every rank's
//     labels are compared on every run: the transport may not leak into the
//     math, and the bench aborts on the first divergence.
//   * p2p plane — a 2-rank ping-pong (many small frames) timing the raw
//     per-message transport cost without any clustering work on top.
//
// Series written to BENCH_comm_backends.json (the *_seconds series are
// gated lower-is-better by the perf-regression comparison):
//   thread_fit_seconds, proc_fit_seconds,
//   thread_p2p_seconds, proc_p2p_seconds,
//   proc_overhead_ratio (informational: proc fit wall / thread fit wall)
//
// The process backend pays for fork, page-table duplication, and futex
// wakeups across address spaces; the acceptance bar is proc_overhead_ratio
// < 2.0 at the committed baseline's options (--points-per-rank 20000
// --ranks 4 --runs 3 --seed 42), and the bench exits nonzero beyond it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/serialize.hpp"
#include "core/keybin2.hpp"

#ifndef __linux__
int main() {
  std::fprintf(stderr,
               "comm_backends: the process backend requires Linux; skipping\n");
  return 0;
}
#else

namespace keybin2 {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

comm::LaunchOptions backend_options(comm::Backend b) {
  comm::LaunchOptions o;
  o.backend = b;
  return o;
}

/// One distributed fit over `backend`; returns the wall seconds and fills
/// `fingerprints` with each rank's {model bytes, labels} blob.
double timed_fit(comm::Backend backend,
                 const std::vector<data::Dataset>& shards,
                 const core::Params& params,
                 std::vector<std::vector<std::byte>>& fingerprints) {
  const int ranks = static_cast<int>(shards.size());
  const double t0 = now_seconds();
  fingerprints = comm::run_ranks_collect_bytes(
      backend_options(backend), ranks,
      [&](comm::Communicator& c) -> std::vector<std::byte> {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result = core::fit(c, shards[r].points, params);
        ByteWriter w;
        result.model.serialize(w);
        w.write_vec(result.labels);
        return w.take();
      });
  return now_seconds() - t0;
}

void bench_fit_plane(const bench::Options& opt, bench::Series& thread_s,
                     bench::Series& proc_s, bench::Series& overhead) {
  const auto spec = data::make_paper_mixture(8, 4, opt.seed);
  const auto d = data::sample(
      spec, opt.points_per_rank * static_cast<std::size_t>(opt.ranks),
      static_cast<unsigned>(opt.seed + 1));
  const auto shards = data::shard(d, opt.ranks);
  core::Params params;
  params.seed = opt.seed;

  std::printf("== fit plane: %d ranks x %zu points ==\n", opt.ranks,
              opt.points_per_rank);
  for (int run = 0; run < opt.runs; ++run) {
    std::vector<std::vector<std::byte>> thread_fp, proc_fp;
    const double tt = timed_fit(comm::Backend::kThread, shards, params,
                                thread_fp);
    const double tp = timed_fit(comm::Backend::kProcess, shards, params,
                                proc_fp);
    // Bit-identity audit on every run: the transport may not change the
    // model or a single label.
    for (std::size_t r = 0; r < thread_fp.size(); ++r) {
      if (thread_fp[r] != proc_fp[r]) {
        std::fprintf(stderr,
                     "FATAL: thread/process fit fingerprints diverge on "
                     "rank %zu\n",
                     r);
        std::exit(1);
      }
    }
    thread_s.add(tt);
    proc_s.add(tp);
    overhead.add(tp / tt);
    std::printf("run %d: thread %.3fs  proc %.3fs  overhead %.2fx\n", run,
                tt, tp, tp / tt);
  }
  std::printf("thread %s s | proc %s s | overhead %s\n",
              thread_s.str().c_str(), proc_s.str().c_str(),
              overhead.str(2).c_str());
}

void bench_p2p_plane(const bench::Options& opt, bench::Series& thread_s,
                     bench::Series& proc_s) {
  // 2 ranks, ping-pong of small frames: latency-dominated, the worst case
  // for a transport that pays a futex wake per delivery.
  constexpr int kRoundTrips = 2000;
  constexpr std::size_t kBytes = 1024;
  const auto body = [](comm::Communicator& c) -> std::vector<std::byte> {
    std::vector<std::byte> payload(kBytes, std::byte{0x5a});
    for (int i = 0; i < kRoundTrips; ++i) {
      if (c.rank() == 0) {
        c.send(1, 1, payload);
        payload = c.recv(1, 2);
      } else {
        payload = c.recv(0, 1);
        c.send(0, 2, payload);
      }
    }
    return {};
  };
  std::printf("== p2p plane: %d round trips x %zu bytes ==\n", kRoundTrips,
              kBytes);
  for (int run = 0; run < opt.runs; ++run) {
    double t0 = now_seconds();
    comm::run_ranks_collect_bytes(backend_options(comm::Backend::kThread), 2,
                                  body);
    const double tt = now_seconds() - t0;
    t0 = now_seconds();
    comm::run_ranks_collect_bytes(backend_options(comm::Backend::kProcess), 2,
                                  body);
    const double tp = now_seconds() - t0;
    thread_s.add(tt);
    proc_s.add(tp);
    std::printf("run %d: thread %.3fs  proc %.3fs\n", run, tt, tp);
  }
  std::printf("thread %s s | proc %s s\n", thread_s.str().c_str(),
              proc_s.str().c_str());
}

int run_bench(const bench::Options& opt) {
  bench::Series thread_fit, proc_fit, overhead, thread_p2p, proc_p2p;
  bench_fit_plane(opt, thread_fit, proc_fit, overhead);
  bench_p2p_plane(opt, thread_p2p, proc_p2p);

  auto& rep = bench::Reporter::global();
  rep.add_series("thread_fit_seconds", thread_fit);
  rep.add_series("proc_fit_seconds", proc_fit);
  rep.add_series("thread_p2p_seconds", thread_p2p);
  rep.add_series("proc_p2p_seconds", proc_p2p);
  rep.add_series("proc_overhead_ratio", overhead);
  rep.write(opt);

  if (overhead.mean() >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: process-backend fit overhead %.2fx >= 2.0x "
                 "acceptance bar\n",
                 overhead.mean());
    return 1;
  }
  std::printf("comm_backends: OK (proc fit overhead %.2fx < 2.0x)\n",
              overhead.mean());
  return 0;
}

}  // namespace
}  // namespace keybin2

int main(int argc, char** argv) {
  const auto opt = keybin2::bench::Options::parse(argc, argv);
  return keybin2::run_bench(opt);
}

#endif  // __linux__
