// Ablation C: target dimensionality n_rp and bootstrap trials t.
//
// §3.1 argues for n_rp = 1.5 ln N — far below the Johnson-Lindenstrauss
// bound — because KeyBin2 only needs the ordering along each column to be
// informative, and models the chance of catching an informative direction
// with a hypergeometric draw. We sweep n_rp and t on a mixture with mostly
// redundant dimensions and report accuracy and time, validating that the
// paper's rule sits at the knee of the curve.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "core/projection.hpp"
#include "data/gaussian_mixture.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  const auto opt = bench::Options::parse(argc, argv);
  const std::size_t dims = 256, informative = 32;
  const auto rule = core::choose_n_rp(dims);
  std::printf(
      "Ablation C: n_rp and bootstrap-trials sweep on a %zu-d mixture with "
      "%zu informative dimensions (paper rule: n_rp = 1.5 ln N = %d).\n\n",
      dims, informative, rule);

  std::printf("n_rp sweep (t = 8):\n%-8s %16s %14s\n", "n_rp", "F1",
              "time (s)");
  for (int n_rp : {2, 4, rule, 16, 32}) {
    bench::Series f1, time;
    for (int run = 0; run < opt.runs; ++run) {
      const std::uint64_t seed = opt.seed + 100 * run;
      const auto spec =
          data::make_redundant_mixture(dims, informative, 4, seed);
      const auto d = data::sample(spec, 4000, seed + 1);
      core::Params params;
      params.n_rp = n_rp;
      params.seed = seed;
      WallTimer timer;
      const auto result = core::fit(d.points, params);
      time.add(timer.seconds());
      f1.add(bench::score_labels(result.labels, d.labels).f1);
    }
    std::printf("%-8d %16s %14s%s\n", n_rp, f1.str().c_str(),
                time.str(3).c_str(), n_rp == rule ? "   <- paper rule" : "");
  }

  std::printf("\ndepth selection: global sweep (paper) vs per-dimension "
              "(extension):\n%-14s %16s %14s\n", "mode", "F1", "time (s)");
  for (const bool per_dim : {false, true}) {
    bench::Series f1, time;
    for (int run = 0; run < opt.runs; ++run) {
      const std::uint64_t seed = opt.seed + 100 * run;
      const auto spec =
          data::make_redundant_mixture(dims, informative, 4, seed);
      const auto d = data::sample(spec, 4000, seed + 1);
      core::Params params;
      params.per_dimension_depth = per_dim;
      params.seed = seed;
      WallTimer timer;
      const auto result = core::fit(d.points, params);
      time.add(timer.seconds());
      f1.add(bench::score_labels(result.labels, d.labels).f1);
    }
    std::printf("%-14s %16s %14s\n", per_dim ? "per-dimension" : "global",
                f1.str().c_str(), time.str(3).c_str());
  }

  std::printf("\nbootstrap trials sweep (n_rp = paper rule):\n%-8s %16s %14s\n",
              "t", "F1", "time (s)");
  for (int t : {1, 2, 4, 8, 16}) {
    bench::Series f1, time;
    for (int run = 0; run < opt.runs; ++run) {
      const std::uint64_t seed = opt.seed + 100 * run;
      const auto spec =
          data::make_redundant_mixture(dims, informative, 4, seed);
      const auto d = data::sample(spec, 4000, seed + 1);
      core::Params params;
      params.bootstrap_trials = t;
      params.seed = seed;
      WallTimer timer;
      const auto result = core::fit(d.points, params);
      time.add(timer.seconds());
      f1.add(bench::score_labels(result.labels, d.labels).f1);
    }
    std::printf("%-8d %16s %14s\n", t, f1.str().c_str(), time.str(3).c_str());
  }
  bench::Reporter::global().write(opt);
  return 0;
}
