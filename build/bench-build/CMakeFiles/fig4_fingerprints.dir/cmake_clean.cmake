file(REMOVE_RECURSE
  "../bench/fig4_fingerprints"
  "../bench/fig4_fingerprints.pdb"
  "CMakeFiles/fig4_fingerprints.dir/fig4_fingerprints.cpp.o"
  "CMakeFiles/fig4_fingerprints.dir/fig4_fingerprints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fingerprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
