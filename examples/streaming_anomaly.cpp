// Streaming clustering with concept drift (paper §3: "can deal with batch
// processing and streams").
//
// A sensor-like stream starts with two regimes; a third appears mid-stream.
// The streaming engine ingests points one at a time (histograms only — no
// point is retained beyond a small reservoir), refits periodically, and the
// example shows the model picking up the new regime after it appears.
//
//   ./examples/streaming_anomaly [points-per-regime] [dims]
#include <cstdio>
#include <cstdlib>

#include "core/streaming.hpp"
#include "data/gaussian_mixture.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;

  const std::size_t per_regime =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const std::size_t dims = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;

  // Three regimes; the stream interleaves regimes 0 and 1 first, then
  // regime 2 switches on.
  const auto spec = data::make_paper_mixture(dims, 3, 5);
  data::GaussianMixtureSpec early;
  early.components = {spec.components[0], spec.components[1]};
  const auto phase1 = data::sample(early, 2 * per_regime, 9);
  data::GaussianMixtureSpec late = spec;
  const auto phase2 = data::sample(late, 3 * per_regime, 10);

  core::StreamingKeyBin2 engine(dims);

  std::printf("Phase 1: streaming %zu points from 2 regimes...\n",
              phase1.size());
  engine.push_batch(phase1.points);
  engine.refit();
  std::printf("  model sees %d clusters after %llu points\n",
              engine.model().n_clusters(),
              static_cast<unsigned long long>(engine.points_seen()));

  std::printf("Phase 2: a third regime appears; streaming %zu more "
              "points...\n",
              phase2.size());
  std::size_t refits = 0;
  for (std::size_t i = 0; i < phase2.size(); ++i) {
    engine.push(phase2.points.row(i));
    if (engine.points_seen() % 2000 == 0) {
      engine.refit();
      ++refits;
    }
  }
  engine.refit();
  std::printf("  model sees %d clusters after %llu points (%zu periodic "
              "refits)\n",
              engine.model().n_clusters(),
              static_cast<unsigned long long>(engine.points_seen()),
              refits + 1);

  // Score the final model on the phase-2 mixture (all three regimes).
  std::vector<int> labels(phase2.size());
  for (std::size_t i = 0; i < phase2.size(); ++i) {
    labels[i] = engine.label(phase2.points.row(i));
  }
  const auto scores = stats::pairwise_scores(labels, phase2.labels);
  std::printf("\nFinal model vs ground truth on the drifted stream: "
              "precision %.3f, recall %.3f, F1 %.3f\n",
              scores.precision, scores.recall, scores.f1);
  std::printf("The engine kept only histograms and a %s-point reservoir — "
              "never the stream.\n", "4096");
  return 0;
}
