#include "runtime/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace keybin2::runtime {

namespace {

void append_u_escape(std::string& out, std::uint32_t cp) {
  char buf[16];
  if (cp >= 0x10000) {
    // Encode as a UTF-16 surrogate pair, as JSON requires.
    cp -= 0x10000;
    std::snprintf(buf, sizeof(buf), "\\u%04x\\u%04x",
                  0xd800u + (cp >> 10), 0xdc00u + (cp & 0x3ffu));
  } else {
    std::snprintf(buf, sizeof(buf), "\\u%04x", cp);
  }
  out += buf;
}

/// Decode one UTF-8 sequence starting at s[i]; advances i past it and
/// returns the code point, or U+FFFD (advancing one byte) on a malformed
/// sequence.
std::uint32_t decode_utf8(std::string_view s, std::size_t& i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  int len = 0;
  std::uint32_t cp = 0;
  if (b0 < 0x80) {
    ++i;
    return b0;
  } else if (b0 < 0xc0) {
    ++i;  // continuation byte on its own
    return 0xfffd;
  } else if (b0 < 0xe0) {
    len = 2;
    cp = b0 & 0x1fu;
  } else if (b0 < 0xf0) {
    len = 3;
    cp = b0 & 0x0fu;
  } else if (b0 < 0xf8) {
    len = 4;
    cp = b0 & 0x07u;
  } else {
    ++i;
    return 0xfffd;
  }
  if (i + static_cast<std::size_t>(len) > s.size()) {
    ++i;
    return 0xfffd;
  }
  for (int k = 1; k < len; ++k) {
    const unsigned char b = byte(i + static_cast<std::size_t>(k));
    if ((b & 0xc0u) != 0x80u) {
      ++i;
      return 0xfffd;
    }
    cp = (cp << 6) | (b & 0x3fu);
  }
  i += static_cast<std::size_t>(len);
  // Overlong encodings, surrogates, and out-of-range points are invalid.
  constexpr std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinByLen[len] || cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff)) {
    return 0xfffd;
  }
  return cp;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0u | (cp >> 6));
    out += static_cast<char>(0x80u | (cp & 0x3fu));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0u | (cp >> 12));
    out += static_cast<char>(0x80u | ((cp >> 6) & 0x3fu));
    out += static_cast<char>(0x80u | (cp & 0x3fu));
  } else {
    out += static_cast<char>(0xf0u | (cp >> 18));
    out += static_cast<char>(0x80u | ((cp >> 12) & 0x3fu));
    out += static_cast<char>(0x80u | ((cp >> 6) & 0x3fu));
    out += static_cast<char>(0x80u | (cp & 0x3fu));
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      append_u_escape(out, u);
      ++i;
    } else if (u < 0x7f) {
      out += c;
      ++i;
    } else {
      // Non-ASCII: escape by code point so the emitted document is pure
      // ASCII regardless of the input encoding (span names may carry
      // arbitrary bytes; Perfetto rejects broken UTF-8).
      append_u_escape(out, decode_utf8(s, i));
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key": pair; no comma between them
  }
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

// ---- Validator / parser ----
//
// One recursive descent serves both: json_validate() walks with a null
// output and builds nothing; json_parse() passes a JsonValue to fill.

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  /// Read one \uXXXX quad (pos already past the 'u'); 0xffffffff on error.
  std::uint32_t hex_quad() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size() ||
          !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
        return 0xffffffffu;
      }
      const char c = text[pos++];
      v = (v << 4) | static_cast<std::uint32_t>(
                         c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    return v;
  }

  /// `into` == nullptr validates only.
  bool string(std::string* into) {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        if (into != nullptr) *into += c;
        continue;
      }
      if (pos >= text.size()) return false;
      char e = text[pos++];
      if (e == 'u') {
        std::uint32_t cp = hex_quad();
        if (cp == 0xffffffffu) return false;
        if (cp >= 0xd800 && cp <= 0xdbff) {
          // High surrogate: consume the matching low half when present,
          // else decode to U+FFFD.
          if (pos + 1 < text.size() && text[pos] == '\\' &&
              text[pos + 1] == 'u') {
            pos += 2;
            const std::uint32_t lo = hex_quad();
            if (lo == 0xffffffffu) return false;
            cp = lo >= 0xdc00 && lo <= 0xdfff
                     ? 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00)
                     : 0xfffd;
          } else {
            cp = 0xfffd;
          }
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
          cp = 0xfffd;  // lone low surrogate
        }
        if (into != nullptr) append_utf8(*into, cp);
      } else {
        const auto idx = std::string_view("\"\\/bfnrt").find(e);
        if (idx == std::string_view::npos) return false;
        if (into != nullptr) *into += "\"\\/\b\f\n\r\t"[idx];
      }
    }
    return false;  // unterminated
  }

  bool number(double* into) {
    const std::size_t start = pos;
    eat('-');
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return false;
    char* end = nullptr;
    const std::string token(text.substr(start, pos - start));
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    if (into != nullptr) *into = d;
    return true;
  }

  /// `into` == nullptr validates only.
  bool value(JsonValue* into) {
    skip_ws();
    if (pos >= text.size()) return false;
    switch (text[pos]) {
      case '{': {
        ++pos;
        if (into != nullptr) into->kind_ = JsonValue::Kind::kObject;
        skip_ws();
        if (eat('}')) return true;
        for (;;) {
          skip_ws();
          std::string key;
          if (!string(into != nullptr ? &key : nullptr)) return false;
          skip_ws();
          if (!eat(':')) return false;
          JsonValue* slot = nullptr;
          if (into != nullptr) {
            slot = &into->members_.emplace_back(std::move(key), JsonValue())
                        .second;
          }
          if (!value(slot)) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      case '[': {
        ++pos;
        if (into != nullptr) into->kind_ = JsonValue::Kind::kArray;
        skip_ws();
        if (eat(']')) return true;
        for (;;) {
          JsonValue* slot =
              into != nullptr ? &into->array_.emplace_back() : nullptr;
          if (!value(slot)) return false;
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        if (into != nullptr) {
          into->kind_ = JsonValue::Kind::kString;
          return string(&into->string_);
        }
        return string(nullptr);
      case 't':
        if (into != nullptr) {
          into->kind_ = JsonValue::Kind::kBool;
          into->bool_ = true;
        }
        return literal("true");
      case 'f':
        if (into != nullptr) into->kind_ = JsonValue::Kind::kBool;
        return literal("false");
      case 'n':
        return literal("null");
      default:
        if (into != nullptr) into->kind_ = JsonValue::Kind::kNumber;
        return number(into != nullptr ? &into->number_ : nullptr);
    }
  }
};

bool json_validate(std::string_view text) {
  JsonParser p{text};
  if (!p.value(nullptr)) return false;
  p.skip_ws();
  return p.pos == text.size();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonParser p{text};
  JsonValue root;
  if (!p.value(&root)) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return root;
}

}  // namespace keybin2::runtime
