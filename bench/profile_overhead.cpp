// Continuous-profiler overhead benchmark (DESIGN.md §8).
//
// Alternates plain and fully profiled distributed fits (sampling profiler
// at the default 2 ms cadence + perf counters when available + live
// telemetry publishing) over the thread backend and measures the wall-time
// ratio. Two guarantees are gated:
//   * overhead — the mean profiled/plain ratio must stay under 1.05: the
//     profiler is a production always-on facility, not a debug mode, so a
//     5% fit-time tax is the acceptance bar and the bench exits nonzero
//     beyond it;
//   * non-perturbation — every run's model bytes and labels must be
//     bit-identical between the plain and profiled fit. Profiling observes
//     the computation; it may never change it. The bench aborts on the
//     first divergence.
//
// Pair ordering alternates (plain-first on even runs, profiled-first on
// odd) so slow machine drift — thermal, cache warmup, a neighbour on the
// CI box — cancels out of the ratio instead of biasing one side.
//
// Series written to BENCH_profile_overhead.json (the *_seconds series are
// gated lower-is-better by the perf-regression comparison; the ratio is
// informational there because its inputs are gated directly):
//   plain_fit_seconds, profiled_fit_seconds, profile_overhead_ratio
#include <chrono>
#include <cstdio>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/serialize.hpp"
#include "core/keybin2.hpp"
#include "runtime/context.hpp"
#include "runtime/profile/telemetry.hpp"

#ifndef __linux__
int main() {
  std::fprintf(
      stderr,
      "profile_overhead: the telemetry plane requires Linux; skipping\n");
  return 0;
}
#else

namespace keybin2 {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One distributed fit; `tele` non-null turns on the full profiler stack
/// (sampler + perf counters + telemetry publishing). Returns wall seconds
/// and fills `fingerprints` with each rank's {model bytes, labels} blob.
double timed_fit(const std::vector<data::Dataset>& shards,
                 const core::Params& params,
                 runtime::profile::TelemetrySegment* tele,
                 std::vector<std::vector<std::byte>>& fingerprints) {
  const int ranks = static_cast<int>(shards.size());
  const double t0 = now_seconds();
  fingerprints = comm::run_ranks_collect_bytes(
      comm::LaunchOptions{}, ranks,
      [&](comm::Communicator& c) -> std::vector<std::byte> {
        const auto r = static_cast<std::size_t>(c.rank());
        runtime::Context ctx(c, params.seed);
        if (tele != nullptr) {
          ctx.enable_profiler({}, tele->slot(c.rank()));
        }
        const auto result = core::fit(ctx, shards[r].points, params);
        if (ctx.profiler() != nullptr) ctx.profiler()->stop();
        ByteWriter w;
        result.model.serialize(w);
        w.write_vec(result.labels);
        return w.take();
      });
  return now_seconds() - t0;
}

int run_bench(const bench::Options& opt) {
  const auto spec = data::make_paper_mixture(8, 4, opt.seed);
  const auto d = data::sample(
      spec, opt.points_per_rank * static_cast<std::size_t>(opt.ranks),
      static_cast<unsigned>(opt.seed + 1));
  const auto shards = data::shard(d, opt.ranks);
  core::Params params;
  params.seed = opt.seed;

  runtime::profile::TelemetrySegment tele(
      "kb2-profov-" + std::to_string(getpid()), opt.ranks,
      "profile_overhead bench");

  bench::Series plain_s, profiled_s, ratio_s;
  std::printf("== profile overhead: %d ranks x %zu points ==\n", opt.ranks,
              opt.points_per_rank);
  // One unrecorded warmup pair: page faults, allocator growth, and branch
  // history belong to neither side of the ratio.
  std::vector<std::vector<std::byte>> plain_fp, profiled_fp;
  (void)timed_fit(shards, params, nullptr, plain_fp);
  (void)timed_fit(shards, params, &tele, profiled_fp);

  for (int run = 0; run < opt.runs; ++run) {
    double tp, tq;
    if (run % 2 == 0) {
      tp = timed_fit(shards, params, nullptr, plain_fp);
      tq = timed_fit(shards, params, &tele, profiled_fp);
    } else {
      tq = timed_fit(shards, params, &tele, profiled_fp);
      tp = timed_fit(shards, params, nullptr, plain_fp);
    }
    for (std::size_t r = 0; r < plain_fp.size(); ++r) {
      if (plain_fp[r] != profiled_fp[r]) {
        std::fprintf(stderr,
                     "FATAL: profiled fit fingerprint diverges from plain "
                     "on rank %zu — profiling perturbed the computation\n",
                     r);
        std::exit(1);
      }
    }
    plain_s.add(tp);
    profiled_s.add(tq);
    ratio_s.add(tq / tp);
    std::printf("run %d: plain %.3fs  profiled %.3fs  ratio %.3fx\n", run,
                tp, tq, tq / tp);
  }
  std::printf("plain %s s | profiled %s s | ratio %s\n",
              plain_s.str().c_str(), profiled_s.str().c_str(),
              ratio_s.str(3).c_str());

  auto& rep = bench::Reporter::global();
  rep.add_series("plain_fit_seconds", plain_s);
  rep.add_series("profiled_fit_seconds", profiled_s);
  rep.add_series("profile_overhead_ratio", ratio_s);
  rep.write(opt);

  if (ratio_s.mean() >= 1.05) {
    std::fprintf(stderr,
                 "FAIL: profiling overhead %.3fx >= 1.05x acceptance bar\n",
                 ratio_s.mean());
    return 1;
  }
  std::printf(
      "profile_overhead: OK (%.3fx < 1.05x, fingerprints bit-identical)\n",
      ratio_s.mean());
  return 0;
}

}  // namespace
}  // namespace keybin2

int main(int argc, char** argv) {
  const auto opt = keybin2::bench::Options::parse(argc, argv);
  return keybin2::run_bench(opt);
}

#endif  // __linux__
