file(REMOVE_RECURSE
  "libkb2_md.a"
)
