# Empty dependencies file for kb2_stats.
# This may be replaced when dependencies are built.
