#include "core/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>

#include "comm/recovery.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "core/projection.hpp"

namespace keybin2::core {

StreamingKeyBin2::StreamingKeyBin2(std::size_t input_dims, Params params,
                                   std::size_t reservoir_capacity)
    : input_dims_(input_dims),
      params_(params),
      n_rp_(params.use_projection
                ? (params.n_rp > 0 ? params.n_rp : choose_n_rp(input_dims))
                : static_cast<int>(input_dims)),
      reservoir_capacity_(reservoir_capacity),
      reservoir_(0, input_dims),
      reservoir_rng_(params.seed ^ 0x5eedbeefULL) {
  KB2_CHECK_MSG(input_dims >= 1, "stream schema needs >= 1 dimension");
  KB2_CHECK_MSG(reservoir_capacity >= 16,
                "reservoir capacity " << reservoir_capacity << " too small");
  const int trials = params_.use_projection ? params_.bootstrap_trials : 1;
  Rng seed_stream(params_.seed);
  trials_.resize(static_cast<std::size_t>(trials));
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      trial.projection =
          make_projection_matrix(input_dims, n_rp_, seed_stream.fork_seed());
    }
    trial.anchored.assign(static_cast<std::size_t>(n_rp_), false);
    trial.hists.resize(static_cast<std::size_t>(n_rp_));
    trial.seen_lo.assign(static_cast<std::size_t>(n_rp_),
                         std::numeric_limits<double>::infinity());
    trial.seen_hi.assign(static_cast<std::size_t>(n_rp_),
                         -std::numeric_limits<double>::infinity());
  }
  scratch_.resize(static_cast<std::size_t>(n_rp_));
}

void StreamingKeyBin2::ingest(TrialState& trial,
                              std::span<const double> projected) {
  for (std::size_t j = 0; j < projected.size(); ++j) {
    const double v = projected[j];
    trial.seen_lo[j] = std::min(trial.seen_lo[j], v);
    trial.seen_hi[j] = std::max(trial.seen_hi[j], v);
    if (!trial.anchored[j]) {
      // Anchor the key range on the first observed value; the unit-width
      // start range doubles as needed afterwards.
      const double base = std::floor(v);
      trial.hists[j] = stats::HierarchicalHistogram(base, base + 1.0,
                                                    params_.max_depth);
      trial.anchored[j] = true;
    }
    auto& h = trial.hists[j];
    // Grow the range geometrically until the value fits (amortized O(1)).
    while (v >= h.hi()) h.expand_right();
    while (v < h.lo()) h.expand_left();
    h.add(v);
  }
}

void StreamingKeyBin2::push(std::span<const double> point) {
  KB2_CHECK_MSG(point.size() == input_dims_,
                "point has " << point.size() << " dims, stream expects "
                             << input_dims_);
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      project_point(point, trial.projection, scratch_);
      ingest(trial, scratch_);
    } else {
      ingest(trial, point);
    }
  }

  // Reservoir sampling (algorithm R) over the raw points.
  if (reservoir_.rows() < reservoir_capacity_) {
    reservoir_.append_row(point);
  } else {
    const auto slot = reservoir_rng_.uniform_int(points_seen_ + 1);
    if (slot < reservoir_capacity_) {
      auto row = reservoir_.row(static_cast<std::size_t>(slot));
      std::copy(point.begin(), point.end(), row.begin());
    }
  }
  ++points_seen_;
}

void StreamingKeyBin2::push_batch(const Matrix& batch) {
  for (std::size_t i = 0; i < batch.rows(); ++i) push(batch.row(i));
}

const Model& StreamingKeyBin2::refit_once(runtime::Context& ctx) {
  auto refit_scope = ctx.tracer().scope(stage::kRefit);
  const bool is_root = ctx.is_root();
  const double total_points = ctx.comm().allreduce(
      static_cast<double>(points_seen_), comm::ReduceOp::kSum);
  KB2_CHECK_MSG(total_points > 0.0, "refit before any point was pushed");
  const double local_weight =
      reservoir_.rows() > 0
          ? static_cast<double>(points_seen_) /
                static_cast<double>(reservoir_.rows())
          : 0.0;

  struct Best {
    double score = -1.0;
    std::vector<int> depths;  // one per kept dimension
    Matrix projection;
    std::vector<int> kept_dims;
    std::vector<Range> ranges;
    std::vector<DimensionPartition> partitions;
    std::vector<Cell> cells;
  } best;

  const auto dims = static_cast<std::size_t>(n_rp_);
  for (std::size_t t = 0; t < trials_.size(); ++t) {
    auto& trial = trials_[t];
    auto trial_scope = ctx.tracer().scope(stage::trial(t));

    // (2a) Reconcile per-dimension ranges across ranks onto the tight global
    // envelope of observed values (same stage as batch fit, fed from the
    // incrementally tracked extremes instead of a point rescan).
    const auto ranges = stage_agree_ranges(ctx, trial.seen_lo, trial.seen_hi);

    // Ranks that saw different data anchored and expanded their doubling
    // histograms differently, so each rebins onto the common geometry
    // (placement error bounded by one source-bin width).
    std::vector<stats::HierarchicalHistogram> merged;
    merged.reserve(dims);
    {
      auto rebin_scope = ctx.tracer().scope(stage::kRebin);
      for (std::size_t j = 0; j < dims; ++j) {
        if (trial.anchored[j]) {
          if (trial.hists[j].lo() != ranges[j].lo ||
              trial.hists[j].hi() != ranges[j].hi) {
            trial.hists[j] = stats::rebin_hierarchy(trial.hists[j],
                                                    ranges[j].lo,
                                                    ranges[j].hi);
          }
        } else {
          trial.hists[j] = stats::HierarchicalHistogram(ranges[j].lo,
                                                        ranges[j].hi,
                                                        params_.max_depth);
          trial.anchored[j] = true;
        }
        merged.push_back(trial.hists[j]);
      }
    }

    // (3) Merge histograms across ranks.
    stage_merge_histograms(ctx, merged, params_.topology);

    // KS collapsing, as in batch fit.
    const auto kept_dims = collapse_dimensions(ctx, merged, params_);
    // No structure under this projection: single-cluster fallback candidate.
    if (kept_dims.empty()) {
      if (is_root && best.score < 0.0) {
        best.score = 0.0;
        best.projection = trial.projection;
        best.ranges = ranges;
      }
      continue;
    }

    // Reservoir keys under this trial's projection and the merged ranges.
    KeyTable keys;
    {
      auto keys_scope = ctx.tracer().scope(stage::kReservoirKeys);
      Matrix projected_reservoir =
          params_.use_projection ? project(reservoir_, trial.projection)
                                 : reservoir_;
      keys = compute_keys(projected_reservoir, ranges, params_.max_depth);
    }

    // (4) + (6) Partition every depth candidate and rate it; the root
    // tracks the best model, with reservoir counts scaled to stream mass.
    for (const auto& depths : depth_candidates(merged, kept_dims, params_)) {
      auto candidate =
          stage_partition(ctx, merged, kept_dims, depths, params_);
      auto assessed =
          stage_assess(ctx, keys, kept_dims, candidate, local_weight);
      if (assessed.scored && assessed.score > best.score) {
        best.score = assessed.score;
        best.depths = candidate.depths;
        best.projection = trial.projection;
        best.kept_dims = kept_dims;
        best.ranges = ranges;
        best.partitions = std::move(candidate.partitions);
        best.cells = std::move(assessed.cells);
      }
    }
  }

  std::optional<Model> root_model;
  if (is_root) {
    // The all-collapsed fallback has no kept dims, hence no depths.
    if (best.depths.size() != best.kept_dims.size()) {
      best.depths.assign(best.kept_dims.size(), params_.min_depth);
    }
    root_model.emplace(input_dims_, std::move(best.projection),
                       std::move(best.depths), std::move(best.kept_dims),
                       std::move(best.ranges), std::move(best.partitions),
                       std::move(best.cells), best.score, total_points,
                       params_.min_cluster_fraction);
  }
  model_ = stage_share_model(ctx, std::move(root_model));
  return *model_;
}

const Model& StreamingKeyBin2::refit(runtime::Context& ctx) {
  if (params_.comm_timeout_seconds > 0.0) {
    ctx.comm().set_timeout(params_.comm_timeout_seconds);
  }

  // Same recovery loop as core::fit (see keybin2.cpp): restart the whole
  // refit after a recoverable transport failure, over the survivor group if
  // ranks died. The retried pass rebins each rank's doubling histograms onto
  // the freshly agreed ranges — rebinning conserves mass, so a second pass
  // over already-rebinned state is harmless.
  int attempt = 0;
  bool recover = false;
  for (;;) {
    try {
      if (recover) {
        recover = false;
        const double pause_ms = comm::backoff_ms(
            params_.recovery, attempt - 1,
            static_cast<std::uint64_t>(ctx.comm().rank()));
        if (pause_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              pause_ms));
        }
        ctx.shrink_to_survivors();
        if (ctx.is_root()) ctx.tracer().counter("fit_retries", 1.0);
      }
      return refit_once(ctx);
    } catch (const comm::FitAbortedError&) {
      throw;
    } catch (const comm::CommError& e) {
      if (attempt >= params_.max_shrink_retries) {
        ctx.log().error("refit_abandoned",
                        {{"kind", comm::error_kind(e)},
                         {"attempts", std::to_string(attempt)}});
        throw comm::FitAbortedError(
            std::string("refit aborted after ") + std::to_string(attempt) +
                " retries; last failure [" + comm::error_kind(e) +
                "]: " + e.what(),
            attempt, comm::error_kind(e));
      }
      ++attempt;
      recover = true;
      ctx.metrics().add("fit_retries");
      ctx.log().warn("refit_retry", {{"kind", comm::error_kind(e)},
                                     {"attempt", std::to_string(attempt)},
                                     {"what", e.what()}});
    }
  }
}

const Model& StreamingKeyBin2::refit(comm::Communicator& comm) {
  runtime::Context ctx(comm, params_.seed);
  return refit(ctx);
}

const Model& StreamingKeyBin2::refit() {
  comm::SelfComm self;
  runtime::Context ctx(self, params_.seed);
  return refit(ctx);
}

const Model& StreamingKeyBin2::model() const {
  KB2_CHECK_MSG(model_.has_value(), "no model yet: call refit() first");
  return *model_;
}

int StreamingKeyBin2::label(std::span<const double> point) const {
  return model().predict(point);
}

void StreamingKeyBin2::serialize(ByteWriter& w) const {
  // Structural fields first, so restore() can reject a checkpoint taken
  // under incompatible Params before touching any state.
  w.write<std::uint64_t>(input_dims_);
  w.write<std::int32_t>(n_rp_);
  w.write<std::int32_t>(params_.max_depth);
  w.write<std::uint64_t>(params_.seed);
  w.write<std::uint64_t>(static_cast<std::uint64_t>(trials_.size()));
  w.write<std::uint64_t>(points_seen_);

  for (const auto& trial : trials_) {
    w.write<std::uint64_t>(trial.projection.rows());
    w.write<std::uint64_t>(trial.projection.cols());
    w.write_span(trial.projection.flat());
    w.write<std::uint64_t>(static_cast<std::uint64_t>(trial.anchored.size()));
    for (const bool a : trial.anchored) {
      w.write<std::uint8_t>(a ? std::uint8_t{1} : std::uint8_t{0});
    }
    w.write_vec(trial.seen_lo);
    w.write_vec(trial.seen_hi);
    w.write<std::uint64_t>(static_cast<std::uint64_t>(trial.hists.size()));
    for (const auto& h : trial.hists) {
      // Unanchored slots hold a default-constructed hierarchy: max_depth 0,
      // no bins. Writing (lo, hi, depth, counts) covers both cases.
      w.write<double>(h.lo());
      w.write<double>(h.hi());
      w.write<std::int32_t>(h.max_depth());
      w.write_span(h.deepest_counts());
    }
  }

  w.write<std::uint64_t>(reservoir_.rows());
  w.write<std::uint64_t>(reservoir_.cols());
  w.write_span(reservoir_.flat());
  // RNG state field by field — serializing the State struct wholesale would
  // embed padding bytes, which poisons the checkpoint CRC with garbage.
  const Rng::State rng_state = reservoir_rng_.state();
  for (const std::uint64_t s : rng_state.s) w.write<std::uint64_t>(s);
  w.write<std::uint8_t>(rng_state.has_spare ? std::uint8_t{1}
                                            : std::uint8_t{0});
  w.write<double>(rng_state.spare);

  w.write<std::uint8_t>(model_.has_value() ? std::uint8_t{1}
                                           : std::uint8_t{0});
  if (model_.has_value()) model_->serialize(w);
}

void StreamingKeyBin2::restore(ByteReader& r) {
  const auto dims = r.read<std::uint64_t>();
  KB2_CHECK_MSG(dims == input_dims_,
                "checkpoint was taken with input_dims=" << dims
                                                        << ", engine has "
                                                        << input_dims_);
  const auto n_rp = r.read<std::int32_t>();
  KB2_CHECK_MSG(n_rp == n_rp_, "checkpoint was taken with n_rp="
                                   << n_rp << ", engine has " << n_rp_);
  const auto max_depth = r.read<std::int32_t>();
  KB2_CHECK_MSG(max_depth == params_.max_depth,
                "checkpoint was taken with max_depth=" << max_depth
                                                       << ", engine has "
                                                       << params_.max_depth);
  const auto seed = r.read<std::uint64_t>();
  KB2_CHECK_MSG(seed == params_.seed,
                "checkpoint was taken with seed=" << seed << ", engine has "
                                                  << params_.seed);
  const auto n_trials = r.read<std::uint64_t>();
  KB2_CHECK_MSG(n_trials == trials_.size(),
                "checkpoint holds " << n_trials << " trials, engine has "
                                    << trials_.size());
  points_seen_ = r.read<std::uint64_t>();

  for (auto& trial : trials_) {
    const auto prows = r.read<std::uint64_t>();
    const auto pcols = r.read<std::uint64_t>();
    auto pdata = r.read_vec<double>();
    trial.projection = Matrix(static_cast<std::size_t>(prows),
                              static_cast<std::size_t>(pcols),
                              std::move(pdata));
    const auto n_anchored = r.read<std::uint64_t>();
    KB2_CHECK_MSG(n_anchored == static_cast<std::uint64_t>(n_rp_),
                  "checkpoint trial has " << n_anchored
                                          << " dimensions, engine has "
                                          << n_rp_);
    trial.anchored.assign(static_cast<std::size_t>(n_anchored), false);
    for (std::size_t j = 0; j < trial.anchored.size(); ++j) {
      trial.anchored[j] = r.read<std::uint8_t>() != 0;
    }
    trial.seen_lo = r.read_vec<double>();
    trial.seen_hi = r.read_vec<double>();
    const auto n_hists = r.read<std::uint64_t>();
    KB2_CHECK_MSG(n_hists == static_cast<std::uint64_t>(n_rp_),
                  "checkpoint trial has " << n_hists
                                          << " histograms, engine has "
                                          << n_rp_);
    trial.hists.clear();
    trial.hists.reserve(static_cast<std::size_t>(n_hists));
    for (std::uint64_t j = 0; j < n_hists; ++j) {
      const auto lo = r.read<double>();
      const auto hi = r.read<double>();
      const auto depth = r.read<std::int32_t>();
      auto counts = r.read_vec<double>();
      if (depth == 0) {
        KB2_CHECK_MSG(counts.empty(),
                      "unanchored histogram carries " << counts.size()
                                                      << " counts");
        trial.hists.emplace_back();
      } else {
        stats::HierarchicalHistogram h(lo, hi, depth);
        h.set_deepest_counts(std::move(counts));
        trial.hists.push_back(std::move(h));
      }
    }
  }

  const auto rrows = r.read<std::uint64_t>();
  const auto rcols = r.read<std::uint64_t>();
  auto rdata = r.read_vec<double>();
  KB2_CHECK_MSG(rcols == input_dims_,
                "checkpoint reservoir has " << rcols << " columns, engine has "
                                            << input_dims_);
  KB2_CHECK_MSG(rrows <= reservoir_capacity_,
                "checkpoint reservoir holds " << rrows
                                              << " rows, engine capacity is "
                                              << reservoir_capacity_);
  reservoir_ = Matrix(static_cast<std::size_t>(rrows),
                      static_cast<std::size_t>(rcols), std::move(rdata));

  Rng::State rng_state;
  for (auto& s : rng_state.s) s = r.read<std::uint64_t>();
  rng_state.has_spare = r.read<std::uint8_t>() != 0;
  rng_state.spare = r.read<double>();
  reservoir_rng_.set_state(rng_state);

  if (r.read<std::uint8_t>() != 0) {
    model_ = Model::deserialize(r);
  } else {
    model_.reset();
  }
}

void StreamingKeyBin2::save_checkpoint(const std::string& path) const {
  ByteWriter w;
  serialize(w);
  write_checkpoint_file(path, w.bytes());
}

StreamingKeyBin2 StreamingKeyBin2::resume_from(const std::string& path,
                                               Params params,
                                               std::size_t reservoir_capacity) {
  // A corrupt or missing primary falls back to the ".prev" generation the
  // atomic writer demoted; only when both are unreadable does the typed
  // CheckpointError (naming the primary and its defect) propagate.
  const auto payload = read_checkpoint_file_or_previous(path);
  ByteReader peek(payload);
  const auto dims = peek.read<std::uint64_t>();
  StreamingKeyBin2 engine(static_cast<std::size_t>(dims), params,
                          reservoir_capacity);
  ByteReader r(payload);
  engine.restore(r);
  KB2_CHECK_MSG(r.exhausted(),
                "checkpoint " << path << " payload has " << r.remaining()
                              << " trailing bytes");
  return engine;
}

}  // namespace keybin2::core
