#include "md/fingerprint.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace keybin2::md {
namespace {

TEST(Segments, BasicRuns) {
  std::vector<int> labels{1, 1, 2, 2, 2, 3};
  const auto segs = fingerprint_segments(labels);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 2u);
  EXPECT_EQ(segs[0].label, 1);
  EXPECT_EQ(segs[2].begin, 5u);
  EXPECT_EQ(segs[2].end, 6u);
}

TEST(Segments, EmptyInput) {
  EXPECT_TRUE(fingerprint_segments({}).empty());
  EXPECT_TRUE(change_points({}).empty());
}

TEST(Segments, SingleRun) {
  std::vector<int> labels{7, 7, 7};
  const auto segs = fingerprint_segments(labels);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].end, 3u);
  EXPECT_TRUE(change_points(labels).empty());
}

TEST(Segments, DebounceAbsorbsFlicker) {
  // A single-frame flicker (label 9) inside a long run of 1s.
  std::vector<int> labels{1, 1, 1, 9, 1, 1, 1};
  const auto raw = fingerprint_segments(labels, 1);
  EXPECT_EQ(raw.size(), 3u);
  const auto debounced = fingerprint_segments(labels, 2);
  ASSERT_EQ(debounced.size(), 1u);
  EXPECT_EQ(debounced[0].label, 1);
  EXPECT_EQ(debounced[0].end, 7u);
}

TEST(Segments, DebounceKeepsRealTransitions) {
  std::vector<int> labels{1, 1, 1, 1, 2, 2, 2, 2};
  const auto segs = fingerprint_segments(labels, 3);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1].begin, 4u);
}

TEST(ChangePoints, MatchSegmentStarts) {
  std::vector<int> labels{0, 0, 1, 1, 0, 0};
  const auto points = change_points(labels);
  EXPECT_EQ(points, (std::vector<std::size_t>{2, 4}));
}

TEST(BoundaryAgreement, ExactMatchesScorePerfect) {
  const std::vector<std::size_t> truth{100, 200, 300};
  const auto s = boundary_agreement(truth, truth, 0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(BoundaryAgreement, ToleranceAllowsNearMisses) {
  const std::vector<std::size_t> predicted{105, 195, 290};
  const std::vector<std::size_t> truth{100, 200, 300};
  EXPECT_DOUBLE_EQ(boundary_agreement(predicted, truth, 10).f1, 1.0);
  EXPECT_LT(boundary_agreement(predicted, truth, 2).f1, 0.5);
}

TEST(BoundaryAgreement, ExtraPredictionsCostPrecision) {
  const std::vector<std::size_t> predicted{100, 150, 200, 250};
  const std::vector<std::size_t> truth{100, 200};
  const auto s = boundary_agreement(predicted, truth, 5);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
}

TEST(BoundaryAgreement, MissedBoundariesCostRecall) {
  const std::vector<std::size_t> predicted{100};
  const std::vector<std::size_t> truth{100, 200, 300};
  const auto s = boundary_agreement(predicted, truth, 5);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
}

TEST(BoundaryAgreement, OneToOneMatching) {
  // Two predictions near one true boundary: only one may claim it.
  const std::vector<std::size_t> predicted{99, 101};
  const std::vector<std::size_t> truth{100};
  const auto s = boundary_agreement(predicted, truth, 5);
  EXPECT_EQ(s.matched, 1u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
}

TEST(BoundaryAgreement, EmptyInputs) {
  const std::vector<std::size_t> some{10};
  EXPECT_DOUBLE_EQ(boundary_agreement({}, some, 5).f1, 0.0);
  EXPECT_DOUBLE_EQ(boundary_agreement(some, {}, 5).f1, 0.0);
}

}  // namespace
}  // namespace keybin2::md
