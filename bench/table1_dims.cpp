// Table 1: 1.28 M points on 16 MPI processes, dimensionality 20 -> 1280.
//
// Paper setup: 4-component Gaussian mixture with diagonal covariance, 80,000
// points per process; KeyBin2 (non-parametric) vs kmeans++ (given k=4) vs
// parallel-kmeans (given k=4). Scaled-down defaults; --full restores the
// paper's sizes.
//
// Shape to reproduce: KeyBin2 finds more clusters than truth with high
// precision and the best F1; its time grows slowly with dimensionality,
// while parallel-kmeans degrades in both accuracy and time; kmeans++ stops
// converging at high dimensionality (the paper shows no entry above 80 dims
// — we run it and report whatever it does, flagging non-convergence).
#include <cstdio>

#include "baselines/kmeans.hpp"
#include "baselines/parallel_kmeans.hpp"
#include "bench/bench_util.hpp"
#include "comm/launch.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace {

using namespace keybin2;

void run_dimension(std::size_t dims, const bench::Options& opt) {
  bench::MethodSeries keybin2_row, kmeanspp_row, parallel_row;
  bool kmeanspp_converged = true;

  for (int run = 0; run < opt.runs; ++run) {
    const std::uint64_t run_seed = opt.seed + 1000 * run;
    const auto spec = data::make_paper_mixture(dims, 4, run_seed);
    const auto total_points =
        opt.points_per_rank * static_cast<std::size_t>(opt.ranks);
    const auto d = data::sample(spec, total_points, run_seed + 1);
    const auto shards = data::shard(d, opt.ranks);
    const auto ranges = data::partition_rows(d.size(), opt.ranks);

    // KeyBin2 (never told k).
    {
      std::vector<int> combined(d.size());
      core::Params params;
      params.seed = run_seed;
      WallTimer timer;
      comm::run_ranks(opt.ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        runtime::Context ctx(c, params.seed);
        const auto result = core::fit(ctx, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
        if (opt.trace && run == 0) {  // uniform across ranks: collective OK
          bench::print_trace("keybin2 per-stage, run 0", ctx.trace_report());
        }
      });
      keybin2_row.add(bench::score_labels(combined, d.labels),
                      timer.seconds());
    }

    // kmeans++ (serial, given the true k) — the scikit-learn comparator.
    {
      baselines::KMeansParams params;
      params.k = 4;
      params.seed = run_seed;
      params.n_init = 10;  // scikit-learn's default, matching the comparator
      WallTimer timer;
      const auto result = baselines::kmeans(d.points, params);
      kmeanspp_row.add(bench::score_labels(result.labels, d.labels),
                       timer.seconds());
      kmeanspp_converged = kmeanspp_converged && result.converged;
    }

    // parallel-kmeans (distributed, given the true k).
    {
      baselines::KMeansParams params;
      params.k = 4;
      params.seed = run_seed;
      std::vector<int> combined(d.size());
      WallTimer timer;
      comm::run_ranks(opt.ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result =
            baselines::parallel_kmeans(c, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
      });
      parallel_row.add(bench::score_labels(combined, d.labels),
                       timer.seconds());
    }
  }

  std::printf("\n== %zu dimensions ==\n", dims);
  bench::print_header();
  keybin2_row.print_row("KeyBin2");
  kmeanspp_row.print_row(kmeanspp_converged ? "kmeans++"
                                            : "kmeans++ (nc!)");
  parallel_row.print_row("parallel-kmeans");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  std::printf(
      "Table 1 reproduction: %zu points on %d simulated ranks (%zu per "
      "rank), %d runs, 4-component Gaussian mixture.\n",
      opt.points_per_rank * static_cast<std::size_t>(opt.ranks), opt.ranks,
      opt.points_per_rank, opt.runs);
  std::printf(
      "k=4 is GIVEN to kmeans++ and parallel-kmeans; KeyBin2 is "
      "non-parametric.\n");
  for (std::size_t dims : {20ul, 80ul, 320ul, 1280ul}) {
    run_dimension(dims, opt);
  }
  bench::Reporter::global().write(opt);
  return 0;
}
