// Seeded chaos schedules for the soak harness (tools/kb2_soak).
//
// A ChaosSchedule is a small, fully deterministic description of "what goes
// wrong in this run": which rank dies, at which protocol operation, whether
// its respawned replacement dies too, which rank's traffic is delayed, and
// whether the run's checkpoint file gets damaged between phases. Everything
// is derived from one u64 seed (splitmix64 draws), so any soak failure is
// reproducible from the seed printed in its report line.
//
// The schedule compiles down to the comm layer's existing FaultSchedule via
// fault_for(rank, incarnation): each forked rank wraps its endpoint in a
// fault::FaultyComm built from that, so kills land as real SIGKILLs at a
// protocol point (hard_kill under the process backend) and the respawned
// incarnation gets its own — usually clean — schedule. Gating on the
// incarnation is what lets a replacement survive where its predecessor
// died; without it the respawn would re-kill at the same op forever.
#pragma once

#include <cstdint>
#include <string>

#include "comm/fault.hpp"

namespace keybin2::comm::chaos {

/// One seeded fault plan for a whole soak run.
struct ChaosSchedule {
  std::uint64_t seed = 1;

  /// Kill plan: `victim` dies at its `kill_at_op`-th comm operation
  /// (0 = nobody dies). When `kill_respawn` is set the replacement
  /// incarnation is killed too, at `respawn_kill_at_op` — a double failure
  /// that must fall down the recovery ladder, not hang.
  int victim = -1;
  std::uint64_t kill_at_op = 0;
  bool kill_respawn = false;
  std::uint64_t respawn_kill_at_op = 0;

  /// Delay plan: `delay_rank`'s sends are held `delay_ms` with probability
  /// `delay_prob` (-1 = nobody delayed). Stresses timeout paths without
  /// changing any result bytes.
  int delay_rank = -1;
  double delay_prob = 0.0;
  double delay_ms = 0.0;

  /// Checkpoint plan: when >= 0, the soak driver damages the run's
  /// checkpoint file with core::CheckpointCorruption(corrupt_checkpoint)
  /// before the restore phase.
  int corrupt_checkpoint = -1;

  /// The FaultSchedule rank `rank` should wrap its endpoint in, given that
  /// it is the `incarnation`-th process to hold the slot (0 = original).
  fault::FaultSchedule fault_for(int rank, int incarnation) const;

  /// One-line human description ("seed=7 kill r2@op13 +respawn@op9 ...").
  std::string describe() const;
};

/// Derive a schedule deterministically from (seed, n_ranks). Roughly: 3/4
/// of seeds kill somebody, 1/4 of those also kill the replacement, half
/// delay a rank, 1/3 damage the checkpoint.
ChaosSchedule make_chaos_schedule(std::uint64_t seed, int n_ranks);

/// Soak base seed: KB2_CHAOS_SEED when set, else `fallback`.
std::uint64_t chaos_seed_from_env(std::uint64_t fallback);

}  // namespace keybin2::comm::chaos
