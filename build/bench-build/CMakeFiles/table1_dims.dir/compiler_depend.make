# Empty compiler generated dependencies file for table1_dims.
# This may be replaced when dependencies are built.
