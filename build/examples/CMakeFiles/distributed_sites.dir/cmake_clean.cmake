file(REMOVE_RECURSE
  "CMakeFiles/distributed_sites.dir/distributed_sites.cpp.o"
  "CMakeFiles/distributed_sites.dir/distributed_sites.cpp.o.d"
  "distributed_sites"
  "distributed_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
