// Backbone construction from torsion angles (NeRF — Natural Extension
// Reference Frame).
//
// The paper characterizes conformations by (phi, psi, omega); real MD data
// arrives as 3-D atom coordinates. This module closes the loop: it builds a
// physically-plausible N-CA-C backbone from torsions using ideal bond
// geometry, and recovers the torsions from coordinates via dihedrals — so
// tests can verify torsions -> coordinates -> torsions roundtrips exactly,
// and the Kabsch RMSD in md/kabsch.hpp has honest 3-D conformations to work
// on.
#pragma once

#include <vector>

#include "md/geometry.hpp"
#include "md/trajectory.hpp"

namespace keybin2::md {

/// One residue's backbone atoms.
struct BackboneResidue {
  Vec3 n, ca, c;
};

/// Ideal backbone geometry (Engh & Huber averages, in angstroms/degrees).
struct BackboneGeometry {
  double n_ca = 1.458;
  double ca_c = 1.525;
  double c_n = 1.329;
  double angle_n_ca_c = 111.2;
  double angle_ca_c_n = 116.2;
  double angle_c_n_ca = 121.7;
};

/// Place atom D at `length` from C, with angle B-C-D = `angle_deg` and
/// torsion A-B-C-D = `torsion_deg` (the NeRF step).
Vec3 place_atom(const Vec3& a, const Vec3& b, const Vec3& c, double length,
                double angle_deg, double torsion_deg);

/// Build a backbone for `residues` residues from per-residue (phi, psi,
/// omega). phi[0] is undefined by convention and ignored; psi and omega of
/// the last residue position the (nonexistent) next residue and are ignored.
std::vector<BackboneResidue> build_backbone(
    std::span<const double> phi, std::span<const double> psi,
    std::span<const double> omega, const BackboneGeometry& geom = {});

/// Build the backbone of one trajectory frame.
std::vector<BackboneResidue> build_backbone(const Trajectory& traj,
                                            std::size_t frame,
                                            const BackboneGeometry& geom = {});

/// Recover (phi, psi, omega) per residue from backbone coordinates (the
/// first phi and the last psi/omega are reported as 0 / 180 / 180).
struct RecoveredTorsions {
  std::vector<double> phi, psi, omega;
};
RecoveredTorsions recover_torsions(std::span<const BackboneResidue> chain);

}  // namespace keybin2::md
