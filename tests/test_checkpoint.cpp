// Checkpoint/restart (DESIGN.md §4b): the container must reject every form
// of on-disk damage, the streaming engine must round-trip its exact state,
// and a killed-then-resumed out-of-core run must reproduce the uninterrupted
// run's model bit for bit.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/out_of_core.hpp"
#include "core/streaming.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "test_util.hpp"

namespace keybin2::core {
namespace {

std::vector<std::byte> model_bytes(const Model& m) {
  ByteWriter w;
  m.serialize(w);
  return {w.bytes().begin(), w.bytes().end()};
}

std::vector<std::byte> engine_bytes(const StreamingKeyBin2& e) {
  ByteWriter w;
  e.serialize(w);
  return {w.bytes().begin(), w.bytes().end()};
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& raw) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
}

class CheckpointFile : public ::testing::Test {
 protected:
  void SetUp() override { path_ = tmp_.make("kb2_ckpt", ".bin"); }
  testutil::TempPaths tmp_;
  std::string path_;
};

TEST_F(CheckpointFile, RoundTripPreservesPayload) {
  std::vector<std::byte> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 37 + 5);
  }
  write_checkpoint_file(path_, payload);
  EXPECT_EQ(read_checkpoint_file(path_), payload);
}

TEST_F(CheckpointFile, WriteIsAtomic) {
  // The temp file must not linger after a successful rename.
  write_checkpoint_file(path_, std::vector<std::byte>(16, std::byte{9}));
  std::ifstream tmp(path_ + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open());
}

TEST_F(CheckpointFile, RejectsMissingFile) {
  EXPECT_THROW(read_checkpoint_file("/tmp/kb2_no_such_ckpt.bin"), Error);
}

TEST_F(CheckpointFile, RejectsTruncatedFile) {
  write_checkpoint_file(path_, std::vector<std::byte>(256, std::byte{3}));
  auto raw = slurp(path_);
  ASSERT_GT(raw.size(), kCheckpointHeaderBytes);

  // Lose the payload tail: header now promises more bytes than exist.
  auto cut = raw;
  cut.resize(raw.size() - 40);
  spit(path_, cut);
  EXPECT_THROW(read_checkpoint_file(path_), Error);

  // Lose part of the header itself.
  cut.resize(kCheckpointHeaderBytes / 2);
  spit(path_, cut);
  EXPECT_THROW(read_checkpoint_file(path_), Error);
}

TEST_F(CheckpointFile, RejectsCorruptedPayload) {
  write_checkpoint_file(path_, std::vector<std::byte>(256, std::byte{3}));
  auto raw = slurp(path_);
  raw[kCheckpointHeaderBytes + 17] ^= 0x40;  // one flipped payload bit
  spit(path_, raw);
  EXPECT_THROW(read_checkpoint_file(path_), Error);
}

TEST_F(CheckpointFile, RejectsBadMagicAndVersion) {
  {  // not a checkpoint at all
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << "this is nobody's checkpoint file, honest                  ";
  }
  EXPECT_THROW(read_checkpoint_file(path_), Error);

  // Right magic, wrong version — a future format this build cannot read.
  write_checkpoint_file(path_, std::vector<std::byte>(8, std::byte{1}));
  auto raw = slurp(path_);
  raw[8] = 99;  // version field follows the u64 magic
  spit(path_, raw);
  EXPECT_THROW(read_checkpoint_file(path_), Error);
}

TEST_F(CheckpointFile, DefectsAreTypedAndAttributed) {
  // Every rejection is a CheckpointError carrying the path and a defect
  // class — the recovery ladder and the chaos gate dispatch on these, so
  // the mapping from damage to defect string is contractual.
  const std::vector<std::byte> payload(256, std::byte{3});
  const std::vector<std::pair<CheckpointCorruption, std::string>> cases = {
      {CheckpointCorruption::kTruncateHeader, "truncated"},
      {CheckpointCorruption::kTruncatePayload, "truncated"},
      {CheckpointCorruption::kZeroSpan, "crc_mismatch"},
      {CheckpointCorruption::kFlipBit, "crc_mismatch"},
      {CheckpointCorruption::kBadMagic, "bad_magic"},
  };
  for (const auto& [mode, defect] : cases) {
    write_checkpoint_file(path_, payload);
    corrupt_checkpoint_file(path_, mode, /*seed=*/7);
    try {
      (void)read_checkpoint_file(path_);
      FAIL() << "corruption mode " << static_cast<int>(mode)
             << " went undetected";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.defect(), defect)
          << "mode " << static_cast<int>(mode) << ": " << e.what();
      EXPECT_EQ(e.path(), path_);
    }
  }
  try {
    (void)read_checkpoint_file("/tmp/kb2_no_such_ckpt.bin");
    FAIL() << "missing file went undetected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.defect(), "missing");
  }
}

TEST_F(CheckpointFile, RewriteDemotesThePreviousGeneration) {
  const std::vector<std::byte> v1(64, std::byte{1});
  const std::vector<std::byte> v2(64, std::byte{2});
  write_checkpoint_file(path_, v1);
  write_checkpoint_file(path_, v2);
  EXPECT_EQ(read_checkpoint_file(path_), v2);
  EXPECT_EQ(read_checkpoint_file(path_ + ".prev"), v1);
  std::remove((path_ + ".prev").c_str());
}

TEST_F(CheckpointFile, FallbackRestoresFromPrevWhenPrimaryIsCorrupt) {
  const std::vector<std::byte> v1(64, std::byte{1});
  const std::vector<std::byte> v2(64, std::byte{2});
  write_checkpoint_file(path_, v1);
  write_checkpoint_file(path_, v2);
  corrupt_checkpoint_file(path_, CheckpointCorruption::kFlipBit, 3);

  bool used_previous = false;
  EXPECT_EQ(read_checkpoint_file_or_previous(path_, &used_previous), v1);
  EXPECT_TRUE(used_previous);

  // Both generations corrupt: the PRIMARY's typed error propagates (it
  // names the checkpoint the caller asked for, not the fallback).
  corrupt_checkpoint_file(path_ + ".prev", CheckpointCorruption::kZeroSpan, 3);
  try {
    (void)read_checkpoint_file_or_previous(path_);
    FAIL() << "two corrupt generations must not restore";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.path(), path_);
    EXPECT_EQ(e.defect(), "crc_mismatch");
  }
  std::remove((path_ + ".prev").c_str());
}

// ---- Streaming engine state capture ----

data::Dataset stream_data(std::size_t n, unsigned seed) {
  return data::sample(data::make_paper_mixture(6, 3, 1), n, seed);
}

TEST(StreamingCheckpoint, SerializeRestoreRoundTripsExactly) {
  const auto d = stream_data(900, 5);
  StreamingKeyBin2 a(6);
  a.push_batch(d.points);
  a.refit();

  StreamingKeyBin2 b(6);
  {
    ByteWriter w;
    a.serialize(w);
    ByteReader r(w.bytes());
    b.restore(r);
    EXPECT_TRUE(r.exhausted());
  }
  EXPECT_EQ(b.points_seen(), a.points_seen());
  ASSERT_TRUE(b.has_model());
  EXPECT_EQ(engine_bytes(b), engine_bytes(a));
  EXPECT_EQ(model_bytes(b.model()), model_bytes(a.model()));
}

TEST(StreamingCheckpoint, ResumedEngineContinuesTheStreamBitForBit) {
  // Feed half the stream, checkpoint, then feed the second half into both
  // the original and the resumed engine: every divergence — histogram
  // doubling, reservoir RNG draws, envelope tracking — would show up in the
  // final serialized bytes.
  const auto d = stream_data(1200, 6);
  testutil::TempPaths tmp;
  const std::string path = tmp.make("kb2_ckpt_stream", ".bin");

  StreamingKeyBin2 original(6);
  for (std::size_t i = 0; i < 600; ++i) original.push(d.points.row(i));
  original.save_checkpoint(path);
  auto resumed = StreamingKeyBin2::resume_from(path);

  for (std::size_t i = 600; i < 1200; ++i) {
    original.push(d.points.row(i));
    resumed.push(d.points.row(i));
  }
  original.refit();
  resumed.refit();
  EXPECT_EQ(engine_bytes(resumed), engine_bytes(original));
  EXPECT_EQ(model_bytes(resumed.model()), model_bytes(original.model()));
}

TEST(StreamingCheckpoint, RestoreRejectsMismatchedDims) {
  StreamingKeyBin2 a(6);
  a.push_batch(stream_data(50, 7).points);
  ByteWriter w;
  a.serialize(w);

  StreamingKeyBin2 wrong(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(wrong.restore(r), Error);
}

TEST(StreamingCheckpoint, RestoreRejectsTrailingGarbage) {
  StreamingKeyBin2 a(6);
  a.push_batch(stream_data(50, 7).points);
  ByteWriter w;
  a.serialize(w);
  w.write<std::uint32_t>(0xDEADBEEF);  // bytes serialize() never wrote

  testutil::TempPaths tmp;
  const std::string path = tmp.make("kb2_ckpt_trail", ".bin");
  write_checkpoint_file(path, w.bytes());
  EXPECT_THROW(StreamingKeyBin2::resume_from(path), Error);
}

// ---- Out-of-core kill-and-resume ----

class OutOfCoreCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    input_ = tmp_.make("kb2_ckpt_input", ".bin");
    labels_ = tmp_.make("kb2_ckpt_labels", ".bin");
    ckpt_ = tmp_.make("kb2_ckpt_state", ".bin");
    const auto spec = data::make_paper_mixture(10, 3, 1);
    data::write_binary(data::sample(spec, 4000, 2), input_);
  }
  testutil::TempPaths tmp_;
  std::string input_, labels_, ckpt_;
};

TEST_F(OutOfCoreCheckpoint, KilledThenResumedRunMatchesUninterruptedRun) {
  // Reference: one uninterrupted pass.
  const auto clean = fit_from_file(input_, labels_, {}, /*chunk=*/512);
  const auto clean_labels = read_labels(labels_);
  const auto clean_model = model_bytes(clean.model);

  // "Kill" the run after 3 of 8 chunks: the budget pause models a rank dying
  // between a checkpoint save and the next one.
  CheckpointOptions opts;
  opts.path = ckpt_;
  opts.every_chunks = 2;
  opts.max_chunks = 3;
  const auto paused = fit_from_file(input_, labels_, {}, 512, opts);
  EXPECT_FALSE(paused.completed);
  {
    std::ifstream probe(ckpt_, std::ios::binary);
    EXPECT_TRUE(probe.is_open());  // partial state survived the "death"
  }

  // Restart with the same arguments: resume from the checkpoint, finish,
  // and reproduce the reference fingerprint bit-identically.
  opts.max_chunks = 0;
  const auto resumed = fit_from_file(input_, labels_, {}, 512, opts);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.points, clean.points);
  EXPECT_EQ(resumed.chunks, clean.chunks);
  EXPECT_EQ(read_labels(labels_), clean_labels);
  EXPECT_EQ(model_bytes(resumed.model), clean_model);

  // Success removes the checkpoint: nothing stale to resume from.
  std::ifstream probe(ckpt_, std::ios::binary);
  EXPECT_FALSE(probe.is_open());
}

TEST_F(OutOfCoreCheckpoint, ResumeAcrossRepeatedPausesStillMatches) {
  const auto clean = fit_from_file(input_, labels_, {}, 512);
  const auto clean_labels = read_labels(labels_);

  CheckpointOptions opts;
  opts.path = ckpt_;
  opts.every_chunks = 1;
  opts.max_chunks = 2;
  OutOfCoreResult last;
  // Die every 2 chunks until the run finally completes.
  for (int attempt = 0; attempt < 16; ++attempt) {
    last = fit_from_file(input_, labels_, {}, 512, opts);
    if (last.completed) break;
  }
  ASSERT_TRUE(last.completed);
  EXPECT_EQ(read_labels(labels_), clean_labels);
  EXPECT_EQ(model_bytes(last.model),
            model_bytes(clean.model));
}

TEST_F(OutOfCoreCheckpoint, ResumeRejectsMismatchedChunkSize) {
  CheckpointOptions opts;
  opts.path = ckpt_;
  opts.every_chunks = 1;
  opts.max_chunks = 2;
  ASSERT_FALSE(fit_from_file(input_, labels_, {}, 512, opts).completed);

  // Same checkpoint, different chunking: the saved cursor is meaningless.
  opts.max_chunks = 0;
  EXPECT_THROW(fit_from_file(input_, labels_, {}, 256, opts), Error);
}

TEST_F(OutOfCoreCheckpoint, ResumeFallsBackToPrevThenRejectsWhenBothCorrupt) {
  // Two checkpoint generations land (every_chunks=1, max_chunks=2), so the
  // atomic writer demoted the first to ".prev". Corrupting the primary must
  // NOT kill the resume anymore — it restores one generation earlier and
  // completes (each remaining chunk is processed exactly once either way).
  // Only when BOTH generations are damaged does the typed error surface.
  CheckpointOptions opts;
  opts.path = ckpt_;
  opts.every_chunks = 1;
  opts.max_chunks = 2;
  ASSERT_FALSE(fit_from_file(input_, labels_, {}, 512, opts).completed);

  auto raw = slurp(ckpt_);
  ASSERT_GT(raw.size(), kCheckpointHeaderBytes + 8);
  raw[raw.size() - 3] ^= 0x10;
  spit(ckpt_, raw);
  opts.max_chunks = 0;
  EXPECT_TRUE(fit_from_file(input_, labels_, {}, 512, opts).completed)
      << "a corrupt primary with a good .prev generation must resume";

  // The completed run reclaims its checkpoints; pause again to get two
  // fresh generations, then damage both.
  opts.max_chunks = 2;
  ASSERT_FALSE(fit_from_file(input_, labels_, {}, 512, opts).completed);
  opts.max_chunks = 0;
  corrupt_checkpoint_file(ckpt_, CheckpointCorruption::kFlipBit, 5);
  corrupt_checkpoint_file(ckpt_ + ".prev", CheckpointCorruption::kZeroSpan, 5);
  try {
    (void)fit_from_file(input_, labels_, {}, 512, opts);
    FAIL() << "two corrupt generations must not resume";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.path(), ckpt_);
  }
  std::remove((ckpt_ + ".prev").c_str());
}

TEST_F(OutOfCoreCheckpoint, CadenceValidationRejectsZeroEveryChunks) {
  CheckpointOptions opts;
  opts.path = ckpt_;
  opts.every_chunks = 0;
  EXPECT_THROW(fit_from_file(input_, labels_, {}, 512, opts), Error);
}

}  // namespace
}  // namespace keybin2::core
