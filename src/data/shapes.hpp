// Structured 2-D workloads for figure reproductions and robustness tests.
//
// * correlated_pair — Figure 1's input: two elongated, correlated clusters
//   whose axis-aligned projections overlap in both dimensions (the case
//   KeyBin v1 cannot separate and random projection fixes).
// * boxes — uniform axis-aligned boxes; §2 notes k-means mislabels box
//   corners while KeyBin2 handles them.
// * rings — concentric annuli (non-convex clusters).
// * moons — two interleaving half-moons (classic non-convex benchmark).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace keybin2::data {

/// Two 2-D clusters stretched along the diagonal y = x, offset perpendicular
/// to it by `gap`. Their x- and y-projections overlap, so axis-aligned
/// binning cannot separate them; a rotation (random projection) can.
Dataset correlated_pair(std::size_t n_per_cluster, double gap,
                        std::uint64_t seed);

/// `k` axis-aligned uniform boxes of side `side` centred on a grid with
/// spacing `spacing` (requires spacing > side for separability).
Dataset boxes(std::size_t k, std::size_t n_per_box, double side,
              double spacing, std::uint64_t seed);

/// `k` concentric rings with radial gap `gap` and radial noise `noise`.
Dataset rings(std::size_t k, std::size_t n_per_ring, double gap, double noise,
              std::uint64_t seed);

/// Two interleaving half-moons with Gaussian noise.
Dataset moons(std::size_t n_per_moon, double noise, std::uint64_t seed);

}  // namespace keybin2::data
