#include "md/kabsch.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/eigen.hpp"

namespace keybin2::md {

double kabsch_rmsd(std::span<const Vec3> p, std::span<const Vec3> q) {
  KB2_CHECK_MSG(p.size() == q.size() && !p.empty(),
                "point sets must be equal-length and non-empty");
  const auto n = static_cast<double>(p.size());

  // Centre both sets.
  Vec3 cp{}, cq{};
  for (std::size_t i = 0; i < p.size(); ++i) {
    cp = cp + p[i];
    cq = cq + q[i];
  }
  cp = cp * (1.0 / n);
  cq = cq * (1.0 / n);

  // Covariance (correlation matrix R) and total squared norms.
  double r[3][3] = {};
  double gp = 0.0, gq = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Vec3 a = p[i] - cp;
    const Vec3 b = q[i] - cq;
    const double av[3] = {a.x, a.y, a.z};
    const double bv[3] = {b.x, b.y, b.z};
    for (int x = 0; x < 3; ++x) {
      for (int y = 0; y < 3; ++y) r[x][y] += av[x] * bv[y];
      gp += av[x] * av[x];
      gq += bv[x] * bv[x];
    }
  }

  // Horn's 4x4 key matrix; its largest eigenvalue lambda gives
  // rmsd^2 = (gp + gq - 2 lambda) / n.
  Matrix k(4, 4);
  k(0, 0) = r[0][0] + r[1][1] + r[2][2];
  k(0, 1) = r[1][2] - r[2][1];
  k(0, 2) = r[2][0] - r[0][2];
  k(0, 3) = r[0][1] - r[1][0];
  k(1, 1) = r[0][0] - r[1][1] - r[2][2];
  k(1, 2) = r[0][1] + r[1][0];
  k(1, 3) = r[2][0] + r[0][2];
  k(2, 2) = -r[0][0] + r[1][1] - r[2][2];
  k(2, 3) = r[1][2] + r[2][1];
  k(3, 3) = -r[0][0] - r[1][1] + r[2][2];

  const auto eig = stats::jacobi_eigen(k);
  const double lambda = eig.values.back();
  const double ms = std::max(0.0, (gp + gq - 2.0 * lambda) / n);
  return std::sqrt(ms);
}

double backbone_rmsd(std::span<const BackboneResidue> a,
                     std::span<const BackboneResidue> b) {
  KB2_CHECK_MSG(a.size() == b.size(), "backbones differ in length");
  std::vector<Vec3> p, q;
  p.reserve(3 * a.size());
  q.reserve(3 * b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    p.push_back(a[i].n);
    p.push_back(a[i].ca);
    p.push_back(a[i].c);
    q.push_back(b[i].n);
    q.push_back(b[i].ca);
    q.push_back(b[i].c);
  }
  return kabsch_rmsd(p, q);
}

}  // namespace keybin2::md
