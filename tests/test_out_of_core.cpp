#include "core/out_of_core.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "core/streaming.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "stats/metrics.hpp"
#include "test_util.hpp"

namespace keybin2::core {
namespace {

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    input_ = tmp_.make("kb2_ooc_input", ".bin");
    labels_ = tmp_.make("kb2_ooc_labels", ".bin");
    const auto spec = data::make_paper_mixture(12, 3, 1);
    dataset_ = data::sample(spec, 6000, 2);
    data::write_binary(dataset_, input_);
  }

  testutil::TempPaths tmp_;
  std::string input_, labels_;
  data::Dataset dataset_;
};

TEST_F(OutOfCoreTest, ClustersWithoutLoadingEverything) {
  const auto result = fit_from_file(input_, labels_, {}, /*chunk=*/512);
  EXPECT_EQ(result.points, 6000u);
  EXPECT_EQ(result.dims, 12u);
  EXPECT_EQ(result.chunks, (6000 + 511) / 512);
  EXPECT_GE(result.model.n_clusters(), 3);

  const auto labels = read_labels(labels_);
  ASSERT_EQ(labels.size(), 6000u);
  EXPECT_GT(stats::pairwise_scores(labels, dataset_.labels).f1, 0.8);
}

TEST_F(OutOfCoreTest, ChunkSizeDoesNotChangeTheResult) {
  // Histograms are order-insensitive sums, and the reservoir RNG consumes
  // the same per-point stream, so any chunking yields identical output.
  const auto a = fit_from_file(input_, labels_, {}, 173);
  const auto labels_a = read_labels(labels_);
  const auto b = fit_from_file(input_, labels_, {}, 4096);
  const auto labels_b = read_labels(labels_);
  EXPECT_EQ(labels_a, labels_b);
  EXPECT_DOUBLE_EQ(a.model.score(), b.model.score());
}

TEST_F(OutOfCoreTest, MatchesInMemoryStreamingEngine) {
  const auto result = fit_from_file(input_, labels_, {}, 1024);
  const auto file_labels = read_labels(labels_);

  StreamingKeyBin2 engine(12);
  engine.push_batch(dataset_.points);
  engine.refit();
  const auto memory_labels = engine.model().predict(dataset_.points);
  EXPECT_EQ(file_labels, memory_labels);
  EXPECT_DOUBLE_EQ(result.model.score(), engine.model().score());
}

TEST_F(OutOfCoreTest, LabelsRoundtripThroughTheStream) {
  fit_from_file(input_, labels_, {}, 777);
  const auto labels = read_labels(labels_);
  // Every label is a valid cluster id.
  for (int l : labels) {
    EXPECT_GE(l, 0);
  }
}

TEST(OutOfCore, MissingOrCorruptInputsThrow) {
  EXPECT_THROW(fit_from_file("/tmp/kb2_no_such_file.bin", "/tmp/out.bin"),
               Error);
  EXPECT_THROW(read_labels("/tmp/kb2_no_such_labels.bin"), Error);

  testutil::TempPaths tmp;
  const std::string junk = tmp.make("kb2_ooc_junk", ".bin");
  {
    std::FILE* f = std::fopen(junk.c_str(), "wb");
    std::fputs("definitely not a dataset", f);
    std::fclose(f);
  }
  EXPECT_THROW(fit_from_file(junk, "/tmp/out.bin"), Error);
}

TEST(OutOfCore, ZeroChunkRejected) {
  EXPECT_THROW(fit_from_file("/tmp/x.bin", "/tmp/y.bin", {}, 0), Error);
}

}  // namespace
}  // namespace keybin2::core
