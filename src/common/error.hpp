// Error handling primitives for the KeyBin2 library.
//
// All precondition violations and invariant failures throw keybin2::Error
// (never abort), so distributed drivers can surface a failing rank's message
// instead of tearing the process down.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace keybin2 {

/// Exception type thrown for all precondition and invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "KB2_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace keybin2

/// Check a precondition; throws keybin2::Error with expression and location.
#define KB2_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::keybin2::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Check a precondition with a streamed message:
///   KB2_CHECK_MSG(k > 0, "k must be positive, got " << k);
#define KB2_CHECK_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream kb2_os_;                                             \
      kb2_os_ << msg;                                                         \
      ::keybin2::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                             kb2_os_.str());                  \
    }                                                                         \
  } while (0)
