// Failure injection: corrupt, truncate, or misroute inter-rank messages and
// verify the pipeline surfaces a keybin2::Error instead of hanging or
// silently computing garbage. The decorator wraps a real ThreadComm
// endpoint, so all timing/concurrency behaviour is genuine.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/launch.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace keybin2::comm {
namespace {

enum class Fault {
  kNone,
  kTruncate,       // drop the tail of every payload over 16 bytes
  kCorruptLength,  // flip bits in the first 8 bytes (vector length prefixes)
  kZeroFill,       // deliver the right size but all-zero content
};

/// Decorator that injures messages SENT by one designated rank.
class FaultyComm final : public Communicator {
 public:
  FaultyComm(Communicator& inner, Fault fault, bool active)
      : inner_(inner), fault_(fault), active_(active) {}

  int rank() const override { return inner_.rank(); }
  int size() const override { return inner_.size(); }
  void barrier() override { inner_.barrier(); }
  TrafficStats stats() const override { return inner_.stats(); }

  void send(int dest, int tag, std::span<const std::byte> data) override {
    if (!active_ || fault_ == Fault::kNone) {
      inner_.send(dest, tag, data);
      return;
    }
    std::vector<std::byte> mutated(data.begin(), data.end());
    switch (fault_) {
      case Fault::kTruncate:
        if (mutated.size() > 16) mutated.resize(mutated.size() / 2);
        break;
      case Fault::kCorruptLength:
        for (std::size_t i = 0; i < std::min<std::size_t>(8, mutated.size());
             ++i) {
          mutated[i] = std::byte(0xFF);
        }
        break;
      case Fault::kZeroFill:
        std::fill(mutated.begin(), mutated.end(), std::byte(0));
        break;
      case Fault::kNone:
        break;
    }
    inner_.send(dest, tag, mutated);
  }

  std::vector<std::byte> recv(int src, int tag) override {
    return inner_.recv(src, tag);
  }

 private:
  Communicator& inner_;
  Fault fault_;
  bool active_;
};

/// Run a distributed fit with rank 1's outgoing messages injured.
void run_faulty_fit(Fault fault) {
  const auto spec = data::make_paper_mixture(10, 3, 1);
  const auto d = data::sample(spec, 800, 2);
  const auto shards = data::shard(d, 4);
  run_ranks(4, [&](Communicator& c) {
    FaultyComm faulty(c, fault, /*active=*/c.rank() == 1);
    core::fit(faulty, shards[static_cast<std::size_t>(c.rank())].points);
  });
}

TEST(FaultInjection, BaselineWithoutFaultSucceeds) {
  EXPECT_NO_THROW(run_faulty_fit(Fault::kNone));
}

TEST(FaultInjection, TruncatedMessagesRaiseErrors) {
  // A truncated payload trips ByteReader's bounds checks (or a collective's
  // length validation) — never a hang, never a silent wrong answer.
  EXPECT_THROW(run_faulty_fit(Fault::kTruncate), Error);
}

TEST(FaultInjection, CorruptedLengthPrefixesRaiseErrors) {
  EXPECT_THROW(run_faulty_fit(Fault::kCorruptLength), Error);
}

TEST(FaultInjection, CollectiveLengthMismatchIsDetected) {
  // Ranks disagreeing on reduction length is a programming error the
  // collectives must catch.
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& c) {
                  std::vector<double> local(
                      c.rank() == 0 ? 4u : 7u, 1.0);
                  c.allreduce(local, ReduceOp::kSum);
                }),
      Error);
}

TEST(FaultInjection, SerializeLayerRejectsGarbageModelBytes) {
  std::vector<std::byte> garbage(64, std::byte(0xAB));
  ByteReader r(garbage);
  EXPECT_THROW(core::Model::deserialize(r), Error);
}

TEST(FaultInjection, ZeroFilledHistogramsStillTerminate) {
  // All-zero payloads are structurally valid (lengths intact in some paths)
  // or invalid (length prefix zeroed). Either way the run must terminate
  // quickly — an exception or a (wrong, but local) result, never a hang.
  try {
    run_faulty_fit(Fault::kZeroFill);
  } catch (const Error&) {
    // acceptable: the corruption was detected
  }
  SUCCEED();
}

TEST(FaultInjection, UserTagRangeIsEnforced) {
  run_ranks(2, [&](Communicator& c) {
    std::vector<double> payload{1.0};
    EXPECT_THROW(c.send_doubles(0, Communicator::kUserTagLimit + 7, payload),
                 Error);
    EXPECT_THROW(c.recv_doubles(0, -1), Error);
  });
}

}  // namespace
}  // namespace keybin2::comm
