// Versioned, CRC32-checked checkpoint container (DESIGN.md §4b).
//
// A checkpoint file is
//
//   [u64 magic "KB2CKPT"] [u32 version] [u64 payload_size] [u32 payload_crc]
//   [payload bytes]
//
// written atomically (tmp file + rename) so a crash mid-save never clobbers
// the previous good checkpoint. The payload is an opaque byte blob produced
// by the owning driver (StreamingKeyBin2::serialize, the out-of-core
// driver's resume record); this layer only guards its integrity: truncated
// files, foreign files, version skew, and bit corruption are all rejected
// with a keybin2::Error before a single payload byte is interpreted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace keybin2::core {

/// Typed, attributed checkpoint defect: which file, which defect class.
/// Derives Error so existing catch sites keep working; the recovery ladder
/// and the chaos-soak gate match on the type and the defect string.
class CheckpointError final : public Error {
 public:
  CheckpointError(const std::string& what, std::string path,
                  std::string defect)
      : Error(what), path_(std::move(path)), defect_(std::move(defect)) {}

  const std::string& path() const { return path_; }
  /// One of: "missing", "truncated", "bad_magic", "version_skew",
  /// "crc_mismatch", "io".
  const std::string& defect() const { return defect_; }

 private:
  std::string path_;
  std::string defect_;
};

/// "KB2CKPT" packed little-endian into a u64 (high byte zero).
inline constexpr std::uint64_t kCheckpointMagic = 0x0054504b43324b42ULL;

/// Bumped whenever the container layout (not the payload schema) changes.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Container header size in bytes: magic + version + payload_size + crc.
inline constexpr std::size_t kCheckpointHeaderBytes = 8 + 4 + 8 + 4;

/// Write `payload` to `path` inside the container above. The bytes land in
/// `path + ".tmp"` first and are renamed into place only after a successful
/// flush, so readers never observe a half-written checkpoint. An existing
/// good checkpoint at `path` is demoted to `path + ".prev"` first, so one
/// generation of history survives a later corruption of the primary.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload);

/// Read and validate a checkpoint written by write_checkpoint_file().
/// Throws CheckpointError naming the file and the specific defect on a
/// missing file, bad magic, unsupported version, truncation/size mismatch,
/// or CRC mismatch.
std::vector<std::byte> read_checkpoint_file(const std::string& path);

/// Read `path`, falling back to `path + ".prev"` when the primary is
/// corrupt or missing. `used_previous` (optional) reports which copy was
/// read. When both fail, the PRIMARY's error propagates (it names the
/// checkpoint the caller asked for).
std::vector<std::byte> read_checkpoint_file_or_previous(
    const std::string& path, bool* used_previous = nullptr);

/// Deterministic checkpoint-corruption fixture, shared by the unit tests
/// and the chaos-soak engine: damage the file at `path` in a specific way.
enum class CheckpointCorruption {
  kTruncateHeader,   // cut mid-header: too short to even parse
  kTruncatePayload,  // cut mid-payload: size mismatch
  kZeroSpan,         // zero a span inside the payload: CRC mismatch
  kFlipBit,          // flip one payload bit: CRC mismatch
  kBadMagic,         // stomp the magic: not a KB2CKPT file
};

/// Apply `mode` to the checkpoint at `path` in place; `seed` picks the
/// damaged offset deterministically where the mode has a choice.
void corrupt_checkpoint_file(const std::string& path, CheckpointCorruption mode,
                             std::uint64_t seed = 1);

}  // namespace keybin2::core
