file(REMOVE_RECURSE
  "libkb2_common.a"
)
