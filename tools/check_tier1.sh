#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite.
#
#   tools/check_tier1.sh           # full suite (what CI runs)
#   tools/check_tier1.sh --quick   # skip suites labelled `slow` (ctest -LE slow)
#
# Extra arguments after the flags are forwarded to ctest.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"

ctest_args=()
for arg in "$@"; do
  case "${arg}" in
    --quick) ctest_args+=(-LE slow) ;;
    *) ctest_args+=("${arg}") ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" \
  "${ctest_args[@]}"
