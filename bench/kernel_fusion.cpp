// Kernel-fusion + sparse-reduction benchmark (DESIGN.md §4d).
//
// Part 1 — data plane: the staged reference pipeline (project, range scan,
// compute_keys, build_histograms — four traversals) against the fused
// two-pass plane (fused_project_envelope, fused_key_bin) on one rank. The
// acceptance configuration is --points-per-rank 1000000 with 16 input
// dimensions; results must be bit-identical (checked every run) and the
// fused plane at least 2x faster.
//
// Part 2 — comm plane: merging deep (d_max >= 10), genuinely sparse binning
// histograms across ranks with the dense binomial-tree allreduce vs the
// sparse recursive-halving allreduce. Reports total reduce bytes for both
// and the savings fraction; the acceptance bar is >= 40% fewer bytes at
// --ranks 8.
//
// Series written to BENCH_kernel_fusion.json:
//   staged_seconds, fused_seconds, fused_speedup,
//   reduce_bytes_dense, reduce_bytes_sparse, reduce_bytes_savings
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/binner.hpp"
#include "core/fused.hpp"
#include "core/keys.hpp"
#include "core/projection.hpp"

namespace keybin2 {
namespace {

constexpr std::size_t kInputDims = 16;
constexpr int kProjectedDims = 4;  // the paper's rule for 16 dims
constexpr int kKernelDepth = 7;
constexpr int kReduceDepth = 12;  // deep histograms => sparse deepest level

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Matrix clustered_points(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  // A handful of tight blobs: realistic fit input whose deep histograms are
  // sparse (most of the 2^12 bins never see a point).
  Rng rng(seed);
  std::vector<std::vector<double>> centers(6, std::vector<double>(cols));
  for (auto& c : centers) {
    for (auto& v : c) v = rng.uniform(-40.0, 40.0);
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& c = centers[rng.uniform_int(centers.size())];
    auto row = m.row(i);
    for (std::size_t j = 0; j < cols; ++j) row[j] = rng.normal(c[j], 0.8);
  }
  return m;
}

std::vector<core::Range> local_ranges(const Matrix& m) {
  std::vector<core::Range> ranges(m.cols());
  std::vector<double> lo(m.cols(), std::numeric_limits<double>::infinity());
  std::vector<double> hi(m.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (std::size_t j = 0; j < m.cols(); ++j) {
    ranges[j] = core::Range{lo[j], hi[j] > lo[j] ? hi[j] : lo[j] + 1.0};
  }
  return ranges;
}

void bench_data_plane(const bench::Options& opt) {
  const std::size_t n = opt.points_per_rank;
  std::printf("== data plane: %zu points x %zu dims -> %d projected, "
              "d_max=%d ==\n",
              n, kInputDims, kProjectedDims, kKernelDepth);
  const auto points = clustered_points(n, kInputDims, opt.seed);
  const auto projection = core::make_projection_matrix(
      kInputDims, kProjectedDims, opt.seed + 1);

  bench::Series staged_s, fused_s, speedup;
  core::FusedWorkspace ws;
  for (int run = 0; run < opt.runs; ++run) {
    // Staged reference: four traversals.
    const double t0 = now_seconds();
    const auto projected = core::project(points, projection);
    const auto ranges = local_ranges(projected);
    const auto keys = core::compute_keys(projected, ranges, kKernelDepth);
    const auto hists = core::build_histograms(keys, ranges);
    const double t1 = now_seconds();

    // Fused plane: two traversals over the same input.
    const auto& fused_projected =
        core::fused_project_envelope(points, projection, kProjectedDims, ws);
    std::vector<core::Range> fused_ranges(fused_projected.cols());
    for (std::size_t j = 0; j < fused_projected.cols(); ++j) {
      fused_ranges[j] = core::Range{
          ws.env_lo[j],
          ws.env_hi[j] > ws.env_lo[j] ? ws.env_hi[j] : ws.env_lo[j] + 1.0};
    }
    const auto fused_hists = core::fused_key_bin(fused_projected, fused_ranges,
                                                 kKernelDepth, ws);
    const double t2 = now_seconds();

    // Bit-identity audit on every run: keys and deepest counts must match.
    for (std::size_t i = 0; i < keys.points(); ++i) {
      for (std::size_t j = 0; j < keys.dims(); ++j) {
        if (ws.keys.at(i, j) != keys.at(i, j)) {
          std::fprintf(stderr, "FATAL: key mismatch at point %zu dim %zu\n",
                       i, j);
          std::exit(1);
        }
      }
    }
    for (std::size_t j = 0; j < hists.size(); ++j) {
      const auto want = hists[j].deepest_counts();
      const auto got = fused_hists[j].deepest_counts();
      for (std::size_t b = 0; b < want.size(); ++b) {
        if (want[b] != got[b]) {
          std::fprintf(stderr, "FATAL: count mismatch dim %zu bin %zu\n", j,
                       b);
          std::exit(1);
        }
      }
    }

    staged_s.add(t1 - t0);
    fused_s.add(t2 - t1);
    speedup.add((t1 - t0) / (t2 - t1));
    std::printf("run %d: staged %.3fs  fused %.3fs  speedup %.2fx\n", run,
                t1 - t0, t2 - t1, (t1 - t0) / (t2 - t1));
  }
  std::printf("staged %s s | fused %s s | speedup %s\n",
              staged_s.str().c_str(), fused_s.str().c_str(),
              speedup.str(2).c_str());
  auto& rep = bench::Reporter::global();
  rep.add_series("staged_seconds", staged_s);
  rep.add_series("fused_seconds", fused_s);
  rep.add_series("fused_speedup", speedup);
}

void bench_reduce_plane(const bench::Options& opt) {
  const int ranks = opt.ranks;
  // Per-rank shard kept modest: the reduction cost depends on the histogram
  // geometry (dims x 2^d_max), not on the point count.
  const std::size_t shard_rows = std::min<std::size_t>(opt.points_per_rank,
                                                       20000);
  std::printf("== reduce plane: %d ranks, %d dims x 2^%d bins ==\n", ranks,
              kProjectedDims, kReduceDepth);

  // Build each rank's real deepest-level histograms once (identical work for
  // both algorithms), then time/weigh only the merge.
  std::vector<std::vector<double>> flat(static_cast<std::size_t>(ranks));
  {
    const auto points =
        clustered_points(shard_rows * static_cast<std::size_t>(ranks),
                         kInputDims, opt.seed + 11);
    const auto projection = core::make_projection_matrix(
        kInputDims, kProjectedDims, opt.seed + 12);
    core::FusedWorkspace ws;
    const auto& projected =
        core::fused_project_envelope(points, projection, kProjectedDims, ws);
    std::vector<core::Range> ranges(projected.cols());
    for (std::size_t j = 0; j < projected.cols(); ++j) {
      ranges[j] = core::Range{ws.env_lo[j], ws.env_hi[j]};
    }
    for (int r = 0; r < ranks; ++r) {
      const auto shard = projected.slice_rows(
          static_cast<std::size_t>(r) * shard_rows,
          static_cast<std::size_t>(r + 1) * shard_rows);
      core::FusedWorkspace shard_ws;
      auto hists = core::fused_key_bin(shard, ranges, kReduceDepth, shard_ws);
      flat[static_cast<std::size_t>(r)] = core::flatten_counts(hists);
    }
  }

  bench::Series dense_bytes, sparse_bytes, savings;
  for (int run = 0; run < opt.runs; ++run) {
    std::vector<std::vector<double>> dense_out(
        static_cast<std::size_t>(ranks));
    const auto dense_traffic =
        comm::run_ranks(ranks, [&](comm::Communicator& c) {
          const auto r = static_cast<std::size_t>(c.rank());
          dense_out[r] = c.allreduce(flat[r], comm::ReduceOp::kSum,
                                     comm::AllreduceAlgo::kTree);
        });
    std::vector<std::vector<double>> sparse_out(
        static_cast<std::size_t>(ranks));
    const auto sparse_traffic =
        comm::run_ranks(ranks, [&](comm::Communicator& c) {
          const auto r = static_cast<std::size_t>(c.rank());
          sparse_out[r] = c.allreduce(flat[r], comm::ReduceOp::kSum,
                                      comm::AllreduceAlgo::kRecursiveHalving);
        });
    for (int r = 0; r < ranks; ++r) {
      if (dense_out[static_cast<std::size_t>(r)] !=
          sparse_out[static_cast<std::size_t>(r)]) {
        std::fprintf(stderr, "FATAL: dense/sparse merge mismatch, rank %d\n",
                     r);
        std::exit(1);
      }
    }
    const auto d = static_cast<double>(dense_traffic.bytes_sent);
    const auto s = static_cast<double>(sparse_traffic.bytes_sent);
    dense_bytes.add(d);
    sparse_bytes.add(s);
    savings.add(1.0 - s / d);
    std::printf("run %d: dense tree %.0fB  sparse rh %.0fB  savings %.1f%%\n",
                run, d, s, 100.0 * (1.0 - s / d));
  }
  std::printf("reduce_bytes dense %s | sparse %s | savings %s\n",
              dense_bytes.str(0).c_str(), sparse_bytes.str(0).c_str(),
              savings.str(3).c_str());
  auto& rep = bench::Reporter::global();
  rep.add_series("reduce_bytes_dense", dense_bytes);
  rep.add_series("reduce_bytes_sparse", sparse_bytes);
  rep.add_series("reduce_bytes_savings", savings);
}

}  // namespace
}  // namespace keybin2

int main(int argc, char** argv) {
  auto opt = keybin2::bench::Options::parse(argc, argv);
  if (opt.full) opt.points_per_rank = 1000000;  // the acceptance configuration
  keybin2::bench_data_plane(opt);
  keybin2::bench_reduce_plane(opt);
  keybin2::bench::Reporter::global().write(opt);
  return 0;
}
