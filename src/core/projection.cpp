#include "core/projection.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace keybin2::core {

int choose_n_rp(std::size_t input_dims) {
  KB2_CHECK_MSG(input_dims >= 1, "need at least one input dimension");
  const double raw = 1.5 * std::log(static_cast<double>(input_dims));
  const int n = std::max(2, static_cast<int>(std::lround(raw)));
  return std::min<int>(n, static_cast<int>(input_dims));
}

Matrix make_projection_matrix(std::size_t input_dims, int n_rp,
                              std::uint64_t seed) {
  KB2_CHECK_MSG(n_rp >= 1, "n_rp must be positive, got " << n_rp);
  Rng rng(seed);
  Matrix a(input_dims, static_cast<std::size_t>(n_rp));
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < input_dims; ++i) {
      const double v = rng.normal();
      a(i, j) = v;
      norm2 += v * v;
    }
    const double norm = std::sqrt(norm2);
    KB2_CHECK_MSG(norm > 0.0, "degenerate projection column");
    for (std::size_t i = 0; i < input_dims; ++i) a(i, j) /= norm;
  }
  return a;
}

Matrix project(const Matrix& points, const Matrix& a) {
  KB2_CHECK_MSG(points.cols() == a.rows(),
                "projection shape mismatch: " << points.cols() << " vs "
                                              << a.rows());
  Matrix out(points.rows(), a.cols());
  global_pool().parallel_for(points.rows(), [&](std::size_t begin,
                                                std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      project_point(points.row(i), a, out.row(i));
    }
  });
  return out;
}

void project_point(std::span<const double> x, const Matrix& a,
                   std::span<double> out) {
  KB2_CHECK_MSG(x.size() == a.rows() && out.size() == a.cols(),
                "project_point shape mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    auto arow = a.row(i);
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += xi * arow[j];
  }
}

}  // namespace keybin2::core
