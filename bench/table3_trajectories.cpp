// Table 3: characteristics of the 31 (synthetic stand-in for MoDEL)
// trajectories.
//
// Paper: residues mean 193.06 +/- 145.29 in [58, 747]; simulation time
// 9,779 +/- 3,426 ps in [2,000, 20,000]. The synthetic library is matched
// to this envelope (see DESIGN.md for the substitution rationale).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "md/synthetic.hpp"
#include "stats/distributions.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  const auto opt = bench::Options::parse(argc, argv);
  const auto library = md::make_model_library(opt.seed);

  stats::OnlineMoments residues, frames;
  std::printf("Table 3 reproduction: %zu synthetic trajectories.\n\n",
              library.size());
  std::printf("%-6s %10s %10s %8s %12s\n", "Traj", "Residues", "Frames",
              "Phases", "Transition");
  for (std::size_t i = 0; i < library.size(); ++i) {
    const auto& cfg = library[i];
    std::printf("%-6zu %10zu %10zu %8zu %12zu\n", i + 1, cfg.residues,
                cfg.frames, cfg.phases, cfg.transition_frames);
    residues.add(static_cast<double>(cfg.residues));
    frames.add(static_cast<double>(cfg.frames));
  }

  std::printf("\n%-22s %10s %10s %8s %8s\n", "Characteristic", "Mean",
              "Stdev", "Min", "Max");
  std::printf("%-22s %10.2f %10.2f %8.0f %8.0f\n", "Number of residues",
              residues.mean(), residues.stddev(), residues.min(),
              residues.max());
  std::printf("%-22s %10.2f %10.2f %8.0f %8.0f\n", "Simulation time (ps)",
              frames.mean(), frames.stddev(), frames.min(), frames.max());
  std::printf("\nPaper reference:      %10s %10s %8s %8s\n", "Mean", "Stdev",
              "Min", "Max");
  std::printf("%-22s %10.2f %10.2f %8d %8d\n", "Number of residues", 193.06,
              145.29, 58, 747);
  std::printf("%-22s %10.2f %10.2f %8d %8d\n", "Simulation time (ps)",
              9779.03, 3425.85, 2000, 20000);
  bench::Reporter::global().write(opt);
  return 0;
}
