#include "core/model.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/projection.hpp"

namespace keybin2::core {

namespace {

std::uint64_t l1_distance(std::span<const std::uint32_t> a,
                          std::span<const std::uint32_t> b) {
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return d;
}

}  // namespace

Model::Model(std::size_t input_dims, Matrix projection, int depth,
             std::vector<int> kept_dims, std::vector<Range> ranges,
             std::vector<DimensionPartition> partitions,
             std::vector<Cell> cells, double score, double total_points,
             double min_cluster_fraction) {
  // Materialize the uniform depth vector BEFORE kept_dims is moved from
  // (constructor arguments are unsequenced).
  std::vector<int> depths(kept_dims.size(), depth);
  *this = Model(input_dims, std::move(projection), std::move(depths),
                std::move(kept_dims), std::move(ranges), std::move(partitions),
                std::move(cells), score, total_points, min_cluster_fraction);
}

Model::Model(std::size_t input_dims, Matrix projection,
             std::vector<int> depths, std::vector<int> kept_dims,
             std::vector<Range> ranges,
             std::vector<DimensionPartition> partitions,
             std::vector<Cell> cells, double score, double total_points,
             double min_cluster_fraction)
    : input_dims_(input_dims),
      projection_(std::move(projection)),
      depths_(std::move(depths)),
      kept_dims_(std::move(kept_dims)),
      ranges_(std::move(ranges)),
      partitions_(std::move(partitions)),
      cells_(std::move(cells)),
      score_(score) {
  KB2_CHECK_MSG(partitions_.size() == kept_dims_.size(),
                "one partition per kept dimension required");
  KB2_CHECK_MSG(depths_.size() == kept_dims_.size(),
                "one depth per kept dimension required");
  for (const auto& c : cells_) {
    KB2_CHECK_MSG(c.coord.size() == kept_dims_.size(),
                  "cell coordinate arity mismatch");
  }

  // Densest-first ordering; lexicographic coordinate tie-break keeps label
  // assignment deterministic across runs and rank counts.
  std::sort(cells_.begin(), cells_.end(), [](const Cell& a, const Cell& b) {
    if (a.density != b.density) return a.density > b.density;
    return a.coord < b.coord;
  });

  // Absorb tiny cells into the nearest dense cell (outlier absorption).
  const double min_density = min_cluster_fraction * total_points;
  int next_label = 0;
  for (auto& c : cells_) {
    if (c.density >= min_density || next_label == 0) {
      c.label = next_label++;
    } else {
      c.label = -1;  // to be absorbed below
    }
  }
  // An empty cell set (all dimensions collapsed) is one global cluster.
  n_clusters_ = next_label > 0 ? next_label : 1;
  for (auto& c : cells_) {
    if (c.label >= 0) continue;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (const auto& host : cells_) {
      if (host.label < 0) continue;
      const auto d = l1_distance(c.coord, host.coord);
      if (d < best) {
        best = d;
        c.label = host.label;
      }
    }
  }
}

int Model::depth() const {
  int deepest = 0;
  for (int d : depths_) deepest = std::max(deepest, d);
  return deepest;
}

int Model::label_of_cell(std::span<const std::uint32_t> coord) const {
  KB2_CHECK_MSG(coord.size() == kept_dims_.size(),
                "cell arity " << coord.size() << " != " << kept_dims_.size());
  if (cells_.empty()) return 0;
  int best_label = cells_.front().label;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const auto& c : cells_) {
    const auto d = l1_distance(coord, c.coord);
    if (d == 0) return c.label;
    if (d < best) {
      best = d;
      best_label = c.label;
    }
  }
  return best_label;
}

int Model::predict(std::span<const double> x) const {
  KB2_CHECK_MSG(x.size() == input_dims_,
                "point has " << x.size() << " dims, model expects "
                             << input_dims_);
  if (kept_dims_.empty()) return 0;  // degenerate single-cluster model

  std::vector<std::uint32_t> coord(kept_dims_.size());
  if (uses_projection()) {
    std::vector<double> projected(projection_.cols(), 0.0);
    project_point(x, projection_, projected);
    for (std::size_t k = 0; k < kept_dims_.size(); ++k) {
      const auto j = static_cast<std::size_t>(kept_dims_[k]);
      const auto key = key_of(projected[j], ranges_[j], depths_[k]);
      coord[k] = partitions_[k].primary_of(key);
    }
  } else {
    for (std::size_t k = 0; k < kept_dims_.size(); ++k) {
      const auto j = static_cast<std::size_t>(kept_dims_[k]);
      const auto key = key_of(x[j], ranges_[j], depths_[k]);
      coord[k] = partitions_[k].primary_of(key);
    }
  }
  return label_of_cell(coord);
}

std::vector<int> Model::predict(const Matrix& points) const {
  std::vector<int> labels(points.rows(), 0);
  global_pool().parallel_for(points.rows(),
                             [&](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i) {
                                 labels[i] = predict(points.row(i));
                               }
                             });
  return labels;
}

void Model::serialize(ByteWriter& w) const {
  w.write<std::uint64_t>(input_dims_);
  w.write<std::uint64_t>(projection_.rows());
  w.write<std::uint64_t>(projection_.cols());
  w.write_span(projection_.flat());
  w.write_vec(depths_);
  w.write_vec(kept_dims_);
  w.write<std::uint64_t>(ranges_.size());
  for (const auto& r : ranges_) {
    w.write(r.lo);
    w.write(r.hi);
  }
  w.write<std::uint64_t>(partitions_.size());
  for (const auto& p : partitions_) {
    w.write<std::uint64_t>(p.bins);
    w.write_vec(p.cuts);
  }
  w.write<std::uint64_t>(cells_.size());
  for (const auto& c : cells_) {
    w.write_vec(c.coord);
    w.write(c.density);
    w.write<std::int32_t>(c.label);
  }
  w.write(score_);
  w.write<std::int32_t>(n_clusters_);
}

Model Model::deserialize(ByteReader& r) {
  Model m;
  m.input_dims_ = r.read<std::uint64_t>();
  const auto prows = r.read<std::uint64_t>();
  const auto pcols = r.read<std::uint64_t>();
  auto flat = r.read_vec<double>();
  if (prows * pcols > 0) {
    m.projection_ = Matrix(prows, pcols, std::move(flat));
  }
  m.depths_ = r.read_vec<int>();
  m.kept_dims_ = r.read_vec<int>();
  const auto n_ranges = r.read<std::uint64_t>();
  m.ranges_.resize(n_ranges);
  for (auto& range : m.ranges_) {
    range.lo = r.read<double>();
    range.hi = r.read<double>();
  }
  const auto n_parts = r.read<std::uint64_t>();
  m.partitions_.resize(n_parts);
  for (auto& p : m.partitions_) {
    p.bins = r.read<std::uint64_t>();
    p.cuts = r.read_vec<std::size_t>();
  }
  const auto n_cells = r.read<std::uint64_t>();
  m.cells_.resize(n_cells);
  for (auto& c : m.cells_) {
    c.coord = r.read_vec<std::uint32_t>();
    c.density = r.read<double>();
    c.label = r.read<std::int32_t>();
  }
  m.score_ = r.read<double>();
  m.n_clusters_ = r.read<std::int32_t>();
  return m;
}

}  // namespace keybin2::core
