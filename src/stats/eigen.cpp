#include "stats/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace keybin2::stats {

EigenDecomposition jacobi_eigen(const Matrix& input, int max_sweeps) {
  KB2_CHECK_MSG(input.rows() == input.cols(), "jacobi_eigen needs a square "
                                              "matrix");
  const std::size_t n = input.rows();
  Matrix a = input;
  // Symmetrize from the upper triangle so callers can pass either half.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) a(j, i) = a(i, j);
  }
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (a(p, q) == 0.0) continue;
        // Classic Jacobi rotation annihilating a(p, q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        const double app = a(p, p), aqq = a(q, q), apq = a(p, q);
        a(p, p) = c * c * app - 2.0 * s * c * apq + s * s * aqq;
        a(q, q) = s * s * app + 2.0 * s * c * apq + c * c * aqq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (i == p || i == q) continue;
          const double aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(p, i) = a(i, p);
          a(i, q) = s * aip + c * aiq;
          a(q, i) = a(i, q);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting the vectors accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) < a(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace keybin2::stats
