file(REMOVE_RECURSE
  "libkb2_stats.a"
)
