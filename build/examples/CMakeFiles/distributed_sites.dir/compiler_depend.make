# Empty compiler generated dependencies file for distributed_sites.
# This may be replaced when dependencies are built.
