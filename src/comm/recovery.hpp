// Recovery policy shared by the supervised respawn ladder and the driver
// retry loops (DESIGN.md §7).
//
// When a rank dies, the fault story climbs an explicit ladder:
//
//   1. immediate retry       — transient failure (corrupt frame, timeout
//                              with every rank alive): rerun over the same
//                              group after a backoff.
//   2. respawn + rejoin      — ProcComm's parent supervisor forks a
//                              replacement for the dead rank (while
//                              `max_respawns` budget remains) and the group
//                              regrows to full width through the survivor
//                              rendezvous.
//   3. shrink-and-continue   — budget exhausted (or flap detected): the
//                              survivors agree on the reduced group and
//                              continue degraded.
//   4. FitAbortedError       — `max_shrink_retries` exhausted: the driver
//                              stops looping and throws a typed, attributed
//                              abort.
//
// Every delay drawn from the policy is deterministic in (jitter_seed, salt,
// attempt), so a failing schedule replays exactly from its seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "comm/communicator.hpp"

namespace keybin2::comm {

/// Knobs of the recovery ladder. The zero-respawn default keeps the classic
/// shrink-and-continue behaviour: respawning is an opt-in (launch options,
/// CLI --respawns, KB2_MAX_RESPAWNS) because it changes what survivors
/// observe after a death — the group heals to full width instead of
/// shrinking around the corpse.
struct RecoveryPolicy {
  /// Total replacement forks the ProcComm supervisor may spend across the
  /// whole run (all ranks together). 0 disables the respawn rung.
  int max_respawns = 0;

  /// Exponential backoff for retries and respawns: attempt k waits
  /// base * 2^k, capped, plus deterministic jitter (see backoff_ms).
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 250.0;

  /// Seed of the deterministic jitter stream. Mixed with a caller salt
  /// (rank, incarnation) so ranks don't thunder in phase.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

  /// A rank that dies again within this many seconds of its last respawn is
  /// flapping: its reservation is cancelled and the ladder falls through to
  /// shrink-and-continue. 0 disables flap detection.
  double flap_window_seconds = 0.0;
};

namespace detail {
/// splitmix64: the standard 64-bit finalizer-style mixer; good enough to
/// decorrelate (seed, salt, attempt) triples into jitter draws.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Deterministic exponential backoff with jitter, in milliseconds: attempt k
/// (0-based) yields slot = min(base * 2^k, cap), then slot/2 + jitter in
/// [0, slot/2) drawn from mix64(jitter_seed ^ salt, k). Monotone
/// non-decreasing in expectation, capped, and identical for identical
/// (policy, attempt, salt).
inline double backoff_ms(const RecoveryPolicy& p, int attempt,
                         std::uint64_t salt) {
  if (p.backoff_base_ms <= 0.0) return 0.0;
  double slot = p.backoff_base_ms;
  for (int k = 0; k < attempt && slot < p.backoff_cap_ms; ++k) slot *= 2.0;
  slot = std::min(slot, std::max(p.backoff_cap_ms, p.backoff_base_ms));
  const std::uint64_t draw = detail::mix64(
      detail::mix64(p.jitter_seed ^ salt) ^ static_cast<std::uint64_t>(attempt));
  const double unit =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return slot / 2.0 + unit * (slot / 2.0);
}

/// The ladder's terminal rung: fit()/refit() exhausted max_shrink_retries.
/// Carries the attempt count and the kind of the last underlying failure
/// ("timeout", "rank_failed", ...). Derives CommError so existing callers
/// that treat transport failures uniformly keep working, but drivers never
/// retry it themselves — it *is* the retry loop's verdict.
class FitAbortedError final : public CommError {
 public:
  FitAbortedError(const std::string& what, int attempts,
                  std::string last_kind)
      : CommError(what), attempts_(attempts),
        last_kind_(std::move(last_kind)) {}

  int attempts() const { return attempts_; }
  const std::string& last_kind() const { return last_kind_; }

 private:
  int attempts_;
  std::string last_kind_;
};

}  // namespace keybin2::comm
