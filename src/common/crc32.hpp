// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as an end-to-end integrity check on (a) every framed inter-rank
// message — bounds checks catch truncation, but zero-fill or bit-flip
// corruption can keep every length prefix plausible, so frames carry a
// checksum — and (b) the checkpoint file container, so a torn or bit-rotted
// checkpoint is rejected instead of resuming from garbage state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace keybin2 {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of a byte span (init 0xFFFFFFFF, final xor — the zlib convention,
/// so an all-zero buffer never checksums to zero).
inline std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data) {
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace keybin2
