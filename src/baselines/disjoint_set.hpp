// Disjoint-set forest (union-find) with path halving and union by rank —
// the data structure at the heart of PDSDBSCAN (Patwary et al., SC'12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace keybin2::baselines {

class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n);

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set (path halving).
  std::size_t find(std::size_t x);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  /// Number of distinct sets.
  std::size_t count_sets();

  /// Compact label per element: representatives numbered 0..count-1 in order
  /// of first appearance.
  std::vector<int> labels();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace keybin2::baselines
