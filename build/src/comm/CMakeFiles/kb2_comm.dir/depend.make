# Empty dependencies file for kb2_comm.
# This may be replaced when dependencies are built.
