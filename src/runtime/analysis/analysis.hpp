// Post-mortem trace analytics: distributed critical path, per-stage
// compute/comm/wait decomposition, and straggler attribution over a set of
// per-rank Timelines.
//
// The core construction is a backward walk over the cross-rank causal
// graph. Nodes are moments on a rank's timeline; edges are
//   * local execution  — a rank runs from one event to the next,
//   * message delivery — a paired send ("s") -> recv ("f") flow, and
//   * blocking waits   — a recv that found the mailbox empty (wait_ns > 0
//     provenance recorded by CommProbe) or a barrier wait.
// Starting from the globally last event, the walk runs backward on the
// current rank until it hits the latest *gating* block (a recv that
// actually blocked, or a barrier); at a gating recv it jumps to the sender
// and continues there. Every step emits one contiguous segment — compute,
// comm (send->recv transfer), or wait (barrier) — until the walk reaches
// the global epoch. Because the segments tile [epoch, end] exactly, the
// critical-path total equals the end-to-end wall time by construction; the
// interesting output is its decomposition.
//
// Late-sender decomposition of a recv that blocked for w ending at t_f,
// with paired send at t_s (Scalasca's "late sender" pattern): the block
// started at t0 = t_f - w. The portion before the send even happened,
//   caused_wait = clamp(min(t_s, t_f) - t0, 0, w),
// is idle time the *sender* inflicted on this rank; the remainder is
// transfer. Summing caused_wait per sender over all paired recvs gives the
// straggler attribution: the rank that made everyone else wait, whether it
// was slow to compute or its wire was slow (fault-injected delay), tops the
// table.
//
// Stage rows fold spans onto canonical paths (fold_scope_path: trial7 ->
// trial*) and use *self* time (span minus enclosed child spans) so rows sum
// to busy time. Imbalance is max-over-ranks / mean-over-ranks of per-rank
// stage totals — the classic load-balance factor.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace keybin2::runtime {

class JsonWriter;
class JsonValue;
class Timeline;

/// One contiguous piece of the distributed critical path.
struct CriticalSegment {
  enum class Kind { kCompute, kComm, kWait };
  Kind kind = Kind::kCompute;
  int rank = -1;
  std::string label;  // stage path for compute, "comm:tagname" / "wait:kind"
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Cross-rank roll-up of one canonical stage (folded scope path).
struct StageRow {
  std::string stage;
  int ranks = 0;                 // ranks that executed this stage
  std::int64_t total_ns = 0;     // sum over ranks of per-rank self time
  std::int64_t max_ns = 0;       // max over ranks of per-rank self time
  int max_rank = -1;             // the rank holding that max
  std::int64_t wait_ns = 0;      // blocked time inside the stage, all ranks
  std::int64_t critical_ns = 0;  // time this stage spends on the critical path

  double mean_ns() const {
    return ranks == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(ranks);
  }
  /// Load-balance factor max/mean (1.0 = perfectly balanced).
  double imbalance() const {
    const double mean = mean_ns();
    return mean <= 0.0 ? 1.0 : static_cast<double>(max_ns) / mean;
  }
};

/// Per-rank activity totals plus the wait time this rank *caused* on peers.
struct RankActivity {
  int rank = -1;
  std::int64_t busy_ns = 0;         // union of this rank's span coverage
  std::int64_t wait_ns = 0;         // recv + barrier blocked time
  std::int64_t caused_wait_ns = 0;  // late-sender wait inflicted on peers
};

struct TraceAnalysis {
  int ranks = 0;
  std::int64_t epoch_ns = 0;  // earliest event across all ranks
  std::int64_t end_ns = 0;    // latest event across all ranks
  std::int64_t wall_ns = 0;   // end - epoch

  // Critical path, in chronological order; durations sum to wall_ns.
  std::vector<CriticalSegment> critical_path;
  std::int64_t critical_total_ns = 0;
  std::int64_t critical_compute_ns = 0;
  std::int64_t critical_comm_ns = 0;
  std::int64_t critical_wait_ns = 0;
  int rank_jumps = 0;  // cross-rank hops the path takes

  std::vector<StageRow> stages;         // sorted by total_ns descending
  std::vector<RankActivity> per_rank;   // indexed by rank

  // argmax over ranks of caused_wait_ns; -1 when no rank caused any wait.
  int straggler_rank = -1;
  std::int64_t straggler_caused_wait_ns = 0;
  /// straggler's share of all caused wait (0 when none was observed).
  double straggler_share = 0.0;

  /// Human-readable report: critical-path decomposition, stage table,
  /// per-rank activity, straggler attribution.
  std::string format() const;

  /// Machine-readable form consumed by trace_check --analysis and the
  /// perf-regression gate.
  void to_json(JsonWriter& w) const;
};

/// Analyze one timeline per rank (as collected by run_ranks + Context
/// enable_timeline). Tolerates missing flow pairs (unmatched ends are
/// ignored for path construction) and empty timelines.
TraceAnalysis analyze(std::span<const Timeline> ranks);

/// Rebuild per-rank Timelines from a Chrome trace-event JSON document (the
/// exact shape chrome_trace_json emits: "X" spans with cat "scope"/"wait",
/// "s"/"f" flow pairs, "M" metadata). Returns one Timeline per pid seen,
/// ordered by pid; timestamps come back in nanoseconds. Returns empty on
/// structurally alien documents.
std::vector<Timeline> timelines_from_chrome_trace(const JsonValue& doc);

}  // namespace keybin2::runtime
