# Empty compiler generated dependencies file for autok_comparison.
# This may be replaced when dependencies are built.
