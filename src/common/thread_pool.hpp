// Rank-local worker pool for data-parallel kernels.
//
// The paper offloads key assignment and histogram construction to a GPU; here
// the same per-point / per-dimension decomposition runs on a thread pool
// (CP.4: think in tasks; CP.24: the pool joins in its destructor).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace keybin2 {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(begin, end) over [0, n) split into contiguous chunks, one chunk
  /// per worker, and wait for completion. Exceptions from tasks are rethrown
  /// on the calling thread (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool shared by kernels that do not need a private pool.
ThreadPool& global_pool();

}  // namespace keybin2
