// Quickstart: cluster a synthetic Gaussian mixture with KeyBin2 and score
// the result against ground truth.
//
//   ./examples/quickstart [points] [dims] [k]
//
// KeyBin2 is non-parametric — it is never told k — yet recovers the mixture
// structure from nothing but per-dimension binning histograms.
#include <cstdlib>
#include <iostream>

#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;

  const std::size_t points = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::size_t dims = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  const std::size_t k = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  std::cout << "Generating " << points << " points, " << dims
            << " dims, k=" << k << " Gaussian mixture...\n";
  const auto spec = data::make_paper_mixture(dims, k, /*seed=*/7);
  const auto dataset = data::sample(spec, points, /*seed=*/11);

  core::Params params;  // paper defaults; note: k is NOT passed anywhere
  WallTimer timer;
  const auto result = core::fit(dataset.points, params);
  const double elapsed = timer.seconds();

  const auto scores = stats::pairwise_scores(result.labels, dataset.labels);
  std::cout << "KeyBin2 found " << result.n_clusters() << " clusters in "
            << elapsed << " s\n"
            << "  pairwise precision: " << scores.precision << '\n'
            << "  pairwise recall:    " << scores.recall << '\n'
            << "  pairwise F1:        " << scores.f1 << '\n'
            << "  model score (histogram CH): " << result.model.score()
            << '\n'
            << "  kept projected dims: " << result.model.kept_dims().size()
            << " of " << result.model.projection().cols() << " at depth "
            << result.model.depth() << '\n';
  return 0;
}
