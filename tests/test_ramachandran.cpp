#include "md/ramachandran.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "md/geometry.hpp"

namespace keybin2::md {
namespace {

constexpr SecondaryStructure kAll[] = {
    SecondaryStructure::kAlphaHelix,     SecondaryStructure::kBetaStrand,
    SecondaryStructure::kPPIIHelix,      SecondaryStructure::kGammaPrimeTurn,
    SecondaryStructure::kGammaTurn,      SecondaryStructure::kCisPeptide,
};

class CanonicalCenters : public ::testing::TestWithParam<SecondaryStructure> {
};

TEST_P(CanonicalCenters, ClassifyToThemselves) {
  const auto ss = GetParam();
  const auto t = canonical_torsions(ss);
  EXPECT_EQ(classify(t.phi, t.psi, t.omega), ss) << to_string(ss);
}

TEST_P(CanonicalCenters, RobustToSmallJitter) {
  // The generator adds ~8 deg of noise; classification must be stable well
  // inside that envelope.
  const auto ss = GetParam();
  const auto t = canonical_torsions(ss);
  Rng rng(7);
  int correct = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const double phi = wrap_deg(t.phi + rng.normal(0.0, 5.0));
    const double psi = wrap_deg(t.psi + rng.normal(0.0, 5.0));
    const double omega = wrap_deg(t.omega + rng.normal(0.0, 2.0));
    correct += classify(phi, psi, omega) == ss;
  }
  EXPECT_GT(correct, trials * 9 / 10) << to_string(ss);
}

INSTANTIATE_TEST_SUITE_P(AllStructures, CanonicalCenters,
                         ::testing::ValuesIn(kAll));

TEST(Classify, CisPeptideTakesPrecedence) {
  // Alpha-helix phi/psi but omega ~ 0 is still a cis-peptide bond.
  EXPECT_EQ(classify(-63.0, -43.0, 5.0), SecondaryStructure::kCisPeptide);
  EXPECT_EQ(classify(-63.0, -43.0, -20.0), SecondaryStructure::kCisPeptide);
}

TEST(Classify, TransOmegaDoesNotTriggerCis) {
  EXPECT_EQ(classify(-63.0, -43.0, 180.0), SecondaryStructure::kAlphaHelix);
  EXPECT_EQ(classify(-63.0, -43.0, -175.0), SecondaryStructure::kAlphaHelix);
}

TEST(Classify, OutsideAllBoxesIsOther) {
  EXPECT_EQ(classify(150.0, 150.0, 180.0), SecondaryStructure::kOther);
  EXPECT_EQ(classify(0.0, 0.0, 180.0), SecondaryStructure::kOther);
}

TEST(Classify, BetaAndPPIIAreSeparatedByPhi) {
  // Both live at high psi; beta is more extended (phi < -90).
  EXPECT_EQ(classify(-120.0, 140.0, 180.0), SecondaryStructure::kBetaStrand);
  EXPECT_EQ(classify(-75.0, 150.0, 180.0), SecondaryStructure::kPPIIHelix);
}

TEST(Classify, GammaTurnsAreMirrored) {
  EXPECT_EQ(classify(75.0, -60.0, 180.0), SecondaryStructure::kGammaTurn);
  EXPECT_EQ(classify(-85.0, 70.0, 180.0), SecondaryStructure::kGammaPrimeTurn);
}

TEST(ToString, AllNamesAreDistinct) {
  std::set<std::string_view> names;
  for (auto ss : kAll) names.insert(to_string(ss));
  names.insert(to_string(SecondaryStructure::kOther));
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace keybin2::md
