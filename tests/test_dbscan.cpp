#include "baselines/dbscan.hpp"

#include <gtest/gtest.h>

#include "baselines/disjoint_set.hpp"
#include "baselines/kmeans.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "data/shapes.hpp"
#include "stats/metrics.hpp"

namespace keybin2::baselines {
namespace {

TEST(DisjointSet, BasicUnionFind) {
  DisjointSet dsu(6);
  EXPECT_EQ(dsu.count_sets(), 6u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));  // already joined
  EXPECT_EQ(dsu.find(0), dsu.find(2));
  EXPECT_NE(dsu.find(0), dsu.find(3));
  EXPECT_EQ(dsu.count_sets(), 4u);
}

TEST(DisjointSet, LabelsAreCompactAndConsistent) {
  DisjointSet dsu(5);
  dsu.unite(0, 4);
  dsu.unite(1, 2);
  const auto labels = dsu.labels();
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[3]);
  for (int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(Dbscan, SeparatesWellSpacedBlobs) {
  const auto spec = data::make_paper_mixture(2, 3, 1, /*separation=*/25.0);
  const auto d = data::sample(spec, 900, 2);
  const auto result = dbscan(d.points, {.eps = 3.0, .min_points = 5});
  EXPECT_EQ(result.clusters, 3u);
  // Treat noise as singletons for scoring (standard practice).
  auto labels = result.labels;
  int next = static_cast<int>(result.clusters);
  for (auto& l : labels) {
    if (l < 0) l = next++;
  }
  EXPECT_GT(stats::pairwise_scores(labels, d.labels).f1, 0.95);
}

TEST(Dbscan, FindsNonConvexRings) {
  // The classic case where k-means fails and density clustering wins.
  const auto d = data::rings(2, 800, 6.0, 0.12, 3);
  const auto db = dbscan(d.points, {.eps = 1.0, .min_points = 4});
  auto db_labels = db.labels;
  int next = static_cast<int>(db.clusters);
  for (auto& l : db_labels) {
    if (l < 0) l = next++;
  }
  const double db_f1 = stats::pairwise_scores(db_labels, d.labels).f1;

  KMeansParams kp;
  kp.k = 2;
  const double km_f1 =
      stats::pairwise_scores(kmeans(d.points, kp).labels, d.labels).f1;

  EXPECT_GT(db_f1, 0.95);
  EXPECT_GT(db_f1, km_f1);
}

TEST(Dbscan, EverythingNoiseWithTinyEps) {
  const auto spec = data::make_paper_mixture(2, 2, 5);
  const auto d = data::sample(spec, 200, 6);
  const auto result = dbscan(d.points, {.eps = 1e-9, .min_points = 3});
  EXPECT_EQ(result.clusters, 0u);
  EXPECT_EQ(result.noise_points, 200u);
}

TEST(Dbscan, OneClusterWithHugeEps) {
  const auto spec = data::make_paper_mixture(2, 3, 7);
  const auto d = data::sample(spec, 300, 8);
  const auto result = dbscan(d.points, {.eps = 1e6, .min_points = 3});
  EXPECT_EQ(result.clusters, 1u);
  EXPECT_EQ(result.noise_points, 0u);
}

TEST(Dbscan, HighDimensionalDistanceConcentrationCollapses) {
  // Table 2's pdsdbscan row: in 1280-d, within-cluster distances concentrate
  // and any eps that connects a cluster connects everything — the paper saw
  // exactly one cluster with precision 0.286 (= 1/k with k=4 sharing).
  const auto spec = data::make_paper_mixture(256, 4, 9);
  const auto d = data::sample(spec, 400, 10);
  const double eps = estimate_eps(d.points, 4) * 1.5;
  const auto result = dbscan(d.points, {.eps = eps, .min_points = 5});
  EXPECT_LE(result.clusters, 4u);
}

TEST(Dbscan, ParamsValidated) {
  Matrix points(10, 2);
  EXPECT_THROW(dbscan(points, {.eps = 0.0, .min_points = 3}), Error);
  EXPECT_THROW(dbscan(points, {.eps = 1.0, .min_points = 0}), Error);
}

TEST(Dbscan, BorderPointsJoinACoreCluster) {
  // Line of 5 dense points plus one border point within eps of the end.
  Matrix points(6, 1, {0.0, 0.1, 0.2, 0.3, 0.4, 0.9});
  const auto result = dbscan(points, {.eps = 0.55, .min_points = 4});
  EXPECT_EQ(result.clusters, 1u);
  EXPECT_EQ(result.labels[5], result.labels[0]);  // border attached
}

TEST(EstimateEps, ScalesWithDataSpread) {
  const auto tight_spec = data::make_paper_mixture(4, 1, 11, 1.0);
  const auto tight = data::sample(tight_spec, 500, 12);
  auto loose = tight;
  for (auto& v : loose.points.flat()) v *= 10.0;
  EXPECT_GT(estimate_eps(loose.points, 4), estimate_eps(tight.points, 4) * 5);
}

TEST(EstimateEps, Validation) {
  Matrix one(1, 2);
  EXPECT_THROW(estimate_eps(one, 4), Error);
  Matrix two(2, 2);
  EXPECT_THROW(estimate_eps(two, 0), Error);
}

class PdsdbscanSweep : public ::testing::TestWithParam<int> {};

TEST_P(PdsdbscanSweep, MatchesSerialDbscanExactly) {
  const int ranks = GetParam();
  const auto spec = data::make_paper_mixture(2, 3, 13, 20.0);
  const auto d = data::sample(spec, 600, 14);
  const DbscanParams params{.eps = 3.0, .min_points = 5};

  const auto serial = dbscan(d.points, params);

  const auto shards = data::shard(d, ranks);
  std::vector<int> combined(d.size());
  std::vector<std::size_t> cluster_counts(static_cast<std::size_t>(ranks));
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = pdsdbscan(c, shards[r].points, params);
    const auto ranges = data::partition_rows(d.size(), ranks);
    std::copy(result.labels.begin(), result.labels.end(),
              combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
    cluster_counts[r] = result.clusters;
  });

  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(cluster_counts[static_cast<std::size_t>(r)], serial.clusters);
  }
  // Same clusters up to labelling (union order differs across rank counts).
  std::vector<int> serial_labels = serial.labels;
  int next = static_cast<int>(serial.clusters);
  for (auto& l : serial_labels) {
    if (l < 0) l = next++;
  }
  auto combined_pos = combined;
  next = static_cast<int>(serial.clusters);
  for (auto& l : combined_pos) {
    if (l < 0) l = next++;
  }
  EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(combined_pos, serial_labels),
                   1.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, PdsdbscanSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace keybin2::baselines
