// Baseline/current comparison for the continuous perf-regression gate.
//
// compare_reports() diffs two JSON documents of the same shape — either two
// bench reports (BENCH_<name>.json, written by bench::Reporter) or two
// trace-analysis reports (kb2_analyze --json) — and classifies every shared
// metric:
//   * timing series   — lower-better walls ("*_seconds", "time_s") and
//     higher-better speedups. The tolerance is noise-calibrated: each bench
//     series carries mean/stddev over its runs, so the acceptance band is
//       tol = min(0.9, max(time_tol, noise_k * cv)),  cv = stddev/mean.
//     A quiet series gets the floor tolerance; a noisy one gets a band wide
//     enough that k-sigma jitter cannot trip the gate. The 0.9 cap means a
//     genuine 2x slowdown always fails, no matter how noisy the baseline.
//   * byte counters   — "reduce_bytes_*", per-stage bytes_sent. These are
//     seed-deterministic, so they get the tight bytes_tol with no noise
//     widening; growth beyond it is a regression even when runtime is fine.
//   * imbalance       — per-stage max/mean factors, gated only for stages
//     big enough to measure (min_stage_seconds) and only against a 2x-style
//     relative threshold, because thread-simulated ranks on a shared CI box
//     jitter hard.
// Structural mismatches (different bench options, a metric present in the
// baseline but missing now) are errors, not silently skipped: losing
// coverage must fail the gate too.
//
// scale_time exists for the gate's self-test: it multiplies current timing
// values by a synthetic factor, so `--perf-gate` can prove the gate trips
// on a 2x slowdown without actually slowing the machine down.
#pragma once

#include <string>
#include <vector>

namespace keybin2::runtime {

class JsonValue;

struct CompareOptions {
  double time_tol = 0.5;        // floor tolerance for timing series
  double bytes_tol = 0.10;      // deterministic byte counters
  double imbalance_tol = 1.0;   // stage imbalance may grow up to (1+tol)x
  double noise_k = 3.0;         // widen timing tol to k * cv
  double scale_time = 1.0;      // synthetic slowdown injected into `current`
  double min_stage_seconds = 1e-3;  // ignore smaller stages for imbalance
};

/// One compared metric. `ratio` is current/baseline (after scale_time);
/// `tolerance` the effective acceptance band that was applied.
struct CompareFinding {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 1.0;
  double tolerance = 0.0;
  bool gated = false;      // participated in pass/fail (vs. informational)
  bool regressed = false;
};

struct CompareResult {
  std::vector<CompareFinding> findings;
  std::vector<std::string> errors;  // structural problems; any entry fails
  // Advisory notes that never gate: provenance drift (different commit,
  // compiler, or flags between baseline and current) changes what a timing
  // difference *means* but is a legitimate state during development, so it
  // is surfaced loudly in format() without failing ok().
  std::vector<std::string> warnings;

  bool ok() const {
    if (!errors.empty()) return false;
    for (const auto& f : findings) {
      if (f.regressed) return false;
    }
    return true;
  }
  int regressions() const {
    int n = 0;
    for (const auto& f : findings) n += f.regressed ? 1 : 0;
    return n;
  }

  /// Human-readable table: every gated metric, regressions flagged, errors
  /// listed, one-line verdict at the end.
  std::string format() const;
};

/// Diff `current` against `baseline`. Dispatches on document shape: a
/// "bench" key selects the bench-report comparison, a "critical_path" key
/// the trace-analysis comparison; anything else is a structural error.
CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& opts = {});

}  // namespace keybin2::runtime
