#include "md/insitu.hpp"

#include "common/error.hpp"

namespace keybin2::md {

InSituAnalyzer::InSituAnalyzer(std::size_t residues, core::Params params,
                               std::size_t refit_interval)
    : engine_(residues, params), refit_interval_(refit_interval),
      history_(0, residues) {
  KB2_CHECK_MSG(refit_interval >= 1, "refit interval must be >= 1");
}

InSituAnalyzer::InSituAnalyzer(runtime::Context& ctx, std::size_t residues,
                               core::Params params,
                               std::size_t refit_interval)
    : engine_(residues, params), ctx_(&ctx),
      refit_interval_(refit_interval), history_(0, residues) {
  KB2_CHECK_MSG(refit_interval >= 1, "refit interval must be >= 1");
}

int InSituAnalyzer::push_features(std::span<const double> features) {
  engine_.push(features);
  history_.append_row(features);
  if (++since_refit_ >= refit_interval_) {
    refit();
  }
  const int label =
      engine_.has_model() ? engine_.label(features) : -1;
  fingerprint_.push_back(label);
  return label;
}

int InSituAnalyzer::push_frame(const Trajectory& traj, std::size_t frame) {
  const auto features = featurize_frame(traj, frame);
  return push_features(features);
}

void InSituAnalyzer::refit() {
  if (ctx_ != nullptr) {
    engine_.refit(*ctx_);
  } else {
    engine_.refit();
  }
  since_refit_ = 0;
}

std::vector<int> InSituAnalyzer::relabel_all() {
  KB2_CHECK_MSG(engine_.has_model(), "no model yet: push more frames or refit");
  return engine_.model().predict(history_);
}

}  // namespace keybin2::md
