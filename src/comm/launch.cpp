#include "comm/launch.hpp"

#include <cstdlib>
#include <string>

#include "comm/proc_comm.hpp"
#include "common/error.hpp"

namespace keybin2::comm {

const char* backend_name(Backend b) {
  return b == Backend::kProcess ? "process" : "thread";
}

LaunchOptions LaunchOptions::from_env() {
  LaunchOptions opt;
  if (const char* v = std::getenv("KB2_BACKEND")) {
    const std::string s(v);
    if (s == "proc" || s == "process") {
      opt.backend = Backend::kProcess;
    } else if (s == "thread" || s.empty()) {
      opt.backend = Backend::kThread;
    } else {
      throw Error("KB2_BACKEND must be 'thread' or 'proc', got '" + s + "'");
    }
  }
  if (const char* v = std::getenv("KB2_PROC_RING_BYTES")) {
    opt.ring_bytes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("KB2_MAX_RESPAWNS")) {
    opt.recovery.max_respawns = static_cast<int>(std::strtol(v, nullptr, 10));
  }
  return opt;
}

namespace {

TrafficStats run_ranks_thread(int n_ranks,
                              const std::function<void(Communicator&)>& fn,
                              const AbnormalDeathFn& on_abnormal_death) {
  KB2_CHECK_MSG(n_ranks >= 1, "need at least one rank, got " << n_ranks);
  ThreadCommHub hub(n_ranks);

  std::exception_ptr first_error;
  std::mutex err_mu;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadComm c = hub.comm(r);
      try {
        fn(c);
        // Normal return: the rank leaves the group. Survivors blocked on it
        // (or waiting for it in agree_survivors) are woken rather than hung.
        hub.mark_departed(r);
      } catch (const std::exception& e) {
        {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Per-rank failure flag: peers blocked on this rank wake with a
        // RankFailedError naming it, and may shrink-and-continue without it.
        hub.mark_failed(r, e.what());
        // Thread ranks can't be SIGKILLed; a thrown death is the backend's
        // abnormal exit, reported to the same forensics seam.
        if (on_abnormal_death) on_abnormal_death(r, 0, e.what());
      } catch (...) {
        {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        hub.mark_failed(r, "unknown exception");
        if (on_abnormal_death) on_abnormal_death(r, 0, "unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  TrafficStats total;
  for (int r = 0; r < n_ranks; ++r) total += hub.stats(r);
  return total;
}

}  // namespace

TrafficStats run_ranks(int n_ranks,
                       const std::function<void(Communicator&)>& fn) {
  return run_ranks_thread(n_ranks, fn, {});
}

TrafficStats run_ranks(const LaunchOptions& options, int n_ranks,
                       const std::function<void(Communicator&)>& fn) {
  if (options.backend == Backend::kThread) {
    return run_ranks_thread(n_ranks, fn, options.on_abnormal_death);
  }
  ProcRunResult res = proc_run_ranks(
      n_ranks, options.ring_bytes, options.recovery,
      [&](Communicator& c) {
        fn(c);
        return std::vector<std::byte>{};
      },
      options.on_abnormal_death);
  if (res.first_error) std::rethrow_exception(res.first_error);
  return res.total_stats;
}

std::vector<std::vector<std::byte>> run_ranks_collect_bytes(
    const LaunchOptions& options, int n_ranks,
    const std::function<std::vector<std::byte>(Communicator&)>& fn,
    TrafficStats* total, std::exception_ptr* first_error) {
  if (options.backend == Backend::kProcess) {
    ProcRunResult res =
        proc_run_ranks(n_ranks, options.ring_bytes, options.recovery, fn,
                       options.on_abnormal_death);
    if (total != nullptr) *total = res.total_stats;
    if (first_error != nullptr) {
      *first_error = res.first_error;
    } else if (res.first_error) {
      std::rethrow_exception(res.first_error);
    }
    return std::move(res.results);
  }

  // Thread backend: same contract (blobs indexed by rank, errors optionally
  // captured instead of thrown), delivered through shared memory the easy
  // way — the results vector is shared by reference and each rank writes
  // only its own slot.
  std::vector<std::vector<std::byte>> results(
      static_cast<std::size_t>(n_ranks));
  TrafficStats stats;
  std::exception_ptr err;
  try {
    stats = run_ranks_thread(
        n_ranks,
        [&](Communicator& c) {
          results[static_cast<std::size_t>(c.rank())] = fn(c);
        },
        options.on_abnormal_death);
  } catch (...) {
    err = std::current_exception();
  }
  if (total != nullptr) *total = stats;
  if (first_error != nullptr) {
    *first_error = err;
  } else if (err) {
    std::rethrow_exception(err);
  }
  return results;
}

}  // namespace keybin2::comm
