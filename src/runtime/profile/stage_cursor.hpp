// Lock-free primitives of the continuous profiler (DESIGN.md §8).
//
// The sampling profiler needs to read "what stage is this rank in right
// now?" from a context that may not take locks or allocate: a SIGPROF
// handler interrupting the rank itself (process backend), or a sampler
// thread racing the rank (thread backend). Two fixed-size structures carry
// the whole data path:
//
//   * StageCursor — a seqlock-versioned copy of the current scope path.
//     The rank thread is the only writer (it republishes at every scope
//     open/close); readers copy the buffer and retry/drop on a torn read.
//     This is the same publish-after-copy discipline as the ProcComm ring
//     heads: bump the sequence odd, write the payload, bump it even with
//     release ordering.
//   * SampleTable — open-addressing hash table of (stage path -> hit
//     count) with a single designated writer (the signal handler or the
//     hub thread). record() never allocates, never locks, and degrades to
//     a dropped-sample counter when the table is full or the cursor read
//     tore — a dropped sample is invisible noise, a blocked sampler would
//     be a heisenbug.
//
// Both are async-signal-safe on the writer path by construction: no
// malloc, no locks, bounded loops only.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace keybin2::runtime::profile {

/// Seqlock-published mirror of the rank's current scope path. One writer
/// (the rank thread), any number of readers (sampler thread, the rank's own
/// SIGPROF handler). Paths longer than kMaxPath-1 keep their tail — the
/// leaf stage is the interesting part of "fit/trial12/bin".
class StageCursor {
 public:
  static constexpr std::size_t kMaxPath = 96;

  void publish(std::string_view path) {
    if (path.size() > kMaxPath - 1) {
      path.remove_prefix(path.size() - (kMaxPath - 1));
    }
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    len_ = static_cast<std::uint32_t>(path.size());
    std::memcpy(path_, path.data(), path.size());
    path_[path.size()] = '\0';
    std::atomic_thread_fence(std::memory_order_release);
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);  // even: stable
  }

  /// Copy the current path into `out` (>= kMaxPath bytes). Returns false on
  /// a torn read (writer mid-publish) — the caller drops the sample rather
  /// than spin, because under SIGPROF the interrupted writer cannot finish
  /// until the handler returns.
  bool snapshot(char* out, std::uint32_t* len) const {
    const std::uint32_t s1 = seq_.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t n = len_;
    if (n > kMaxPath - 1) return false;  // torn length
    std::memcpy(out, path_, n);
    out[n] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_acquire) != s1) return false;
    *len = n;
    return true;
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
  std::uint32_t len_ = 0;
  char path_[kMaxPath] = {};
};

/// Fixed-size open-addressing (path -> sample count) table with one
/// designated writer. Readers (flamegraph export) run after sampling has
/// stopped, so only the writer path needs the lock-free discipline.
class SampleTable {
 public:
  static constexpr std::size_t kSlots = 512;
  static constexpr std::size_t kMaxPath = StageCursor::kMaxPath;

  struct Slot {
    std::atomic<std::uint32_t> used{0};
    char path[kMaxPath] = {};
    std::atomic<std::uint64_t> count{0};
  };

  /// Record one hit of `path` (len bytes). Signal-safe: linear probe over a
  /// fixed array, no allocation. A full table counts the sample as dropped
  /// instead of evicting — sampling is best-effort by design.
  void record(const char* path, std::uint32_t len) {
    total_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h = fnv1a(path, len);
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
      Slot& s = slots_[(h + probe) % kSlots];
      if (s.used.load(std::memory_order_acquire) == 0) {
        std::memcpy(s.path, path, len);
        s.path[len] = '\0';
        s.used.store(1, std::memory_order_release);
        s.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (std::strncmp(s.path, path, kMaxPath) == 0 &&
          s.path[len] == '\0') {
        s.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  void drop() {
    total_.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Visit every occupied slot (call only after sampling stopped).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used.load(std::memory_order_acquire) != 0) {
        fn(std::string_view(s.path), s.count.load(std::memory_order_relaxed));
      }
    }
  }

 private:
  static std::uint64_t fnv1a(const char* data, std::uint32_t len) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint32_t i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
    return h;
  }

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Per-interval sample counts, flushed into the Timeline as counter events
/// at Profiler::stop() — the "sample density" track in the Chrome trace.
/// Fixed capacity: runs longer than kMaxBuckets * bucket_ns fold their
/// tail samples into the last bucket (density flattens, never lies about
/// totals).
struct DensitySeries {
  static constexpr std::size_t kMaxBuckets = 600;

  std::int64_t t0_ns = 0;
  std::int64_t bucket_ns = 100'000'000;  // 100 ms
  std::atomic<std::uint32_t> counts[kMaxBuckets] = {};

  void record(std::int64_t t_ns) {
    std::int64_t idx = (t_ns - t0_ns) / bucket_ns;
    if (idx < 0) idx = 0;
    if (idx >= static_cast<std::int64_t>(kMaxBuckets)) {
      idx = kMaxBuckets - 1;
    }
    counts[idx].fetch_add(1, std::memory_order_relaxed);
  }
};

/// "fit/trial12/bin" -> "fit;trial*;bin": one collapsed-stack (flamegraph)
/// frame line from a folded scope path. Declared here so the sampler, the
/// profiler export, and the tests agree on the separator.
std::string collapse_stack(std::string_view folded_path);

}  // namespace keybin2::runtime::profile
