// Minimal 3-D geometry for molecular conformations.
//
// The in-situ case study characterizes each conformation by backbone torsion
// angles; dihedral() is the textbook four-atom torsion (the angle between the
// planes (p1,p2,p3) and (p2,p3,p4)), which is how phi/psi/omega are defined.
#pragma once

#include <cmath>

namespace keybin2::md {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
};

inline double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

/// Signed dihedral angle in degrees, in (-180, 180], defined by the four
/// atoms p1-p2-p3-p4 (e.g. C-N-CA-C for phi).
double dihedral_deg(const Vec3& p1, const Vec3& p2, const Vec3& p3,
                    const Vec3& p4);

/// Wrap an angle in degrees into (-180, 180].
double wrap_deg(double angle);

/// Shortest angular difference |a - b| on the circle, in [0, 180].
double angular_distance_deg(double a, double b);

}  // namespace keybin2::md
