file(REMOVE_RECURSE
  "CMakeFiles/protein_insitu.dir/protein_insitu.cpp.o"
  "CMakeFiles/protein_insitu.dir/protein_insitu.cpp.o.d"
  "protein_insitu"
  "protein_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
