// Out-of-core KeyBin2 (paper §3.4): "every point needs to be read once,
// then multiplied by the random matrix to reduce its dimensionality, and
// assigned a key. After that, the point can be either discarded or sent to
// secondary storage awaiting its final clustering assignment."
//
// fit_from_file() clusters a dataset that never fits in memory: it streams
// the binary file in bounded chunks through the streaming engine (pass 1 —
// histograms only), refits, then streams it again to write labels (pass 2).
// Peak memory is O(chunk + histograms), independent of the dataset size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/params.hpp"
#include "runtime/context.hpp"

namespace keybin2::core {

struct OutOfCoreResult {
  Model model;
  std::uint64_t points = 0;
  std::size_t dims = 0;
  std::size_t chunks = 0;
  /// False when the run stopped at a CheckpointOptions::max_chunks budget
  /// pause; the model is then default-constructed and a checkpoint holding
  /// the partial pass-1 state awaits the next fit_from_file() call.
  bool completed = true;
};

/// Checkpoint/restart policy for fit_from_file (DESIGN.md §4b).
///
/// With a non-empty `path`, pass 1 persists the streaming engine plus the
/// chunk cursor to `path` (versioned, CRC32-checked; see checkpoint.hpp)
/// every `every_chunks` chunks; a later call with the same arguments finds
/// the file, validates it against the dataset, seeks the input to the saved
/// chunk boundary, and continues — the resumed run's model is bit-identical
/// to an uninterrupted one. The file is removed on success. `max_chunks`
/// > 0 additionally pauses the run after ingesting that many chunks
/// (completed=false), which is how the kill-and-resume tests realize a
/// deterministic mid-run death. Checkpointing is single-rank only: a
/// collective pass cannot restart from one rank's private file offset.
struct CheckpointOptions {
  std::string path;               // empty = checkpointing disabled
  std::size_t every_chunks = 8;   // save cadence during pass 1
  std::size_t max_chunks = 0;     // 0 = no budget pause
};

/// Cluster the dataset stored at `input_path` (keybin2::data binary format,
/// see data/io.hpp) reading at most `chunk_points` rows at a time. Labels
/// are written to `labels_path` as one int per point (raw little-endian
/// stream, same order as the input). Ground-truth labels in the input are
/// ignored. The context's tracer accumulates the two I/O passes under
/// "out_of_core/pass1_histograms" and "out_of_core/pass2_label", with the
/// refit's pipeline stages nested between them.
OutOfCoreResult fit_from_file(runtime::Context& ctx,
                              const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params = {},
                              std::size_t chunk_points = 8192,
                              const CheckpointOptions& checkpoint = {});

/// Convenience: serial out-of-core fit over an internal single-rank context.
OutOfCoreResult fit_from_file(const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params = {},
                              std::size_t chunk_points = 8192,
                              const CheckpointOptions& checkpoint = {});

/// Read back a label stream written by fit_from_file.
std::vector<int> read_labels(const std::string& labels_path);

}  // namespace keybin2::core
