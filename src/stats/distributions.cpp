#include "stats/distributions.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace keybin2::stats {

double log_choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double hypergeometric_pmf(std::uint64_t total, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t k) {
  KB2_CHECK_MSG(marked <= total && draws <= total,
                "hypergeometric parameters out of range");
  if (k > draws || k > marked) return 0.0;
  if (draws - k > total - marked) return 0.0;
  const double lp = log_choose(marked, k) +
                    log_choose(total - marked, draws - k) -
                    log_choose(total, draws);
  return std::exp(lp);
}

double hypergeometric_mean(std::uint64_t total, std::uint64_t marked,
                           std::uint64_t draws) {
  KB2_CHECK_MSG(total > 0, "empty population");
  return static_cast<double>(draws) * static_cast<double>(marked) /
         static_cast<double>(total);
}

std::size_t percentile_bin(std::span<const double> counts, double p) {
  KB2_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile " << p << " out of range");
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0 || counts.empty()) return 0;
  const double target = total * p / 100.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= target) return i;
  }
  return counts.size() - 1;
}

void OnlineMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineMoments::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

}  // namespace keybin2::stats
