#include "baselines/xmeans.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/gaussian_mixture.hpp"
#include "stats/metrics.hpp"

namespace keybin2::baselines {
namespace {

TEST(XMeansBic, PrefersTrueStructure) {
  // BIC of the true 3-cluster model beats a forced 1-cluster model.
  const auto spec = data::make_paper_mixture(6, 3, 1, 15.0);
  const auto d = data::sample(spec, 600, 2);

  KMeansParams k3;
  k3.k = 3;
  k3.n_init = 3;
  const auto m3 = kmeans(d.points, k3);
  KMeansParams k1;
  k1.k = 1;
  const auto m1 = kmeans(d.points, k1);

  EXPECT_GT(kmeans_bic(d.points, m3.labels, m3.centers),
            kmeans_bic(d.points, m1.labels, m1.centers));
}

TEST(XMeansBic, PenalizesGratuitousClusters) {
  // On single-cluster data, k=1 must out-BIC k=8.
  const auto spec = data::make_paper_mixture(6, 1, 3);
  const auto d = data::sample(spec, 500, 4);
  KMeansParams k1, k8;
  k1.k = 1;
  k8.k = 8;
  const auto m1 = kmeans(d.points, k1);
  const auto m8 = kmeans(d.points, k8);
  EXPECT_GT(kmeans_bic(d.points, m1.labels, m1.centers),
            kmeans_bic(d.points, m8.labels, m8.centers));
}

class XMeansRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XMeansRecovery, FindsApproximatelyTrueK) {
  const std::size_t true_k = GetParam();
  const auto spec = data::make_paper_mixture(10, true_k, 5 + true_k, 15.0);
  const auto d = data::sample(spec, 400 * true_k, 6 + true_k);
  XMeansParams params;
  params.k_max = 16;
  params.seed = 7;
  const auto result = xmeans(d.points, params);
  EXPECT_GE(result.k, true_k);
  EXPECT_LE(result.k, true_k + 3);
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.recall, 0.85);
}

INSTANTIATE_TEST_SUITE_P(TrueK, XMeansRecovery, ::testing::Values(2, 3, 5));

TEST(XMeans, SingleClusterDataStaysSingle) {
  const auto spec = data::make_paper_mixture(8, 1, 11);
  const auto d = data::sample(spec, 800, 12);
  XMeansParams params;
  params.seed = 13;
  const auto result = xmeans(d.points, params);
  EXPECT_LE(result.k, 2u);
}

TEST(XMeans, RespectsKMax) {
  const auto spec = data::make_paper_mixture(6, 6, 15, 20.0);
  const auto d = data::sample(spec, 1200, 16);
  XMeansParams params;
  params.k_max = 3;
  const auto result = xmeans(d.points, params);
  EXPECT_LE(result.k, 3u);
}

TEST(XMeans, ValidatesParameters) {
  Matrix points(10, 2);
  XMeansParams bad;
  bad.k_min = 5;
  bad.k_max = 2;
  EXPECT_THROW(xmeans(points, bad), Error);
}

TEST(XMeans, DeterministicInSeed) {
  const auto spec = data::make_paper_mixture(5, 3, 17);
  const auto d = data::sample(spec, 600, 18);
  XMeansParams params;
  params.seed = 19;
  const auto a = xmeans(d.points, params);
  const auto b = xmeans(d.points, params);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.k, b.k);
}

}  // namespace
}  // namespace keybin2::baselines
