#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite.
#
#   tools/check_tier1.sh           # full suite (what CI runs)
#   tools/check_tier1.sh --quick   # skip suites labelled `slow` (ctest -LE slow)
#   tools/check_tier1.sh --tsan    # ThreadSanitizer build, comm/fault suites only
#   tools/check_tier1.sh --asan    # AddressSanitizer build, comm/fault suites only
#   tools/check_tier1.sh --trace-smoke
#                                  # build, then run an instrumented 4-rank
#                                  # cluster and gate on the observability
#                                  # outputs: trace_check validates the Chrome
#                                  # trace JSON (>= 4 rank timelines, >= 1
#                                  # flow pair), and the printed report must
#                                  # carry non-empty metrics
#   tools/check_tier1.sh --bench-smoke
#                                  # build, then run bench/kernel_fusion at a
#                                  # small size (fast; the bench itself aborts
#                                  # on any fused-vs-staged mismatch) and gate
#                                  # on trace_check --bench validating the
#                                  # BENCH_kernel_fusion.json schema
#
# The sanitizer modes build into their own directories (build-tsan/build-asan)
# so they never dirty the primary build, and run only the `comm`-labelled
# suites (thread_comm, fault injection, resilience soak) — the lock-heavy code
# where a sanitizer earns its ~10x slowdown.
#
# Extra arguments after the flags are forwarded to ctest.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"

sanitize=""
trace_smoke=0
bench_smoke=0
ctest_args=()
for arg in "$@"; do
  case "${arg}" in
    --quick) ctest_args+=(-LE slow) ;;
    --tsan) sanitize="thread" ;;
    --asan) sanitize="address" ;;
    --trace-smoke) trace_smoke=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    *) ctest_args+=("${arg}") ;;
  esac
done

cmake_args=()
if [[ "${sanitize}" == "thread" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"
  cmake_args+=(-DKB2_SANITIZE=thread)
  ctest_args+=(-L comm)
elif [[ "${sanitize}" == "address" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-asan}"
  cmake_args+=(-DKB2_SANITIZE=address)
  ctest_args+=(-L comm)
fi

cmake -B "${build_dir}" -S "${repo_root}" "${cmake_args[@]}"
cmake --build "${build_dir}" -j

if [[ "${trace_smoke}" == "1" ]]; then
  # Observability smoke: an instrumented distributed run must produce a
  # loadable trace and a non-empty metrics report.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 4000 --dims 8 --k 3 --seed 7
  "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
    --ranks 4 --trace --trace-json "${smoke_dir}/trace.json" \
    --log "${smoke_dir}/events.jsonl" | tee "${smoke_dir}/report.txt"
  "${build_dir}/tools/trace_check" "${smoke_dir}/trace.json" \
    --min-ranks 4 --min-flows 1
  # Empty metrics would drop these lines from the report entirely.
  grep -q "points_binned" "${smoke_dir}/report.txt" \
    || { echo "trace smoke: no metrics counters in report" >&2; exit 1; }
  grep -q "comm heatmap" "${smoke_dir}/report.txt" \
    || { echo "trace smoke: no traffic heatmap in report" >&2; exit 1; }
  echo "trace smoke: OK"
  exit 0
fi

if [[ "${bench_smoke}" == "1" ]]; then
  # Kernel-fusion smoke: a small run of the fused-vs-staged bench. The bench
  # exits nonzero on any fused/staged key, count, or merge mismatch, so this
  # doubles as a bit-identity gate; trace_check then validates the report
  # schema the perf table is built from.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  (cd "${smoke_dir}" && "${build_dir}/bench/kernel_fusion" \
    --points-per-rank 20000 --ranks 4 --runs 1)
  "${build_dir}/tools/trace_check" --bench \
    "${smoke_dir}/BENCH_kernel_fusion.json"
  echo "bench smoke: OK"
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" \
  "${ctest_args[@]}"
