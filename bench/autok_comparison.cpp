// Extension bench: automatic cluster-count discovery.
//
// Tables 1-2 handicap the baselines by GIVING them the true k. This bench
// levels the field with X-means (§2's BIC-based auto-k k-means) — the
// natural non-parametric comparator — across true cluster counts and
// dimensionalities. KeyBin2's characteristic over-segmentation (small
// outlier cells, high precision) contrasts with X-means' BIC parsimony.
#include <cstdio>

#include "baselines/xmeans.hpp"
#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  const auto opt = bench::Options::parse(argc, argv);
  std::printf(
      "Auto-k comparison: KeyBin2 vs X-means (neither is told k).\n\n");

  for (std::size_t dims : {20ul, 160ul}) {
    std::printf("== %zu dimensions ==\n", dims);
    std::printf("%-7s | %22s %10s %8s | %22s %10s %8s\n", "true k",
                "KeyBin2 clusters", "F1", "time", "X-means clusters", "F1",
                "time");
    for (std::size_t k : {2ul, 4ul, 8ul}) {
      bench::Series kb_clusters, kb_f1, kb_time;
      bench::Series xm_clusters, xm_f1, xm_time;
      for (int run = 0; run < opt.runs; ++run) {
        const std::uint64_t seed = opt.seed + 100 * run + k;
        const auto spec = data::make_paper_mixture(dims, k, seed);
        const auto d = data::sample(spec, 1000 * k, seed + 1);

        {
          core::Params params;
          params.seed = seed;
          WallTimer timer;
          const auto result = core::fit(d.points, params);
          kb_time.add(timer.seconds());
          const auto acc = bench::score_labels(result.labels, d.labels);
          kb_clusters.add(acc.clusters);
          kb_f1.add(acc.f1);
        }
        {
          baselines::XMeansParams params;
          params.k_max = 4 * k;
          params.seed = seed;
          WallTimer timer;
          const auto result = baselines::xmeans(d.points, params);
          xm_time.add(timer.seconds());
          const auto acc = bench::score_labels(result.labels, d.labels);
          xm_clusters.add(acc.clusters);
          xm_f1.add(acc.f1);
        }
      }
      std::printf("%-7zu | %22s %10s %7.2fs | %22s %10s %7.2fs\n", k,
                  kb_clusters.str(1).c_str(), kb_f1.str(2).c_str(),
                  kb_time.mean(), xm_clusters.str(1).c_str(),
                  xm_f1.str(2).c_str(), xm_time.mean());
    }
    std::printf("\n");
  }
  bench::Reporter::global().write(opt);
  return 0;
}
