// Dense row-major matrix of doubles.
//
// KeyBin2 treats a dataset as an M x N matrix (M points, N features); rows are
// the unit of distribution across ranks and the unit of parallelism inside a
// rank, so the storage is row-major and row views are spans (Per.16/Per.19:
// compact, predictable memory access).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace keybin2 {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Adopt existing storage; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    KB2_CHECK_MSG(data_.size() == rows_ * cols_,
                  "storage size " << data_.size() << " != " << rows_ << "x"
                                  << cols_);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<double> row(std::size_t r) {
    KB2_CHECK_MSG(r < rows_, "row " << r << " out of range " << rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Read-only view of row r.
  std::span<const double> row(std::size_t r) const {
    KB2_CHECK_MSG(r < rows_, "row " << r << " out of range " << rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Append a row (point). len must equal cols(); sets cols on first append
  /// to an empty matrix.
  void append_row(std::span<const double> v);

  /// Re-dimension in place, reusing the existing allocation when it is large
  /// enough. Contents are unspecified afterwards; callers overwrite every
  /// element. This is the scratch-reuse hook for per-trial workspaces.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Copy of rows [begin, end).
  Matrix slice_rows(std::size_t begin, std::size_t end) const;

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b where a is (m x n) and b is (n x p); used for random
/// projection (X' = X A). Plain triple loop with the k-loop in the middle for
/// streaming access on both operands.
Matrix matmul(const Matrix& a, const Matrix& b);

}  // namespace keybin2
