// Crash-forensics flight recorder (DESIGN.md §10).
//
// Every rank owns a fixed-size ring of 64-byte FlightRecords in a shared
// mapping created by the launcher *before* any fork, so forked ranks (and
// their respawned incarnations) inherit the same memory and the supervisor
// can still read a rank's trail after SIGKILL. Records cover stage
// transitions (via the Tracer's ScopeObserver), comm operations (begin/end
// from the comm::FlightHook seam — an unmatched begin is the in-flight
// evidence), checkpoint/recovery events, and mailbox-depth snapshots.
//
// Signal-safety argument: record() performs only std::atomic_ref stores over
// plain POD fields plus one clock_gettime — no locks, no allocation, no
// syscalls that can block — so it is safe from a SIGPROF handler and from
// two incarnations of a rank racing across a respawn. Each slot is
// seqlock-published with a position-derived sequence (odd while writing,
// 2*pos+2 when record `pos` is complete); a reader that snapshots
// concurrently drops torn or overwritten slots instead of blocking.
//
// On abnormal death the supervisor freezes all rings (one shared flag every
// writer polls) and serializes them into a versioned, CRC-checked dump file
// with the same container discipline as core/checkpoint:
//   [u64 magic][u32 version][u64 payload_size][u32 crc32][payload]
// kb2_postmortem reads the dump and reconstructs the cross-rank story.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "common/error.hpp"
#include "runtime/tracer.hpp"

namespace keybin2::runtime::flight {

/// What one flight record describes.
enum class EventType : std::uint8_t {
  kStage = 0,      // pipeline scope open/close (detail = stage path tail)
  kSend = 1,       // comm op, peer/tag/bytes meaningful
  kRecv = 2,
  kBarrier = 3,
  kAgree = 4,      // survivor agreement
  kCheckpoint = 5, // checkpoint written/restored (detail says which)
  kRecovery = 6,   // shrink/regrow/retry ladder event (detail says which)
  kMailbox = 7,    // mailbox-depth snapshot (bytes = depth)
};

enum class EventPhase : std::uint8_t {
  kBegin = 0,
  kEnd = 1,
  kPoint = 2,  // instantaneous event
};

/// One ring slot. 64 bytes, trivially copyable, shared across processes.
/// `seq` is the seqlock word: 2*pos+1 while the writer fills the slot,
/// 2*pos+2 once record number `pos` is complete. A reader expecting position
/// `pos` accepts the slot only at exactly 2*pos+2 — anything else is torn or
/// already overwritten by a later lap.
struct FlightRecord {
  std::uint64_t seq;
  std::int64_t t_ns;
  std::uint32_t incarnation;
  std::uint8_t type;   // EventType
  std::uint8_t phase;  // EventPhase
  std::uint16_t pad;
  std::int32_t peer;   // -1 where not meaningful
  std::int32_t tag;    // -1 where not meaningful
  std::uint64_t bytes;
  char detail[24];     // NUL-padded tail of the stage path / event label
};
static_assert(sizeof(FlightRecord) == 64);
static_assert(std::is_trivially_copyable_v<FlightRecord>);

/// Per-rank control block ahead of that rank's slots. Single writer (the
/// rank's current incarnation); read concurrently by the dumping supervisor.
struct alignas(64) RankControl {
  std::uint64_t head;         // records ever written (atomic_ref, release)
  std::uint32_t incarnation;  // stamped by the writer when it binds
  std::uint32_t bound;        // a writer ever bound to this ring
  std::int64_t epoch_ns;      // when that incarnation bound (satellite: keeps
                              // respawn trails separable in merged traces)
  std::uint64_t dropped;      // records refused because the ring was frozen
};
static_assert(sizeof(RankControl) == 64);

/// Segment-wide control block.
struct SegmentControl {
  std::uint32_t n_ranks;
  std::uint32_t slots_per_rank;
  std::uint32_t frozen;  // atomic_ref; writers drop records once set
  std::uint32_t version;
  std::int64_t created_ns;
  char job[64];
};

/// The pre-fork shared mapping: [SegmentControl][per-rank RankControl +
/// slots]. Created with MAP_SHARED|MAP_ANONYMOUS (no name to leak, no
/// unlink path to race) so fork() children inherit it at the same address;
/// under the thread backend every rank simply writes its own region.
class FlightSegment {
 public:
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kDefaultSlots = 1024;

  FlightSegment(int n_ranks, const std::string& job,
                std::uint32_t slots_per_rank = kDefaultSlots);
  ~FlightSegment();
  FlightSegment(const FlightSegment&) = delete;
  FlightSegment& operator=(const FlightSegment&) = delete;

  int n_ranks() const;
  std::uint32_t slots_per_rank() const;

  /// Stop every writer (they observe the flag on their next record and bump
  /// `dropped` instead). Safe from any process sharing the mapping.
  void freeze();
  /// Re-arm writers after a dump — the supervisor snapshots the death moment
  /// and lets a respawned incarnation keep recording.
  void unfreeze();
  bool frozen() const;

  SegmentControl* control() const;
  RankControl* rank_control(int rank) const;
  FlightRecord* slots(int rank) const;

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  bool mapped_ = false;  // heap fallback on platforms without mmap
};

/// Lock-free single-writer handle for one rank's ring. Binding stamps the
/// control block with (incarnation, epoch_ns); record() publishes one slot.
class FlightWriter {
 public:
  FlightWriter() = default;
  FlightWriter(FlightSegment* seg, int rank, int incarnation);

  bool bound() const { return seg_ != nullptr; }

  /// Async-signal-safe: atomic_ref stores over shared POD plus one
  /// monotonic-clock read. Drops (and counts) the record while frozen.
  void record(EventType type, EventPhase phase, int peer, int tag,
              std::uint64_t bytes, const char* detail);

 private:
  FlightSegment* seg_ = nullptr;
  RankControl* ctl_ = nullptr;
  FlightRecord* slots_ = nullptr;
  std::uint32_t n_slots_ = 0;
  std::uint32_t incarnation_ = 0;
};

/// The runtime-facing recorder: a Tracer ScopeObserver (stage transitions)
/// plus the comm FlightHook (op begin/end), both writing the same ring.
class FlightRecorder final : public ScopeObserver, public comm::FlightHook {
 public:
  FlightRecorder(FlightSegment* seg, int rank, int incarnation);

  // Stage transitions.
  void on_scope_open(std::string_view path) override;
  void on_scope_close(std::string_view path, std::int64_t wall_ns) override;

  // Comm operations.
  void on_op_begin(Op op, int peer, int tag, std::size_t bytes) override;
  void on_op_end(Op op, int peer, int tag, std::size_t bytes) override;

  /// Checkpoint / recovery / mailbox-depth point events.
  void event(EventType type, const char* detail, std::uint64_t bytes = 0);

  FlightWriter& writer() { return writer_; }

 private:
  FlightWriter writer_;
};

// ---- dump container ----

/// A dump read back from disk: the frozen story of every rank's ring, plus
/// the deaths the supervisor attributed at dump time.
struct RankTrail {
  int rank = 0;
  std::uint32_t incarnation = 0;  // latest writer's incarnation
  std::int64_t epoch_ns = 0;      // when that incarnation bound its writer
  std::uint64_t records_total = 0;
  std::uint64_t dropped = 0;
  bool dead = false;
  std::string death_reason;
  std::vector<FlightRecord> records;  // valid tail, oldest first
};

struct FlightDump {
  std::string job;
  std::string reason;  // why the dump was taken
  std::int64_t dump_t_ns = 0;
  std::vector<RankTrail> ranks;
};

/// One rank's death as attributed by the supervisor (waitpid signal reap,
/// fatal error report, watchdog expiry).
struct FlightDeath {
  int rank = -1;
  int incarnation = 0;
  std::string reason;
};

/// Typed defect in a dump file; `defect` is one of "missing", "truncated",
/// "bad_magic", "version_skew", "crc_mismatch", "malformed", "io" — the
/// vocabulary kb2_postmortem reports instead of crashing.
class FlightDumpError final : public Error {
 public:
  FlightDumpError(const std::string& what, std::string path,
                  std::string defect)
      : Error(what), path_(std::move(path)), defect_(std::move(defect)) {}

  const std::string& path() const { return path_; }
  const std::string& defect() const { return defect_; }

 private:
  std::string path_;
  std::string defect_;
};

/// Snapshot every ring (seqlock-validated, torn slots dropped) and write the
/// CRC-checked dump. The caller freezes first if it wants a consistent
/// death-moment snapshot; a concurrent writer only costs dropped slots.
void write_flight_dump(const std::string& path, const FlightSegment& seg,
                       const std::string& reason,
                       std::span<const FlightDeath> deaths);

/// Read and verify a dump; throws FlightDumpError naming the defect.
FlightDump read_flight_dump(const std::string& path);

/// Deliberate damage for robustness tests, mirroring
/// core::corrupt_checkpoint_file's five modes.
enum class DumpCorruption {
  kTruncateHeader,
  kTruncatePayload,
  kZeroSpan,
  kFlipBit,
  kBadMagic,
};
void corrupt_flight_dump(const std::string& path, DumpCorruption mode,
                         std::uint64_t seed = 1);

}  // namespace keybin2::runtime::flight
