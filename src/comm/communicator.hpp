// Message-passing substrate for KeyBin2's distributed drivers.
//
// The paper's implementation uses mpi4py on an Infiniband cluster. This
// environment has no MPI runtime, so keybin2::comm provides the same
// programming model from scratch: a fixed group of ranks exchanging typed
// messages, with collectives (barrier, broadcast, reduce, allreduce, gather,
// allgather) built on top of point-to-point send/recv using the standard
// binomial-tree algorithms. Backends:
//   * SelfComm     — a single rank (serial execution, no copies).
//   * ThreadComm   — N ranks simulated by N threads in one process, talking
//                    through mailboxes. Exercises the identical code path a
//                    real MPI deployment would (serialize → send → reduce →
//                    broadcast), with real concurrency.
//   * SubgroupComm — a densely renumbered view of a parent communicator
//                    restricted to the survivors of a failure (ULFM-style
//                    shrink-and-continue).
//
// All collective calls must be entered by every rank in the same order
// (SPMD discipline), exactly as in MPI.
//
// Fault model: recv()/barrier() honor a per-endpoint deadline
// (set_timeout()) and throw TimeoutError instead of hanging; a peer's death
// surfaces as RankFailedError naming the dead rank; every collective payload
// travels in a CRC32-checked frame so corruption that passes length checks
// still throws CorruptFrameError. All three derive from CommError — the
// recoverable class a driver may answer with agree_survivors() + retry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/coreset.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"

namespace keybin2::comm {

/// Base class of recoverable transport failures: a driver that catches a
/// CommError may call agree_survivors() and retry over the shrunken group.
/// Non-comm errors (bad parameters, broken invariants) stay plain Error and
/// are never retried.
class CommError : public Error {
 public:
  using Error::Error;
};

/// recv()/barrier() exceeded the endpoint's deadline (set_timeout()); the
/// message names (self, src, tag, elapsed) so a hung collective is
/// attributable to one missing peer.
class TimeoutError final : public CommError {
 public:
  TimeoutError(const std::string& what, int self, int src, int tag,
               double elapsed_seconds)
      : CommError(what), self_(self), src_(src), tag_(tag),
        elapsed_seconds_(elapsed_seconds) {}

  int self() const { return self_; }
  int src() const { return src_; }
  int tag() const { return tag_; }
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  int self_, src_, tag_;
  double elapsed_seconds_;
};

/// A peer rank died (threw out of its rank function) or left the group; the
/// message names the caller, the operation, and every dead rank with its
/// recorded reason.
class RankFailedError final : public CommError {
 public:
  using CommError::CommError;
};

/// Another rank has begun survivor agreement: the current operation is
/// abandoned so this rank converges into agree_survivors() too.
class RecoveryError final : public CommError {
 public:
  using CommError::CommError;
};

/// A framed message failed its CRC32 integrity check (zero-fill, bit-flip,
/// or truncation that still parsed).
class CorruptFrameError final : public CommError {
 public:
  using CommError::CommError;
};

/// Reduction operators supported by reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

/// Allreduce algorithm selection. kAuto picks by payload size: small vectors
/// go through the latency-optimal binomial tree (reduce + broadcast,
/// 2·log p rounds shipping the full vector), large ones through the
/// bandwidth-optimal Rabenseifner scheme (recursive-halving reduce-scatter +
/// recursive-doubling allgather, which moves ~2·n/p elements per rank per
/// round instead of n). kCoreset trades exactness for sublinear traffic:
/// each hop ships a capped weighted sketch (comm/coreset.hpp), sum only.
enum class AllreduceAlgo { kAuto, kTree, kRecursiveHalving, kCoreset };

/// What one adaptive allreduce actually did, for metrics attribution.
struct ReduceProfile {
  AllreduceAlgo algo = AllreduceAlgo::kTree;  // algorithm that ran
  std::uint64_t sparse_blocks = 0;  // segments shipped as (index,value) pairs
  std::uint64_t dense_blocks = 0;   // segments shipped dense

  /// Bytes this rank sent inside the call, measured as a TrafficStats delta
  /// around the collective — so CRC frame headers and sparse-segment
  /// prefixes are included and the number reconciles with the CommProbe
  /// per-(peer, tag) traffic matrix.
  std::uint64_t bytes = 0;

  /// kCoreset only: weighted cells this rank transmitted (tree sends plus,
  /// on the broadcast root, the final sketch fan-out payload), and the
  /// original mass its sampling passes left unselected. Summing the latter
  /// over ranks gives the global sampled-away mass of the reduction.
  std::uint64_t coreset_cells = 0;
  double coreset_mass_dropped = 0.0;
};

/// Per-rank traffic counters; used by benches and the runtime tracer to
/// report communication volume (the paper claims the histogram exchange is
/// "as small as several Kbytes"). Send and receive sides are counted
/// symmetrically: within a group, the sums over all ranks must match.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    return *this;
  }

  /// Counter-wise difference (for per-scope deltas); counters are monotone,
  /// so `later - earlier` never underflows.
  TrafficStats operator-(const TrafficStats& o) const {
    return TrafficStats{messages_sent - o.messages_sent,
                        bytes_sent - o.bytes_sent,
                        messages_received - o.messages_received,
                        bytes_received - o.bytes_received};
  }
};

/// Observation hooks a communicator fires on every point-to-point delivery
/// and every blocking wait. A probe lives *below* the collectives — each
/// collective decomposes into send/recv pairs, so attaching one probe at the
/// leaf transport sees the whole traffic matrix, including frames exchanged
/// by SubgroupComm and FaultyComm decorators (which forward set_probe()).
///
/// Ranks and tags are reported in the leaf transport's rank space (the
/// original full group), so a traffic matrix stays comparable across a
/// survivor shrink. Callbacks may run concurrently from different rank
/// threads; implementations must be thread-safe. All hooks must be cheap:
/// they run inside the transport's critical path.
class CommProbe {
 public:
  virtual ~CommProbe() = default;

  /// A message left `self` for `dest`. `flow_id` is unique per delivery and
  /// reappears in the matching on_recv, letting a timeline pair the two ends
  /// of a flow. `queue_depth` is the destination mailbox depth right after
  /// enqueue (0 when the transport cannot know it).
  virtual void on_send(int self, int dest, int tag, std::size_t bytes,
                       std::uint64_t flow_id, std::size_t queue_depth) = 0;

  /// A message from `src` was delivered to `self` after blocking for
  /// `wait_ns` nanoseconds (0 when it was already waiting in the mailbox).
  virtual void on_recv(int self, int src, int tag, std::size_t bytes,
                       std::uint64_t flow_id, std::int64_t wait_ns) = 0;

  /// `self` completed a barrier after blocking for `wait_ns` nanoseconds.
  virtual void on_barrier(int self, std::int64_t wait_ns) = 0;
};

/// Black-box hook a communicator fires at the *start* and *end* of every
/// blocking operation, in contrast to CommProbe which only observes
/// completions. The begin/end pairing is what makes post-mortem attribution
/// possible: a rank killed (or hung) mid-operation leaves a begin with no
/// matching end in its flight ring, naming exactly the op, peer, and tag it
/// died inside. Implementations must be lock-free and allocation-free — the
/// runtime's flight recorder writes a seqlock-published ring slot — because
/// begins fire before any blocking wait and may be interleaved with signal
/// handlers. Decorators and subgroup views forward set_flight_hook() to the
/// leaf transport; fault injectors additionally record a begin for the op a
/// simulated kill interrupts, so the simulated death leaves the same
/// evidence a real SIGKILL would.
class FlightHook {
 public:
  enum Op : int { kSend = 0, kRecv = 1, kBarrier = 2, kAgree = 3 };

  virtual ~FlightHook() = default;

  /// `self` is entering a blocking operation. peer/tag are -1 where not
  /// meaningful (barrier, agreement).
  virtual void on_op_begin(Op op, int peer, int tag, std::size_t bytes) = 0;

  /// The operation completed successfully. An exception path deliberately
  /// records no end: "last record is an unmatched begin" is the in-flight /
  /// waiting-on evidence the post-mortem reads.
  virtual void on_op_end(Op op, int peer, int tag, std::size_t bytes) = 0;
};

/// Human-readable name for a message tag: user tags print as "user:<n>",
/// the reserved collective tags above kUserTagLimit print as the collective
/// that owns them ("bcast", "gather", ...). Used by heatmap/metrics output.
std::string tag_name(int tag);

/// Stable short name of a CommError's concrete kind ("timeout",
/// "rank_failed", "recovery", "corrupt_frame") for event-log attribution.
const char* error_kind(const CommError& e);

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Point-to-point: deliver bytes to `dest` under `tag`. User tags must be
  /// in [0, kUserTagLimit); higher tags are reserved for collectives.
  virtual void send(int dest, int tag, std::span<const std::byte> data) = 0;

  /// Blocking receive of the next message from `src` with `tag` (FIFO per
  /// (src, tag) channel). Honors the endpoint deadline (set_timeout()).
  virtual std::vector<std::byte> recv(int src, int tag) = 0;

  virtual void barrier() = 0;

  virtual TrafficStats stats() const = 0;

  // ---- Fault surface ----

  /// Deadline, in seconds, for recv()/barrier()/agree_survivors() to make
  /// progress before throwing TimeoutError. 0 (the default) waits forever.
  /// Virtual so decorators and subgroup views can forward to the transport
  /// that actually blocks.
  virtual void set_timeout(double seconds) { timeout_seconds_ = seconds; }
  double timeout() const { return timeout_seconds_; }

  /// Ranks of this group known to have failed (empty for healthy backends).
  virtual std::vector<int> failed_ranks() const { return {}; }

  /// How many times this rank's slot has been respawned by a supervisor
  /// (ProcComm's recovery ladder). 0 on the original incarnation and on
  /// backends without respawn; a driver seeing > 0 knows it is a
  /// replacement and may restore state from a checkpoint before rejoining
  /// the protocol. Decorators and subgroup views forward to the leaf.
  virtual int incarnation() const { return 0; }

  /// True when this group's ranks are isolated OS processes (ProcComm): a
  /// rank can really die — SIGKILL and all — without taking the others with
  /// it. Fault injectors consult this before escalating a simulated kill to
  /// a real signal; decorators and subgroup views forward to the leaf
  /// transport.
  virtual bool process_isolated() const { return false; }

  /// Collective among the *live* ranks: agree on the surviving member set
  /// after a failure and return it (in this communicator's rank space, so
  /// the result can seed a SubgroupComm). Dead and departed ranks are
  /// excluded; every live rank must call this (blocked peers are woken with
  /// RecoveryError so they converge). The default covers backends that
  /// cannot lose ranks.
  virtual std::vector<int> agree_survivors();

  static constexpr int kUserTagLimit = 1 << 20;

  /// Attach an observation probe (nullptr detaches). Leaf transports record
  /// into it; decorators and subgroup views forward to the transport that
  /// actually moves bytes. The probe must outlive the communicator or be
  /// detached first. Disabled (the default) costs one branch per operation.
  virtual void set_probe(CommProbe* probe) { probe_ = probe; }
  CommProbe* probe() const { return probe_; }

  /// Attach a flight-recorder hook (nullptr detaches). Same forwarding
  /// discipline as set_probe: leaf transports fire it, decorators forward.
  virtual void set_flight_hook(FlightHook* hook) { flight_hook_ = hook; }
  FlightHook* flight_hook() const { return flight_hook_; }

  /// Recovery-ladder counters, group-wide: replacement forks spent and
  /// regrow epochs completed so far. Live on ProcComm (read from the shared
  /// group header, so every rank sees supervisor activity as it happens);
  /// 0 on backends without a respawn supervisor. Decorators and subgroup
  /// views forward to the leaf.
  virtual std::uint64_t respawns_total() const { return 0; }
  virtual std::uint64_t regrow_epochs() const { return 0; }

  /// Hand a received buffer back to the transport for reuse (collectives
  /// call this after parsing a frame). The default drops it; pooled
  /// transports (ThreadComm) recycle it into their mailbox free list so
  /// steady-state collectives stop allocating per message.
  virtual void recycle_buffer(std::vector<std::byte>&& buf) { buf.clear(); }

  // ---- Collectives (implemented once, over send/recv) ----
  //
  // Every collective payload is framed with a CRC32 checksum (see
  // send_frame/recv_frame), so zero-fill or bit-flip corruption injected
  // under the collective is detected even when every length prefix still
  // parses. Raw send()/recv() stay unframed for user payloads.

  /// Broadcast `data` from `root` to all ranks (binomial tree).
  void broadcast(std::vector<std::byte>& data, int root);

  /// Elementwise reduction to `root`; every rank passes a vector of the same
  /// length. On non-root ranks the result is empty.
  std::vector<double> reduce(std::span<const double> local, ReduceOp op,
                             int root);
  std::vector<std::uint64_t> reduce(std::span<const std::uint64_t> local,
                                    ReduceOp op, int root);

  /// Elementwise reduction, result available on every rank.
  std::vector<double> allreduce(std::span<const double> local, ReduceOp op);
  std::vector<std::uint64_t> allreduce(std::span<const std::uint64_t> local,
                                       ReduceOp op);

  /// Algorithm-selectable allreduce. kAuto switches to recursive halving at
  /// kRecursiveHalvingMinElements. Under kSum, recursive-halving segments
  /// whose density makes (index,value) pairs cheaper than the dense block
  /// travel sparse (mostly-empty deep histograms); min/max always travel
  /// dense (an absent sparse entry decodes as 0, which is only an identity
  /// for sum). Note recursive halving re-associates the sum, so floating
  /// results can differ from the tree by rounding; integer-valued payloads
  /// (histogram counts) are exact under any order.
  std::vector<double> allreduce(std::span<const double> local, ReduceOp op,
                                AllreduceAlgo algo,
                                ReduceProfile* profile = nullptr);

  /// Payload size, in doubles, at which kAuto switches the allreduce from
  /// the binomial tree to recursive halving. Below this the tree's
  /// log-latency wins; above it bandwidth dominates.
  static constexpr std::size_t kRecursiveHalvingMinElements = 1024;

  /// Approximate sum-allreduce through capped weighted sketches
  /// (comm/coreset.hpp): each rank builds a sketch of its vector, sketches
  /// merge up a binomial tree with re-compression at every hop (so no
  /// framed message ever carries more than opts.max_cells entries), the
  /// root broadcasts the final sketch, and every rank expands it densely.
  /// Deterministic per opts.seed; heavy hitters (>= epsilon of total mass)
  /// are exact. Plugs into the same framed send/recv machinery as every
  /// other collective, so CRC checking, timeout/shrink, and CommProbe
  /// observation work unchanged on all backends.
  std::vector<double> coreset_allreduce(std::span<const double> local,
                                        const coreset::Options& opts,
                                        ReduceProfile* profile = nullptr);

  /// Scalar conveniences.
  double allreduce(double value, ReduceOp op);
  std::uint64_t allreduce(std::uint64_t value, ReduceOp op);

  /// Ring allreduce (sum): the accumulating pass walks the ring 0 -> 1 ->
  /// ... -> p-1, then the distribution pass walks it again, so no central
  /// authority ever exists — the topology the paper notes KeyBin2 also
  /// supports for its histogram merge (§3 step 3). 2(p-1) messages.
  std::vector<double> ring_allreduce(std::span<const double> local);

  /// Gather per-rank byte blobs to `root` (index = source rank). On non-root
  /// ranks the result is empty.
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> local,
                                             int root);

  /// Gather per-rank blobs to every rank.
  std::vector<std::vector<std::byte>> allgather(
      std::span<const std::byte> local);

  // ---- Typed helpers ----

  /// Send a double vector (length prefix included, CRC-framed).
  void send_doubles(int dest, int tag, std::span<const double> v);
  std::vector<double> recv_doubles(int src, int tag);

 protected:
  void check_rank(int r) const;
  void check_user_tag(int tag) const;

  /// Frame `payload` as [u32 crc32][payload] and send it.
  void send_frame(int dest, int tag, std::span<const std::byte> payload);

  /// Receive a frame from `src`, verify the checksum, and return the
  /// payload; throws CorruptFrameError naming (self, src, tag) on mismatch.
  std::vector<std::byte> recv_frame(int src, int tag);

 private:
  template <typename T>
  std::vector<T> reduce_impl(std::span<const T> local, ReduceOp op, int root,
                             int base_tag);
  template <typename T>
  std::vector<T> allreduce_impl(std::span<const T> local, ReduceOp op);

  /// Rabenseifner allreduce body (size() > 1): non-power-of-two ranks fold
  /// into a power-of-two core first, then recursive-halving reduce-scatter
  /// and recursive-doubling allgather over tracked element segments.
  std::vector<double> recursive_halving_allreduce(std::span<const double> local,
                                                  ReduceOp op,
                                                  ReduceProfile* profile);

  /// Ship acc[lo, hi) to `dest`, sparse-encoded when `sparse_ok` and the
  /// (index,value) form is smaller.
  void send_reduce_block(int dest, int tag, std::span<const double> block,
                         bool sparse_ok, ReduceProfile* profile);

  /// Receive a block for [lo, hi), decode (dense or sparse), and either
  /// reduce into `into` (combine=true) or overwrite it (combine=false).
  void recv_reduce_block(int src, int tag, std::span<double> into, ReduceOp op,
                         bool combine);

  double timeout_seconds_ = 0.0;
  CommProbe* probe_ = nullptr;
  FlightHook* flight_hook_ = nullptr;
  std::vector<std::byte> frame_scratch_;  // reused send_frame assembly buffer

  // Reduce hot-loop scratch, pooled across blocks, rounds, and calls so the
  // steady-state recursive-halving exchange performs no allocations (the
  // micro bench BM_ReduceSteadyStateAllocs enforces this).
  ByteWriter block_scratch_;               // send-side block encoding
  std::vector<double> recv_block_scratch_;  // recv-side dense block decode
};

/// Single-rank communicator: all collectives are identity operations and
/// send/recv works as a loopback queue (so SPMD code runs unchanged).
class SelfComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }
  void send(int dest, int tag, std::span<const std::byte> data) override;
  /// Honors the deadline API trivially: with no peer, a missing message can
  /// never arrive, so an empty queue is an immediate TimeoutError.
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override {}
  TrafficStats stats() const override { return stats_; }

 private:
  // (tag -> FIFO of messages); loopback only. Each entry carries the flow id
  // assigned at send time so a probe can pair the two ends.
  struct Queued {
    int tag;
    std::uint64_t flow_id;
    std::vector<std::byte> bytes;
  };
  std::vector<Queued> queue_;
  TrafficStats stats_;
  std::uint64_t next_flow_id_ = 1;
};

/// A densely renumbered view of `parent` restricted to `members` (parent
/// ranks, strictly ascending; must contain the calling rank). This is the
/// shrunken group a driver continues on after agree_survivors(): subgroup
/// rank i maps to parent rank members[i], traffic keeps accumulating on the
/// parent's counters (stats() delegates), and barrier() is rebuilt over
/// point-to-point sends so it only involves the members. The parent must
/// outlive the subgroup.
class SubgroupComm final : public Communicator {
 public:
  SubgroupComm(Communicator& parent, std::vector<int> members);

  int rank() const override { return my_rank_; }
  int size() const override { return static_cast<int>(members_.size()); }
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override;
  TrafficStats stats() const override { return parent_->stats(); }

  void set_timeout(double seconds) override;
  void set_probe(CommProbe* probe) override;
  void set_flight_hook(FlightHook* hook) override {
    parent_->set_flight_hook(hook);
  }
  std::vector<int> failed_ranks() const override;
  std::vector<int> agree_survivors() override;
  bool process_isolated() const override {
    return parent_->process_isolated();
  }
  int incarnation() const override { return parent_->incarnation(); }
  std::uint64_t respawns_total() const override {
    return parent_->respawns_total();
  }
  std::uint64_t regrow_epochs() const override {
    return parent_->regrow_epochs();
  }

  const std::vector<int>& members() const { return members_; }

 private:
  int to_parent(int r) const;

  Communicator* parent_;
  std::vector<int> members_;  // subgroup rank -> parent rank
  int my_rank_ = -1;
};

}  // namespace keybin2::comm
