// The continuous profiler facade (DESIGN.md §8): one object per Context
// that ties the sampling pieces together.
//
//   Tracer scope open/close ──> Profiler (a ScopeObserver)
//     ├── StageCursor     republished with the current path; the Sampler
//     │                   (SIGPROF or hub thread) reads it asynchronously
//     ├── PerfCounterGroup read at scope boundaries; per-stage deltas become
//     │                   perf/<stage>/ipc and perf/<stage>/llc_per_kinst
//     │                   gauges at stop()
//     └── TelemetryPublisher rate-limited slot publish (stage, rates, RSS,
//                         anomaly count, incarnation) for kb2_top
//
// Everything perf-derived lands in GAUGES, never counters: counters feed
// deterministic_fingerprint(), and hardware counts differ run to run.
// When perf_event_open is refused (hardened container, CI), the profiler
// degrades to timing-only and records one `profiler_degraded` event plus a
// profiler_degraded gauge — visible, silent, never fatal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/profile/perf_counters.hpp"
#include "runtime/profile/sampler.hpp"
#include "runtime/profile/stage_cursor.hpp"
#include "runtime/profile/telemetry.hpp"
#include "runtime/tracer.hpp"

namespace keybin2 {
namespace comm {
class Communicator;
}
namespace runtime {
class MetricsRegistry;
class EventLog;
class Timeline;
class HealthMonitor;
namespace flight {
class FlightRecorder;
}
}  // namespace runtime
}  // namespace keybin2

namespace keybin2::runtime::profile {

struct ProfilerConfig {
  SamplerMode sampler_mode = SamplerMode::kAuto;
  std::int64_t sample_interval_us = 2000;       // 500 Hz of CPU time
  bool perf_counters = true;
  std::int64_t telemetry_cadence_ns = 25'000'000;  // 25 ms between publishes
};

class Profiler : public ScopeObserver {
 public:
  Profiler(comm::Communicator* comm, MetricsRegistry* metrics, EventLog* log,
           ProfilerConfig config = {});
  ~Profiler() override;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Optional wiring, call before start(). Density counters flush into the
  /// timeline; anomaly counts flow from the health monitor into telemetry.
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }
  void set_health(HealthMonitor* health) { health_ = health; }
  /// Flight recorder to feed periodic mailbox-depth snapshots (at telemetry
  /// cadence, from the rank thread — never the SIGPROF handler).
  void set_flight(flight::FlightRecorder* flight) { flight_ = flight; }
  /// Attach this rank's telemetry slot (from the launcher's
  /// TelemetrySegment). The publisher caches the pointer; the segment must
  /// outlive the profiler.
  void set_telemetry_slot(TelemetrySlot* slot);

  /// Probe perf, start the sampler, publish the first telemetry snapshot.
  /// Idempotent.
  void start();
  /// Stop sampling, flush perf + sample gauges and density counters, mark
  /// the telemetry slot done. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_; }
  /// The sampler engine actually in use (valid after start()).
  SamplerMode active_mode() const { return active_mode_; }
  bool perf_available() const;

  std::uint64_t samples() const { return table_.total(); }
  std::uint64_t dropped_samples() const { return table_.dropped(); }

  /// Collapsed-stack (flamegraph) output: one "fit;trial*;bin <count>" line
  /// per folded stage, plus "(dropped) <n>" so totals reconcile. Call after
  /// stop().
  std::string folded_output() const;

  // ScopeObserver — called on the rank thread at every scope boundary.
  void on_scope_open(std::string_view path) override;
  void on_scope_close(std::string_view path, std::int64_t wall_ns) override;

 private:
  TelemetryPublisher::Update telemetry_update(std::uint32_t state);
  void publish_telemetry(bool force, std::uint32_t state);
  void flush();

  comm::Communicator* comm_;
  MetricsRegistry* metrics_;
  EventLog* log_;
  Timeline* timeline_ = nullptr;
  HealthMonitor* health_ = nullptr;
  flight::FlightRecorder* flight_ = nullptr;
  ProfilerConfig config_;

  StageCursor cursor_;
  SampleTable table_;
  DensitySeries density_;
  Sampler sampler_;
  std::unique_ptr<PerfCounterGroup> perf_;
  std::unique_ptr<TelemetryPublisher> telemetry_;

  bool running_ = false;
  SamplerMode active_mode_ = SamplerMode::kAuto;
  std::int64_t start_ns_ = 0;

  // Scope bookkeeping (rank thread only). The paths mirror the tracer's
  // stack from the moment we attached; closes seen without opens (observer
  // attached mid-scope) are skipped.
  std::vector<std::string> path_stack_;
  std::vector<PerfSample> perf_stack_;
  std::map<std::string, PerfSample> perf_by_stage_;  // folded path -> deltas

  // Windowed points/sec for telemetry.
  std::uint64_t rate_last_points_ = 0;
  std::int64_t rate_last_ns_ = 0;
  double rate_value_ = 0.0;
  std::int64_t flight_last_ns_ = 0;  // last mailbox-depth flight snapshot
};

}  // namespace keybin2::runtime::profile
