// Distributed k-means baseline (paper §4 comparator #2: Liao's
// "parallel-kmeans", which distributes the dataset across MPI ranks).
//
// Classic distributed Lloyd: every rank assigns its local points to the
// current centres, then per-cluster coordinate sums and counts are
// allreduced so all ranks update identical centres. Seeding is done on the
// root's local shard with k-means++ and broadcast.
#pragma once

#include "baselines/kmeans.hpp"
#include "comm/communicator.hpp"

namespace keybin2::baselines {

/// SPMD distributed k-means; every rank passes its shard and receives its
/// local labels plus the (identical) global centres and global inertia.
KMeansResult parallel_kmeans(comm::Communicator& comm,
                             const Matrix& local_points,
                             const KMeansParams& params);

}  // namespace keybin2::baselines
