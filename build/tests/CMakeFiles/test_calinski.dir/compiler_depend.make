# Empty compiler generated dependencies file for test_calinski.
# This may be replaced when dependencies are built.
