// Deterministic, splittable random number generation.
//
// KeyBin2 is evaluated with confidence intervals over independent runs; every
// stochastic component (data generation, projection matrices, bootstrapping,
// k-means seeding) takes an explicit 64-bit seed so experiments are exactly
// reproducible. The generator is xoshiro256**, seeded via SplitMix64 — both
// public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace keybin2 {

/// SplitMix64: used to expand a single 64-bit seed into generator state and to
/// derive independent child seeds (e.g. one per rank, one per bootstrap trial).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions,
/// though the members below avoid <random>'s platform-dependent streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box–Muller (cached spare deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child seed (for per-rank / per-trial streams).
  std::uint64_t fork_seed() { return next(); }

  /// Complete generator state, for exact checkpoint/restart: restoring a
  /// saved state resumes the identical random stream (including the cached
  /// Box–Muller spare), which is what makes killed-then-resumed runs
  /// bit-identical to uninterrupted ones.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool has_spare = false;
    double spare = 0.0;
  };

  State state() const { return State{state_, has_spare_, spare_}; }

  void set_state(const State& st) {
    state_ = st.s;
    has_spare_ = st.has_spare;
    spare_ = st.spare;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace keybin2
