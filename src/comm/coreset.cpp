#include "comm/coreset.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::comm::coreset {

namespace {

double clamped_epsilon(const Options& opts) {
  KB2_CHECK_MSG(opts.max_cells >= 2,
                "coreset: max_cells must be >= 2, got " << opts.max_cells);
  const double floor_eps = 2.0 / static_cast<double>(opts.max_cells);
  return std::clamp(opts.epsilon, floor_eps, 1.0);
}

}  // namespace

std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  // Mix the coordinates with distinct odd constants before SplitMix64 so
  // (a, b) and (b, a) land on unrelated streams.
  return SplitMix64(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xd1b54a32d192ed03ULL))
      .next();
}

Selection select_weighted(std::span<const double> masses, const Options& opts,
                          std::uint64_t draw_seed) {
  Selection sel;
  double total = 0.0;
  std::size_t nnz = 0;
  for (const double m : masses) {
    KB2_CHECK_MSG(m >= 0.0, "coreset: negative mass " << m);
    if (m > 0.0) {
      total += m;
      ++nnz;
    }
  }
  if (nnz <= opts.max_cells) {
    sel.kept.reserve(nnz);
    for (std::size_t i = 0; i < masses.size(); ++i) {
      if (masses[i] > 0.0) sel.kept.emplace_back(i, masses[i]);
    }
    return sel;
  }

  // Heavy hitters travel exactly. epsilon is clamped to 2/max_cells, so at
  // most max_cells/2 cells can each hold that fraction of the total.
  const double threshold = clamped_epsilon(opts) * total;
  double light_total = 0.0;
  std::size_t heavy = 0;
  for (const double m : masses) {
    if (m <= 0.0) continue;
    if (m >= threshold) {
      ++heavy;
    } else {
      light_total += m;
    }
  }

  const std::size_t slots = opts.max_cells - heavy;
  sel.kept.reserve(opts.max_cells);
  if (light_total <= 0.0 || slots == 0) {
    for (std::size_t i = 0; i < masses.size(); ++i) {
      if (masses[i] >= threshold && masses[i] > 0.0) {
        sel.kept.emplace_back(i, masses[i]);
      } else if (masses[i] > 0.0) {
        sel.mass_dropped += masses[i];
      }
    }
    return sel;
  }

  // Systematic resampling of the light mass: lay sample points at
  // offset + j * stride over the cumulative light mass. A cell crossed by
  // h sample points keeps weight h * stride, so the kept light weights sum
  // to exactly slots * stride == light_total, and any contiguous index
  // range's light mass is preserved to within one stride — which is what
  // keeps the shallower derived histogram levels accurate.
  const double stride = light_total / static_cast<double>(slots);
  Rng rng(draw_seed);
  double next_sample = rng.uniform() * stride;
  double cum = 0.0;
  std::size_t taken = 0;
  for (std::size_t i = 0; i < masses.size(); ++i) {
    const double m = masses[i];
    if (m <= 0.0) continue;
    if (m >= threshold) {
      sel.kept.emplace_back(i, m);
      continue;
    }
    cum += m;
    std::size_t hits = 0;
    while (taken < slots && next_sample < cum) {
      ++hits;
      ++taken;
      next_sample += stride;
    }
    if (hits > 0) {
      sel.kept.emplace_back(i, static_cast<double>(hits) * stride);
    } else {
      sel.mass_dropped += m;
    }
  }
  return sel;
}

Sketch build(std::span<const double> dense, const Options& opts,
             std::uint64_t draw_seed) {
  Sketch s;
  s.length = dense.size();
  auto sel = select_weighted(dense, opts, draw_seed);
  s.index.reserve(sel.kept.size());
  s.weight.reserve(sel.kept.size());
  for (const auto& [pos, w] : sel.kept) {
    s.index.push_back(static_cast<std::uint32_t>(pos));
    s.weight.push_back(w);
  }
  s.mass_dropped = sel.mass_dropped;
  return s;
}

void merge(Sketch& into, const Sketch& other) {
  KB2_CHECK_MSG(into.length == other.length,
                "coreset merge: length mismatch " << into.length << " vs "
                                                  << other.length);
  std::vector<std::uint32_t> index;
  std::vector<double> weight;
  index.reserve(into.entries() + other.entries());
  weight.reserve(into.entries() + other.entries());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into.entries() || b < other.entries()) {
    if (b >= other.entries() ||
        (a < into.entries() && into.index[a] < other.index[b])) {
      index.push_back(into.index[a]);
      weight.push_back(into.weight[a]);
      ++a;
    } else if (a >= into.entries() || other.index[b] < into.index[a]) {
      index.push_back(other.index[b]);
      weight.push_back(other.weight[b]);
      ++b;
    } else {
      index.push_back(into.index[a]);
      weight.push_back(into.weight[a] + other.weight[b]);
      ++a;
      ++b;
    }
  }
  into.index = std::move(index);
  into.weight = std::move(weight);
  into.mass_dropped += other.mass_dropped;
}

void compress(Sketch& sketch, const Options& opts, std::uint64_t draw_seed) {
  if (sketch.entries() <= opts.max_cells) return;
  auto sel = select_weighted(sketch.weight, opts, draw_seed);
  std::vector<std::uint32_t> index;
  std::vector<double> weight;
  index.reserve(sel.kept.size());
  weight.reserve(sel.kept.size());
  for (const auto& [pos, w] : sel.kept) {
    index.push_back(sketch.index[pos]);
    weight.push_back(w);
  }
  sketch.index = std::move(index);
  sketch.weight = std::move(weight);
  sketch.mass_dropped += sel.mass_dropped;
}

std::vector<double> expand(const Sketch& sketch) {
  std::vector<double> dense(sketch.length, 0.0);
  for (std::size_t i = 0; i < sketch.entries(); ++i) {
    dense[sketch.index[i]] = sketch.weight[i];
  }
  return dense;
}

void encode(const Sketch& sketch, ByteWriter& w) {
  w.write<std::uint64_t>(sketch.length);
  w.write<double>(sketch.mass_dropped);
  w.write_vec(sketch.index);
  w.write_vec(sketch.weight);
}

Sketch decode(ByteReader& r) {
  Sketch s;
  s.length = r.read<std::uint64_t>();
  s.mass_dropped = r.read<double>();
  s.index = r.read_vec<std::uint32_t>();
  s.weight = r.read_vec<double>();
  KB2_CHECK_MSG(s.weight.size() == s.index.size(),
                "coreset decode: " << s.index.size() << " indices but "
                                   << s.weight.size() << " weights");
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint32_t idx : s.index) {
    KB2_CHECK_MSG(idx < s.length,
                  "coreset decode: index " << idx << " out of range "
                                           << s.length);
    KB2_CHECK_MSG(first || idx > prev,
                  "coreset decode: indices not strictly ascending at " << idx);
    prev = idx;
    first = false;
  }
  return s;
}

}  // namespace keybin2::comm::coreset
