// Minimal JSON emission, validation, and parsing for the observability
// layer.
//
// The repo deliberately has no third-party JSON dependency, so the trace
// exporter, the event log, and the bench reporters share this tiny writer:
// a streaming emitter that tracks container nesting and inserts commas, plus
// a recursive-descent syntax validator used by tests and tools/trace_check
// to assert that everything we emit is well-formed. The trace-analysis side
// (kb2_analyze, the perf-regression gate) additionally needs to read those
// documents back, so the same descent also builds a JsonValue tree on
// demand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace keybin2::runtime {

/// Escape a string for inclusion inside JSON quotes (adds no quotes itself).
/// Output is pure ASCII: control characters and everything >= 0x7F are
/// \u-escaped (valid UTF-8 sequences by code point, stray bytes as U+FFFD),
/// so Perfetto and other strict consumers never see a broken byte sequence.
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Call begin_object()/begin_array() to open
/// containers, key() before each object member, and the value overloads to
/// emit scalars; commas are inserted automatically. str() returns the
/// document. The writer does not validate that keys/values alternate
/// correctly — json_validate() in tests keeps it honest.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit `"name":` for the next object member.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool b);

  /// Splice a pre-rendered JSON fragment in as a value (no escaping).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  // One entry per open container: the number of values emitted so far.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
};

/// True iff `text` is a single well-formed JSON value (object, array,
/// string, number, bool, or null) with nothing but whitespace after it.
bool json_validate(std::string_view text);

/// Parsed JSON document node. Numbers are held as double (every number this
/// repo emits round-trips: timestamps are microsecond doubles, counters stay
/// below 2^53); object members preserve document order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const JsonValue* find(std::string_view key) const;

  /// Walk nested objects: find("a", "b") == find("a")->find("b"), with
  /// nullptr short-circuiting.
  template <typename... Keys>
  const JsonValue* find(std::string_view key, Keys... rest) const {
    const JsonValue* v = find(key);
    return v == nullptr ? nullptr : v->find(rest...);
  }

  /// This value as a number, or `fallback` when absent/not numeric. Static
  /// so it composes with find(): JsonValue::number_or(v->find("mean"), 0).
  static double number_or(const JsonValue* v, double fallback) {
    return v != nullptr && v->is_number() ? v->number() : fallback;
  }

 private:
  friend std::optional<JsonValue> json_parse(std::string_view);
  friend struct JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document; nullopt on any syntax error. Accepts
/// exactly what json_validate() accepts. \u escapes decode to UTF-8
/// (surrogate pairs included; lone surrogates become U+FFFD).
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace keybin2::runtime
