// Gaussian mixture generator — the paper's synthetic workload.
//
// §4: "Synthetic data is generated from 4 mixed Gaussian distributions with a
// diagonal covariance matrix." Components carry per-dimension means and
// standard deviations; points are labelled by component for accuracy scoring.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace keybin2::data {

struct GaussianComponent {
  std::vector<double> mean;    // length = dims
  std::vector<double> stddev;  // length = dims (diagonal covariance)
  double weight = 1.0;         // relative sampling weight
};

struct GaussianMixtureSpec {
  std::vector<GaussianComponent> components;

  std::size_t dims() const {
    return components.empty() ? 0 : components.front().mean.size();
  }
  std::size_t k() const { return components.size(); }
};

/// The paper's evaluation mixture: `k` well-separated components in `dims`
/// dimensions. Component centres are placed at random lattice corners scaled
/// by `separation`; per-dimension stddev is drawn in [0.5, 1.0]. Equal
/// weights.
GaussianMixtureSpec make_paper_mixture(std::size_t dims, std::size_t k,
                                       std::uint64_t seed,
                                       double separation = 10.0);

/// A harder variant where only `informative` dimensions carry separated
/// means and the rest are identical noise across components (exercises
/// dimension collapsing / the intrinsic-dimension analysis of §3.1).
GaussianMixtureSpec make_redundant_mixture(std::size_t dims,
                                           std::size_t informative,
                                           std::size_t k, std::uint64_t seed,
                                           double separation = 10.0);

/// Sample `n` labelled points from a mixture.
Dataset sample(const GaussianMixtureSpec& spec, std::size_t n,
               std::uint64_t seed);

}  // namespace keybin2::data
