#include "runtime/profile/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "common/timer.hpp"

namespace keybin2::runtime::profile {

namespace {

std::size_t segment_len(int n_ranks) {
  return sizeof(TelemetryHeader) +
         static_cast<std::size_t>(n_ranks) * sizeof(TelemetrySlot);
}

std::string normalize_name(std::string name) {
  if (!name.empty() && name[0] != '/') name.insert(name.begin(), '/');
  return name;
}

// The slot seqlock, over plain POD fields: std::atomic_ref keeps the struct
// trivially shareable across fork while giving the fences teeth.
std::uint32_t load_seq(const TelemetrySlot* s) {
  return std::atomic_ref<const std::uint32_t>(s->seq).load(
      std::memory_order_acquire);
}

void store_seq(TelemetrySlot* s, std::uint32_t v) {
  std::atomic_ref<std::uint32_t>(s->seq).store(v, std::memory_order_release);
}

void fill_slot(TelemetrySlot* slot, const TelemetryPublisher::Update& u,
               std::int64_t t_ns) {
  slot->state = u.state;
  slot->incarnation = u.incarnation;
#if defined(__linux__)
  slot->pid = static_cast<std::int32_t>(::getpid());
#endif
  slot->published_ns = t_ns;
  slot->samples = u.samples;
  slot->points_total = u.points_total;
  slot->points_per_sec = u.points_per_sec;
  slot->wait_ratio = u.wait_ratio;
  slot->rss_kb = read_rss_kb();
  slot->anomalies = u.anomalies;
  slot->respawns_total = u.respawns_total;
  slot->regrow_epochs = u.regrow_epochs;
  slot->recovery_p50_ns = u.recovery_p50_ns;
  slot->recovery_p99_ns = u.recovery_p99_ns;
  auto stage = u.stage;
  if (stage.size() > TelemetrySlot::kMaxStage - 1) {
    stage.remove_prefix(stage.size() - (TelemetrySlot::kMaxStage - 1));
  }
  std::memcpy(slot->stage, stage.data(), stage.size());
  slot->stage[stage.size()] = '\0';
}

void publish_slot(TelemetrySlot* slot, const TelemetryPublisher::Update& u,
                  std::int64_t t_ns) {
  store_seq(slot, slot->seq + 1);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  fill_slot(slot, u, t_ns);
  std::atomic_thread_fence(std::memory_order_release);
  store_seq(slot, slot->seq + 1);  // even: stable
}

}  // namespace

std::string telemetry_name_for_pid(int pid) {
  return "/kb2-tele-" + std::to_string(pid);
}

std::uint64_t read_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long rss_pages = 0;
  const int n = std::fscanf(f, "%lu %lu", &size_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(page > 0 ? page : 4096) / 1024;
#else
  return 0;
#endif
}

#if defined(__linux__)

TelemetrySegment::TelemetrySegment(std::string name, int n_ranks,
                                   std::string_view job)
    : n_ranks_(n_ranks) {
  name_ = name.empty() ? telemetry_name_for_pid(::getpid())
                       : normalize_name(std::move(name));
  // A stale segment with this name (crashed previous job) is replaced, not
  // reused: its header may describe a different rank count.
  int fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    ::shm_unlink(name_.c_str());
    fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) {
    throw Error("telemetry: shm_open(" + name_ + ") failed");
  }
  len_ = segment_len(n_ranks);
  if (::ftruncate(fd, static_cast<off_t>(len_)) != 0) {
    ::close(fd);
    ::shm_unlink(name_.c_str());
    throw Error("telemetry: ftruncate failed for " + name_);
  }
  base_ = ::mmap(nullptr, len_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    ::shm_unlink(name_.c_str());
    throw Error("telemetry: mmap failed for " + name_);
  }
  // Stays linked — that is the attach surface for kb2_top.
  auto* hdr = new (base_) TelemetryHeader();
  hdr->version = 2;
  hdr->n_ranks = static_cast<std::uint32_t>(n_ranks);
  hdr->creator_pid = static_cast<std::int32_t>(::getpid());
  hdr->created_ns = now_ns();
  const std::size_t job_len =
      job.size() < sizeof(hdr->job) - 1 ? job.size() : sizeof(hdr->job) - 1;
  std::memcpy(hdr->job, job.data(), job_len);
  auto* slots = reinterpret_cast<TelemetrySlot*>(
      static_cast<char*>(base_) + sizeof(TelemetryHeader));
  for (int r = 0; r < n_ranks; ++r) new (&slots[r]) TelemetrySlot();
  // Publish the magic last: an observer that attaches mid-construction sees
  // "not a telemetry segment", never a half-written header.
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<std::uint64_t>(hdr->magic)
      .store(TelemetryHeader::kMagic, std::memory_order_release);
}

TelemetrySegment::~TelemetrySegment() {
  if (base_ != nullptr) ::munmap(base_, len_);
  // Creator unlinks; in forked children the destructor never runs (ranks
  // _exit through the harness), so this fires exactly once.
  ::shm_unlink(name_.c_str());
}

TelemetrySlot* TelemetrySegment::slot(int rank) {
  if (rank < 0 || rank >= n_ranks_ || base_ == nullptr) return nullptr;
  return reinterpret_cast<TelemetrySlot*>(static_cast<char*>(base_) +
                                          sizeof(TelemetryHeader)) +
         rank;
}

std::unique_ptr<TelemetryReader> TelemetryReader::attach(
    const std::string& name, std::string* error) {
  const std::string norm = normalize_name(name);
  const int fd = ::shm_open(norm.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "no telemetry segment at " + norm;
    return nullptr;
  }
  TelemetryHeader hdr = {};
  const ssize_t n = ::read(fd, &hdr, sizeof(hdr));
  if (n != static_cast<ssize_t>(sizeof(hdr)) ||
      hdr.magic != TelemetryHeader::kMagic || hdr.version != 2 ||
      hdr.n_ranks == 0 || hdr.n_ranks > 4096) {
    ::close(fd);
    if (error != nullptr) *error = norm + " is not a telemetry segment";
    return nullptr;
  }
  const std::size_t len = segment_len(static_cast<int>(hdr.n_ranks));
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = "mmap failed for " + norm;
    return nullptr;
  }
  auto reader = std::unique_ptr<TelemetryReader>(new TelemetryReader());
  reader->header_ = hdr;
  reader->base_ = base;
  reader->len_ = len;
  return reader;
}

TelemetryReader::~TelemetryReader() {
  if (base_ != nullptr) ::munmap(base_, len_);
}

std::vector<TelemetrySample> TelemetryReader::snapshot() const {
  std::vector<TelemetrySample> out;
  const auto* slots = reinterpret_cast<const TelemetrySlot*>(
      static_cast<const char*>(base_) + sizeof(TelemetryHeader));
  for (std::uint32_t r = 0; r < header_.n_ranks; ++r) {
    const TelemetrySlot* src = &slots[r];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint32_t s1 = load_seq(src);
      if ((s1 & 1u) != 0) continue;  // writer mid-publish
      TelemetrySample sample;
      sample.rank = static_cast<int>(r);
      std::memcpy(&sample.slot, src, sizeof(TelemetrySlot));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (load_seq(src) != s1) continue;
      sample.slot.stage[TelemetrySlot::kMaxStage - 1] = '\0';
      out.push_back(sample);
      break;
    }
  }
  return out;
}

#else  // !__linux__

TelemetrySegment::TelemetrySegment(std::string name, int n_ranks,
                                   std::string_view)
    : name_(normalize_name(std::move(name))), n_ranks_(n_ranks) {
  throw Error("telemetry: shared-memory segment requires Linux");
}
TelemetrySegment::~TelemetrySegment() = default;
TelemetrySlot* TelemetrySegment::slot(int) { return nullptr; }

std::unique_ptr<TelemetryReader> TelemetryReader::attach(const std::string&,
                                                         std::string* error) {
  if (error != nullptr) *error = "telemetry attach requires Linux";
  return nullptr;
}
TelemetryReader::~TelemetryReader() = default;
std::vector<TelemetrySample> TelemetryReader::snapshot() const { return {}; }

#endif

void TelemetryPublisher::maybe_publish(const Update& u) {
  if (slot_ == nullptr) return;
  const std::int64_t t = now_ns();
  if (t - last_publish_ns_ < cadence_ns_) return;
  last_publish_ns_ = t;
  publish_slot(slot_, u, t);
}

void TelemetryPublisher::publish_now(const Update& u) {
  if (slot_ == nullptr) return;
  const std::int64_t t = now_ns();
  last_publish_ns_ = t;
  publish_slot(slot_, u, t);
}

namespace {

void append_json_escaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

const char* state_name(std::uint32_t state) {
  switch (state) {
    case TelemetrySlot::kLive: return "live";
    case TelemetrySlot::kDone: return "done";
    default: return "empty";
  }
}

}  // namespace

std::string top_snapshot_json(const TelemetryReader& reader,
                              std::int64_t now_ns_arg) {
  const TelemetryHeader& hdr = reader.header();
  std::string out = "{\n  \"job\": \"";
  append_json_escaped(&out, hdr.job);
  out += "\",\n  \"n_ranks\": " + std::to_string(hdr.n_ranks);
  out += ",\n  \"creator_pid\": " + std::to_string(hdr.creator_pid);
  out += ",\n  \"ranks\": [";
  const auto samples = reader.snapshot();
  char buf[64];
  bool first = true;
  for (const auto& s : samples) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rank\": " + std::to_string(s.rank);
    out += ", \"state\": \"";
    out += state_name(s.slot.state);
    out += "\", \"incarnation\": " + std::to_string(s.slot.incarnation);
    out += ", \"pid\": " + std::to_string(s.slot.pid);
    out += ", \"stage\": \"";
    append_json_escaped(&out, s.slot.stage);
    out += "\"";
    std::snprintf(buf, sizeof(buf), ", \"points_per_sec\": %.1f",
                  s.slot.points_per_sec);
    out += buf;
    out += ", \"points_total\": " + std::to_string(s.slot.points_total);
    std::snprintf(buf, sizeof(buf), ", \"wait_ratio\": %.4f",
                  s.slot.wait_ratio);
    out += buf;
    out += ", \"rss_kb\": " + std::to_string(s.slot.rss_kb);
    out += ", \"samples\": " + std::to_string(s.slot.samples);
    out += ", \"anomalies\": " + std::to_string(s.slot.anomalies);
    out += ", \"respawns_total\": " + std::to_string(s.slot.respawns_total);
    out += ", \"regrow_epochs\": " + std::to_string(s.slot.regrow_epochs);
    out += ", \"recovery_p50_ns\": " + std::to_string(s.slot.recovery_p50_ns);
    out += ", \"recovery_p99_ns\": " + std::to_string(s.slot.recovery_p99_ns);
    const double age_ms = s.slot.published_ns == 0
                              ? -1.0
                              : static_cast<double>(now_ns_arg -
                                                    s.slot.published_ns) * 1e-6;
    std::snprintf(buf, sizeof(buf), ", \"heartbeat_age_ms\": %.1f", age_ms);
    out += buf;
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace keybin2::runtime::profile
