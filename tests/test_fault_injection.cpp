// Failure injection: corrupt, truncate, delay, drop, or kill inter-rank
// traffic through the first-class comm::fault subsystem and verify the
// pipeline surfaces a keybin2::Error instead of hanging or silently
// computing garbage. The decorator wraps a real ThreadComm endpoint, so all
// timing/concurrency behaviour is genuine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace keybin2::comm {
namespace {

/// Params that keep faulty runs terminating fast: a deadline turns lost
/// messages into TimeoutError, and a single retry keeps the recovery loop
/// short before the error propagates to the test.
core::Params tolerant_params() {
  core::Params p;
  p.comm_timeout_seconds = 5.0;
  p.max_shrink_retries = 1;
  return p;
}

/// Run a distributed fit with rank 1's traffic injured per `schedule`.
void run_faulty_fit(const fault::FaultSchedule& schedule) {
  const auto spec = data::make_paper_mixture(10, 3, 1);
  const auto d = data::sample(spec, 800, 2);
  const auto shards = data::shard(d, 4);
  run_ranks(4, [&](Communicator& c) {
    fault::FaultSchedule s;  // benign everywhere but rank 1
    if (c.rank() == 1) s = schedule;
    fault::FaultyComm faulty(c, s);
    core::fit(faulty, shards[static_cast<std::size_t>(c.rank())].points,
              tolerant_params());
  });
}

TEST(FaultInjection, BaselineWithoutFaultSucceeds) {
  EXPECT_NO_THROW(run_faulty_fit(fault::FaultSchedule{}));
}

TEST(FaultInjection, DelayedMessagesStillComplete) {
  // Delay reorders timing but not content: the run must simply succeed.
  fault::FaultSchedule s;
  s.delay_prob = 0.5;
  s.delay_ms = 2.0;
  EXPECT_NO_THROW(run_faulty_fit(s));
}

TEST(FaultInjection, TruncatedMessagesRaiseErrors) {
  // A truncated frame trips the CRC32 check (or loses the checksum header
  // entirely) — never a hang, never a silent wrong answer.
  fault::FaultSchedule s;
  s.truncate_prob = 1.0;
  EXPECT_THROW(run_faulty_fit(s), Error);
}

TEST(FaultInjection, CorruptedLengthPrefixesRaiseErrors) {
  // fix_crc re-stamps a valid frame checksum over the corrupted payload, so
  // the damage penetrates the transport layer and must be caught by the
  // serialize layer's own bounds checks.
  fault::FaultSchedule s;
  s.corrupt_length_prob = 1.0;
  s.fix_crc = true;
  EXPECT_THROW(run_faulty_fit(s), Error);
}

TEST(FaultInjection, ZeroFilledHistogramsStillTerminate) {
  // An all-zero frame carries a zero checksum over a non-empty payload,
  // which crc32() can never produce — CorruptFrameError, then recovery or
  // propagation. Either way the run must terminate quickly.
  fault::FaultSchedule s;
  s.zero_fill_prob = 1.0;
  try {
    run_faulty_fit(s);
  } catch (const Error&) {
    // acceptable: the corruption was detected
  }
  SUCCEED();
}

TEST(FaultInjection, DroppedMessageSurfacesAsTimeout) {
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& c) {
                  c.set_timeout(0.2);
                  if (c.rank() == 1) {
                    fault::FaultSchedule s;
                    s.drop_prob = 1.0;
                    fault::FaultyComm f(c, s);
                    const std::vector<std::byte> payload(8, std::byte{1});
                    f.send(0, 3, payload);
                    // Outlive the receiver's deadline: if this rank exited
                    // now, the receiver would see "peer departed" instead
                    // of the drop-induced timeout under test.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(600));
                  } else {
                    c.recv(1, 3);  // the drop means this can never arrive
                  }
                }),
      TimeoutError);
}

TEST(FaultInjection, RingAllreduceDetectsCorruption) {
  EXPECT_THROW(run_ranks(4,
                         [&](Communicator& c) {
                           fault::FaultSchedule s;
                           if (c.rank() == 1) s.zero_fill_prob = 1.0;
                           fault::FaultyComm f(c, s);
                           f.set_timeout(2.0);
                           std::vector<double> v(32, 1.0);
                           f.ring_allreduce(v);
                         }),
               CommError);
}

TEST(FaultInjection, AllgatherDetectsTruncation) {
  EXPECT_THROW(run_ranks(4,
                         [&](Communicator& c) {
                           fault::FaultSchedule s;
                           if (c.rank() == 3) s.truncate_prob = 1.0;
                           fault::FaultyComm f(c, s);
                           f.set_timeout(2.0);
                           const std::vector<std::byte> blob(64,
                                                             std::byte{7});
                           f.allgather(blob);
                         }),
               CommError);
}

TEST(FaultInjection, KillMidCollectiveIsDetectedByPeers) {
  // Rank 2 dies partway into a stream of allreduces; its peers must observe
  // a recoverable CommError (not hang), and the group's first recorded
  // error is the kill itself.
  std::atomic<int> peer_errors{0};
  EXPECT_THROW(run_ranks(4,
                         [&](Communicator& c) {
                           fault::FaultSchedule s;
                           if (c.rank() == 2) s.kill_at_op = 5;
                           fault::FaultyComm f(c, s);
                           f.set_timeout(5.0);
                           std::vector<double> v(16, 1.0);
                           try {
                             for (int i = 0; i < 64; ++i) {
                               f.allreduce(v, ReduceOp::kSum);
                             }
                           } catch (const CommError&) {
                             peer_errors.fetch_add(1);
                             throw;
                           }
                         }),
               fault::KilledError);
  EXPECT_GE(peer_errors.load(), 1);
}

TEST(FaultInjection, KilledRankStaysDead) {
  // Once the kill step is reached, EVERY subsequent operation throws.
  SelfComm self;
  fault::FaultSchedule s;
  s.kill_at_op = 2;
  fault::FaultyComm f(self, s);
  f.barrier();
  EXPECT_THROW(f.barrier(), fault::KilledError);
  EXPECT_THROW(f.barrier(), fault::KilledError);
  EXPECT_THROW(f.agree_survivors(), fault::KilledError);
}

TEST(FaultInjection, ScheduleIsDeterministicPerSeed) {
  // Same seed => identical mutation decisions: two runs over the same
  // schedule produce byte-identical outcomes (here: both drop, observed as
  // both receivers timing out).
  for (int repeat = 0; repeat < 2; ++repeat) {
    EXPECT_THROW(
        run_ranks(2,
                  [&](Communicator& c) {
                    c.set_timeout(0.2);
                    fault::FaultSchedule s;
                    s.seed = 99;
                    s.drop_prob = 1.0;
                    if (c.rank() == 0) {
                      fault::FaultyComm f(c, s);
                      const std::vector<std::byte> b(4, std::byte{2});
                      f.send(1, 0, b);
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(600));
                    } else {
                      c.recv(0, 0);
                    }
                  }),
        TimeoutError);
  }
}

TEST(FaultInjection, CollectiveLengthMismatchIsDetected) {
  // Ranks disagreeing on reduction length is a programming error the
  // collectives must catch.
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& c) {
                  std::vector<double> local(
                      c.rank() == 0 ? 4u : 7u, 1.0);
                  c.allreduce(local, ReduceOp::kSum);
                }),
      Error);
}

TEST(FaultInjection, SerializeLayerRejectsGarbageModelBytes) {
  std::vector<std::byte> garbage(64, std::byte(0xAB));
  ByteReader r(garbage);
  EXPECT_THROW(core::Model::deserialize(r), Error);
}

TEST(FaultInjection, UserTagRangeIsEnforced) {
  run_ranks(2, [&](Communicator& c) {
    std::vector<double> payload{1.0};
    EXPECT_THROW(c.send_doubles(0, Communicator::kUserTagLimit + 9, payload),
                 Error);
    EXPECT_THROW(c.recv_doubles(0, -1), Error);
  });
}

}  // namespace
}  // namespace keybin2::comm
