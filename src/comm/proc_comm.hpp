// ProcComm: a group of ranks backed by real OS processes (Linux).
//
// Where ThreadComm simulates ranks with threads in one address space,
// ProcComm forks one child process per rank and routes every message through
// a POSIX shared-memory segment (shm_open + mmap, unlinked immediately so
// the mapping is inherited by fork and nothing leaks on crash). The segment
// holds one single-producer/single-consumer byte ring per (source,
// destination) pair, a per-rank lifecycle/traffic table, and the futex words
// for the barrier and the survivor-agreement rendezvous:
//
//   GroupHeader  flow-id counter · unacked-failure count ·
//                barrier word {count, seq} · shrink word {arrived, gen} ·
//                survivors bitmask · spill directory
//   PerRank[n]   state (live/failed/departed) · failure reason ·
//                traffic counters (messages/bytes, sent/received)
//   Ring[n*n]    head/tail cursors · futex wake words · frame bytes
//
// A sender copies a complete frame ({size, flow_id, tag, flags} + payload)
// into the destination ring and only then publishes the head cursor
// (release), so a rank SIGKILLed mid-send can never expose a torn frame.
// Frames larger than half a ring spill their payload to a file in the
// group's spill directory (tmpfs when available) and ship only the path, so
// no payload size can deadlock a ring. The receiver drains its incoming
// rings into a rank-private MessageStash (the same (src, tag)-keyed store
// ThreadComm uses — comm/mailbox.hpp) and delivers from there, preserving
// per-channel FIFO order and the exact timeout/failure narratives of the
// thread transport.
//
// Failure model: the parent process is the failure detector. It drains each
// child's result pipe and reaps children with waitpid(); a child that dies
// by signal (a real SIGKILL mid-fit) is marked failed in the shared table
// with "killed by signal N", the unacked-failure count is bumped, and every
// futex is woken — surviving ranks observe exactly what ThreadComm's
// mark_failed() produces: blocked recv()/barrier() calls throw
// RankFailedError naming the dead rank, and agree_survivors() converges the
// survivors, purges every ring, snapshots the survivor bitmask, and lets the
// shrunken group continue. failed_ranks() is therefore waitpid-accurate
// liveness, read from the table the parent maintains.
//
// Blocking waits use the shared (cross-process) futex form in bounded
// slices, so a lost wakeup can only ever cost one slice, never a hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "comm/recovery.hpp"

namespace keybin2::comm {

namespace detail {
struct ProcShared;  // the mmap'ed segment layout (proc_comm.cpp)
}

/// A rank's endpoint over the shared-memory segment. Constructed inside the
/// forked child by proc_run_ranks(); satisfies the full Communicator
/// contract, including the fault surface.
class ProcComm final : public Communicator {
 public:
  ProcComm(detail::ProcShared* shared, int rank);

  int rank() const override { return rank_; }
  int size() const override;
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override;
  TrafficStats stats() const override;

  void recycle_buffer(std::vector<std::byte>&& buf) override;
  std::vector<int> failed_ranks() const override;
  std::vector<int> agree_survivors() override;
  bool process_isolated() const override { return true; }
  int incarnation() const override;
  std::uint64_t respawns_total() const override;
  std::uint64_t regrow_epochs() const override;

 private:
  /// Move every frame parked in the incoming rings into the local stash.
  /// Draining all sources (not just the awaited one) keeps senders from
  /// blocking on a full ring while we wait on somebody else.
  void drain_rings();
  [[noreturn]] void throw_rank_failed(const char* op, int self, int peer,
                                      int tag);

  detail::ProcShared* g_;
  int rank_;
  MessageStash stash_;
};

/// Everything one process-backed launch produced, collected by the parent.
struct ProcRunResult {
  /// Sum of every rank's traffic counters (read from shared memory after
  /// all children are reaped).
  TrafficStats total_stats;
  /// Per-rank result blobs; empty for ranks that died without reporting.
  std::vector<std::vector<std::byte>> results;
  /// First error any rank reported over its result pipe (reconstructed with
  /// its original type), or null. A child killed by a signal reports
  /// nothing: its death is the survivors' problem, exactly like a dead node.
  /// An error superseded by a successful respawn of the same rank does not
  /// count — the slot's final incarnation speaks for it.
  std::exception_ptr first_error;
  /// Recovery-ladder accounting: replacement forks the supervisor performed,
  /// and survivor agreements that finalized with the group grown back (a
  /// respawned rank rejoined).
  int respawns_total = 0;
  int regrow_epochs = 0;
};

/// Invoked by the parent supervisor, in the parent, whenever a rank is
/// recorded dead without a complete report — killed by a signal, or exited
/// without reporting. Arguments: rank, incarnation that died, and the
/// attributed reason ("killed by signal 9", ...). The flight recorder's
/// launcher hooks this to freeze the black-box rings and write a post-mortem
/// dump at the moment of death, before any respawn reuses the ring.
using AbnormalDeathFn =
    std::function<void(int rank, int incarnation, const std::string& reason)>;

/// Fork `n_ranks` child processes, run `fn(comm)` in each over a shared
/// ProcComm group, and collect results/errors in the parent. `ring_bytes`
/// is the per-(src, dest) ring capacity (0 = default). Blocks until every
/// child is reaped. Linux-only; throws Error elsewhere.
///
/// `policy` arms the respawn rung of the recovery ladder: while
/// `policy.max_respawns` budget remains, a rank that dies (signal or thrown
/// error) is forked again after a deterministic backoff, the survivor
/// agreement is held open until the replacement arrives, and the group
/// regrows to full width — `fn` simply reruns in the new incarnation
/// (comm.incarnation() > 0). With the default zero budget every death is
/// terminal for its slot and the survivors shrink-and-continue, exactly the
/// pre-ladder behaviour.
ProcRunResult proc_run_ranks(
    int n_ranks, std::size_t ring_bytes, const RecoveryPolicy& policy,
    const std::function<std::vector<std::byte>(Communicator&)>& fn,
    const AbnormalDeathFn& on_abnormal_death = {});

ProcRunResult proc_run_ranks(
    int n_ranks, std::size_t ring_bytes,
    const std::function<std::vector<std::byte>(Communicator&)>& fn);

}  // namespace keybin2::comm
