# Empty compiler generated dependencies file for fig2_assessment.
# This may be replaced when dependencies are built.
