file(REMOVE_RECURSE
  "CMakeFiles/kb2_stats.dir/calinski.cpp.o"
  "CMakeFiles/kb2_stats.dir/calinski.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/distributions.cpp.o"
  "CMakeFiles/kb2_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/eigen.cpp.o"
  "CMakeFiles/kb2_stats.dir/eigen.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/histogram.cpp.o"
  "CMakeFiles/kb2_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/kde.cpp.o"
  "CMakeFiles/kb2_stats.dir/kde.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/ks_test.cpp.o"
  "CMakeFiles/kb2_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/metrics.cpp.o"
  "CMakeFiles/kb2_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/kb2_stats.dir/smoothing.cpp.o"
  "CMakeFiles/kb2_stats.dir/smoothing.cpp.o.d"
  "libkb2_stats.a"
  "libkb2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
