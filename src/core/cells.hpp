// Occupied-cell bookkeeping shared by the batch and streaming pipelines.
//
// A cell is identified by its per-dimension primary-cluster indices; its
// density is the (possibly weighted) number of points observed inside it.
// Cell maps are rank-local and merged at the root — like histograms, they
// are histogram-scale objects, never point-scale.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "core/keys.hpp"
#include "core/model.hpp"
#include "core/partitioner.hpp"

namespace keybin2::core {

using CellMap = std::map<std::vector<std::uint32_t>, double>;

/// Count local occupied cells from a key table at `depth`, with an optional
/// per-point weight (streaming scales reservoir points to stream mass).
CellMap count_cells(const KeyTable& keys, const std::vector<int>& kept_dims,
                    const std::vector<DimensionPartition>& partitions,
                    int depth, double weight_per_point = 1.0);

/// Per-dimension-depth variant: depths[k] keys kept_dims[k].
CellMap count_cells(const KeyTable& keys, const std::vector<int>& kept_dims,
                    const std::vector<DimensionPartition>& partitions,
                    std::span<const int> depths,
                    double weight_per_point = 1.0);

std::vector<std::byte> serialize_cells(const CellMap& cells);
void merge_cells(CellMap& into, std::span<const std::byte> bytes);

/// Coreset of a weighted cell map (comm/coreset.hpp sampler over map
/// order): at most `max_cells` cells survive, cells holding at least
/// `epsilon` of the total density are kept exactly, and the sampled light
/// cells are reweighted so total density is preserved. Used by the kCoreset
/// comm mode to cap the assess-stage gather the same way the histogram
/// merge is capped. `mass_dropped` (optional) receives the original density
/// of the cells sampled away.
CellMap coreset_cells(const CellMap& cells, std::size_t max_cells,
                      double epsilon, std::uint64_t seed,
                      double* mass_dropped = nullptr);

/// Flatten to the Model's Cell representation (labels unassigned).
std::vector<Cell> to_cell_vector(const CellMap& cells);

}  // namespace keybin2::core
