// Rank-failure soak tests (DESIGN.md §4b): a rank dies mid-trial under a
// randomized fault schedule, and the distributed fit must complete on the
// survivors — shrunken group, valid model, degraded-mode statistics in the
// trace report — without ever hanging. Every schedule is seeded, so a
// passing run is exactly reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "comm/recovery.hpp"
#include "common/serialize.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "core/out_of_core.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"
#include "runtime/log.hpp"

namespace keybin2 {
namespace {

using comm::Communicator;
using comm::run_ranks;

core::Params resilient_params() {
  core::Params p;
  // A short deadline turns dropped messages into recoverable TimeoutErrors;
  // generous retries absorb the random faults that keep firing after the
  // shrink.
  p.comm_timeout_seconds = 1.0;
  p.max_shrink_retries = 6;
  return p;
}

TEST(Resilience, SoakKillOneRankMidTrialCompletesOnSurvivors) {
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1200, 2);
  const auto shards = data::shard(d, 4);
  const auto params = resilient_params();

  std::atomic<int> survivors_done{0};
  std::atomic<bool> killed_rank_died{false};
  std::atomic<double> degraded_counter{-1.0};
  // Every rank's structured events land here; the fault-tolerance path must
  // narrate itself through the log, not just through return values.
  auto sink = std::make_shared<runtime::MemorySink>();

  run_ranks(4, [&](Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    comm::fault::FaultSchedule s;
    s.seed = 2024;
    if (c.rank() == 2) {
      s.kill_at_op = 40;  // a full fit is hundreds of ops: dies mid-trial
    } else if (c.rank() == 1) {
      s.drop_prob = 0.004;
      s.zero_fill_prob = 0.004;
    }
    comm::fault::FaultyComm faulty(c, s);
    runtime::Context ctx(faulty, params.seed);
    ctx.log().set_sink(sink);
    try {
      const auto result = core::fit(ctx, shards[r].points, params);

      // Survivor: the fit completed over the shrunken group.
      EXPECT_TRUE(ctx.degraded());
      EXPECT_EQ(ctx.excluded_ranks(), 1);
      EXPECT_EQ(ctx.size(), 3);
      EXPECT_GE(result.model.n_clusters(), 1);
      EXPECT_EQ(result.labels.size(), shards[r].points.rows());
      for (const int label : result.labels) EXPECT_GE(label, 0);

      // The retry loop recorded itself in this rank's metrics registry,
      // including the latency of every survivor-agreement rendezvous.
      EXPECT_GE(ctx.metrics().counters().at("fit_retries"), 1u);
      EXPECT_GE(ctx.metrics().counters().at("survivor_shrinks"), 1u);
      EXPECT_GE(ctx.metrics().histogram("recovery_latency_ns").count(), 1u);

      // Degraded-mode statistics surface in the merged trace report...
      const auto report = ctx.trace_report();
      // ...and in the merged metrics report (both are collectives over the
      // shrunken survivor group, entered by all survivors in step).
      const auto metrics = ctx.metrics_report();
      if (ctx.is_root()) {
        const auto it = report.counters.find("degraded_ranks");
        ASSERT_NE(it, report.counters.end());
        degraded_counter.store(it->second);
        EXPECT_GE(report.counters.count("fit_retries"), 1u);
        EXPECT_GE(metrics.counters.at("fit_retries"), 3u);  // every survivor
        EXPECT_GE(metrics.counters.at("survivor_shrinks"), 3u);
        ASSERT_EQ(metrics.histograms.count("recovery_latency_ns"), 1u);
        EXPECT_GE(metrics.histograms.at("recovery_latency_ns").count(), 3u);
        EXPECT_NE(metrics.deterministic_fingerprint().find("fit_retries"),
                  std::string::npos);
      }
      survivors_done.fetch_add(1);
    } catch (const comm::fault::KilledError&) {
      // The killed rank departs; the survivors shrink around it. Catching
      // our own death here keeps run_ranks() from reporting it as a test
      // failure — which is exactly how a real job's dead node looks to the
      // survivors: silence.
      killed_rank_died.store(true);
    }
  });

  EXPECT_TRUE(killed_rank_died.load());
  EXPECT_EQ(survivors_done.load(), 3);
  EXPECT_DOUBLE_EQ(degraded_counter.load(), 1.0);

  // The structured log narrated the recovery: each survivor warned about
  // the retry and the shrink, with machine-readable attribution.
  EXPECT_GE(sink->events_named("fit_retry").size(), 3u);
  const auto shrinks = sink->events_named("survivor_shrink");
  ASSERT_GE(shrinks.size(), 3u);
  for (const auto& e : shrinks) {
    EXPECT_EQ(e.level, runtime::LogLevel::kWarn);
    ASSERT_GE(e.attrs.size(), 2u);
    EXPECT_EQ(e.attrs[0].first, "lost");
    EXPECT_EQ(e.attrs[0].second, "1");
    EXPECT_EQ(e.attrs[1].first, "survivors");
    EXPECT_EQ(e.attrs[1].second, "3");
  }
}

TEST(Resilience, CheckpointCountersSurfaceInTraceMetricsAndLog) {
  // A budget-paused out-of-core run followed by a resume must account for
  // every checkpoint write and the restore — in the tracer counters (what
  // `--trace` prints), the metrics registry, and the event log.
  const auto spec = data::make_paper_mixture(6, 3, 11);
  auto dataset = data::sample(spec, 2000, 12);
  const std::string input = "/tmp/kb2_resilience_ooc.bin";
  const std::string labels = "/tmp/kb2_resilience_ooc_labels.bin";
  const std::string ckpt = "/tmp/kb2_resilience_ooc.ckpt";
  data::write_binary(dataset, input);
  std::remove(ckpt.c_str());

  core::CheckpointOptions opts;
  opts.path = ckpt;
  opts.every_chunks = 2;
  opts.max_chunks = 3;  // budget pause after 3 of 8 chunks

  auto sink = std::make_shared<runtime::MemorySink>();
  {
    runtime::Context ctx(/*seed=*/42);
    ctx.log().set_sink(sink);
    const auto paused =
        core::fit_from_file(ctx, input, labels, {}, /*chunk=*/256, opts);
    EXPECT_FALSE(paused.completed);
    // Cadence write at chunk 2 + the budget-pause write at chunk 3.
    EXPECT_EQ(ctx.metrics().counters().at("checkpoint_writes"), 2u);
    const auto report = ctx.trace_report();
    EXPECT_DOUBLE_EQ(report.counters.at("checkpoint_writes"), 2.0);
    EXPECT_EQ(report.counters.count("checkpoint_restores"), 0u);
  }
  {
    runtime::Context ctx(/*seed=*/42);
    ctx.log().set_sink(sink);
    opts.max_chunks = 0;  // no budget: run to completion
    const auto done =
        core::fit_from_file(ctx, input, labels, {}, /*chunk=*/256, opts);
    EXPECT_TRUE(done.completed);
    EXPECT_EQ(ctx.metrics().counters().at("checkpoint_restores"), 1u);
    const auto report = ctx.trace_report();
    EXPECT_DOUBLE_EQ(report.counters.at("checkpoint_restores"), 1.0);
  }

  // The log carries one event per write/restore, with the cursor attributed:
  // cadence at chunk 2, budget pause at 3, then cadence at 4 and 6 during
  // the resumed run (8 chunks total, none at the final chunk).
  const auto writes = sink->events_named("checkpoint_write");
  ASSERT_EQ(writes.size(), 4u);
  EXPECT_EQ(writes[0].attrs[2].first, "reason");
  EXPECT_EQ(writes[0].attrs[2].second, "cadence");
  EXPECT_EQ(writes[1].attrs[2].second, "budget_pause");
  EXPECT_EQ(writes[2].attrs[2].second, "cadence");
  EXPECT_EQ(writes[3].attrs[2].second, "cadence");
  const auto restores = sink->events_named("checkpoint_restore");
  ASSERT_EQ(restores.size(), 1u);
  EXPECT_EQ(restores[0].attrs[1].first, "chunks_done");
  EXPECT_EQ(restores[0].attrs[1].second, "3");

  std::remove(input.c_str());
  std::remove(labels.c_str());
  std::remove(ckpt.c_str());
}

TEST(Resilience, TransientCorruptionRetriesWithoutShrinking) {
  // Zero-filled frames trip the CRC check and trigger retries, but no rank
  // is ever lost: the group must NOT shrink, and the fit must complete over
  // all four ranks.
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 1200, 2);
  const auto shards = data::shard(d, 4);
  const auto params = resilient_params();

  std::atomic<int> completed{0};
  run_ranks(4, [&](Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    comm::fault::FaultSchedule s;
    s.seed = 7;
    if (c.rank() == 1) s.zero_fill_prob = 0.01;
    comm::fault::FaultyComm faulty(c, s);
    runtime::Context ctx(faulty, params.seed);
    const auto result = core::fit(ctx, shards[r].points, params);
    EXPECT_FALSE(ctx.degraded());
    EXPECT_EQ(ctx.size(), 4);
    EXPECT_GE(result.model.n_clusters(), 1);
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), 4);
}

TEST(Resilience, RetriesExhaustIntoATypedAbortNotAHang) {
  // A permanently corrupting rank defeats every retry; the run must end in
  // a typed FitAbortedError once max_shrink_retries is spent — never a
  // hang, never the bare underlying failure (the abort carries the attempt
  // count and the last failure's kind for attribution).
  const auto spec = data::make_paper_mixture(8, 3, 1);
  const auto d = data::sample(spec, 400, 2);
  const auto shards = data::shard(d, 2);
  core::Params params;
  params.comm_timeout_seconds = 1.0;
  params.max_shrink_retries = 1;
  params.recovery.backoff_base_ms = 1.0;
  params.recovery.backoff_cap_ms = 4.0;

  try {
    run_ranks(2, [&](Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      comm::fault::FaultSchedule s;
      if (c.rank() == 1) s.zero_fill_prob = 1.0;
      comm::fault::FaultyComm faulty(c, s);
      core::fit(faulty, shards[r].points, params);
    });
    FAIL() << "a permanently corrupting rank must abort the fit";
  } catch (const comm::FitAbortedError& e) {
    EXPECT_EQ(e.attempts(), params.max_shrink_retries);
    EXPECT_FALSE(e.last_kind().empty());
  }
}

TEST(Resilience, BackoffIsDeterministicCappedAndSalted) {
  // Same (policy, attempt, salt) -> same delay; attempts grow toward the
  // cap; different salts de-phase the ranks. All pure arithmetic — the
  // chaos soak replays schedules from seeds, so any nondeterminism here
  // breaks reproducibility.
  comm::RecoveryPolicy p;
  p.backoff_base_ms = 4.0;
  p.backoff_cap_ms = 64.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double a = comm::backoff_ms(p, attempt, /*salt=*/7);
    const double b = comm::backoff_ms(p, attempt, /*salt=*/7);
    EXPECT_EQ(a, b) << "backoff must replay exactly, attempt " << attempt;
    const double slot = std::min(4.0 * std::pow(2.0, attempt), 64.0);
    EXPECT_GE(a, slot / 2.0);
    EXPECT_LT(a, slot);
  }
  EXPECT_NE(comm::backoff_ms(p, 3, 7), comm::backoff_ms(p, 3, 8))
      << "different salts should draw different jitter";
  comm::RecoveryPolicy zero;
  zero.backoff_base_ms = 0.0;
  EXPECT_EQ(comm::backoff_ms(zero, 5, 1), 0.0) << "zero base disables backoff";
}

// ---- Survivor agreement under simultaneous multi-rank failures ----
//
// The single-failure soak above exercises the common case; these pin the
// harder corners of agree_survivors() on BOTH transports: two ranks dying
// at once (the agreement must converge despite racing failure marks), and
// a live rank that never joins the agreement (the callers must time out
// with full attribution, never hang).

TEST(Resilience, TwoSimultaneousFailuresConvergeOnThreadBackend) {
  std::atomic<int> recovered{0};
  EXPECT_THROW(
      run_ranks(5,
                [&](Communicator& c) {
                  if (c.rank() == 2 || c.rank() == 3) {
                    throw Error("double node death");
                  }
                  try {
                    const double sum = c.allreduce(1.0, comm::ReduceOp::kSum);
                    ADD_FAILURE() << "allreduce survived two deaths: " << sum;
                  } catch (const comm::CommError&) {
                    const auto survivors = c.agree_survivors();
                    EXPECT_EQ(survivors, (std::vector<int>{0, 1, 4}));
                    comm::SubgroupComm sub(c, survivors);
                    EXPECT_DOUBLE_EQ(sub.allreduce(1.0, comm::ReduceOp::kSum),
                                     3.0);
                    recovered.fetch_add(1);
                  }
                }),
      Error);
  EXPECT_EQ(recovered.load(), 3);
}

TEST(Resilience, AgreeTimesOutWhenALiveRankNeverJoinsThreadBackend) {
  // Rank 2 stays alive but never calls agree_survivors(): the two callers
  // must throw an attributed TimeoutError mentioning the agreement — a
  // stuck peer must never become a hang.
  std::atomic<int> timed_out{0};
  run_ranks(3, [&](Communicator& c) {
    if (c.rank() == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(900));
      return;
    }
    c.set_timeout(0.3);
    try {
      (void)c.agree_survivors();
      ADD_FAILURE() << "agreement converged without rank 2";
    } catch (const comm::TimeoutError& e) {
      EXPECT_EQ(e.self(), c.rank());
      EXPECT_GE(e.elapsed_seconds(), 0.3);
      EXPECT_NE(std::string(e.what()).find("agree_survivors"),
                std::string::npos);
      timed_out.fetch_add(1);
    }
  });
  EXPECT_EQ(timed_out.load(), 2);
}

TEST(Resilience, CoresetFitSurvivesKillMidTrialOnThreadBackend) {
  // The coreset comm plane under the recovery ladder: a forced-kCoreset fit
  // (cap far below deep-histogram occupancy, so every merge really ships
  // sketches) loses a rank mid-trial and must shrink and complete on the
  // survivors, still merging through the coreset plane after the retry.
  const auto spec = data::make_paper_mixture(8, 3, 21);
  const auto d = data::sample(spec, 1600, 22);
  const auto shards = data::shard(d, 4);
  auto params = resilient_params();
  params.comm_mode = core::CommMode::kCoreset;
  params.coreset_max_cells = 128;
  params.bootstrap_trials = 2;

  std::atomic<int> survivors_done{0};
  std::atomic<bool> killed_rank_died{false};
  std::atomic<std::uint64_t> coreset_merges{0};
  run_ranks(4, [&](Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    comm::fault::FaultSchedule s;
    s.seed = 77;
    if (c.rank() == 1) s.kill_at_op = 30;  // dies inside the first trial
    comm::fault::FaultyComm faulty(c, s);
    runtime::Context ctx(faulty, params.seed);
    try {
      const auto result = core::fit(ctx, shards[r].points, params);
      EXPECT_TRUE(ctx.degraded());
      EXPECT_EQ(ctx.size(), 3);
      EXPECT_EQ(result.labels.size(), shards[r].points.rows());
      for (const int label : result.labels) EXPECT_GE(label, 0);
      const auto metrics = ctx.metrics_report();
      if (ctx.is_root()) {
        coreset_merges.store(metrics.counters.at("reduce_algo_coreset"));
      }
      survivors_done.fetch_add(1);
    } catch (const comm::fault::KilledError&) {
      killed_rank_died.store(true);
    }
  });
  EXPECT_TRUE(killed_rank_died.load());
  EXPECT_EQ(survivors_done.load(), 3);
  // The survivors' merges (including every post-shrink retry) went through
  // the coreset plane, not a silent fallback to the exact one.
  EXPECT_GE(coreset_merges.load(), 1u);
}

#ifdef __linux__

TEST(Resilience, SigkillMidCoresetReduceShrinksAndRetriesProcessBackend) {
  // The honest version of a mid-reduce death: rank 2 SIGKILLs itself right
  // before entering coreset_allreduce, so the root's tree recv hits a dead
  // rank and every other survivor times out in the result broadcast. The
  // survivors then run the shrink ladder (agree_survivors -> SubgroupComm)
  // and retry the same coreset reduce over the shrunken group; with
  // disjoint under-cap supports the retried merge is exact, so the dead
  // rank's contribution — and only it — is missing.
  comm::LaunchOptions opt;
  opt.backend = comm::Backend::kProcess;
  std::exception_ptr err;
  const auto blobs = comm::run_ranks_collect_bytes(
      opt, 5,
      [](Communicator& c) -> std::vector<std::byte> {
        const auto original_rank = static_cast<std::size_t>(c.rank());
        constexpr std::size_t kLen = 1 << 14;
        std::vector<double> local(kLen, 0.0);
        for (std::size_t k = 0; k < 8; ++k) {
          local[original_rank * 1024 + k] = static_cast<double>(k + 1);
        }
        comm::coreset::Options opts;
        opts.max_cells = 512;
        c.barrier();
        if (original_rank == 2) ::raise(SIGKILL);
        c.set_timeout(5.0);
        bool first_attempt_failed = false;
        try {
          (void)c.coreset_allreduce(local, opts);
        } catch (const comm::CommError&) {
          first_attempt_failed = true;
        }
        // Generous failure-path-only bounds, as in the SIGKILL tests above.
        c.set_timeout(120.0);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(120);
        while (c.failed_ranks().empty() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        const auto survivors = c.agree_survivors();
        comm::SubgroupComm sub(c, survivors);
        const auto merged = sub.coreset_allreduce(local, opts);
        ByteWriter w;
        w.write<std::uint8_t>(first_attempt_failed ? 1 : 0);
        w.write<std::uint64_t>(survivors.size());
        double total = 0.0;
        for (const double v : merged) total += v;
        w.write<double>(total);
        w.write<double>(merged[2 * 1024]);  // the dead rank's spike
        for (const std::size_t r : {0u, 1u, 3u, 4u}) {
          w.write<double>(merged[r * 1024 + 7]);
        }
        return w.take();
      },
      nullptr, &err);
  EXPECT_TRUE(err == nullptr);
  EXPECT_TRUE(blobs[2].empty());
  for (const int rank : {0, 1, 3, 4}) {
    ByteReader r(blobs[static_cast<std::size_t>(rank)]);
    EXPECT_EQ(r.read<std::uint8_t>(), 1u) << "rank " << rank;
    ASSERT_EQ(r.read<std::uint64_t>(), 4u) << "rank " << rank;
    EXPECT_DOUBLE_EQ(r.read<double>(), 4.0 * 36.0) << "rank " << rank;
    EXPECT_DOUBLE_EQ(r.read<double>(), 0.0) << "rank " << rank;
    for (int s = 0; s < 4; ++s) {
      EXPECT_DOUBLE_EQ(r.read<double>(), 8.0) << "rank " << rank;
    }
  }
}

TEST(Resilience, TwoSimultaneousSigkillsConvergeOnProcessBackend) {
  // The process-backed version is the honest one: ranks 2 and 3 are
  // SIGKILLed at the same moment, so the parent's waitpid loop marks two
  // failures racing each other, and the three surviving processes must
  // still converge on the same survivor set and run collectives in the
  // shrunken subgroup.
  comm::LaunchOptions opt;
  opt.backend = comm::Backend::kProcess;
  std::exception_ptr err;
  const auto blobs = comm::run_ranks_collect_bytes(
      opt, 5,
      [](Communicator& c) -> std::vector<std::byte> {
        c.barrier();
        if (c.rank() == 2 || c.rank() == 3) ::raise(SIGKILL);
        // Generous failure-path-only bounds: sanitizer runs at full -j load
        // can stall a child well past a "reasonable" wall.
        c.set_timeout(120.0);
        // Wait until the parent has reaped BOTH deaths, so the agreement
        // below really does start from two simultaneous failure marks.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(120);
        while (c.failed_ranks().size() < 2 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        const auto survivors = c.agree_survivors();
        comm::SubgroupComm sub(c, survivors);
        const double sum = sub.allreduce(1.0, comm::ReduceOp::kSum);
        ByteWriter w;
        w.write<std::uint64_t>(survivors.size());
        for (const int s : survivors) w.write<std::int32_t>(s);
        w.write<double>(sum);
        return w.take();
      },
      nullptr, &err);
  EXPECT_TRUE(err == nullptr);
  EXPECT_TRUE(blobs[2].empty());
  EXPECT_TRUE(blobs[3].empty());
  for (const int rank : {0, 1, 4}) {
    ByteReader r(blobs[static_cast<std::size_t>(rank)]);
    ASSERT_EQ(r.read<std::uint64_t>(), 3u) << "rank " << rank;
    EXPECT_EQ(r.read<std::int32_t>(), 0);
    EXPECT_EQ(r.read<std::int32_t>(), 1);
    EXPECT_EQ(r.read<std::int32_t>(), 4);
    EXPECT_DOUBLE_EQ(r.read<double>(), 3.0);
  }
}

TEST(Resilience, AgreeTimesOutWhenALiveRankNeverJoinsProcessBackend) {
  comm::LaunchOptions opt;
  opt.backend = comm::Backend::kProcess;
  std::exception_ptr err;
  const auto blobs = comm::run_ranks_collect_bytes(
      opt, 3,
      [](Communicator& c) -> std::vector<std::byte> {
        if (c.rank() == 2) {
          // Alive, healthy, and never joining the agreement.
          std::this_thread::sleep_for(std::chrono::milliseconds(900));
          return {};
        }
        c.set_timeout(0.3);
        ByteWriter w;
        try {
          (void)c.agree_survivors();
          w.write_string("converged-without-rank-2");
        } catch (const comm::TimeoutError& e) {
          w.write_string(std::string(e.what()).find("agree_survivors") !=
                                 std::string::npos
                             ? "timeout"
                             : "timeout-wrong-message");
        }
        return w.take();
      },
      nullptr, &err);
  EXPECT_TRUE(err == nullptr);
  for (const int rank : {0, 1}) {
    ByteReader r(blobs[static_cast<std::size_t>(rank)]);
    EXPECT_EQ(r.read_string(), "timeout") << "rank " << rank;
  }
}

#endif  // __linux__

}  // namespace
}  // namespace keybin2
