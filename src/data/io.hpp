// Dataset persistence: CSV (human-inspectable, interoperable with the
// paper's Python tooling) and a raw binary format (fast reload for benches).
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace keybin2::data {

/// Write points (and a trailing `label` column when labelled) as CSV with a
/// header row "f0,f1,...,label".
void write_csv(const Dataset& d, const std::string& path);

/// Read a CSV produced by write_csv (a final `label` column is recognised by
/// the header).
Dataset read_csv(const std::string& path);

/// Binary format: magic, rows, cols, has_labels, row-major doubles, labels.
void write_binary(const Dataset& d, const std::string& path);
Dataset read_binary(const std::string& path);

}  // namespace keybin2::data
