#include "md/geometry.hpp"

#include <gtest/gtest.h>

namespace keybin2::md {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5.0);
  const Vec3 d = b - a;
  EXPECT_DOUBLE_EQ(d.z, 3.0);
  const Vec3 m = a * 2.0;
  EXPECT_DOUBLE_EQ(m.y, 4.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 1.0);
  const Vec3 c = cross(x, y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
}

TEST(Dihedral, PlanarTransIs180) {
  // Four atoms in a plane, zig-zag (trans): dihedral = ±180.
  const Vec3 p1{0, 1, 0}, p2{0, 0, 0}, p3{1, 0, 0}, p4{1, -1, 0};
  EXPECT_NEAR(std::fabs(dihedral_deg(p1, p2, p3, p4)), 180.0, 1e-9);
}

TEST(Dihedral, PlanarCisIsZero) {
  // Cis: first and last atoms on the same side.
  const Vec3 p1{0, 1, 0}, p2{0, 0, 0}, p3{1, 0, 0}, p4{1, 1, 0};
  EXPECT_NEAR(dihedral_deg(p1, p2, p3, p4), 0.0, 1e-9);
}

TEST(Dihedral, RightAngleIsNinety) {
  const Vec3 p1{0, 1, 0}, p2{0, 0, 0}, p3{1, 0, 0}, p4{1, 0, 1};
  EXPECT_NEAR(std::fabs(dihedral_deg(p1, p2, p3, p4)), 90.0, 1e-9);
}

TEST(Dihedral, SignDistinguishesChirality) {
  const Vec3 p1{0, 1, 0}, p2{0, 0, 0}, p3{1, 0, 0};
  const Vec3 up{1, 0, 1}, down{1, 0, -1};
  EXPECT_NEAR(dihedral_deg(p1, p2, p3, up) + dihedral_deg(p1, p2, p3, down),
              0.0, 1e-9);
}

TEST(WrapDeg, MapsIntoHalfOpenInterval) {
  EXPECT_DOUBLE_EQ(wrap_deg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(wrap_deg(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(wrap_deg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg(540.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_deg(-180.0), 180.0);
}

TEST(AngularDistance, ShortestArc) {
  EXPECT_DOUBLE_EQ(angular_distance_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angular_distance_deg(-170.0, 170.0), 20.0);
  EXPECT_DOUBLE_EQ(angular_distance_deg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(angular_distance_deg(45.0, 45.0), 0.0);
}

TEST(AngularDistance, SymmetricAndBounded) {
  for (double a : {-170.0, -45.0, 0.0, 90.0, 179.0}) {
    for (double b : {-120.0, 33.0, 178.0}) {
      EXPECT_DOUBLE_EQ(angular_distance_deg(a, b), angular_distance_deg(b, a));
      EXPECT_GE(angular_distance_deg(a, b), 0.0);
      EXPECT_LE(angular_distance_deg(a, b), 180.0);
    }
  }
}

}  // namespace
}  // namespace keybin2::md
