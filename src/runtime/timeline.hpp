// Per-rank timeline capture: what each rank was doing, when, and which
// messages flowed between ranks.
//
// A Timeline records three kinds of events, all stamped with now_ns():
//   * Span    — a closed Tracer scope ("fit/trial0/bin") with start/end.
//   * Flow    — one end of a point-to-point delivery; the hub-unique flow id
//               pairs the send with the matching recv across ranks.
//   * Instant — a point event (survivor shrink, checkpoint write, ...).
//
// chrome_trace_json() renders a set of rank timelines as Chrome trace-event
// JSON (the format Perfetto and chrome://tracing load): "X" complete events
// for spans, "s"/"f" flow-event pairs for message arrows, "i" instants, and
// "M" metadata naming each rank's track. Timestamps are microseconds
// relative to the earliest event so traces start at t=0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace keybin2::runtime {

class Timeline {
 public:
  struct Span {
    std::string name;  // full scope path, e.g. "fit/trial0/bin"
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
  };

  /// One end of a message delivery. `start` is true on the send side.
  struct Flow {
    std::uint64_t id = 0;
    std::int64_t t_ns = 0;
    bool start = false;
    int peer = -1;
    int tag = 0;
    std::uint64_t bytes = 0;
  };

  struct Instant {
    std::string name;
    std::int64_t t_ns = 0;
  };

  explicit Timeline(int rank = 0) : rank_(rank) {}

  int rank() const { return rank_; }

  void add_span(std::string name, std::int64_t start_ns, std::int64_t end_ns) {
    spans_.push_back(Span{std::move(name), start_ns, end_ns});
  }
  void add_flow(std::uint64_t id, std::int64_t t_ns, bool start, int peer,
                int tag, std::uint64_t bytes) {
    flows_.push_back(Flow{id, t_ns, start, peer, tag, bytes});
  }
  void add_instant(std::string name, std::int64_t t_ns) {
    instants_.push_back(Instant{std::move(name), t_ns});
  }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<Instant>& instants() const { return instants_; }

  bool empty() const {
    return spans_.empty() && flows_.empty() && instants_.empty();
  }

  void clear() {
    spans_.clear();
    flows_.clear();
    instants_.clear();
  }

 private:
  int rank_;
  std::vector<Span> spans_;
  std::vector<Flow> flows_;
  std::vector<Instant> instants_;
};

/// Render one timeline per rank as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}). Each rank becomes one track (pid 0, tid =
/// rank); flow pairs appear only when both ends were captured.
std::string chrome_trace_json(std::span<const Timeline> ranks);

}  // namespace keybin2::runtime
