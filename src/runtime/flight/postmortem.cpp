#include "runtime/flight/postmortem.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>

#include "runtime/json.hpp"

namespace keybin2::runtime::flight {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kStage: return "stage";
    case EventType::kSend: return "send";
    case EventType::kRecv: return "recv";
    case EventType::kBarrier: return "barrier";
    case EventType::kAgree: return "agree";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kRecovery: return "recovery";
    case EventType::kMailbox: return "mailbox";
  }
  return "unknown";
}

namespace {

bool is_comm(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(EventType::kSend) ||
         type == static_cast<std::uint8_t>(EventType::kRecv) ||
         type == static_cast<std::uint8_t>(EventType::kBarrier) ||
         type == static_cast<std::uint8_t>(EventType::kAgree);
}

bool is_collective(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(EventType::kBarrier) ||
         type == static_cast<std::uint8_t>(EventType::kAgree);
}

std::string detail_str(const FlightRecord& r) {
  return std::string(r.detail,
                     strnlen(r.detail, sizeof(r.detail)));
}

RankStory replay(const RankTrail& trail) {
  RankStory s;
  s.rank = trail.rank;
  s.incarnation = trail.incarnation;
  s.epoch_ns = trail.epoch_ns;
  s.dead = trail.dead;
  s.death_reason = trail.death_reason;
  s.records_total = trail.records_total;
  s.records_valid = trail.records.size();
  s.dropped = trail.dropped;

  // Replay only the latest incarnation's records: a respawned rank shares
  // its predecessor's ring and the dead incarnation's leftover tail must not
  // contaminate the replacement's story (it has its own epoch).
  std::vector<std::string> stage_stack;
  const FlightRecord* last_comm = nullptr;
  for (const FlightRecord& r : trail.records) {
    if (r.incarnation != trail.incarnation) continue;
    if (r.type == static_cast<std::uint8_t>(EventType::kStage)) {
      const std::string d = detail_str(r);
      if (r.phase == static_cast<std::uint8_t>(EventPhase::kBegin)) {
        stage_stack.push_back(d);
      } else if (!stage_stack.empty()) {
        // The ring is bounded: an unmatched close (its open scrolled off or
        // predates the observer) just unwinds whatever is innermost.
        stage_stack.pop_back();
      }
    } else if (is_comm(r.type)) {
      last_comm = &r;
    }
  }
  if (!stage_stack.empty()) {
    s.last_stage = stage_stack.back();
  } else {
    // Every scope closed (or none recorded): fall back to the most recent
    // stage label so "last stage" is still informative.
    for (auto it = trail.records.rbegin(); it != trail.records.rend(); ++it) {
      if (it->incarnation == trail.incarnation &&
          it->type == static_cast<std::uint8_t>(EventType::kStage)) {
        s.last_stage = detail_str(*it);
        break;
      }
    }
  }
  if (last_comm != nullptr &&
      last_comm->phase == static_cast<std::uint8_t>(EventPhase::kBegin)) {
    s.in_flight = *last_comm;
    s.waiting_on = is_collective(last_comm->type) ? -2 : last_comm->peer;
  }
  return s;
}

/// Find one cycle in the wait graph via iterative DFS with colors. Edges may
/// fan out (collectives), so this is a general digraph search.
std::vector<int> find_cycle(int n,
                            const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    if (a >= 0 && a < n && b >= 0 && b < n) {
      adj[static_cast<std::size_t>(a)].push_back(b);
    }
  }
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 new 1 open 2 done
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[static_cast<std::size_t>(u)].size()) {
        const int v = adj[static_cast<std::size_t>(u)][next++];
        if (color[static_cast<std::size_t>(v)] == 1) {
          // Back edge u -> v: walk parents from u back to v.
          std::vector<int> cycle{v};
          for (int w = u; w != v; w = parent[static_cast<std::size_t>(w)]) {
            cycle.push_back(w);
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[static_cast<std::size_t>(v)] == 0) {
          color[static_cast<std::size_t>(v)] = 1;
          parent[static_cast<std::size_t>(v)] = u;
          stack.push_back({v, 0});
        }
      } else {
        color[static_cast<std::size_t>(u)] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

std::string op_label(const FlightRecord& r) {
  std::ostringstream os;
  os << event_type_name(static_cast<EventType>(r.type));
  if (r.peer >= 0) os << " peer=" << r.peer;
  if (r.tag >= 0) os << " tag=" << r.tag;
  if (r.bytes > 0) os << " bytes=" << r.bytes;
  return os.str();
}

}  // namespace

PostmortemReport analyze_dump(const FlightDump& dump) {
  PostmortemReport rep;
  rep.job = dump.job;
  rep.reason = dump.reason;
  rep.dump_t_ns = dump.dump_t_ns;
  const int n = static_cast<int>(dump.ranks.size());
  rep.ranks.reserve(dump.ranks.size());
  for (const RankTrail& t : dump.ranks) rep.ranks.push_back(replay(t));

  for (const RankStory& s : rep.ranks) {
    if (s.dead) rep.dead_ranks.push_back(s.rank);
  }

  // Wait edges. Point-to-point waits name their peer directly; a collective
  // waits on every rank that has not also arrived in a collective (dead or
  // still computing or blocked elsewhere).
  for (const RankStory& s : rep.ranks) {
    if (!s.in_flight.has_value()) continue;
    if (s.waiting_on >= 0) {
      rep.wait_edges.emplace_back(s.rank, s.waiting_on);
    } else if (s.waiting_on == -2) {
      for (const RankStory& o : rep.ranks) {
        if (o.rank == s.rank) continue;
        const bool arrived = o.in_flight.has_value() &&
                             is_collective(o.in_flight->type);
        if (!arrived) rep.wait_edges.emplace_back(s.rank, o.rank);
      }
    }
  }

  if (!rep.dead_ranks.empty()) {
    rep.verdict = "victim";
    return rep;
  }
  rep.cycle = find_cycle(n, rep.wait_edges);
  if (!rep.cycle.empty()) {
    rep.verdict = "deadlock";
    return rep;
  }
  // Straggler: the most-waited-on rank that is not itself waiting.
  std::vector<int> waited(static_cast<std::size_t>(n), 0);
  for (const auto& [a, b] : rep.wait_edges) {
    if (b >= 0 && b < n) ++waited[static_cast<std::size_t>(b)];
  }
  int best = -1;
  for (int r = 0; r < n; ++r) {
    if (waited[static_cast<std::size_t>(r)] == 0) continue;
    if (rep.ranks[static_cast<std::size_t>(r)].in_flight.has_value()) continue;
    if (best < 0 || waited[static_cast<std::size_t>(r)] >
                        waited[static_cast<std::size_t>(best)]) {
      best = r;
    }
  }
  if (best >= 0) {
    rep.straggler = best;
    rep.verdict = "straggler";
    return rep;
  }
  rep.verdict = "clean";
  return rep;
}

std::string render_text(const PostmortemReport& rep) {
  std::ostringstream os;
  os << "== kb2 post-mortem ==\n";
  os << "job     : " << (rep.job.empty() ? "(unnamed)" : rep.job) << "\n";
  os << "trigger : " << rep.reason << "\n";
  os << "verdict : " << rep.verdict;
  if (rep.verdict == "victim") {
    os << " (dead:";
    for (int r : rep.dead_ranks) os << " " << r;
    os << ")";
  } else if (rep.verdict == "deadlock") {
    os << " (cycle:";
    for (int r : rep.cycle) os << " " << r;
    os << ")";
  } else if (rep.verdict == "straggler") {
    os << " (rank " << rep.straggler << ")";
  }
  os << "\n\n";
  for (const RankStory& s : rep.ranks) {
    os << "rank " << s.rank << " inc " << s.incarnation;
    if (s.dead) {
      os << "  DEAD (" << s.death_reason << ")";
    }
    os << "\n";
    os << "  last stage : "
       << (s.last_stage.empty() ? "(none recorded)" : s.last_stage) << "\n";
    if (s.in_flight.has_value()) {
      os << "  in flight  : " << op_label(*s.in_flight) << "\n";
      if (s.waiting_on >= 0) {
        os << "  waiting on : rank " << s.waiting_on << "\n";
      } else if (s.waiting_on == -2) {
        os << "  waiting on : group collective\n";
      }
    }
    os << "  records    : " << s.records_valid << " valid / "
       << s.records_total << " written";
    if (s.dropped > 0) os << " (" << s.dropped << " dropped while frozen)";
    os << "\n";
  }
  return os.str();
}

std::string render_json(const PostmortemReport& rep) {
  JsonWriter w;
  w.begin_object();
  w.key("job").value(rep.job);
  w.key("reason").value(rep.reason);
  w.key("dump_t_ns").value(static_cast<std::int64_t>(rep.dump_t_ns));
  w.key("verdict").value(rep.verdict);
  w.key("dead_ranks").begin_array();
  for (int r : rep.dead_ranks) w.value(r);
  w.end_array();
  w.key("cycle").begin_array();
  for (int r : rep.cycle) w.value(r);
  w.end_array();
  w.key("straggler").value(rep.straggler);
  w.key("ranks").begin_array();
  for (const RankStory& s : rep.ranks) {
    w.begin_object();
    w.key("rank").value(s.rank);
    w.key("incarnation").value(static_cast<std::uint64_t>(s.incarnation));
    w.key("epoch_ns").value(static_cast<std::int64_t>(s.epoch_ns));
    w.key("dead").value(s.dead);
    w.key("death_reason").value(s.death_reason);
    w.key("last_stage").value(s.last_stage);
    if (s.in_flight.has_value()) {
      const FlightRecord& r = *s.in_flight;
      w.key("in_flight").begin_object();
      w.key("op").value(event_type_name(static_cast<EventType>(r.type)));
      w.key("peer").value(r.peer);
      w.key("tag").value(r.tag);
      w.key("bytes").value(r.bytes);
      w.key("t_ns").value(static_cast<std::int64_t>(r.t_ns));
      w.end_object();
    } else {
      w.key("in_flight").raw("null");
    }
    w.key("waiting_on").value(s.waiting_on);
    w.key("records_valid").value(s.records_valid);
    w.key("records_total").value(s.records_total);
    w.key("dropped").value(s.dropped);
    w.end_object();
  }
  w.end_array();
  w.key("wait_edges").begin_array();
  for (const auto& [a, b] : rep.wait_edges) {
    w.begin_array();
    w.value(a);
    w.value(b);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string render_trace_json(const FlightDump& dump) {
  // Shared epoch: the earliest timestamp across every rank's tail, so all
  // lanes share one time axis (the rings share the process-wide monotonic
  // clock).
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  for (const RankTrail& t : dump.ranks) {
    for (const FlightRecord& r : t.records) epoch = std::min(epoch, r.t_ns);
  }
  if (epoch == std::numeric_limits<std::int64_t>::max()) epoch = 0;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const RankTrail& t : dump.ranks) {
    // Lane metadata: one pid per rank, one tid per incarnation seen in the
    // tail — a respawn's records land in their own lane.
    std::vector<std::uint32_t> incs;
    for (const FlightRecord& r : t.records) {
      if (std::find(incs.begin(), incs.end(), r.incarnation) == incs.end()) {
        incs.push_back(r.incarnation);
      }
    }
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(t.rank);
    w.key("args").begin_object();
    w.key("name").value("rank " + std::to_string(t.rank) +
                        (t.dead ? " (dead)" : ""));
    w.end_object();
    w.end_object();
    for (std::uint32_t inc : incs) {
      w.begin_object();
      w.key("ph").value("M");
      w.key("name").value("thread_name");
      w.key("pid").value(t.rank);
      w.key("tid").value(static_cast<std::uint64_t>(inc));
      w.key("args").begin_object();
      w.key("name").value("inc " + std::to_string(inc));
      w.end_object();
      w.end_object();
    }

    // Matched begin/end pairs become complete slices; unmatched begins and
    // point events become instants. Matching is a per-(incarnation, type)
    // stack — ops never overlap within one writer.
    std::vector<std::vector<std::size_t>> open_stage(incs.size());
    std::vector<std::vector<std::size_t>> open_comm(incs.size());
    auto lane_of = [&](std::uint32_t inc) {
      return static_cast<std::size_t>(
          std::find(incs.begin(), incs.end(), inc) - incs.begin());
    };
    auto emit_slice = [&](const FlightRecord& b, const FlightRecord& e,
                          const std::string& name, const char* cat) {
      w.begin_object();
      w.key("ph").value("X");
      w.key("name").value(name);
      w.key("cat").value(cat);
      w.key("pid").value(t.rank);
      w.key("tid").value(static_cast<std::uint64_t>(b.incarnation));
      w.key("ts").value(static_cast<double>(b.t_ns - epoch) / 1000.0);
      w.key("dur").value(static_cast<double>(e.t_ns - b.t_ns) / 1000.0);
      w.end_object();
    };
    auto emit_instant = [&](const FlightRecord& r, const std::string& name,
                            const char* cat) {
      w.begin_object();
      w.key("ph").value("i");
      w.key("s").value("t");
      w.key("name").value(name);
      w.key("cat").value(cat);
      w.key("pid").value(t.rank);
      w.key("tid").value(static_cast<std::uint64_t>(r.incarnation));
      w.key("ts").value(static_cast<double>(r.t_ns - epoch) / 1000.0);
      w.end_object();
    };
    for (std::size_t i = 0; i < t.records.size(); ++i) {
      const FlightRecord& r = t.records[i];
      const std::size_t lane = lane_of(r.incarnation);
      const bool stage =
          r.type == static_cast<std::uint8_t>(EventType::kStage);
      auto& open = stage ? open_stage[lane] : open_comm[lane];
      if (r.phase == static_cast<std::uint8_t>(EventPhase::kBegin) &&
          (stage || is_comm(r.type))) {
        open.push_back(i);
      } else if (r.phase == static_cast<std::uint8_t>(EventPhase::kEnd) &&
                 (stage || is_comm(r.type))) {
        if (!open.empty()) {
          const FlightRecord& b = t.records[open.back()];
          open.pop_back();
          emit_slice(b, r, stage ? detail_str(b) : op_label(b),
                     stage ? "stage" : "comm");
        }
      } else {
        emit_instant(r,
                     std::string(event_type_name(
                         static_cast<EventType>(r.type))) +
                         (detail_str(r).empty() ? "" : ":" + detail_str(r)),
                     "event");
      }
    }
    // Whatever is still open is the in-flight evidence.
    for (std::size_t lane = 0; lane < incs.size(); ++lane) {
      for (std::size_t idx : open_comm[lane]) {
        emit_instant(t.records[idx],
                     "in-flight " + op_label(t.records[idx]), "inflight");
      }
      for (std::size_t idx : open_stage[lane]) {
        emit_instant(t.records[idx],
                     "open stage " + detail_str(t.records[idx]), "inflight");
      }
    }
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

}  // namespace keybin2::runtime::flight
