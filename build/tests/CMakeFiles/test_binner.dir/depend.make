# Empty dependencies file for test_binner.
# This may be replaced when dependencies are built.
