// Flight-recorder tests (DESIGN.md §10): ring seqlock semantics, freeze
// discipline, the versioned CRC-checked dump container and its five-mode
// corruption taxonomy, and end-to-end death attribution — a killed rank's
// dump must name the rank, its last pipeline stage, and the comm op it died
// inside, on both transport backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "runtime/context.hpp"
#include "runtime/flight/flight.hpp"
#include "runtime/flight/postmortem.hpp"

#ifdef __linux__
#include "comm/proc_comm.hpp"
#include "comm/recovery.hpp"
#endif

namespace keybin2 {
namespace {

namespace flight = runtime::flight;

std::string temp_dump_path(const char* tag) {
  return ::testing::TempDir() + "kb2_flight_" + tag + ".dump";
}

TEST(FlightRing, RecordsRoundTripThroughDump) {
  flight::FlightSegment seg(/*n_ranks=*/2, "ring unit", /*slots_per_rank=*/8);
  flight::FlightWriter w(&seg, /*rank=*/1, /*incarnation=*/0);
  w.record(flight::EventType::kSend, flight::EventPhase::kBegin, /*peer=*/0,
           /*tag=*/7, /*bytes=*/64, "first");
  w.record(flight::EventType::kSend, flight::EventPhase::kEnd, 0, 7, 64,
           "first");
  w.record(flight::EventType::kStage, flight::EventPhase::kBegin, -1, -1, 0,
           "fit/trial0");

  const std::string path = temp_dump_path("roundtrip");
  seg.freeze();
  flight::write_flight_dump(path, seg, "unit test", {});
  const auto dump = flight::read_flight_dump(path);

  EXPECT_EQ(dump.job, "ring unit");
  EXPECT_EQ(dump.reason, "unit test");
  EXPECT_GT(dump.dump_t_ns, 0);
  ASSERT_EQ(dump.ranks.size(), 2u);
  EXPECT_TRUE(dump.ranks[0].records.empty());  // rank 0 never bound
  const auto& trail = dump.ranks[1];
  EXPECT_GT(trail.epoch_ns, 0);
  ASSERT_EQ(trail.records.size(), 3u);
  EXPECT_EQ(trail.records[0].type,
            static_cast<std::uint8_t>(flight::EventType::kSend));
  EXPECT_EQ(trail.records[0].phase,
            static_cast<std::uint8_t>(flight::EventPhase::kBegin));
  EXPECT_EQ(trail.records[0].peer, 0);
  EXPECT_EQ(trail.records[0].tag, 7);
  EXPECT_EQ(trail.records[0].bytes, 64u);
  EXPECT_STREQ(trail.records[2].detail, "fit/trial0");
  // Records are oldest-first with strictly increasing timestamps.
  EXPECT_LE(trail.records[0].t_ns, trail.records[2].t_ns);
  std::remove(path.c_str());
}

TEST(FlightRing, WrapKeepsNewestTail) {
  flight::FlightSegment seg(1, "wrap", /*slots_per_rank=*/8);
  flight::FlightWriter w(&seg, 0, 0);
  for (int i = 0; i < 20; ++i) {
    char detail[16];
    std::snprintf(detail, sizeof(detail), "ev%d", i);
    w.record(flight::EventType::kMailbox, flight::EventPhase::kPoint, -1, -1,
             static_cast<std::uint64_t>(i), detail);
  }
  seg.freeze();
  const std::string path = temp_dump_path("wrap");
  flight::write_flight_dump(path, seg, "wrap", {});
  const auto dump = flight::read_flight_dump(path);
  const auto& trail = dump.ranks[0];
  EXPECT_EQ(trail.records_total, 20u);
  ASSERT_EQ(trail.records.size(), 8u);  // ring capacity
  // The survivors are exactly the newest eight, in order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(trail.records[i].bytes, 12u + i);
  }
  std::remove(path.c_str());
}

TEST(FlightRing, FreezeDropsAndCountsRecords) {
  flight::FlightSegment seg(1, "freeze", 8);
  flight::FlightWriter w(&seg, 0, 0);
  w.record(flight::EventType::kStage, flight::EventPhase::kPoint, -1, -1, 0,
           "before");
  seg.freeze();
  EXPECT_TRUE(seg.frozen());
  w.record(flight::EventType::kStage, flight::EventPhase::kPoint, -1, -1, 0,
           "while frozen");
  seg.unfreeze();
  w.record(flight::EventType::kStage, flight::EventPhase::kPoint, -1, -1, 0,
           "after");

  seg.freeze();
  const std::string path = temp_dump_path("freeze");
  flight::write_flight_dump(path, seg, "freeze", {});
  const auto dump = flight::read_flight_dump(path);
  const auto& trail = dump.ranks[0];
  EXPECT_EQ(trail.records.size(), 2u);  // the frozen record never landed
  EXPECT_EQ(trail.dropped, 1u);
  EXPECT_STREQ(trail.records[1].detail, "after");
  std::remove(path.c_str());
}

TEST(FlightDump, DeathsSurviveTheContainer) {
  flight::FlightSegment seg(3, "deaths", 8);
  std::vector<flight::FlightDeath> deaths;
  deaths.push_back({1, 0, "killed by signal 9"});
  deaths.push_back({2, 1, "respawn budget exhausted"});
  const std::string path = temp_dump_path("deaths");
  flight::write_flight_dump(path, seg, "ladder exhaustion", deaths);
  const auto dump = flight::read_flight_dump(path);
  EXPECT_TRUE(dump.ranks[1].dead);
  EXPECT_EQ(dump.ranks[1].death_reason, "killed by signal 9");
  EXPECT_TRUE(dump.ranks[2].dead);
  EXPECT_EQ(dump.ranks[2].death_reason, "respawn budget exhausted");
  EXPECT_FALSE(dump.ranks[0].dead);
  std::remove(path.c_str());
}

// Satellite: every corruption mode must surface as a *typed* defect — the
// post-mortem tool runs exactly when everything else already failed, so an
// unreadable dump may never crash it.
TEST(FlightDump, CorruptionYieldsTypedDefects) {
  const std::vector<std::string> kDefects = {
      "missing",      "truncated",    "bad_magic",
      "version_skew", "crc_mismatch", "malformed"};
  const flight::DumpCorruption kModes[] = {
      flight::DumpCorruption::kTruncateHeader,
      flight::DumpCorruption::kTruncatePayload,
      flight::DumpCorruption::kZeroSpan,
      flight::DumpCorruption::kFlipBit,
      flight::DumpCorruption::kBadMagic,
  };
  for (const auto mode : kModes) {
    flight::FlightSegment seg(2, "corrupt", 8);
    flight::FlightWriter w(&seg, 0, 0);
    for (int i = 0; i < 6; ++i) {
      w.record(flight::EventType::kBarrier, flight::EventPhase::kBegin, -1,
               -1, 0, "b");
    }
    const std::string path = temp_dump_path("corrupt");
    flight::write_flight_dump(path, seg, "corruption test", {});
    flight::corrupt_flight_dump(path, mode, /*seed=*/17);
    try {
      (void)flight::read_flight_dump(path);
      FAIL() << "corruption mode " << static_cast<int>(mode)
             << " went undetected";
    } catch (const flight::FlightDumpError& e) {
      EXPECT_NE(std::find(kDefects.begin(), kDefects.end(), e.defect()),
                kDefects.end())
          << "untyped defect '" << e.defect() << "' for mode "
          << static_cast<int>(mode);
      EXPECT_EQ(e.path(), path);
    }
    std::remove(path.c_str());
  }
  // And the missing-file defect.
  try {
    (void)flight::read_flight_dump(temp_dump_path("never_written"));
    FAIL() << "missing dump went undetected";
  } catch (const flight::FlightDumpError& e) {
    EXPECT_EQ(e.defect(), "missing");
  }
}

TEST(Postmortem, AttributesDeadlockFromWaitCycle) {
  // Hand-build a two-rank mutual recv wait: a cycle with nobody dead.
  flight::FlightSegment seg(2, "deadlock", 8);
  flight::FlightWriter w0(&seg, 0, 0);
  flight::FlightWriter w1(&seg, 1, 0);
  w0.record(flight::EventType::kRecv, flight::EventPhase::kBegin, 1, 5, 0,
            "");
  w1.record(flight::EventType::kRecv, flight::EventPhase::kBegin, 0, 5, 0,
            "");
  const std::string path = temp_dump_path("deadlock");
  flight::write_flight_dump(path, seg, "hang", {});
  const auto report = flight::analyze_dump(flight::read_flight_dump(path));
  EXPECT_EQ(report.verdict, "deadlock");
  EXPECT_FALSE(report.cycle.empty());
  EXPECT_EQ(report.ranks[0].waiting_on, 1);
  EXPECT_EQ(report.ranks[1].waiting_on, 0);
  std::remove(path.c_str());
}

/// Seeded kill of one rank mid-fit over the given backend; returns the
/// post-mortem report reconstructed from the dump the death callback wrote.
flight::PostmortemReport killed_fit_report(comm::Backend backend,
                                           const std::string& path) {
  constexpr int kRanks = 4;
  constexpr int kVictim = 2;
  const auto spec = data::make_paper_mixture(6, 3, 11);
  const auto d = data::sample(spec, 1600, 12);
  const auto shards = data::shard(d, kRanks);
  core::Params params;
  params.seed = 11;
  params.bootstrap_trials = 2;
  params.comm_timeout_seconds = 20.0;
  params.max_shrink_retries = 3;

  auto fseg =
      std::make_unique<flight::FlightSegment>(kRanks, "killed fit");
  std::mutex mu;
  std::vector<flight::FlightDeath> deaths;
  comm::LaunchOptions launch;
  launch.backend = backend;
  launch.recovery.max_respawns = 1;
  launch.on_abnormal_death = [&](int rank, int incarnation,
                                 const std::string& reason) {
    std::lock_guard lk(mu);
    fseg->freeze();
    deaths.push_back({rank, incarnation, reason});
    flight::write_flight_dump(path, *fseg, "abnormal rank death", deaths);
    fseg->unfreeze();
  };

  try {
    comm::run_ranks(launch, kRanks, [&](comm::Communicator& c) {
      std::optional<comm::fault::FaultyComm> faulty;
      comm::Communicator* ep = &c;
      if (c.rank() == kVictim && c.incarnation() == 0) {
        comm::fault::FaultSchedule s;
        s.kill_at_op = 25;
        s.hard_kill = true;  // real SIGKILL under proc, thrown under thread
        faulty.emplace(c, s);
        ep = &*faulty;
      }
      runtime::Context ctx(*ep, params.seed);
      ctx.enable_flight_recorder(fseg.get());
      (void)core::fit(ctx, shards[static_cast<std::size_t>(c.rank())].points,
                      params);
    });
  } catch (const Error&) {
    // Thread backend: the victim's KilledError propagates after the dump
    // was written — the report below is still the artifact under test.
  }
  return flight::analyze_dump(flight::read_flight_dump(path));
}

void expect_victim_story(const flight::PostmortemReport& report) {
  EXPECT_EQ(report.verdict, "victim");
  ASSERT_EQ(report.dead_ranks.size(), 1u);
  EXPECT_EQ(report.dead_ranks[0], 2);
  const auto& victim = report.ranks[2];
  EXPECT_TRUE(victim.dead);
  // The rank died inside the fit: its last stage and the interrupted comm
  // op (an unmatched begin, with peer and tag) must both be on record.
  EXPECT_EQ(victim.last_stage.rfind("fit", 0), 0u) << victim.last_stage;
  ASSERT_TRUE(victim.in_flight.has_value());
  const auto type = static_cast<flight::EventType>(victim.in_flight->type);
  EXPECT_TRUE(type == flight::EventType::kSend ||
              type == flight::EventType::kRecv ||
              type == flight::EventType::kBarrier ||
              type == flight::EventType::kAgree);
  if (type == flight::EventType::kSend || type == flight::EventType::kRecv) {
    EXPECT_GE(victim.in_flight->peer, 0);
    EXPECT_GE(victim.in_flight->tag, 0);
  }
}

TEST(Postmortem, ThreadBackendKillLeavesAttributableDump) {
  const std::string path = temp_dump_path("thread_kill");
  std::remove(path.c_str());
  const auto report = killed_fit_report(comm::Backend::kThread, path);
  expect_victim_story(report);
  std::remove(path.c_str());
}

#ifdef __linux__
TEST(Postmortem, ProcBackendSigkillLeavesAttributableDump) {
  const std::string path = temp_dump_path("proc_kill");
  std::remove(path.c_str());
  const auto report = killed_fit_report(comm::Backend::kProcess, path);
  expect_victim_story(report);
  EXPECT_NE(report.ranks[2].death_reason.find("signal 9"), std::string::npos)
      << report.ranks[2].death_reason;
  std::remove(path.c_str());
}
#endif

}  // namespace
}  // namespace keybin2
