file(REMOVE_RECURSE
  "CMakeFiles/kb2_common.dir/matrix.cpp.o"
  "CMakeFiles/kb2_common.dir/matrix.cpp.o.d"
  "CMakeFiles/kb2_common.dir/rng.cpp.o"
  "CMakeFiles/kb2_common.dir/rng.cpp.o.d"
  "CMakeFiles/kb2_common.dir/thread_pool.cpp.o"
  "CMakeFiles/kb2_common.dir/thread_pool.cpp.o.d"
  "libkb2_common.a"
  "libkb2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
