// kb2_postmortem: reconstruct the cross-rank story from a flight dump.
//
//   kb2_postmortem kb2_flight.dump            # human-readable report
//   kb2_postmortem kb2_flight.dump --json     # machine-readable (schema
//                                             #   checked by trace_check
//                                             #   --postmortem)
//   kb2_postmortem kb2_flight.dump --trace out.json
//                                             # also write a Perfetto/Chrome
//                                             #   trace snippet of the rings
//
// The dump is the supervisor's freeze-moment snapshot of every rank's
// black-box ring (runtime/flight). The analysis replays each ring tail to
// recover the rank's last pipeline stage and in-flight comm operation,
// derives "waiting on whom" edges, and classifies the failure as
// victim / deadlock / straggler / clean (runtime/flight/postmortem.hpp).
//
// A damaged dump is reported as a typed defect (missing, truncated,
// bad_magic, version_skew, crc_mismatch, malformed) with exit code 2 —
// never a crash: this tool runs exactly when everything else already went
// wrong.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "runtime/flight/flight.hpp"
#include "runtime/flight/postmortem.hpp"

namespace flight = keybin2::runtime::flight;

namespace {

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: kb2_postmortem <dump> [--json] [--trace out.json]\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string trace_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kb2_postmortem: missing value for --trace\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--help")) {
      return usage(0);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "kb2_postmortem: unexpected argument %s\n",
                   argv[i]);
      return usage(2);
    }
  }
  if (path.empty()) return usage(2);

  flight::FlightDump dump;
  try {
    dump = flight::read_flight_dump(path);
  } catch (const flight::FlightDumpError& e) {
    // The defect taxonomy is the contract: scripted callers match on the
    // "defect=<word>" token, humans read the sentence.
    std::fprintf(stderr, "kb2_postmortem: unreadable dump (defect=%s): %s\n",
                 e.defect().c_str(), e.what());
    return 2;
  }

  const flight::PostmortemReport report = flight::analyze_dump(dump);
  if (json) {
    std::fputs(flight::render_json(report).c_str(), stdout);
  } else {
    std::fputs(flight::render_text(report).c_str(), stdout);
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      std::fprintf(stderr, "kb2_postmortem: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    out << flight::render_trace_json(dump);
    if (!json) {
      std::printf("trace snippet written to %s\n", trace_path.c_str());
    }
  }
  return 0;
}
