#include "baselines/parallel_kmeans.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::baselines {

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] - b[i];
    d += x * x;
  }
  return d;
}

/// One full distributed k-means run with a specific seeding stream.
KMeansResult run_one_init(comm::Communicator& comm, const Matrix& local_points,
                          const KMeansParams& params, std::uint64_t seed) {
  const std::size_t k = params.k;
  const auto dims64 = comm.allreduce(
      static_cast<std::uint64_t>(local_points.cols()), comm::ReduceOp::kMax);
  const auto dims = static_cast<std::size_t>(dims64);
  KB2_CHECK_MSG(local_points.rows() == 0 || local_points.cols() == dims,
                "ranks disagree on dimensionality");

  // Seeding. kFirstKPoints: the first k points of the dataset (rank 0's
  // shard leads), exactly like Liao's parallel-kmeans — and the reason that
  // baseline degrades in high dimension, where centres seeded inside one
  // cluster cannot cross the widening gaps. kSampledKMeansPP: every rank
  // contributes a slice of its shard to a root-side sample and the root
  // runs k-means++ on it.
  Matrix centers;
  {
    constexpr std::size_t kSeedSample = 1024;
    const auto per_rank =
        params.seeding == Seeding::kFirstKPoints
            ? (comm.rank() == 0 ? k : std::size_t{0})
            : std::max<std::size_t>(
                  k, kSeedSample / static_cast<std::size_t>(comm.size()));
    const auto take = std::min(per_rank, local_points.rows());
    ByteWriter w;
    w.write<std::uint64_t>(take);
    for (std::size_t i = 0; i < take; ++i) {
      w.write_span(local_points.row(i));
    }
    auto gathered = comm.gather(w.bytes(), /*root=*/0);

    ByteWriter centers_msg;
    if (comm.rank() == 0) {
      Matrix sample;
      for (const auto& blob : gathered) {
        ByteReader r(blob);
        const auto rows = r.read<std::uint64_t>();
        for (std::uint64_t i = 0; i < rows; ++i) {
          sample.append_row(r.read_vec<double>());
        }
      }
      KB2_CHECK_MSG(sample.rows() >= k,
                    "seed sample has fewer points than k");
      if (params.seeding == Seeding::kFirstKPoints) {
        centers = sample.slice_rows(0, k);  // verbatim first-k seeding
      } else {
        centers = kmeanspp_init(sample, k, seed);
      }
      centers_msg.write_span(centers.flat());
    }
    auto bytes = centers_msg.take();
    comm.broadcast(bytes, /*root=*/0);
    if (comm.rank() != 0) {
      ByteReader r(bytes);
      centers = Matrix(k, dims, r.read_vec<double>());
    }
  }

  KMeansResult result;
  result.labels.assign(local_points.rows(), 0);

  for (int iter = 0; iter < params.max_iters; ++iter) {
    result.iterations = iter + 1;

    // Local assignment + partial sums. Layout: k*dims sums, then k counts,
    // then 1 inertia — one allreduce per iteration.
    std::vector<double> acc(k * dims + k + 1, 0.0);
    for (std::size_t i = 0; i < local_points.rows(); ++i) {
      auto row = local_points.row(i);
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(row, centers.row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.labels[i] = static_cast<int>(best_c);
      for (std::size_t j = 0; j < dims; ++j) acc[best_c * dims + j] += row[j];
      acc[k * dims + best_c] += 1.0;
      acc[k * dims + k] += best;
    }
    acc = comm.allreduce(acc, comm::ReduceOp::kSum);
    result.inertia = acc[k * dims + k];

    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double count = acc[k * dims + c];
      auto oc = centers.row(c);
      if (count > 0.0) {
        for (std::size_t j = 0; j < dims; ++j) {
          const double v = acc[c * dims + j] / count;
          const double d = v - oc[j];
          shift += d * d;
          oc[j] = v;
        }
      }
    }
    if (shift <= params.tol * params.tol) {
      result.converged = true;
      break;
    }
  }

  // Final assignment against the converged centres.
  double local_inertia = 0.0;
  for (std::size_t i = 0; i < local_points.rows(); ++i) {
    auto row = local_points.row(i);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = sq_distance(row, centers.row(c));
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    result.labels[i] = static_cast<int>(best_c);
    local_inertia += best;
  }
  result.inertia = comm.allreduce(local_inertia, comm::ReduceOp::kSum);
  result.centers = std::move(centers);
  return result;
}

}  // namespace

KMeansResult parallel_kmeans(comm::Communicator& comm,
                             const Matrix& local_points,
                             const KMeansParams& params) {
  KB2_CHECK_MSG(params.n_init >= 1, "n_init must be >= 1");
  // Restart seeds are derived identically on every rank, so all ranks agree
  // on which run wins without extra communication (inertia is global).
  // First-k seeding is deterministic, so restarts would be identical.
  const int inits =
      params.seeding == Seeding::kFirstKPoints ? 1 : params.n_init;
  Rng seed_stream(params.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < inits; ++r) {
    auto result =
        run_one_init(comm, local_points, params, seed_stream.fork_seed());
    if (result.inertia < best.inertia) best = std::move(result);
  }
  return best;
}

}  // namespace keybin2::baselines
