#include "core/keybin2.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/assess.hpp"
#include "core/binner.hpp"
#include "core/cells.hpp"
#include "core/projection.hpp"
#include "stats/ks_test.hpp"

namespace keybin2::core {

namespace {

/// The best candidate observed so far (root rank only).
struct BestCandidate {
  double score = -1.0;
  int trial = -1;
  std::vector<int> depths;  // one per kept dimension
  Matrix projection;        // empty for identity
  std::vector<int> kept_dims;
  std::vector<Range> ranges;
  std::vector<DimensionPartition> partitions;
  std::vector<Cell> cells;
};

/// 1-D histogram-space CH of a single dimension's partition (its primaries
/// act as the cells) — the per-dimension depth-selection criterion.
double single_dimension_score(const stats::Histogram& level,
                              const DimensionPartition& partition) {
  std::vector<Cell> cells;
  for (std::size_t p = 0; p < partition.primary_count(); ++p) {
    const auto [begin, end] = partition.range_of(p);
    double mass = 0.0;
    for (std::size_t b = begin; b < end; ++b) mass += level.count(b);
    if (mass > 0.0) {
      cells.push_back(Cell{{static_cast<std::uint32_t>(p)}, mass, -1});
    }
  }
  return histogram_calinski_harabasz({level}, {partition}, cells);
}

}  // namespace

FitResult fit(comm::Communicator& comm, const Matrix& local_points,
              const Params& params) {
  KB2_CHECK_MSG(params.min_depth >= 1 && params.min_depth <= params.max_depth,
                "invalid depth range [" << params.min_depth << ", "
                                        << params.max_depth << "]");
  KB2_CHECK_MSG(params.bootstrap_trials >= 1, "need at least one trial");

  const auto n_dims = static_cast<std::uint64_t>(local_points.cols());
  // All ranks must agree on the dimensionality (empty shards report the max).
  const auto global_dims = comm.allreduce(n_dims, comm::ReduceOp::kMax);
  KB2_CHECK_MSG(local_points.rows() == 0 || n_dims == global_dims,
                "rank " << comm.rank() << " has " << n_dims
                        << " dims, group agreed on " << global_dims);
  KB2_CHECK_MSG(global_dims >= 1, "dataset has no dimensions");

  const double total_points = comm.allreduce(
      static_cast<double>(local_points.rows()), comm::ReduceOp::kSum);
  KB2_CHECK_MSG(total_points > 0.0, "dataset has no points");

  const bool is_root = comm.rank() == 0;
  const int n_rp =
      params.use_projection
          ? (params.n_rp > 0 ? params.n_rp : choose_n_rp(global_dims))
          : static_cast<int>(global_dims);
  const int trials = params.use_projection ? params.bootstrap_trials : 1;

  // Trial seeds are derived deterministically from params.seed, so every
  // rank builds the identical projection matrix without communication.
  Rng seed_stream(params.seed);
  std::vector<std::uint64_t> trial_seeds;
  trial_seeds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) trial_seeds.push_back(seed_stream.fork_seed());

  BestCandidate best;
  std::vector<TrialDiagnostics> diagnostics;

  for (int t = 0; t < trials; ++t) {
    // (1) Project into a lower space.
    Matrix projection;
    Matrix projected;
    if (params.use_projection) {
      projection = make_projection_matrix(global_dims, n_rp, trial_seeds[static_cast<std::size_t>(t)]);
      projected = project(local_points, projection);
    } else {
      projected = local_points;
    }

    // Agree on per-dimension key ranges [r_min, r_max].
    const auto dims = static_cast<std::size_t>(n_rp);
    std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < projected.rows(); ++i) {
      auto row = projected.row(i);
      for (std::size_t j = 0; j < dims; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
    lo = comm.allreduce(lo, comm::ReduceOp::kMin);
    hi = comm.allreduce(hi, comm::ReduceOp::kMax);
    std::vector<Range> ranges(dims);
    for (std::size_t j = 0; j < dims; ++j) {
      ranges[j].lo = lo[j];
      ranges[j].hi = hi[j] > lo[j] ? hi[j] : lo[j] + 1.0;
    }

    // (2) Assign keys; build local histograms.
    const auto keys = compute_keys(projected, ranges, params.max_depth);
    auto hists = build_histograms(keys, ranges);

    // (3) Communicate binning histograms — the only point-derived data that
    // ever crosses ranks, O(dims * 2^max_depth) doubles. Either through the
    // tree allreduce or around a ring (§3 step 3).
    auto merged = params.topology == Topology::kRing
                      ? comm.ring_allreduce(flatten_counts(hists))
                      : comm.allreduce(flatten_counts(hists),
                                       comm::ReduceOp::kSum);
    unflatten_counts(merged, hists);

    // KS-based dimension collapsing on a mid-level histogram (64 bins).
    const int collapse_depth = std::min(params.max_depth, 6);
    std::vector<int> kept_dims;
    for (std::size_t j = 0; j < dims; ++j) {
      const auto level = hists[j].level(collapse_depth);
      const double ks = stats::ks_statistic_gaussian(level.counts(),
                                                     level.lo(), level.hi());
      if (ks >= params.collapse_threshold) {
        kept_dims.push_back(static_cast<int>(j));
      }
    }
    // Every dimension collapsed: this projection sees no multimodal
    // structure anywhere, i.e. a single cluster. Register a score-0
    // single-cluster candidate (adopted only if no trial ever finds
    // structure) and skip the depth sweep.
    if (kept_dims.empty()) {
      if (is_root) {
        diagnostics.push_back(TrialDiagnostics{t, 0, 0, 1, 0.0});
        if (best.trial < 0) {
          best.score = 0.0;
          best.trial = t;
          best.projection = projection;
          best.ranges = ranges;
        }
      }
      continue;
    }

    // (4) + (6) Partition and rate with the histogram-space CH index; the
    // root tracks the best model. Classic mode sweeps one global depth over
    // [min_depth, max_depth]; the per-dimension extension lets every kept
    // dimension pick its own depth first, then evaluates that single
    // combined candidate.
    std::vector<std::vector<int>> depth_candidates;
    if (params.per_dimension_depth) {
      std::vector<int> chosen;
      chosen.reserve(kept_dims.size());
      for (int j : kept_dims) {
        int best_depth = params.min_depth;
        double best_dim_score = -1.0;
        for (int depth = params.min_depth; depth <= params.max_depth;
             ++depth) {
          const auto level = hists[static_cast<std::size_t>(j)].level(depth);
          const auto part = partition(level.counts(), params);
          const double s = single_dimension_score(level, part);
          if (s > best_dim_score) {
            best_dim_score = s;
            best_depth = depth;
          }
        }
        chosen.push_back(best_depth);
      }
      depth_candidates.push_back(std::move(chosen));
    } else {
      for (int depth = params.min_depth; depth <= params.max_depth; ++depth) {
        depth_candidates.emplace_back(kept_dims.size(), depth);
      }
    }

    for (const auto& depths : depth_candidates) {
      std::vector<stats::Histogram> dim_hists;
      std::vector<DimensionPartition> partitions;
      dim_hists.reserve(kept_dims.size());
      partitions.reserve(kept_dims.size());
      for (std::size_t k = 0; k < kept_dims.size(); ++k) {
        const auto j = static_cast<std::size_t>(kept_dims[k]);
        auto level = hists[j].level(depths[k]);
        partitions.push_back(partition(level.counts(), params));
        dim_hists.push_back(std::move(level));
      }

      // Occupied cells: local count, merged at the root.
      const auto local_cells =
          count_cells(keys, kept_dims, partitions, depths);
      auto gathered = comm.gather(serialize_cells(local_cells), /*root=*/0);

      if (is_root) {
        CellMap global_cells;
        for (const auto& blob : gathered) merge_cells(global_cells, blob);
        auto cells = to_cell_vector(global_cells);
        const double score =
            histogram_calinski_harabasz(dim_hists, partitions, cells);
        diagnostics.push_back(TrialDiagnostics{
            t, *std::max_element(depths.begin(), depths.end()),
            static_cast<int>(kept_dims.size()),
            static_cast<int>(cells.size()), score});
        // The initial sentinel score is -1, so the first candidate is always
        // adopted even when it scores 0 (a genuine one-cluster dataset).
        if (score > best.score) {
          best.score = score;
          best.trial = t;
          best.depths = depths;
          best.projection = projection;
          best.kept_dims = kept_dims;
          best.ranges = ranges;
          best.partitions = std::move(partitions);
          best.cells = std::move(cells);
        }
      }
    }
  }

  // Root finalizes the model and broadcasts it; everyone labels locally (5).
  ByteWriter writer;
  if (is_root) {
    // The all-collapsed fallback has no kept dims, hence no depths.
    if (best.depths.size() != best.kept_dims.size()) {
      best.depths.assign(best.kept_dims.size(), params.min_depth);
    }
    Model model(global_dims, std::move(best.projection),
                std::move(best.depths), std::move(best.kept_dims),
                std::move(best.ranges), std::move(best.partitions),
                std::move(best.cells), best.score, total_points,
                params.min_cluster_fraction);
    model.serialize(writer);
    writer.write<std::uint64_t>(diagnostics.size());
    for (const auto& d : diagnostics) writer.write(d);
  }
  auto bytes = writer.take();
  comm.broadcast(bytes, /*root=*/0);

  ByteReader reader(bytes);
  FitResult result;
  result.model = Model::deserialize(reader);
  const auto n_diag = reader.read<std::uint64_t>();
  result.trials.resize(n_diag);
  for (auto& d : result.trials) d = reader.read<TrialDiagnostics>();
  result.labels = result.model.predict(local_points);
  return result;
}

FitResult fit(const Matrix& points, const Params& params) {
  comm::SelfComm self;
  return fit(self, points, params);
}

}  // namespace keybin2::core
