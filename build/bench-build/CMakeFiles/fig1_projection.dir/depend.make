# Empty dependencies file for fig1_projection.
# This may be replaced when dependencies are built.
